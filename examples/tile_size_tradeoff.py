#!/usr/bin/env python
"""Sweep tile granularity on one design (a single-design Figure 5).

Fine tiles make each debugging commit cheap but add more locked
interfaces (more inter-tile nets, potentially worse timing); coarse
tiles approach whole-design re-place-and-route.  This example sweeps
the spectrum on s9234 and prints the trade-off table the paper's §3.2
describes qualitatively.

Run:  python examples/tile_size_tradeoff.py
"""

from repro.analysis.experiments import (
    ExperimentConfig,
    ExperimentSuite,
    _measure_single_tile_change,
    _pick_change_instance,
)
from repro.errors import TilingError
from repro.pnr.effort import EFFORT_PRESETS, EffortMeter
from repro.pnr.flow import full_place_and_route


def main() -> None:
    config = ExperimentConfig(
        designs=["s9234"], preset=EFFORT_PRESETS["fast"], seed=2
    )
    suite = ExperimentSuite(config)
    ctx = suite.context("s9234")
    print(f"s9234: {ctx.bundle.n_clbs} CLBs on {ctx.device.name}\n")

    baseline = EffortMeter()
    full_place_and_route(
        ctx.bundle.packed, ctx.device, seed=9,
        preset=config.preset, meter=baseline, strict_routing=False,
    )

    header = (
        f"{'tiles':>6} {'tile CLBs':>10} {'cut nets':>9} "
        f"{'timing ns':>10} {'commit work':>12} {'speedup':>8}"
    )
    print(header)
    print("-" * len(header))
    for n_tiles in (40, 20, 10, 7, 4, 2):
        try:
            tiled = ctx.tiled(n_tiles)
        except TilingError as exc:
            print(f"{n_tiles:>6} {'n/a':>10}  ({exc})")
            continue
        stats = tiled.stats()
        target = _pick_change_instance(ctx)
        effort = _measure_single_tile_change(ctx, tiled, target, seed=n_tiles)
        print(
            f"{n_tiles:>6} {stats.total_used / n_tiles:>10.1f} "
            f"{stats.inter_tile_nets:>9} "
            f"{tiled.layout.critical_path():>10.1f} "
            f"{effort.work_units:>12.0f} "
            f"{baseline.work_units / effort.work_units:>7.1f}x"
        )

    print(f"\nwhole-design re-P&R baseline: {baseline.work_units:.0f} work units")
    print("finer tiles -> cheaper commits, more locked interfaces")


if __name__ == "__main__":
    main()
