#!/usr/bin/env python
"""Quickstart: the paper's debug flow through the `repro.api` facade.

One spec drives the whole loop in a few seconds:

1. declare a `RunSpec` — design, error model, strategy, engine, seeds —
   and show that it round-trips through JSON (specs are how campaigns
   are stored and shipped between processes);
2. run it: detect → localize → correct → verify, watching stage,
   probe, and commit events through `PipelineHooks`;
3. read the `RunResult` — candidates, probe trajectory, effort,
   timings — all plain JSON;
4. run the identical spec again: every commit replays a precomputed
   tile configuration (the paper's core trick, mechanized as a cache).

Run:  python examples/quickstart.py
Same flow from the shell:  python -m repro run --design 9sym \
    --error-seed 1 --preset fast --json -
"""

from repro.api import PipelineHooks, RunSpec, run_spec


class PrintHooks(PipelineHooks):
    """Console narration of pipeline events."""

    def on_stage_start(self, stage, ctx):
        print(f"   stage {stage.name}...")

    def on_probe(self, ctx, step):
        verdict = "mismatch" if step.mismatch else "match"
        print(f"      probe {step.probe_instance}: {verdict}, "
              f"{step.candidates_before} -> {step.candidates_after} "
              "candidates")

    def on_commit(self, ctx, record):
        print(f"      commit: {record.description} ({record.detail})")


def main() -> None:
    print("== 1. the spec ==")
    spec = RunSpec(
        design="9sym",          # paper benchmark, 56 CLBs
        strategy="tiled",       # the paper's contribution
        engine="compiled",      # instruction-tape simulation kernel
        preset="fast",
        error_kind="table_bit",
        error_seed=1,
        max_probes=6,
    )
    assert RunSpec.from_json(spec.to_json()) == spec
    print(f"   {spec.design} / {spec.strategy} / {spec.engine} "
          f"(JSON round-trip ok, {len(spec.to_json())} bytes)")

    print("== 2. detect -> localize -> correct -> verify ==")
    result = run_spec(spec, hooks=PrintHooks())

    print("== 3. the result ==")
    print(f"   error injected at {result.error_instance} "
          f"({result.error_detail})")
    print(f"   detected={result.detected}  localized={result.localized}  "
          f"fixed={result.fixed}")
    print(f"   {result.n_probes} probes -> "
          f"{len(result.candidates)} candidates: {result.candidates}")
    print(f"   debug effort: "
          f"{result.effort['debug']['work_units']:.0f} work units over "
          f"{result.n_commits} commits")

    print("== 4. same spec again: precomputed configurations replay ==")
    warm = run_spec(spec)
    print(f"   commits served from the tile-config cache: "
          f"{warm.n_commit_cache_hits}/{warm.n_commits}")
    print(f"   identical trajectory: "
          f"{warm.trajectory_key() == result.trajectory_key()}")
    print(f"   wall: {result.wall_seconds:.2f}s cold, "
          f"{warm.wall_seconds:.2f}s warm")


if __name__ == "__main__":
    main()
