#!/usr/bin/env python
"""Quickstart: tile a design, change one LUT, re-P&R only its tile.

Walks the paper's core idea on a small circuit in under a minute:

1. build a netlist, map it to 4-LUTs, pack it into XC4000 CLBs;
2. place-and-route it, then partition the layout into locked tiles
   with ~20 % resource slack;
3. make a "debugging change" (flip a LUT truth table);
4. commit it — only the affected tile is cleared and re-implemented —
   and prove it with bitstream frame digests;
5. compare the back-end effort against re-implementing everything.

Run:  python examples/quickstart.py
"""

from repro.arch import pick_device
from repro.emu import frames_for_tiles
from repro.netlist import CellKind, Netlist, NetlistBuilder
from repro.pnr import EFFORT_PRESETS, EffortMeter, full_place_and_route
from repro.synth import map_to_luts, pack_netlist
from repro.tiling import TiledLayout, TilingOptions
from repro.tiling.eco import ChangeRecorder


def build_demo_netlist() -> Netlist:
    """A 12-bit registered adder/comparator — enough CLBs to tile."""
    netlist = Netlist("quickstart")
    b = NetlistBuilder(netlist)
    a = b.input_word("a", 12)
    c = b.input_word("b", 12)
    total, carry = b.adder(a, c)
    regs = b.register(total, name="acc")
    b.output_word("sum", regs)
    netlist.add_output("carry", carry)
    netlist.add_output("a_lt_b", b.less_than_unsigned(a, c))
    return netlist


def main() -> None:
    print("== 1. front end ==")
    netlist = build_demo_netlist()
    mapped = map_to_luts(netlist)
    packed = pack_netlist(mapped)
    print(f"   {netlist.stats().n_gates} gates -> "
          f"{mapped.stats().n_luts} LUTs + {mapped.stats().n_ffs} FFs "
          f"-> {packed.n_clbs} CLBs")

    print("== 2. place-and-route, then tile ==")
    device = pick_device(packed.n_clbs, area_overhead=0.5,
                         min_io=len(packed.io_blocks()))
    layout = full_place_and_route(packed, device, seed=1,
                                  preset=EFFORT_PRESETS["fast"])
    tiled = TiledLayout.create(
        packed, device, TilingOptions(n_tiles=4, area_overhead=0.25),
        seed=1, preset=EFFORT_PRESETS["fast"], initial_layout=layout,
    )
    stats = tiled.stats()
    print(f"   device {device.name}, {stats.n_tiles} tiles, "
          f"area overhead {stats.area_overhead:.1%}, "
          f"{stats.inter_tile_nets} inter-tile nets")
    print(f"   critical path {tiled.layout.critical_path():.1f} ns")

    print("== 3. a debugging change ==")
    lut = next(i for i in mapped.instances()
               if i.kind is CellKind.LUT and i.inputs)
    with ChangeRecorder(mapped, "fix suspected bug") as rec:
        size = 1 << len(lut.inputs)
        lut.params = {"table": lut.params["table"] ^ (size - 1)}
    print(f"   inverted LUT {lut.name} "
          f"(tile {tiled.tile_of_instance(lut.name)})")

    print("== 4. tile-confined commit ==")
    rects = [t.rect for t in tiled.tiles]
    before = frames_for_tiles(tiled.layout, rects)
    report = tiled.apply_changeset(rec.changes, seed=2,
                                   preset=EFFORT_PRESETS["fast"])
    after = frames_for_tiles(tiled.layout, rects)
    untouched = [i for i, (x, y) in enumerate(zip(before, after)) if x == y]
    print(f"   affected tiles: {report.affected_tiles}")
    print(f"   bit-identical tiles: {untouched}")

    print("== 5. effort comparison ==")
    baseline = EffortMeter()
    full_place_and_route(packed, device, seed=3,
                         preset=EFFORT_PRESETS["fast"], meter=baseline)
    speedup = baseline.work_units / report.effort.work_units
    print(f"   tiled commit:   {report.effort.work_units:9.0f} work units")
    print(f"   full re-P&R:    {baseline.work_units:9.0f} work units")
    print(f"   speedup:        {speedup:.1f}x")


if __name__ == "__main__":
    main()
