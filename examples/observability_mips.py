#!/usr/bin/env python
"""Test-logic budgeting on the MIPS R2000 core (Figures 3 & 4 hands-on).

The paper's §4 asks two planning questions before inserting control and
observation logic into an emulated design:

* how many tiles does a piece of test logic of a given size pull into
  the re-place-and-route? (Figure 3)
* with many test points spread over the design, how big can each
  point's logic be? (Figure 4)

This example answers both on the real MIPS core layout, then actually
inserts a 16-CLB counter probe (the paper's "large counter" example)
next to the register file and commits it tile-confined.

Run:  python examples/observability_mips.py          (about a minute)
      REPRO_SMALL=1 ... (reduced 8-bit core, a few seconds)
"""

import os
import time

from repro.api import RunSpec, device_for, load_bundle
from repro.debug.instrument import test_logic_block
from repro.pnr.effort import EFFORT_PRESETS
from repro.tiling import TiledLayout, TilingOptions


def build_core():
    """Design resolution through the facade's shared loader."""
    if os.environ.get("REPRO_SMALL"):
        spec = RunSpec(
            design="mips",
            design_params={"name": "mips_small", "width": 8, "n_regs": 4},
        )
    else:
        spec = RunSpec(design="mips")
    bundle = load_bundle(spec)
    return bundle.mapped, bundle.packed


def main() -> None:
    t0 = time.time()
    mapped, packed = build_core()
    device = device_for(packed, area_overhead=0.35, min_io_extra=8)
    print(f"MIPS core: {packed.n_clbs} CLBs on {device.name}")

    tiled = TiledLayout.create(
        packed, device, TilingOptions(n_tiles=10, area_overhead=0.2),
        seed=3, preset=EFFORT_PRESETS["fast"],
    )
    stats = tiled.stats()
    print(f"tiled into {stats.n_tiles} tiles, "
          f"slack {stats.total_slack} CLBs "
          f"({stats.area_overhead:.1%} overhead)\n")

    print("Figure-3 view: tiles affected by one insertion of size k")
    for k in (1, 5, 10, 20, 40):
        if k > tiled.total_slack():
            break
        affected = tiled.affected_tiles_for_logic(k, start_tile=0)
        print(f"   k={k:>3} CLBs -> {len(affected)} tile(s): {affected}")

    print("\nFigure-4 view: per-point budget for p test points")
    for p in (1, 2, 5, 10, 25, 50):
        budget = tiled.max_logic_for_test_points(p)
        print(f"   p={p:>3} points -> max {budget} CLBs each")

    print("\ninserting a 16-CLB observation counter at the PC...")
    anchor = next(
        inst for inst in mapped.instances()
        if inst.name.startswith("pc") and inst.output is not None
    )
    changes = test_logic_block(
        mapped, n_clbs=16, attach_net=anchor.output.name, name="pc_probe"
    )
    report = tiled.apply_changeset(
        changes, seed=4, preset=EFFORT_PRESETS["fast"],
        anchor_instance=anchor.name,
    )
    print(f"   affected tiles: {report.affected_tiles} "
          f"(neighbor expansion: {report.expanded})")
    print(f"   commit effort: {report.effort.work_units:.0f} work units, "
          f"{report.effort.wall_seconds:.1f} s")
    print(f"\ntotal runtime: {time.time() - t0:.0f} s")


if __name__ == "__main__":
    main()
