#!/usr/bin/env python
"""Debug-as-a-service tour: warm daemon, streamed events, batches.

The service keeps the expensive per-design state — bundle, device
tables, the golden model's compiled kernel, cone bitsets, the tile
cache — resident in long-lived workers, so every run after the first
on a design skips straight to the actual debugging.  This demo:

1. starts a daemon in-process (one worker, a temp cache dir);
2. runs one spec cold, then the same spec again warm, and prints the
   measured speedup plus the proof that both answers are identical;
3. streams the job's stage/probe/commit events, exactly as
   `python -m repro client events <job>` would;
4. submits a 3-spec batch expanded server-side and waits for all;
5. dumps the daemon's stats: queue depths, worker health, warm hits.

Run:  python examples/service_demo.py
Same flow from the shell:
    python -m repro serve --cache-dir .cache --workers 1 &
    python -m repro client submit --design 9sym --error-seed 1 \
        --preset fast --wait
"""

import json
import tempfile
import time
from pathlib import Path

from repro.api import RunSpec
from repro.service import Client, ReproService, ServiceConfig

#: fields that legitimately differ between two runs of the same spec
VOLATILE = {"wall_seconds", "timings", "effort", "cache", "attempts",
            "n_commit_cache_hits"}


def stable(result: dict) -> dict:
    return {k: v for k, v in result.items() if k not in VOLATILE}


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="repro-svc-") as tmp:
        config = ServiceConfig(
            socket_path=str(Path(tmp) / "svc.sock"),
            cache_dir=str(Path(tmp) / "cache"),
            workers=1,
        )
        service = ReproService(config)
        service.start()
        client = Client(config.socket_path)
        try:
            tour(client)
        finally:
            service.stop()


def tour(client: Client) -> None:
    print("1. ping:", json.dumps(client.ping(), sort_keys=True))

    spec = RunSpec(design="9sym", preset="fast", max_probes=6,
                   cache="shared", error_seed=1)

    print("\n2. cold run (worker builds bundle, device, golden, "
          "kernel)...")
    t0 = time.perf_counter()
    cold = client.run(spec)
    cold_s = time.perf_counter() - t0
    print(f"   status={cold['result']['status']} "
          f"warm_hit={cold['warm']['hit']} {cold_s:.2f}s")

    print("   same spec again, fresh — the warm registry answers:")
    t0 = time.perf_counter()
    warm = client.run(spec, fresh=True)
    warm_s = time.perf_counter() - t0
    print(f"   status={warm['result']['status']} "
          f"warm_hit={warm['warm']['hit']} {warm_s:.2f}s "
          f"-> {cold_s / max(warm_s, 1e-9):.1f}x")
    assert stable(cold["result"]) == stable(warm["result"])
    print("   warm answer is bit-identical to the cold one "
          "(modulo timings)")

    print("\n3. the job's event stream, replayed:")
    for event in client.events(cold["job"]):
        kind = event.get("event")
        if kind == "stage_start":
            print(f"   stage {event['stage']}...")
        elif kind == "probe":
            print(f"      probe {event['instance']}: "
                  f"{event['candidates_before']} -> "
                  f"{event['candidates_after']} candidates")
        elif kind == "commit":
            print(f"      commit ({event['work_units']} work units)")
        elif kind == "done":
            print(f"   done: {event['status']}")

    print("\n4. a 3-spec batch, expanded server-side:")
    batch = client.submit_batch(spec, error_seeds=[1, 2, 3])
    for job in batch["jobs"]:
        settled = client.wait(job["job"])
        print(f"   error_seed={settled['result']['spec']['error_seed']} "
              f"status={settled['result']['status']} "
              f"warm_hit={(settled.get('warm') or {}).get('hit')} "
              f"deduped={job['deduped']}")

    stats = client.stats()
    queue, worker = stats["queue"], stats["workers"][0]
    print(f"\n5. stats: {queue['done']}/{queue['jobs']} jobs done, "
          f"worker pid={worker['pid']} alive={worker['alive']} "
          f"jobs_done={worker['jobs_done']} deaths={worker['deaths']}")


if __name__ == "__main__":
    main()
