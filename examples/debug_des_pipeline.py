#!/usr/bin/env python
"""Full emulation-debug campaign on the DES datapath (paper §6 workload).

Injects a realistic design error into the DES benchmark, then runs the
paper's complete loop — detect on random plaintexts, tile, localize with
observation points, correct, re-verify — under both the tiled back end
and the Quick_ECO baseline, and reports the effort each strategy spent.

This is the scenario the paper's introduction motivates: a large
"real world" design (1050 CLBs of DES on XC4000) where every debugging
iteration through the back-end tools hurts.

Run:  python examples/debug_des_pipeline.py            (a few minutes)
      REPRO_SMALL=1 python examples/debug_des_pipeline.py   (30 s demo
      on a reduced 2-round DES)
"""

import os
import time

from repro.debug.session import run_campaign
from repro.generators import build_design
from repro.generators.des import make_des
from repro.pnr.effort import EFFORT_PRESETS
from repro.synth import map_to_luts, pack_netlist
from repro.tiling.partition import TilingOptions


def packed_des():
    if os.environ.get("REPRO_SMALL"):
        netlist = make_des("des_small", n_rounds=2, pipeline=True)
        return pack_netlist(map_to_luts(netlist))
    return build_design("des").packed


def main() -> None:
    t0 = time.time()
    print("building DES and running the debug campaign "
          "(tiled vs Quick_ECO)...")
    reports = run_campaign(
        packed_des,
        ["tiled", "quick_eco"],
        error_kind="wrong_function",
        seed=5,
        preset=EFFORT_PRESETS["fast"],
        tiling=TilingOptions(n_tiles=10, area_overhead=0.2),
        n_cycles=8,
        n_patterns=64,
    )

    for name, report in reports.items():
        loc = report.localization
        print(f"\n-- strategy: {name} --")
        print(f"   error: {report.error.kind} @ {report.error.instance} "
              f"({report.error.detail})")
        print(f"   detected: {report.detected}   fixed: {report.fixed}")
        if loc is not None:
            print(f"   localization probes: {loc.n_probes}, final "
                  f"candidates: {len(loc.candidates)} "
                  f"(true error inside: {report.localized_correctly})")
        print(f"   physical-design commits: {report.n_commits}")
        print(f"   debug-loop effort: "
              f"{report.total_effort.work_units:12.0f} work units "
              f"({report.total_effort.wall_seconds:6.1f} s wall)")

    tiled = reports["tiled"].total_effort.work_units
    quick = reports["quick_eco"].total_effort.work_units
    print(f"\n=> tiling reduced back-end effort by {quick / tiled:.1f}x "
          f"over functional-block re-place-and-route")
    print(f"   total example runtime: {time.time() - t0:.0f} s")


if __name__ == "__main__":
    main()
