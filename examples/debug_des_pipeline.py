#!/usr/bin/env python
"""Full emulation-debug campaign on the DES datapath (paper §6 workload).

Injects a realistic design error into the DES benchmark, then runs the
paper's complete loop — detect on random plaintexts, tile, localize with
observation points, correct, re-verify — under both the tiled back end
and the Quick_ECO baseline via the `repro.api` facade, and reports the
effort each strategy spent.

This is the scenario the paper's introduction motivates: a large
"real world" design (1050 CLBs of DES on XC4000) where every debugging
iteration through the back-end tools hurts.

Run:  python examples/debug_des_pipeline.py            (a few minutes)
      REPRO_SMALL=1 python examples/debug_des_pipeline.py   (30 s demo
      on a reduced 2-round DES)
"""

import os
import time

from repro.api import CampaignRunner, RunSpec, expand_matrix


def base_spec() -> RunSpec:
    common = dict(
        strategy="tiled",
        error_kind="wrong_function",
        seed=5,
        error_seed=5,
        preset="fast",
        tiling={"n_tiles": 10, "area_overhead": 0.2},
        n_cycles=8,
        n_patterns=64,
    )
    if os.environ.get("REPRO_SMALL"):
        # a reduced 2-round DES through the parameterized generator
        return RunSpec(
            design="des",
            design_params={"name": "des_small", "n_rounds": 2,
                           "pipeline": True},
            **common,
        )
    return RunSpec(design="des", **common)


def main() -> None:
    t0 = time.time()
    print("building DES and running the debug campaign "
          "(tiled vs Quick_ECO)...")
    specs = expand_matrix(base_spec(), strategies=["tiled", "quick_eco"])
    campaign = CampaignRunner().run(specs)

    for result in campaign.results:
        print(f"\n-- strategy: {result.strategy} --")
        print(f"   error: {result.error_kind} @ {result.error_instance} "
              f"({result.error_detail})")
        print(f"   detected: {result.detected}   fixed: {result.fixed}")
        if result.detected:
            print(f"   localization probes: {result.n_probes}, final "
                  f"candidates: {len(result.candidates)} "
                  f"(true error inside: {result.localized})")
        print(f"   physical-design commits: {result.n_commits}")
        effort = result.effort["debug"]
        print(f"   debug-loop effort: "
              f"{effort['work_units']:12.0f} work units "
              f"({effort['wall_seconds']:6.1f} s wall)")

    by_strategy = {r.strategy: r for r in campaign.results}
    tiled = by_strategy["tiled"].effort["debug"]["work_units"]
    quick = by_strategy["quick_eco"].effort["debug"]["work_units"]
    print(f"\n=> tiling reduced back-end effort by {quick / tiled:.1f}x "
          f"over functional-block re-place-and-route")
    print(f"   total example runtime: {time.time() - t0:.0f} s")


if __name__ == "__main__":
    main()
