#!/usr/bin/env python
"""Observability tour: trace a debug run, read metrics, export Chrome JSON.

`repro.obs` threads three instruments through the pipeline without
touching its behaviour (the untraced path is bit-identical):

1. **Tracing** — a `Tracer` collects a nested span tree
   (run → stage → round → probe/commit) and exports Chrome
   ``trace_event`` JSON that chrome://tracing and Perfetto open
   directly;
2. **Metrics** — the process-wide `METRICS` registry counts runs,
   probes, rounds, SAT work, and cache traffic, and renders Prometheus
   text exposition;
3. **Profiling** — `profile=True` wraps each stage in cProfile and
   lands the top functions per stage on the result.

Run:  python examples/trace_demo.py
Same flow from the shell:
    python -m repro run --design 9sym --error-seed 1 --preset fast \
        --trace trace.json --profile
    python -m repro report trace.json
"""

import json
import tempfile

from repro.api import RunSpec, run_spec
from repro.obs import METRICS, Tracer, render_span_tree


def main() -> None:
    spec = RunSpec(design="9sym", error_seed=1, preset="fast",
                   max_probes=6, cache="off")

    # -- tracing + profiling ------------------------------------------
    tracer = Tracer()
    before = METRICS.snapshot()
    result = run_spec(spec, tracer=tracer, profile=True)
    print(f"run finished: status={result.status} fixed={result.fixed}\n")

    print("span tree (what the CLI's `report trace.json` renders):")
    print(render_span_tree(tracer))

    # -- Chrome trace export ------------------------------------------
    with tempfile.NamedTemporaryFile(
            mode="w", suffix=".json", delete=False) as handle:
        trace = tracer.to_chrome_trace()
        json.dump(trace, handle)
    print(f"\nwrote {len(trace['traceEvents'])} trace events to "
          f"{handle.name} — open in chrome://tracing or Perfetto")

    # -- per-stage profile (rides the result and the trace file) ------
    stages = (result.profile or {}).get("stages", {})
    for stage, rows in sorted(stages.items()):
        top = rows[0] if rows else None
        if top:
            print(f"profile[{stage}]: hottest {top['func']} "
                  f"({top['tottime_s']:.4f}s self)")

    # -- metrics: what this run added to the registry -----------------
    delta = METRICS.delta(before)
    print("\ncounters this run:")
    for counter in delta["counters"]:
        labels = ",".join(
            f"{k}={v}" for k, v in sorted(counter["labels"].items()))
        print(f"   {counter['name']}{{{labels}}} = {counter['value']:g}")

    # the same registry renders Prometheus text exposition — this is
    # what the service daemon serves under `stats --metrics`
    text = METRICS.to_prometheus()
    sample = [line for line in text.splitlines()
              if line.startswith("repro_runs_total")]
    print("\nPrometheus exposition sample:")
    for line in sample:
        print(f"   {line}")


if __name__ == "__main__":
    main()
