"""Miter construction and bounded equivalence proofs."""

import pytest

from repro.debug.errors import inject_error
from repro.debug.instrument import add_observation_point
from repro.generators import build_design
from repro.netlist.cells import CellKind
from repro.netlist.core import Netlist
from repro.sat.cnf import SatError
from repro.sat.equiv import (
    counterexample_mismatches,
    prove_equivalence,
    shared_outputs,
)


def small_sequential():
    nl = Netlist("small")
    a, b = nl.add_input("a"), nl.add_input("b")
    q = nl.add_net("q")
    lut = nl.add_lut([a, b, q], 0b10010110, name="l0")  # xor3
    nl.add_dff(lut.output, name="ff", output=q)
    out = nl.add_lut([a, q], 0b1000, name="l1")  # and2
    nl.add_output("y", out.output)
    return nl


class TestMiterUnsat:
    def test_miter_unsat_on_identical_netlists(self):
        nl = small_sequential()
        proof = prove_equivalence(nl, nl.copy("twin"), frames=4)
        assert proof.proved is True
        assert proof.counterexample is None
        # identical structure collapses before the solver runs
        assert proof.outputs == {"y": "proved_structural"}
        assert proof.solver_stats["solves"] == 0

    def test_miter_unsat_on_mapped_benchmark(self):
        nl = build_design("9sym").mapped
        proof = prove_equivalence(nl, nl.copy("twin"), frames=3, seed=1)
        assert proof.proved is True
        assert proof.n_structural == len(proof.outputs)

    def test_miter_unsat_on_functionally_equal_structures(self):
        # same function, different structure: needs the solver, not
        # just hashing — y = a AND b vs y = NOT(NOT a OR NOT b)
        left = Netlist("left")
        a, b = left.add_input("a"), left.add_input("b")
        left.add_output("y", left.add_gate(CellKind.AND, [a, b]))
        right = Netlist("right")
        a2, b2 = right.add_input("a"), right.add_input("b")
        na = right.add_gate(CellKind.NOT, [a2])
        nb = right.add_gate(CellKind.NOT, [b2])
        right.add_output(
            "y", right.add_gate(CellKind.NOR, [na, nb])
        )
        proof = prove_equivalence(left, right, frames=1)
        assert proof.proved is True


class TestMiterSat:
    def test_miter_sat_with_confirmed_counterexample(self):
        nl = small_sequential()
        bad = nl.copy("bad")
        lut = bad.instance("l1")
        bad.set_params(lut, {"table": 0b1110})  # and -> or
        proof = prove_equivalence(bad, nl, frames=3, seed=1)
        assert proof.proved is False
        assert proof.cex_output == "y"
        assert proof.counterexample is not None
        assert len(proof.counterexample) == 3
        mismatches = counterexample_mismatches(
            bad, nl, proof.counterexample
        )
        assert mismatches, "counterexample must reproduce in simulation"
        assert any(m.output == "y" for m in mismatches)

    def test_miter_sat_on_injected_benchmark_error(self):
        golden = build_design("9sym").mapped
        bad = golden.copy("bad")
        inject_error(bad, "output_invert", seed=1)
        proof = prove_equivalence(bad, golden, frames=2, seed=1)
        assert proof.proved is False
        mismatches = counterexample_mismatches(
            bad, golden, proof.counterexample, engine="compiled"
        )
        assert mismatches

    def test_sequential_error_needs_frames_to_show(self):
        # corrupt the FF's source LUT: the effect is only visible one
        # cycle later through the register, so frames=1 proves "equal"
        # (bounded!) while frames>=2 finds the divergence
        nl = small_sequential()
        bad = nl.copy("bad")
        bad.set_params(bad.instance("l0"), {"table": 0b01101001})
        shallow = prove_equivalence(bad, nl, frames=1)
        assert shallow.proved is True
        deep = prove_equivalence(bad, nl, frames=3)
        assert deep.proved is False
        assert counterexample_mismatches(bad, nl, deep.counterexample)


class TestInterfaceContract:
    def test_instrumentation_outputs_are_excluded(self):
        nl = small_sequential()
        dut = nl.copy("dut")
        probe_net = dut.instance("l0").output.name
        add_observation_point(dut, [probe_net], "t", sticky=True)
        assert shared_outputs(dut, nl) == ["y"]
        proof = prove_equivalence(dut, nl, frames=3)
        assert proof.proved is True
        assert set(proof.outputs) == {"y"}

    def test_dut_only_inputs_held_at_zero(self):
        nl = Netlist("base")
        a = nl.add_input("a")
        nl.add_output("y", nl.add_gate(CellKind.BUF, [a]))
        dut = Netlist("dut")
        a2, en = dut.add_input("a"), dut.add_input("ctl_en")
        dut.add_output("y", dut.add_gate(CellKind.OR, [a2, en]))
        # with ctl_en free the circuits differ; tied to 0 they match
        proof = prove_equivalence(dut, nl, frames=2)
        assert proof.proved is True

    def test_rejects_zero_frames(self):
        nl = small_sequential()
        with pytest.raises(SatError):
            prove_equivalence(nl, nl.copy("twin"), frames=0)


def test_miter_proof_is_deterministic():
    golden = build_design("9sym").mapped
    bad = golden.copy("bad")
    inject_error(bad, "table_bit", seed=2)
    p1 = prove_equivalence(bad, golden, frames=2, seed=3)
    p2 = prove_equivalence(bad, golden, frames=2, seed=3)
    assert p1.proved == p2.proved
    assert p1.counterexample == p2.counterexample
    assert p1.solver_stats == p2.solver_stats
