"""Word-level builder: arithmetic and selection against golden models."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import NetlistError
from repro.netlist import Netlist, NetlistBuilder, check_netlist, simulate_words
from repro.netlist import SequentialSimulator


def run_comb(netlist, inputs, n_patterns):
    return simulate_words(netlist, inputs, n_patterns)


def word_inputs(prefix, values, width, n_patterns):
    """Transpose per-pattern integers into per-bit words."""
    words = {}
    for i in range(width):
        w = 0
        for p, v in enumerate(values):
            if (v >> i) & 1:
                w |= 1 << p
        words[f"{prefix}[{i}]"] = w
    return words


def read_word(outputs, prefix, width, pattern):
    return sum(
        ((outputs[f"{prefix}[{i}]"] >> pattern) & 1) << i for i in range(width)
    )


@given(
    a=st.lists(st.integers(0, 255), min_size=8, max_size=8),
    b=st.lists(st.integers(0, 255), min_size=8, max_size=8),
)
@settings(max_examples=25, deadline=None)
def test_adder_matches_integer_addition(a, b):
    n = Netlist("t")
    bd = NetlistBuilder(n)
    x = bd.input_word("a", 8)
    y = bd.input_word("b", 8)
    s, cout = bd.adder(x, y)
    bd.output_word("s", s)
    n.add_output("cout", cout)
    check_netlist(n)
    ins = word_inputs("a", a, 8, 8) | word_inputs("b", b, 8, 8)
    out = run_comb(n, ins, 8)
    for p in range(8):
        total = read_word(out, "s", 8, p) + (((out["cout"] >> p) & 1) << 8)
        assert total == a[p] + b[p]


@given(
    a=st.lists(st.integers(0, 63), min_size=4, max_size=4),
    b=st.lists(st.integers(0, 63), min_size=4, max_size=4),
)
@settings(max_examples=25, deadline=None)
def test_subtractor_and_comparator(a, b):
    n = Netlist("t")
    bd = NetlistBuilder(n)
    x = bd.input_word("a", 6)
    y = bd.input_word("b", 6)
    diff, _ = bd.subtractor(x, y)
    bd.output_word("d", diff)
    n.add_output("lt", bd.less_than_unsigned(x, y))
    n.add_output("eq", bd.equals(x, y))
    ins = word_inputs("a", a, 6, 4) | word_inputs("b", b, 6, 4)
    out = run_comb(n, ins, 4)
    for p in range(4):
        assert read_word(out, "d", 6, p) == (a[p] - b[p]) % 64
        assert (out["lt"] >> p) & 1 == int(a[p] < b[p])
        assert (out["eq"] >> p) & 1 == int(a[p] == b[p])


def test_popcount_tree():
    rng = random.Random(3)
    n = Netlist("t")
    bd = NetlistBuilder(n)
    x = bd.input_word("x", 11)
    cnt = bd.popcount(x)
    bd.output_word("c", cnt)
    vals = [rng.getrandbits(11) for _ in range(32)]
    out = run_comb(n, word_inputs("x", vals, 11, 32), 32)
    for p in range(32):
        assert read_word(out, "c", len(cnt), p) == bin(vals[p]).count("1")


def test_mux_tree_selects_each_choice():
    n = Netlist("t")
    bd = NetlistBuilder(n)
    sel = bd.input_word("s", 2)
    choices = [bd.const_word(v, 4) for v in (3, 7, 12, 9)]
    out_word = bd.mux_tree(sel, choices)
    bd.output_word("o", out_word)
    for code, expected in enumerate((3, 7, 12, 9)):
        ins = {"s[0]": code & 1, "s[1]": (code >> 1) & 1}
        out = run_comb(n, ins, 1)
        assert read_word(out, "o", 4, 0) == expected


def test_mux_tree_wrong_choice_count():
    n = Netlist("t")
    bd = NetlistBuilder(n)
    sel = bd.input_word("s", 2)
    with pytest.raises(NetlistError):
        bd.mux_tree(sel, [bd.const_word(0, 2)] * 3)


def test_decoder_one_hot():
    n = Netlist("t")
    bd = NetlistBuilder(n)
    sel = bd.input_word("s", 3)
    hot = bd.decoder(sel)
    bd.output_word("h", hot)
    for code in range(8):
        ins = {f"s[{i}]": (code >> i) & 1 for i in range(3)}
        out = run_comb(n, ins, 1)
        value = read_word(out, "h", 8, 0)
        assert value == 1 << code


def test_decoder_with_enable():
    n = Netlist("t")
    bd = NetlistBuilder(n)
    sel = bd.input_word("s", 2)
    en = n.add_input("en")
    hot = bd.decoder(sel, enable=en)
    bd.output_word("h", hot)
    out = run_comb(n, {"s[0]": 1, "s[1]": 0, "en": 0}, 1)
    assert read_word(out, "h", 4, 0) == 0


def test_register_with_enable_holds_value():
    n = Netlist("t")
    bd = NetlistBuilder(n)
    d = bd.input_word("d", 4)
    en = n.add_input("en")
    q = bd.register(d, enable=en, name="r")
    bd.output_word("q", q)
    sim = SequentialSimulator(n)
    sim.step({"d[0]": 1, "d[1]": 1, "d[2]": 0, "d[3]": 0, "en": 1})
    out = sim.step({"d[0]": 0, "d[1]": 0, "d[2]": 1, "d[3]": 1, "en": 0})
    assert read_word(out, "q", 4, 0) == 0b0011  # held despite new data
    out = sim.step({"d[0]": 0, "d[1]": 0, "d[2]": 1, "d[3]": 1, "en": 0})
    assert read_word(out, "q", 4, 0) == 0b0011


def test_counter_counts():
    n = Netlist("t")
    bd = NetlistBuilder(n)
    q = bd.counter(5, name="c")
    bd.output_word("q", q)
    sim = SequentialSimulator(n)
    seen = [read_word(sim.step({}), "q", 5, 0) for _ in range(6)]
    assert seen == [0, 1, 2, 3, 4, 5]


def test_width_mismatch_raises():
    n = Netlist("t")
    bd = NetlistBuilder(n)
    a = bd.input_word("a", 3)
    b = bd.input_word("b", 4)
    with pytest.raises(NetlistError):
        bd.and_word(a, b)
