"""TileConfigCache: replay identity, guards, and fallback behavior."""

import pytest

from repro.arch import pick_device
from repro.emu import frames_for_tiles
from repro.netlist.cells import CellKind
from repro.pnr import EFFORT_PRESETS
from repro.synth import map_to_luts, pack_netlist
from repro.tiling import TiledLayout, TilingOptions
from repro.tiling.cache import (
    TileConfig,
    TileConfigCache,
    cached_full_place_and_route,
)
from repro.tiling.eco import ChangeRecorder
from tests.conftest import make_adder_netlist
from tests.test_replace_region import assert_layout_legal


def build_tiled(cache):
    """Deterministic tiled layout twin-buildable for replay tests."""
    netlist = make_adder_netlist(10, registered=True)
    mapped = map_to_luts(netlist)
    packed = pack_netlist(mapped)
    device = pick_device(packed.n_clbs, area_overhead=0.6,
                         min_io=len(packed.io_blocks()) + 8)
    tiled = TiledLayout.create(
        packed, device, TilingOptions(n_tiles=4, area_overhead=0.3),
        seed=2, preset=EFFORT_PRESETS["fast"], tile_cache=cache,
    )
    return mapped, packed, tiled


def flip_first_lut(mapped):
    lut = next(
        i for i in mapped.instances() if i.kind is CellKind.LUT and i.inputs
    )
    with ChangeRecorder(mapped, "flip") as rec:
        size = 1 << len(lut.inputs)
        lut.params = {"table": lut.params["table"] ^ (size - 1)}
    return rec.changes


def placement_by_name(tiled):
    packed = tiled.packed
    return {
        packed.blocks[b].name: site
        for b, site in tiled.layout.placement.pos.items()
    }


def routes_by_name(tiled):
    packed = tiled.packed
    return {
        packed.nets[idx].name: (set(t.cells), set(t.edges))
        for idx, t in tiled.layout.routes.items()
    }


def test_identical_commit_replays_from_cache():
    cache = TileConfigCache()
    mapped1, packed1, tiled1 = build_tiled(cache)
    r1 = tiled1.apply_changeset(
        flip_first_lut(mapped1), seed=4, preset=EFFORT_PRESETS["fast"]
    )
    assert not r1.cache_hit  # first time: computed and stored

    mapped2, packed2, tiled2 = build_tiled(cache)
    r2 = tiled2.apply_changeset(
        flip_first_lut(mapped2), seed=4, preset=EFFORT_PRESETS["fast"]
    )
    assert r2.cache_hit
    assert r2.affected_tiles == r1.affected_tiles
    # the replayed configuration is byte-identical to the computed one
    assert placement_by_name(tiled2) == placement_by_name(tiled1)
    assert routes_by_name(tiled2) == routes_by_name(tiled1)
    rects = [t.rect for t in tiled1.tiles]
    assert frames_for_tiles(tiled1.layout, rects) == frames_for_tiles(
        tiled2.layout, rects
    )
    assert_layout_legal(tiled2.layout, check_capacity=False)


def test_different_seed_misses():
    cache = TileConfigCache()
    mapped1, _, tiled1 = build_tiled(cache)
    tiled1.apply_changeset(
        flip_first_lut(mapped1), seed=4, preset=EFFORT_PRESETS["fast"]
    )
    mapped2, _, tiled2 = build_tiled(cache)
    r2 = tiled2.apply_changeset(
        flip_first_lut(mapped2), seed=5, preset=EFFORT_PRESETS["fast"]
    )
    assert not r2.cache_hit


def test_stale_changeset_bypasses_cache():
    cache = TileConfigCache()
    mapped1, _, tiled1 = build_tiled(cache)
    tiled1.apply_changeset(
        flip_first_lut(mapped1), seed=4, preset=EFFORT_PRESETS["fast"]
    )
    mapped2, _, tiled2 = build_tiled(cache)
    changes = flip_first_lut(mapped2)
    lookups_before = cache.hits + cache.misses
    # forge a base revision that cannot line up with the manager's
    # last-synced revision: the commit must skip the cache entirely
    changes.base_revision = (tiled2._synced_revision or 0) + 1000
    r2 = tiled2.apply_changeset(
        changes, seed=4, preset=EFFORT_PRESETS["fast"]
    )
    assert not r2.cache_hit
    assert cache.hits + cache.misses == lookups_before
    assert_layout_legal(tiled2.layout, check_capacity=False)


def test_corrupted_entry_is_rejected_and_recomputed():
    cache = TileConfigCache()
    mapped1, _, tiled1 = build_tiled(cache)
    tiled1.apply_changeset(
        flip_first_lut(mapped1), seed=4, preset=EFFORT_PRESETS["fast"]
    )
    # corrupt every stored tile configuration: off-device sites can
    # never pass apply-time verification
    for config in cache._entries.values():
        if config.sites:
            name = next(iter(config.sites))
            config.sites[name] = (999, 999)

    mapped2, _, tiled2 = build_tiled(cache)
    r2 = tiled2.apply_changeset(
        flip_first_lut(mapped2), seed=4, preset=EFFORT_PRESETS["fast"]
    )
    assert not r2.cache_hit
    assert cache.rejected >= 1
    assert_layout_legal(tiled2.layout, check_capacity=False)


def test_whole_design_pnr_replay():
    cache = TileConfigCache()

    def build():
        netlist = make_adder_netlist(8, registered=True)
        mapped = map_to_luts(netlist)
        packed = pack_netlist(mapped)
        device = pick_device(packed.n_clbs, area_overhead=0.5,
                             min_io=len(packed.io_blocks()))
        return packed, device

    packed1, device1 = build()
    layout1 = cached_full_place_and_route(
        packed1, device1, seed=7, preset=EFFORT_PRESETS["fast"],
        strict_routing=False, cache=cache,
    )
    assert cache.stores == 1 and cache.hits == 0

    packed2, device2 = build()
    layout2 = cached_full_place_and_route(
        packed2, device2, seed=7, preset=EFFORT_PRESETS["fast"],
        strict_routing=False, cache=cache,
    )
    assert cache.hits == 1
    by_name1 = {
        packed1.blocks[b].name: s for b, s in layout1.placement.pos.items()
    }
    by_name2 = {
        packed2.blocks[b].name: s for b, s in layout2.placement.pos.items()
    }
    assert by_name1 == by_name2
    assert {packed1.nets[i].name: set(t.edges)
            for i, t in layout1.routes.items()} == {
        packed2.nets[i].name: set(t.edges)
        for i, t in layout2.routes.items()
    }
    assert_layout_legal(layout2, check_capacity=False)


def test_cache_lru_eviction_and_stats():
    cache = TileConfigCache(max_entries=2)
    for i in range(3):
        cache.store(f"k{i}", TileConfig({}, {}, {}))
    assert len(cache) == 2
    assert cache.lookup("k0") is None  # evicted
    assert cache.lookup("k2") is not None
    assert cache.stores == 3
    stats = cache.stats()
    assert stats["hits"] == 1.0 and stats["misses"] == 1.0
    cache.clear()
    assert len(cache) == 0 and cache.hits == 0


# ----------------------------------------------------------------------
# persistence (save/load across processes)
# ----------------------------------------------------------------------

def test_save_load_round_trip(tmp_path):
    cache = TileConfigCache()
    mapped, packed, tiled = build_tiled(cache)
    changes = flip_first_lut(mapped)
    tiled.apply_changeset(changes, seed=5, preset=EFFORT_PRESETS["fast"])
    assert cache.stores > 0
    path = str(tmp_path / "cache.pkl")
    assert cache.save(path) == len(cache)

    fresh = TileConfigCache()
    assert fresh.load(path) == len(cache)
    assert len(fresh) == len(cache)

    # a twin build against the loaded cache replays every configuration
    mapped2, packed2, tiled2 = build_tiled(fresh)
    before = fresh.hits
    changes2 = flip_first_lut(mapped2)
    tiled2.apply_changeset(changes2, seed=5, preset=EFFORT_PRESETS["fast"])
    assert fresh.hits > before
    assert placement_by_name(tiled2) == placement_by_name(tiled)
    assert routes_by_name(tiled2) == routes_by_name(tiled)
    assert_layout_legal(tiled2.layout)


def test_load_missing_file_is_ignored(tmp_path):
    cache = TileConfigCache()
    assert cache.load(str(tmp_path / "nonexistent.pkl")) == 0
    assert len(cache) == 0


def test_load_corrupt_file_is_ignored(tmp_path):
    path = tmp_path / "corrupt.pkl"
    path.write_bytes(b"this is not a pickle at all \x00\xff")
    cache = TileConfigCache()
    assert cache.load(str(path)) == 0
    assert len(cache) == 0


def test_load_truncated_file_is_ignored(tmp_path):
    cache = TileConfigCache()
    cache.store("k", TileConfig({}, {}, {}))
    path = str(tmp_path / "trunc.pkl")
    cache.save(path)
    with open(path, "rb") as fh:
        blob = fh.read()
    with open(path, "wb") as fh:
        fh.write(blob[: len(blob) // 2])
    fresh = TileConfigCache()
    assert fresh.load(path) == 0


def test_load_version_mismatch_is_ignored(tmp_path, monkeypatch):
    import repro.tiling.cache as cache_mod

    cache = TileConfigCache()
    cache.store("k", TileConfig({}, {}, {}))
    path = str(tmp_path / "versioned.pkl")
    cache.save(path)
    monkeypatch.setattr(cache_mod, "CACHE_FORMAT_VERSION", 9999)
    fresh = TileConfigCache()
    assert fresh.load(path) == 0


def test_load_digest_mismatch_is_ignored(tmp_path):
    import pickle

    cache = TileConfigCache()
    cache.store("k", TileConfig({}, {}, {}))
    path = str(tmp_path / "tampered.pkl")
    cache.save(path)
    with open(path, "rb") as fh:
        wrapper = pickle.load(fh)
    wrapper["payload"] = wrapper["payload"] + b"tamper"
    with open(path, "wb") as fh:
        pickle.dump(wrapper, fh)
    fresh = TileConfigCache()
    assert fresh.load(path) == 0

def test_load_wrong_format_is_ignored(tmp_path):
    import pickle

    path = str(tmp_path / "alien.pkl")
    with open(path, "wb") as fh:
        pickle.dump(
            {"format": "some-other-tool", "version": 1,
             "sha256": "", "payload": b""},
            fh,
        )
    fresh = TileConfigCache()
    assert fresh.load(path) == 0
    assert len(fresh) == 0


def test_load_empty_file_is_ignored(tmp_path):
    path = tmp_path / "empty.pkl"
    path.write_bytes(b"")
    fresh = TileConfigCache()
    assert fresh.load(str(path)) == 0
    assert len(fresh) == 0


def test_load_flipped_payload_byte_is_ignored(tmp_path):
    """A single flipped bit inside the payload trips the digest guard."""
    import pickle

    cache = TileConfigCache()
    cache.store("k", TileConfig({"b": (1, 2)}, {}, {}))
    path = str(tmp_path / "flipped.pkl")
    cache.save(path)
    with open(path, "rb") as fh:
        wrapper = pickle.load(fh)
    payload = bytearray(wrapper["payload"])
    payload[len(payload) // 2] ^= 0x40
    wrapper["payload"] = bytes(payload)
    with open(path, "wb") as fh:
        pickle.dump(wrapper, fh)
    fresh = TileConfigCache()
    assert fresh.load(path) == 0
    assert len(fresh) == 0


def test_verify_cache_file(tmp_path):
    from repro.tiling.cache import verify_cache_file

    path = str(tmp_path / "cache.pkl")
    assert verify_cache_file(path) == 0  # missing
    cache = TileConfigCache()
    cache.store("a", TileConfig({}, {}, {}))
    cache.store("b", TileConfig({}, {}, {}))
    cache.save(path)
    assert verify_cache_file(path) == 2
    with open(path, "wb") as fh:
        fh.write(b"garbage")
    assert verify_cache_file(path) == 0


def test_concurrent_save_load_store_stress(tmp_path):
    """Campaign workers hammering one cache + disk file lose nothing."""
    import os
    import threading

    path = str(tmp_path / "stress.pkl")
    cache = TileConfigCache(max_entries=4096)
    errors = []

    def writer(worker):
        try:
            for n in range(25):
                cache.store(f"w{worker}.k{n}", TileConfig({}, {}, {}))
                if n % 5 == 0:
                    cache.save(path)
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    def reader():
        try:
            for _ in range(25):
                other = TileConfigCache(max_entries=4096)
                other.load(path)
                cache.load(path)
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    threads = [
        threading.Thread(target=writer, args=(w,)) for w in range(4)
    ] + [threading.Thread(target=reader) for _ in range(2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    # every stored key survived in memory (loads only ever merge)
    assert len(cache) == 4 * 25
    cache.save(path)
    fresh = TileConfigCache(max_entries=4096)
    assert fresh.load(path) == 4 * 25
    # atomic save leaves no temp droppings behind
    assert [f for f in os.listdir(tmp_path) if ".tmp" in f] == []


# ----------------------------------------------------------------------
# content-addressed on-disk store
# ----------------------------------------------------------------------

def test_store_address_and_roundtrip(tmp_path):
    from repro.tiling.cache import TileConfigStore

    store = TileConfigStore(str(tmp_path / "store"))
    hexkey = "ab" * 32
    assert store.address(hexkey) == hexkey  # digest keys address as-is
    assert store.address("plain-key") != "plain-key"
    assert len(store.address("plain-key")) == 64

    config = TileConfig({"b": (1, 2)}, {}, {})
    assert store.write_entry("plain-key", config) is True
    # second write of the same digest is a no-op, not a rewrite
    assert store.write_entry("plain-key", config) is False
    assert len(store) == 1
    key, loaded = store.read_entry(store.entry_path("plain-key"))
    assert key == "plain-key"
    assert loaded.sites == config.sites


def test_store_merge_quarantines_damage(tmp_path):
    from repro.tiling.cache import TileConfigStore

    store = TileConfigStore(str(tmp_path / "store"))
    store.write_entry("good", TileConfig({}, {}, {}))
    store.write_entry("bad", TileConfig({}, {}, {}))
    with open(store.entry_path("bad"), "wb") as fh:
        fh.write(b"garbage")
    cache = TileConfigCache()
    assert store.merge_into(cache) == 1
    assert cache.lookup("good") is not None
    # loads must not skew campaign stats: merge bumps no counters
    assert cache.stores == 0
    # the damaged entry moved aside and stays out of future loads
    assert len(store.quarantined_files()) == 1
    assert len(store) == 1
    assert store.merge_into(TileConfigCache()) == 1


def test_store_write_back_merges_across_workers(tmp_path):
    from repro.tiling.cache import TileConfigStore

    root = str(tmp_path / "store")
    a = TileConfigCache()
    a.store("k1", TileConfig({}, {}, {}))
    a.store("k2", TileConfig({}, {}, {}))
    b = TileConfigCache()
    b.store("k2", TileConfig({}, {}, {}))
    b.store("k3", TileConfig({}, {}, {}))
    assert TileConfigStore(root).write_back(a) == 2
    # the overlapping digest is already present: only k3 is new
    assert TileConfigStore(root).write_back(b) == 1
    merged = TileConfigCache()
    assert TileConfigStore(root).merge_into(merged) == 3


def test_store_crash_leftovers_are_swept(tmp_path):
    import os

    from repro.tiling.cache import TileConfigStore

    store = TileConfigStore(str(tmp_path / "store"))
    store.write_entry("k", TileConfig({}, {}, {}))
    shard = os.path.dirname(store.entry_path("k"))
    # a worker killed mid-write leaves a temp file, never an entry
    with open(os.path.join(shard, "dead.pkl.tmp.999.1"), "wb") as fh:
        fh.write(b"partial")
    cache = TileConfigCache()
    assert store.merge_into(cache) == 1
    assert not any(".tmp." in n for n in os.listdir(shard))


def test_verify_cache_file_accepts_store_dir_and_entry(tmp_path):
    from repro.tiling.cache import TileConfigStore, verify_cache_file

    store = TileConfigStore(str(tmp_path / "store"))
    store.write_entry("k1", TileConfig({}, {}, {}))
    store.write_entry("k2", TileConfig({}, {}, {}))
    assert verify_cache_file(store.root) == 2
    assert verify_cache_file(store.entry_path("k1")) == 1
    with open(store.entry_path("k2"), "wb") as fh:
        fh.write(b"garbage")
    assert verify_cache_file(store.root) == 1


def test_verify_cache_store_reports_damage_read_only(tmp_path):
    from repro.tiling.cache import (
        TileConfigStore,
        cache_file_path,
        verify_cache_store,
    )

    cache_dir = str(tmp_path)
    store = TileConfigStore(cache_file_path(cache_dir))
    store.write_entry("ok", TileConfig({}, {}, {}))
    store.write_entry("broken", TileConfig({}, {}, {}))
    with open(store.entry_path("broken"), "wb") as fh:
        fh.write(b"garbage")
    report = verify_cache_store(cache_dir)
    assert report["valid"] == 1
    assert report["corrupt"] == [store.entry_path("broken")]
    assert report["quarantined"] == []
    assert report["legacy_entries"] == 0
    # read-only: the damaged file is still in place afterwards
    assert len(store) == 2


def test_load_tile_cache_migrates_legacy_pickle(tmp_path):
    from repro.tiling.cache import (
        TileConfigStore,
        cache_file_path,
        legacy_cache_file_path,
        load_tile_cache,
        save_tile_cache,
    )

    cache_dir = str(tmp_path)
    old = TileConfigCache()
    old.store("legacy-key", TileConfig({}, {}, {}))
    old.save(legacy_cache_file_path(cache_dir))
    cache = load_tile_cache(cache_dir)
    assert cache.lookup("legacy-key") is not None
    save_tile_cache(cache, cache_dir)
    # the migrated entry now lives in the content-addressed store
    fresh = TileConfigCache()
    assert TileConfigStore(cache_file_path(cache_dir)).merge_into(fresh) == 1
    assert fresh.lookup("legacy-key") is not None
