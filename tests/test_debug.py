"""Debug package: injection, test generation, instrumentation, detection,
localization, correction, and the full session."""

import pytest

from repro.debug import (
    ERROR_KINDS,
    EmulationDebugSession,
    add_control_point,
    add_observation_point,
    apply_correction,
    compare_runs,
    exhaustive_patterns,
    inject_error,
    random_patterns,
    random_stimulus,
)
from repro.debug.instrument import test_logic_block as make_test_logic_block
from repro.errors import DebugFlowError
from repro.netlist import check_netlist, simulate_words
from repro.netlist.simulate import SequentialSimulator
from repro.synth import map_to_luts, pack_netlist
from tests.conftest import make_adder_netlist


def mapped_adder(width=5, registered=True):
    return map_to_luts(make_adder_netlist(width, registered=registered))


def mapped_random(seed=0):
    """Random logic with MUX cells — has asymmetric LUTs for input_swap."""
    from repro.generators.random_logic import random_sequential_netlist

    return map_to_luts(
        random_sequential_netlist(
            f"dbg{seed}", n_inputs=6, n_outputs=5, n_ffs=4, n_gates=30,
            seed=seed,
        )
    )


class TestInjection:
    @pytest.mark.parametrize("kind", ERROR_KINDS)
    def test_injection_changes_behaviour_or_structure(self, kind):
        golden = mapped_random()
        dut = golden.copy()
        record = inject_error(dut, kind, seed=3)
        check_netlist(dut)
        assert record.kind == kind
        assert dut.has_instance(record.instance)
        # structure or function must differ from golden
        differs = False
        for inst in dut.instances():
            ginst = golden.instance(inst.name)
            if (
                inst.params != ginst.params
                or [n.name for n in inst.inputs]
                != [n.name for n in ginst.inputs]
            ):
                differs = True
        assert differs

    @pytest.mark.parametrize("kind", ERROR_KINDS)
    def test_correction_restores_function(self, kind):
        golden = mapped_random(seed=1)
        dut = golden.copy()
        record = inject_error(dut, kind, seed=5)
        apply_correction(dut, record)
        check_netlist(dut)
        ins = random_patterns(golden, 64, seed=9)
        # compare sequentially (designs have registers)
        sim_g = SequentialSimulator(golden)
        sim_d = SequentialSimulator(dut)
        for _ in range(4):
            assert sim_d.step(ins, 64) == sim_g.step(ins, 64)

    def test_unknown_kind_rejected(self):
        with pytest.raises(DebugFlowError):
            inject_error(mapped_adder(), "gamma_ray", seed=0)


class TestTestgen:
    def test_random_patterns_cover_all_inputs(self):
        n = mapped_adder()
        pats = random_patterns(n, 16, seed=1)
        names = {pi.name.split(":", 1)[-1] for pi in n.primary_inputs()}
        assert set(pats) == names

    def test_exhaustive_patterns(self):
        n = mapped_adder(2, registered=False)
        words, count = exhaustive_patterns(n)
        assert count == 1 << len(words)
        # every input column is a distinct mask pattern
        assert len(set(words.values())) == len(words)

    def test_exhaustive_cap(self):
        n = mapped_adder(12, registered=False)
        with pytest.raises(DebugFlowError):
            exhaustive_patterns(n, max_inputs=8)

    def test_stimulus_shape(self):
        n = mapped_adder()
        stim = random_stimulus(n, 5, 8, seed=2)
        assert len(stim) == 5
        assert all(len(cycle) == len(n.primary_inputs()) for cycle in stim)


class TestInstrumentation:
    def test_observation_point_exports_flag(self):
        n = mapped_adder()
        watch = [n.primary_outputs()[0].inputs[0].name]
        changes, outputs = add_observation_point(n, watch, "w0")
        check_netlist(n)
        assert "obs_probe_w0" in outputs
        assert "obs_flag_w0" in outputs
        assert changes.new_instances

    def test_sticky_flag_latches(self):
        n = mapped_adder(3, registered=False)
        target = n.primary_outputs()[0].inputs[0].name
        add_observation_point(n, [target], "w", sticky=True)
        sim = SequentialSimulator(n)
        base = {f"a[{i}]": 0 for i in range(3)} | {
            f"b[{i}]": 0 for i in range(3)
        }
        pulse = dict(base) | {"a[0]": 1}
        sim.step(pulse)        # raises parity pulse
        out = sim.step(base)   # flag must remain set
        assert out["obs_flag_w"] == 1

    def test_control_point_forces_value(self):
        n = mapped_adder(3, registered=False)
        target_net = n.primary_outputs()[0].inputs[0].name
        changes, inputs = add_control_point(n, target_net, "c")
        check_netlist(n)
        base = {f"a[{i}]": 0 for i in range(3)}
        base |= {f"b[{i}]": 0 for i in range(3)}
        # un-forced: s[0] = 0; forced: s[0] = 1
        free = simulate_words(n, base | {"ctl_en_c": 0, "ctl_val_c": 0}, 1)
        forced = simulate_words(n, base | {"ctl_en_c": 1, "ctl_val_c": 1}, 1)
        assert free["s[0]"] == 0
        assert forced["s[0]"] == 1

    def test_test_logic_block_size(self):
        n = mapped_adder()
        anchor = n.primary_outputs()[0].inputs[0].name
        changes = make_test_logic_block(n, n_clbs=5, attach_net=anchor, name="t")
        check_netlist(n)
        packed = pack_netlist(n)
        # the new cells pack to exactly the requested CLB count
        from repro.synth.pack import BlockKind

        new_clbs = {
            packed.block_of_instance[i]
            for i in changes.new_instances
            if not i.startswith("po:")
        }
        assert len(new_clbs) == 5


class TestDetection:
    def test_compare_runs_finds_mismatch(self):
        a = [{"y": 0b01, "z": 0}]
        b = [{"y": 0b11, "z": 0}]
        mm = compare_runs(a, b)
        assert len(mm) == 1
        assert mm[0].output == "y"
        assert mm[0].diff_mask == 0b10
        assert mm[0].n_patterns_failing == 1

    def test_compare_ignores_one_sided_outputs(self):
        a = [{"y": 1, "obs_flag_x": 1}]
        b = [{"y": 1}]
        assert compare_runs(a, b) == []


class TestSession:
    @pytest.mark.parametrize("strategy", ["tiled", "quick_eco", "incremental"])
    def test_full_loop_fixes_error(self, strategy):
        from repro.pnr.effort import EFFORT_PRESETS

        packed = pack_netlist(mapped_adder(6))
        session = EmulationDebugSession(
            packed, strategy=strategy, seed=11,
            preset=EFFORT_PRESETS["fast"], n_cycles=5, n_patterns=64,
        )
        from repro.tiling.partition import TilingOptions

        report = session.run(error_kind="output_invert", error_seed=2)
        assert report.detected
        assert report.fixed
        assert report.total_effort.work_units > 0

    def test_tiled_session_localizes(self):
        from repro.pnr.effort import EFFORT_PRESETS

        packed = pack_netlist(mapped_adder(6))
        session = EmulationDebugSession(
            packed, strategy="tiled", seed=13,
            preset=EFFORT_PRESETS["fast"], n_cycles=5, n_patterns=64,
        )
        report = session.run(error_kind="wrong_function", error_seed=7)
        assert report.detected and report.fixed
        assert report.localization is not None
        assert report.localization.candidates
