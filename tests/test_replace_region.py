"""replace_region with confine_routing: the locked-interface invariants.

The tiling manager's whole correctness story rests on three properties
of the region-confined re-place-and-route:

* routes of nets that do not touch the region are byte-identical
  before and after;
* boundary-crossing nets keep their outside fragments and reconnect at
  the old interface cells;
* the resulting layout passes a full legality check (placement
  complete, every net connected over adjacent cells, channel usage
  bookkeeping consistent and within capacity).
"""

import pytest

from repro.arch import pick_device
from repro.geometry import Rect
from repro.pnr import EFFORT_PRESETS, full_place_and_route, replace_region
from repro.pnr.placer import place_design
from tests.conftest import fresh_packed_design


def assert_layout_legal(layout, check_capacity: bool = True) -> None:
    from repro.pnr.flow import layout_legality_errors

    errors = layout_legality_errors(layout, check_capacity=check_capacity)
    assert not errors, "; ".join(errors)


def confined_context():
    """A routed design plus a region holding some (not all) CLBs."""
    packed = fresh_packed_design(width=10)
    device = pick_device(
        packed.n_clbs, area_overhead=1.0,
        min_io=len(packed.io_blocks()), channel_width=48,
    )
    layout = full_place_and_route(
        packed, device, seed=3, preset=EFFORT_PRESETS["fast"],
    )
    region = Rect(0, 0, device.nx - 1, device.ny // 2)
    movable = set(layout.placement.blocks_in_region(region))
    assert movable and len(movable) < packed.n_clbs
    return packed, device, layout, region, movable


def test_untouched_routes_byte_identical():
    packed, device, layout, region, movable = confined_context()
    untouched = {
        net.index
        for net in packed.nets.values()
        if net.driver not in movable
        and not any(s in movable for s in net.sinks)
    }
    before = {
        idx: (set(layout.routes[idx].cells), set(layout.routes[idx].edges),
              dict(layout.routes[idx].sink_hops))
        for idx in untouched
    }
    replace_region(
        layout, movable, [region], seed=5,
        preset=EFFORT_PRESETS["fast"], confine_routing=True,
    )
    for idx, (cells, edges, hops) in before.items():
        tree = layout.routes[idx]
        assert set(tree.cells) == cells
        assert set(tree.edges) == edges
        assert dict(tree.sink_hops) == hops


def test_crossing_nets_reconnect_at_old_interface():
    packed, device, layout, region, movable = confined_context()

    def inside(cell):
        return region.contains(*cell)

    affected = {
        net.index for net in packed.nets_touching_blocks(movable)
    }
    old_outside = {}
    for idx in affected:
        tree = layout.routes.get(idx)
        if tree is None:
            continue
        outside = {
            e for e in tree.edges if not (inside(e[0]) and inside(e[1]))
        }
        if outside and any(inside(c) for c in tree.cells):
            old_outside[idx] = outside
    assert old_outside, "test design produced no boundary-crossing nets"

    replace_region(
        layout, movable, [region], seed=5,
        preset=EFFORT_PRESETS["fast"], confine_routing=True,
    )
    for idx, outside in old_outside.items():
        tree = layout.routes[idx]
        # the outside fragment survives byte-for-byte ...
        assert outside <= set(tree.edges), (
            f"net {idx} lost its locked outside fragment"
        )
        # ... and the interface cells (outside-fragment endpoints inside
        # the region) are part of the rebuilt tree
        anchors = {
            c for e in outside for c in e if inside(c)
        }
        assert anchors <= set(tree.cells)


def test_full_legality_after_confined_replace():
    packed, device, layout, region, movable = confined_context()
    replace_region(
        layout, movable, [region], seed=5,
        preset=EFFORT_PRESETS["fast"], confine_routing=True,
    )
    for block in movable:
        assert region.contains(*layout.placement.site_of(block))
    assert_layout_legal(layout)


def test_legality_with_multiple_regions():
    packed, device, layout, _, _ = confined_context()
    r1 = Rect(0, 0, device.nx // 2, device.ny // 2)
    r2 = Rect(0, device.ny // 2 + 1, device.nx // 2, device.ny - 1)
    movable = set(layout.placement.blocks_in_region(r1)) | set(
        layout.placement.blocks_in_region(r2)
    )
    if not movable:
        pytest.skip("no blocks in the chosen regions")
    replace_region(
        layout, movable, [r1, r2], seed=9,
        preset=EFFORT_PRESETS["fast"], confine_routing=True,
    )
    assert_layout_legal(layout)
