"""Tiling: geometry planning, assignment, refinement, Tile accounting."""

import pytest

from repro.arch import custom_device, pick_device
from repro.errors import TilingError
from repro.geometry import Rect
from repro.pnr import EFFORT_PRESETS, full_place_and_route
from repro.tiling import (
    Tile,
    TilingOptions,
    assign_blocks_to_tiles,
    plan_tile_grid,
    refine_boundaries,
)
from repro.tiling.partition import count_inter_tile_nets
from tests.conftest import fresh_packed_design


class TestOptions:
    def test_exactly_one_granularity(self):
        with pytest.raises(TilingError):
            TilingOptions().resolve_n_tiles(100)
        with pytest.raises(TilingError):
            TilingOptions(n_tiles=4, tile_clbs=10).resolve_n_tiles(100)

    def test_resolution_modes(self):
        assert TilingOptions(n_tiles=8).resolve_n_tiles(100) == 8
        assert TilingOptions(tile_clbs=25).resolve_n_tiles(100) == 4
        assert TilingOptions(tile_fraction=0.25).resolve_n_tiles(100) == 4


class TestPlanGrid:
    def test_covers_needed_area(self):
        device = custom_device(20, 20)
        options = TilingOptions(n_tiles=10, area_overhead=0.2)
        rects = plan_tile_grid(100, device, options)
        assert len(rects) == 10
        total = sum(r.area for r in rects)
        assert total >= 120  # 100 * 1.2

    def test_overhead_near_request(self):
        device = custom_device(30, 30)
        options = TilingOptions(n_tiles=10, area_overhead=0.2)
        rects = plan_tile_grid(200, device, options)
        total = sum(r.area for r in rects)
        overhead = total / 200 - 1
        assert 0.18 <= overhead <= 0.35

    def test_no_overlap(self):
        device = custom_device(20, 20)
        rects = plan_tile_grid(100, device, TilingOptions(n_tiles=9))
        for i, a in enumerate(rects):
            for b in rects[i + 1:]:
                assert not a.overlaps(b)

    def test_prime_tile_count(self):
        device = custom_device(20, 20)
        rects = plan_tile_grid(120, device, TilingOptions(n_tiles=7))
        assert len(rects) == 7

    def test_min_side_enforced(self):
        device = custom_device(10, 10)
        with pytest.raises(TilingError):
            plan_tile_grid(60, device, TilingOptions(n_tiles=40))

    def test_device_too_small(self):
        device = custom_device(5, 5)
        with pytest.raises(TilingError):
            plan_tile_grid(100, device, TilingOptions(n_tiles=4))

    def test_stays_on_device(self):
        device = custom_device(12, 12)
        rects = plan_tile_grid(100, device, TilingOptions(n_tiles=6))
        for r in rects:
            assert device.clb_region.contains_rect(r)


class TestTile:
    def test_slack_accounting(self):
        t = Tile(0, Rect(0, 0, 3, 3), {1, 2, 3})
        assert t.capacity == 16
        assert t.used == 3
        assert t.slack == 13

    def test_neighbors(self):
        tiles = [
            Tile(0, Rect(0, 0, 1, 1), set()),
            Tile(1, Rect(2, 0, 3, 1), set()),
            Tile(2, Rect(5, 0, 6, 1), set()),
        ]
        assert tiles[0].neighbors(tiles) == [1]
        assert tiles[2].neighbors(tiles) == []


@pytest.fixture(scope="module")
def assigned_ctx():
    packed = fresh_packed_design(width=10)
    device = pick_device(packed.n_clbs, area_overhead=0.6,
                         min_io=len(packed.io_blocks()))
    layout = full_place_and_route(
        packed, device, seed=3, preset=EFFORT_PRESETS["fast"],
    )
    rects = plan_tile_grid(
        packed.n_clbs, device, TilingOptions(n_tiles=4, area_overhead=0.3)
    )
    tiles = assign_blocks_to_tiles(packed, layout.placement, rects)
    return packed, device, layout, tiles


class TestAssignment:
    def test_every_block_assigned_once(self, assigned_ctx):
        packed, device, layout, tiles = assigned_ctx
        seen = [b for t in tiles for b in t.blocks]
        assert len(seen) == len(set(seen)) == packed.n_clbs

    def test_no_tile_overflows(self, assigned_ctx):
        packed, device, layout, tiles = assigned_ctx
        for t in tiles:
            assert t.used <= t.capacity

    def test_refinement_does_not_increase_cut(self, assigned_ctx):
        packed, device, layout, tiles = assigned_ctx
        fresh = [Tile(t.index, t.rect, set(t.blocks)) for t in tiles]

        def cut(tile_list):
            tile_of = {}
            for t in tile_list:
                for b in t.blocks:
                    tile_of[b] = t.index
            return count_inter_tile_nets(packed, tile_of)

        before = cut(fresh)
        refine_boundaries(packed, fresh, passes=2)
        after = cut(fresh)
        assert after <= before

    def test_refinement_preserves_block_count(self, assigned_ctx):
        packed, device, layout, tiles = assigned_ctx
        fresh = [Tile(t.index, t.rect, set(t.blocks)) for t in tiles]
        refine_boundaries(packed, fresh, passes=2)
        seen = [b for t in fresh for b in t.blocks]
        assert len(seen) == len(set(seen)) == packed.n_clbs
