"""Resilience substrate: failure isolation, budgets, degradation,
and the deterministic chaos harness — end to end through the facade.

The non-negotiable property: a spec with no budgets, no retries, and no
chaos runs the exact historical path (bit-identical trajectories), and
every injected infrastructure failure yields a *structured*
``failed``/``timeout``/``degraded`` result — never a crashed campaign.
"""

import json
import time

import pytest

from repro.api.campaign import CampaignResult, CampaignRunner, expand_matrix
from repro.api.pipeline import run_spec
from repro.api.result import RunResult
from repro.api.spec import RunSpec, SpecError
from repro.errors import ChaosError, DeadlineExceeded
from repro.resilience.budget import (
    Deadline,
    active_deadline,
    backoff_seconds,
    check_deadline,
    deadline_scope,
)
from repro.resilience.chaos import (
    ChaosConfig,
    ChaosFault,
    ChaosInjector,
    ReplayRejectingCache,
    corrupt_cache_file,
)
from repro.resilience.degrade import next_degraded
from repro.resilience.failure import RUN_STATUSES, RunFailure
from repro.tiling.cache import (
    TileConfigCache,
    cache_file_path,
    verify_cache_file,
)

FAST = dict(design="9sym", preset="fast", max_probes=6, cache="off")


# ----------------------------------------------------------------------
# RunFailure
# ----------------------------------------------------------------------

def test_run_failure_from_exception_and_round_trip():
    try:
        raise RuntimeError("x" * 600)
    except RuntimeError as exc:
        failure = RunFailure.from_exception(
            exc, stage="localize", elapsed_s=1.25, attempt=2
        )
    assert failure.stage == "localize"
    assert failure.error == "RuntimeError"
    assert failure.message.endswith("...")
    assert len(failure.message) == 503  # bounded + ellipsis
    assert len(failure.traceback_digest) == 12
    assert failure.attempt == 2
    assert not failure.chaos
    again = RunFailure.from_dict(json.loads(json.dumps(failure.to_dict())))
    assert again == failure
    with pytest.raises(ValueError, match="unknown failure fields"):
        RunFailure.from_dict({"stage": "x", "bogus": 1})


def test_run_failure_marks_chaos_and_deadline_stage():
    failure = RunFailure.from_exception(ChaosError("boom"), stage="detect")
    assert failure.chaos
    exc = DeadlineExceeded(where="sat.solve", label="run",
                           seconds=1.0, elapsed=1.5)
    failure = RunFailure.from_exception(exc)  # stage from exc.where
    assert failure.stage == "sat.solve"


# ----------------------------------------------------------------------
# budgets
# ----------------------------------------------------------------------

def test_deadline_checks_and_nesting():
    assert active_deadline() is None
    check_deadline("anywhere")  # no armed budget: free no-op
    outer = Deadline(60.0, label="run")
    inner = Deadline(0.001, label="stage:localize")
    with deadline_scope(outer):
        assert active_deadline() is outer
        with deadline_scope(inner):
            assert active_deadline() is inner  # tightest wins
            time.sleep(0.002)
            with pytest.raises(DeadlineExceeded) as err:
                check_deadline("probe")
            assert err.value.label == "stage:localize"
            assert err.value.where == "probe"
        check_deadline("after")  # inner popped; outer still has 60s
    assert active_deadline() is None


def test_deadline_rejects_bad_seconds():
    with pytest.raises(ValueError):
        Deadline(0)
    with pytest.raises(ValueError):
        Deadline(-1.0)


def test_backoff_is_seed_stable_and_bounded():
    assert backoff_seconds(1, seed=7, base=0.0) == 0.0  # default: no sleep
    a = [backoff_seconds(n, seed=7, base=0.1) for n in (1, 2, 3, 4, 5)]
    b = [backoff_seconds(n, seed=7, base=0.1) for n in (1, 2, 3, 4, 5)]
    assert a == b  # deterministic per (seed, attempt)
    assert all(0 < v <= 2.0 for v in a)  # capped
    assert backoff_seconds(1, seed=8, base=0.1) != a[0]


# ----------------------------------------------------------------------
# degradation ladder
# ----------------------------------------------------------------------

def test_ladder_prefers_stage_matched_rung():
    spec = RunSpec(strategy="sat", correction="cegis", engine="compiled")
    degraded, note = next_degraded(spec, "localize")
    assert (note["field"], note["to"]) == ("strategy", "tiled")
    assert degraded.strategy == "tiled"
    degraded, note = next_degraded(spec, "correct")
    assert (note["field"], note["to"]) == ("correction", "oracle")


def test_ladder_falls_back_in_order_and_bottoms_out():
    spec = RunSpec(strategy="tiled", correction="oracle",
                   engine="compiled", cache="shared")
    degraded, note = next_degraded(spec, "setup")
    assert (note["field"], note["to"]) == ("cache", "off")
    degraded2, note2 = next_degraded(degraded, "verify")
    assert (note2["field"], note2["to"]) == ("engine", "interpreted")
    bottom = degraded2.replaced(cache="off")
    assert next_degraded(bottom, "verify") is None


# ----------------------------------------------------------------------
# chaos config
# ----------------------------------------------------------------------

def test_chaos_coerce_accepts_every_shorthand():
    bare = ChaosConfig.coerce({"kind": "exception", "stage": "detect"})
    as_list = ChaosConfig.coerce([{"kind": "exception", "stage": "detect"}])
    full = ChaosConfig.coerce(
        {"faults": [{"kind": "exception", "stage": "detect"}], "seed": 0}
    )
    assert bare == as_list == full
    assert ChaosConfig.coerce(None) is None
    assert ChaosConfig.coerce(full) is full


@pytest.mark.parametrize("bad", [
    "nope",
    {"faults": []},
    {"faults": [{"kind": "meteor"}]},
    {"faults": [{"kind": "hang", "stage": "nowhere"}]},
    {"faults": [{"kind": "hang", "hang_s": -1}]},
    {"faults": [{"kind": "exception", "probability": 2}]},
    {"faults": [{"kind": "exception", "match": {"planet": [1]}}]},
    {"faults": [{"kind": "exception", "match": {"seed": 3}}]},
    {"faults": [{"kind": "exception", "fires": 0}]},
    {"faults": [{"kind": "exception", "surprise": 1}]},
    {"faults": [{"kind": "exception"}], "seed": "x"},
    {"faults": [{"kind": "exception"}], "extra": 1},
])
def test_chaos_coerce_rejects_malformed(bad):
    with pytest.raises(SpecError):
        ChaosConfig.coerce(bad)


def test_chaos_selection_is_deterministic():
    cfg = ChaosConfig.coerce({
        "faults": [
            {"kind": "exception", "match": {"error_seed": [2]}},
            {"kind": "hang", "probability": 0.5},
        ],
        "seed": 11,
    })
    specs = [RunSpec(**FAST, error_seed=s) for s in (1, 2, 3)]
    picks = [tuple(f.kind for f in cfg.select(s)) for s in specs]
    assert picks == [tuple(f.kind for f in cfg.select(s)) for s in specs]
    assert all(
        ("exception" in p) == (s.error_seed == 2)
        for p, s in zip(picks, specs)
    )


def test_chaos_injector_fires_budget():
    fault = ChaosFault.from_dict({"kind": "exception", "stage": "localize"})
    injector = ChaosInjector([fault])
    injector.stage_event("detect")  # wrong stage: nothing
    with pytest.raises(ChaosError):
        injector.stage_event("localize")
    injector.stage_event("localize")  # fires=1 budget spent: clean
    assert injector.fired == [("localize", "exception")]


def test_replay_rejecting_cache_denies_hits():
    inner = TileConfigCache()
    inner.store("k", object())
    proxy = ReplayRejectingCache(inner)
    assert proxy.lookup("k") is None
    assert proxy.lookup("missing") is None
    assert proxy.denied == 1
    assert inner.rejected == 1 and inner.misses == 2 and inner.hits == 0
    proxy.store("k2", object())  # stores pass through
    assert len(proxy) == 2


def test_corrupt_cache_file_is_deterministic(tmp_path):
    path = str(tmp_path / "f.bin")
    assert not corrupt_cache_file(path, "cache_corrupt")  # missing: no-op
    blob = bytes(range(64))
    for kind in ("cache_truncate", "cache_corrupt"):
        damaged = []
        for _ in range(2):
            with open(path, "wb") as fh:
                fh.write(blob)
            assert corrupt_cache_file(path, kind, seed=5)
            with open(path, "rb") as fh:
                damaged.append(fh.read())
        assert damaged[0] == damaged[1] != blob
    with pytest.raises(ValueError):
        corrupt_cache_file(path, "exception")


# ----------------------------------------------------------------------
# spec validation
# ----------------------------------------------------------------------

@pytest.mark.parametrize("overrides", [
    {"timeout_s": 0},
    {"timeout_s": "soon"},
    {"stage_timeouts": {"nowhere": 1.0}},
    {"stage_timeouts": {"localize": 0}},
    {"stage_timeouts": 5},
    {"retries": -1},
    {"retries": 1.5},
    {"retry_backoff_s": -0.1},
    {"chaos": {"faults": [{"kind": "meteor"}]}},
])
def test_spec_rejects_bad_resilience_fields(overrides):
    with pytest.raises(SpecError):
        RunSpec(**overrides)


def test_spec_round_trips_resilience_fields():
    spec = RunSpec(
        timeout_s=5.0, stage_timeouts={"localize": 2.0}, retries=2,
        retry_backoff_s=0.01,
        chaos={"faults": [{"kind": "exception"}], "seed": 3},
    )
    again = RunSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
    assert again == spec


# ----------------------------------------------------------------------
# run_spec: the resilient executor
# ----------------------------------------------------------------------

def test_chaos_exception_yields_structured_failed_result():
    spec = RunSpec(**FAST, chaos={"kind": "exception", "stage": "localize"})
    result = run_spec(spec)
    assert result.status == "failed"
    assert not result.completed
    assert result.attempts == 1
    [failure] = result.failures
    assert failure["stage"] == "localize"
    assert failure["error"] == "ChaosError"
    assert failure["chaos"] is True
    # detection ran before the injected stage: partial results survive
    assert "detect" in result.timings["stages"]
    again = RunResult.from_json(result.to_json())
    assert again.to_dict() == result.to_dict()


def test_retry_steps_down_the_ladder_to_degraded():
    spec = RunSpec(**FAST, strategy="sat", retries=1,
                   chaos={"kind": "exception", "stage": "localize"})
    result = run_spec(spec)
    assert result.status == "degraded"
    assert result.completed
    assert result.attempts == 2
    [failure] = result.failures
    assert failure["attempt"] == 1 and failure["chaos"] is True
    [note] = result.degradations
    assert note["field"] == "strategy"
    assert (note["from"], note["to"]) == ("sat", "tiled")
    # the retry really ran the fallback strategy
    assert result.strategy == "tiled"
    baseline = run_spec(RunSpec(**FAST, strategy="tiled"))
    assert result.trajectory_key() == baseline.trajectory_key()


def test_chaos_hang_trips_run_deadline_with_partial_results():
    spec = RunSpec(
        **FAST, timeout_s=0.5,
        chaos={"kind": "hang", "stage": "localize", "hang_s": 30.0},
    )
    t0 = time.perf_counter()
    result = run_spec(spec)
    assert time.perf_counter() - t0 < 10.0  # the hang did not run out
    assert result.status == "timeout"
    assert result.attempts == 1  # a budget is a budget: no retry
    [failure] = result.failures
    assert failure["error"] == "DeadlineExceeded"
    assert failure["stage"] == "localize"
    # the detect stage completed before the hang: partial result kept
    assert "detect" in result.timings["stages"]


def test_stage_timeout_names_the_stage():
    spec = RunSpec(
        **FAST, stage_timeouts={"localize": 0.2},
        chaos={"kind": "hang", "stage": "localize", "hang_s": 30.0},
    )
    result = run_spec(spec)
    assert result.status == "timeout"
    [failure] = result.failures
    assert "stage:localize" in failure["message"]


def test_replay_reject_forces_fresh_pnr_degraded(tmp_path):
    shared = TileConfigCache()
    base = RunSpec(design="9sym", preset="fast", max_probes=6,
                   cache="shared")
    warm = run_spec(base, tile_cache=shared)  # warm the cache
    assert warm.status == "ok"
    assert shared.stores > 0
    denied = run_spec(
        base.replaced(chaos={"kind": "replay_reject"}), tile_cache=shared
    )
    assert denied.status == "degraded"
    [note] = denied.degradations
    assert note["field"] == "cache_replay"
    assert note["denied"] > 0
    # denial only slows the run; the debug outcome is bit-identical
    assert denied.trajectory_key() == warm.trajectory_key()
    assert denied.candidates == warm.candidates


def test_cache_corrupt_chaos_cold_starts_and_rewrites(tmp_path):
    cache_dir = str(tmp_path / "cache")
    base = RunSpec(design="9sym", preset="fast", max_probes=6,
                   cache="private", cache_dir=cache_dir)
    first = run_spec(base)
    assert first.status == "ok"
    entries = verify_cache_file(cache_file_path(cache_dir))
    assert entries > 0
    second = run_spec(base.replaced(chaos={"kind": "cache_truncate"}))
    assert second.status == "degraded"
    [note] = second.degradations
    assert note["field"] == "cache_file" and note["chaos"] == "cache_truncate"
    # the run cold-started, re-computed, and re-persisted a valid file
    assert verify_cache_file(cache_file_path(cache_dir)) == entries


def test_plain_run_unaffected_by_resilience_machinery():
    plain = run_spec(RunSpec(**FAST))
    budgeted = run_spec(RunSpec(**FAST, timeout_s=300.0, retries=2))
    assert plain.status == budgeted.status == "ok"
    assert plain.failures == budgeted.failures == []
    assert plain.trajectory_key() == budgeted.trajectory_key()
    assert plain.candidates == budgeted.candidates


# ----------------------------------------------------------------------
# campaigns
# ----------------------------------------------------------------------

CHAOS_ONE_RUN = {
    "faults": [
        {"kind": "exception", "stage": "localize",
         "match": {"error_seed": [2]}},
    ],
}


def _campaign_specs(**extra):
    base = RunSpec(design="9sym", preset="fast", max_probes=6,
                   cache="private", **extra)
    return expand_matrix(base, error_seeds=[1, 2, 3])


def test_campaign_isolates_failed_run(tmp_path):
    cache_dir = str(tmp_path / "cache")
    runner = CampaignRunner(workers=2, cache_dir=cache_dir)
    campaign = runner.run(
        _campaign_specs(chaos=CHAOS_ONE_RUN, cache_dir=cache_dir)
    )
    assert [r.status for r in campaign.results] == ["ok", "failed", "ok"]
    assert campaign.n_failed == 1
    assert not campaign.aborted
    [record] = campaign.failures
    assert record["index"] == 1 and record["status"] == "failed"
    assert record["failures"][0]["error"] == "ChaosError"
    # the write-back still persisted the surviving runs' entries
    assert verify_cache_file(cache_file_path(cache_dir)) > 0


def test_campaign_abort_policy_stops_early():
    runner = CampaignRunner(workers=1, on_error="abort")
    campaign = runner.run(_campaign_specs(chaos=CHAOS_ONE_RUN))
    assert campaign.aborted
    assert [r.status for r in campaign.results] == ["ok", "failed"]
    assert any("aborted after run 1" in note for note in campaign.notes)
    with pytest.raises(ValueError):
        CampaignRunner(on_error="explode")


def test_campaign_isolates_worker_crash_outside_pipeline(monkeypatch):
    import repro.api.campaign as campaign_mod

    specs = _campaign_specs()

    def boom(self, spec):
        if spec.error_seed == 2:
            raise OSError("worker lost")
        return run_spec(spec, tile_cache=None)

    monkeypatch.setattr(campaign_mod.CampaignRunner, "_run_one", boom)
    campaign = CampaignRunner(workers=2).run(specs)
    assert [r.status for r in campaign.results] == ["ok", "failed", "ok"]
    [record] = campaign.failures
    assert record["failures"][0]["stage"] == "campaign"
    assert record["failures"][0]["error"] == "OSError"


def test_campaign_result_round_trips_aggregates(tmp_path):
    campaign = CampaignRunner(workers=1).run(
        _campaign_specs(chaos=CHAOS_ONE_RUN)
    )
    campaign.notes.append("a campaign-level note")
    path = str(tmp_path / "campaign.json")
    campaign.save(path)
    again = CampaignResult.load(path)
    assert [r.status for r in again.results] == ["ok", "failed", "ok"]
    assert again.n_failed == campaign.n_failed == 1
    assert again.n_degraded == campaign.n_degraded
    assert again.failures == campaign.failures
    assert again.notes == campaign.notes
    assert again.aborted is False
    data = campaign.to_dict()
    assert data["n_failed"] == 1 and data["failures"][0]["index"] == 1


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

def test_cli_maps_internal_errors_to_structured_exit_3(monkeypatch, capsys):
    import repro.api.cli as cli

    def explode(*args, **kwargs):
        raise RuntimeError("wires crossed")

    monkeypatch.setattr(cli, "run_spec", explode)
    code = cli.main(["run", "--design", "9sym", "--preset", "fast"])
    assert code == 3
    err = capsys.readouterr().err
    payload = json.loads(err.strip().splitlines()[-1])
    assert payload["error"]["stage"] == "cli"
    assert payload["error"]["error"] == "RuntimeError"
    assert "wires crossed" in payload["error"]["message"]


def test_cli_user_errors_still_exit_2(capsys):
    import repro.api.cli as cli

    assert cli.main(["run", "--design", "no_such_design"]) == 2
    assert cli.main([
        "run", "--design", "9sym", "--stage-timeout", "localize",
    ]) == 2
    assert cli.main([
        "run", "--design", "9sym", "--chaos", "{not json",
    ]) == 2


def test_cli_run_reports_chaos_failure(capsys):
    import repro.api.cli as cli

    code = cli.main([
        "run", "--design", "9sym", "--preset", "fast", "--max-probes", "6",
        "--cache", "off", "--json", "-",
        "--chaos", '{"faults": [{"kind": "exception", "stage": "detect"}]}',
    ])
    assert code == 1  # ran to completion, but nothing was fixed
    out = capsys.readouterr()
    assert "status=failed" in out.err
    payload = json.loads(out.out)
    assert payload["status"] == "failed"
    assert payload["failures"][0]["error"] == "ChaosError"


def test_cli_campaign_chaos_smoke(tmp_path, capsys):
    import repro.api.cli as cli

    cache_dir = str(tmp_path / "cache")
    code = cli.main([
        "campaign", "--design", "9sym", "--preset", "fast",
        "--max-probes", "6", "--cache", "private",
        "--cache-dir", cache_dir, "--error-seeds", "1,2,3",
        "--chaos", json.dumps(CHAOS_ONE_RUN), "--out", "-",
    ])
    assert code == 0  # failures are isolated, the campaign succeeds
    out = capsys.readouterr()
    data = json.loads(out.out)
    assert data["n_runs"] == 3 and data["n_failed"] == 1
    assert [r["status"] for r in data["results"]] == ["ok", "failed", "ok"]
    assert verify_cache_file(cache_file_path(cache_dir)) > 0
    assert "1 failed" in out.err
