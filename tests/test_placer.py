"""Simulated-annealing placer: legality, constraints, determinism."""

import pytest

from repro.arch import custom_device, pick_device
from repro.errors import PlacementError
from repro.geometry import Rect
from repro.pnr import EFFORT_PRESETS, EffortMeter, PlaceConstraints, Placement
from repro.pnr.placer import place_design, q_factor
from tests.conftest import fresh_packed_design


def test_q_factor_monotone():
    values = [q_factor(t) for t in range(2, 60)]
    assert all(b >= a for a, b in zip(values, values[1:]))


def test_placement_is_legal():
    packed = fresh_packed_design()
    device = pick_device(packed.n_clbs, area_overhead=0.5,
                         min_io=len(packed.io_blocks()))
    placement = place_design(packed, device, seed=1,
                             preset=EFFORT_PRESETS["fast"])
    placement.check_complete()
    # no two CLBs share a site
    assert len(placement.clb_at) == packed.n_clbs


def test_determinism_same_seed():
    packed = fresh_packed_design()
    device = pick_device(packed.n_clbs, area_overhead=0.5,
                         min_io=len(packed.io_blocks()))
    p1 = place_design(packed, device, seed=42, preset=EFFORT_PRESETS["fast"])
    p2 = place_design(packed, device, seed=42, preset=EFFORT_PRESETS["fast"])
    assert p1.pos == p2.pos


def test_different_seeds_differ():
    packed = fresh_packed_design()
    device = pick_device(packed.n_clbs, area_overhead=0.5,
                         min_io=len(packed.io_blocks()))
    p1 = place_design(packed, device, seed=1, preset=EFFORT_PRESETS["fast"])
    p2 = place_design(packed, device, seed=2, preset=EFFORT_PRESETS["fast"])
    assert p1.pos != p2.pos


def test_region_constraints_respected():
    packed = fresh_packed_design()
    device = pick_device(packed.n_clbs, area_overhead=1.5,
                         min_io=len(packed.io_blocks()))
    region = Rect(0, 0, device.nx - 1, 2)
    constraints = PlaceConstraints(
        regions={b.index: region for b in packed.clb_blocks()}
    )
    placement = place_design(
        packed, device, seed=3, preset=EFFORT_PRESETS["fast"],
        constraints=constraints,
    )
    for block in packed.clb_blocks():
        assert region.contains(*placement.site_of(block.index))


def test_free_sites_constraint():
    packed = fresh_packed_design()
    device = pick_device(packed.n_clbs, area_overhead=1.5,
                         min_io=len(packed.io_blocks()))
    allowed = {(x, y) for x in range(device.nx) for y in range(device.ny)
               if (x + y) % 2 == 0}
    constraints = PlaceConstraints(free_sites=allowed)
    if len(allowed) < packed.n_clbs:
        pytest.skip("checkerboard too small")
    placement = place_design(
        packed, device, seed=3, preset=EFFORT_PRESETS["fast"],
        constraints=constraints,
    )
    for block in packed.clb_blocks():
        assert placement.site_of(block.index) in allowed


def test_locked_blocks_do_not_move():
    packed = fresh_packed_design()
    device = pick_device(packed.n_clbs, area_overhead=0.5,
                         min_io=len(packed.io_blocks()))
    base = place_design(packed, device, seed=5, preset=EFFORT_PRESETS["fast"])
    locked = {b.index for b in packed.clb_blocks()[:3]}
    frozen_sites = {b: base.site_of(b) for b in locked}
    result = place_design(
        packed, device, seed=9, preset=EFFORT_PRESETS["fast"],
        initial=base, constraints=PlaceConstraints(locked=locked),
    )
    for b, site in frozen_sites.items():
        assert result.site_of(b) == site


def test_effort_is_metered():
    packed = fresh_packed_design()
    device = pick_device(packed.n_clbs, area_overhead=0.5,
                         min_io=len(packed.io_blocks()))
    meter = EffortMeter()
    place_design(packed, device, seed=1, preset=EFFORT_PRESETS["fast"],
                 meter=meter)
    assert meter.place_moves > 0


def test_overfull_region_raises():
    packed = fresh_packed_design()
    device = pick_device(packed.n_clbs, area_overhead=0.5,
                         min_io=len(packed.io_blocks()))
    tiny = Rect(0, 0, 0, 0)
    constraints = PlaceConstraints(
        regions={b.index: tiny for b in packed.clb_blocks()}
    )
    with pytest.raises(PlacementError):
        place_design(packed, device, seed=1, constraints=constraints)


def test_initial_temperature_restores_placement():
    """The T0 sampling walk must not leak into the starting placement."""
    from repro.pnr import placer as placer_mod
    from repro.rng import make_rng

    packed = fresh_packed_design()
    device = pick_device(packed.n_clbs, area_overhead=0.5,
                         min_io=len(packed.io_blocks()))
    placement = place_design(packed, device, seed=7,
                             preset=EFFORT_PRESETS["fast"])
    movable = {b.index for b in packed.clb_blocks()}
    model = placer_mod._NetModel(packed, movable)
    model.rebuild(placement.pos)
    before_pos = dict(placement.pos)
    before_clb_at = dict(placement.clb_at)
    before_costs = dict(model.cost)

    temperature = placer_mod._initial_temperature(
        placement, PlaceConstraints(), device, sorted(movable), movable,
        model, make_rng(7, "t0-test"), EffortMeter(),
    )
    assert temperature > 0
    assert placement.pos == before_pos
    assert placement.clb_at == before_clb_at
    # cost caches were rebuilt against the restored placement
    assert model.cost == before_costs
    fresh = placer_mod._NetModel(packed, movable)
    fresh.rebuild(placement.pos)
    assert fresh.bbox == model.bbox


def test_bbox_shift_matches_scan():
    """Incremental bbox updates agree with a full terminal rescan."""
    from repro.pnr.placer import _bbox_shift
    from repro.rng import make_rng

    rng = make_rng(11, "bbox")
    points = [(rng.randrange(12), rng.randrange(12)) for _ in range(6)]

    def scan(pts):
        xs = [p[0] for p in pts]
        ys = [p[1] for p in pts]
        return (min(xs), xs.count(min(xs)), max(xs), xs.count(max(xs)),
                min(ys), ys.count(min(ys)), max(ys), ys.count(max(ys)))

    entry = scan(points)
    for _ in range(500):
        i = rng.randrange(len(points))
        new = (rng.randrange(12), rng.randrange(12))
        shifted = _bbox_shift(entry, points[i], new)
        points[i] = new
        entry = scan(points) if shifted is None else shifted
        assert entry == scan(points)


def test_placement_site_bookkeeping():
    packed = fresh_packed_design()
    device = custom_device(20, 20)
    placement = Placement(device, packed)
    clb = packed.clb_blocks()[0]
    placement.place_clb(clb.index, (3, 4))
    assert placement.site_of(clb.index) == (3, 4)
    placement.move_clb(clb.index, (5, 5))
    assert (3, 4) not in placement.clb_at
    placement.remove(clb.index)
    assert not placement.is_placed(clb.index)
