"""Static timing and the P&R flows (full / region / incremental)."""

import pytest

from repro.arch import pick_device
from repro.geometry import Rect
from repro.pnr import (
    EFFORT_PRESETS,
    EffortMeter,
    TimingModel,
    critical_path,
    full_place_and_route,
    incremental_update,
    replace_region,
)
from tests.conftest import fresh_packed_design


@pytest.fixture(scope="module")
def flow_ctx():
    packed = fresh_packed_design(width=8)
    device = pick_device(packed.n_clbs, area_overhead=0.6,
                         min_io=len(packed.io_blocks()))
    layout = full_place_and_route(
        packed, device, seed=11, preset=EFFORT_PRESETS["fast"],
    )
    return packed, device, layout


class TestTiming:
    def test_positive_critical_path(self, flow_ctx):
        packed, device, layout = flow_ctx
        assert layout.critical_path() > 0

    def test_routed_timing_at_least_placement_estimate(self, flow_ctx):
        packed, device, layout = flow_ctx
        unrouted = critical_path(packed, layout.placement, routes=None)
        assert unrouted > 0

    def test_model_scaling(self, flow_ctx):
        packed, device, layout = flow_ctx
        slow = TimingModel(t_lut=10.0)
        assert layout.critical_path(slow) > layout.critical_path()

    def test_sequential_paths_included(self, flow_ctx):
        packed, device, layout = flow_ctx
        # registered adder: critical path ends at an FF D pin; with a
        # huge setup time the path must grow accordingly
        pessimistic = TimingModel(t_setup=100.0)
        assert layout.critical_path(pessimistic) > 100.0


class TestReplaceRegion:
    def test_outside_blocks_untouched(self, flow_ctx):
        packed, device, layout = flow_ctx
        work = layout.copy()
        region = Rect(0, 0, device.nx // 2, device.ny - 1)
        movable = set(work.placement.blocks_in_region(region))
        if not movable:
            pytest.skip("empty region")
        outside = {
            b: work.placement.site_of(b)
            for b in (blk.index for blk in packed.clb_blocks())
            if b not in movable
        }
        replace_region(
            work, movable, [region], seed=5, preset=EFFORT_PRESETS["fast"],
        )
        for block, site in outside.items():
            assert work.placement.site_of(block) == site

    def test_moved_blocks_stay_inside(self, flow_ctx):
        packed, device, layout = flow_ctx
        work = layout.copy()
        region = Rect(0, 0, device.nx - 1, device.ny // 2)
        movable = set(work.placement.blocks_in_region(region))
        if not movable:
            pytest.skip("empty region")
        replace_region(
            work, movable, [region], seed=6, preset=EFFORT_PRESETS["fast"],
        )
        for block in movable:
            assert region.contains(*work.placement.site_of(block))

    def test_routes_remain_complete(self, flow_ctx):
        packed, device, layout = flow_ctx
        work = layout.copy()
        region = Rect(0, 0, device.nx - 1, device.ny // 2)
        movable = set(work.placement.blocks_in_region(region))
        if not movable:
            pytest.skip("empty region")
        replace_region(
            work, movable, [region], seed=7, preset=EFFORT_PRESETS["fast"],
        )
        for idx, tree in work.routes.items():
            net = packed.nets[idx]
            assert work.placement.site_of(net.driver) in tree.cells
            for sink in net.sinks:
                assert work.placement.site_of(sink) in tree.cells


class TestIncremental:
    def test_window_contains_change(self, flow_ctx):
        packed, device, layout = flow_ctx
        work = layout.copy()
        block = packed.clb_blocks()[0].index
        site = work.placement.site_of(block)
        meter = EffortMeter()
        window = incremental_update(
            work, {block}, seed=8, preset=EFFORT_PRESETS["fast"], meter=meter,
        )
        assert window.contains(*site)
        assert meter.work_units > 0

    def test_window_grows_for_new_logic(self, flow_ctx):
        packed, device, layout = flow_ctx
        work = layout.copy()
        block = packed.clb_blocks()[0].index
        small = incremental_update(
            work.copy(), {block}, seed=8, preset=EFFORT_PRESETS["fast"],
        )
        big = incremental_update(
            work.copy(), {block}, needed_free_sites=small.area + 5,
            seed=8, preset=EFFORT_PRESETS["fast"],
        )
        assert big.area > small.area
