"""Unit tests for the planar-geometry helpers."""

import pytest

from repro.geometry import Rect, half_perimeter, manhattan


class TestRect:
    def test_dimensions(self):
        r = Rect(1, 2, 4, 6)
        assert r.width == 4
        assert r.height == 5
        assert r.area == 20

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            Rect(3, 0, 2, 0)
        with pytest.raises(ValueError):
            Rect(0, 5, 0, 4)

    def test_single_site_rect(self):
        r = Rect(3, 3, 3, 3)
        assert r.area == 1
        assert list(r.sites()) == [(3, 3)]

    def test_contains_is_inclusive(self):
        r = Rect(0, 0, 2, 2)
        assert r.contains(0, 0)
        assert r.contains(2, 2)
        assert not r.contains(3, 2)
        assert not r.contains(-1, 0)

    def test_contains_rect(self):
        outer = Rect(0, 0, 5, 5)
        assert outer.contains_rect(Rect(1, 1, 4, 4))
        assert outer.contains_rect(outer)
        assert not outer.contains_rect(Rect(1, 1, 6, 4))

    def test_overlaps(self):
        a = Rect(0, 0, 2, 2)
        assert a.overlaps(Rect(2, 2, 4, 4))  # shares corner site
        assert not a.overlaps(Rect(3, 3, 4, 4))

    def test_touches_includes_diagonal_adjacency(self):
        a = Rect(0, 0, 1, 1)
        assert a.touches(Rect(2, 2, 3, 3))  # diagonal neighbor
        assert a.touches(Rect(2, 0, 3, 1))  # edge neighbor
        assert not a.touches(Rect(3, 0, 4, 1))  # one apart

    def test_union(self):
        assert Rect(0, 0, 1, 1).union(Rect(3, 4, 5, 6)) == Rect(0, 0, 5, 6)

    def test_intersection(self):
        assert Rect(0, 0, 4, 4).intersection(Rect(2, 2, 6, 6)) == Rect(2, 2, 4, 4)
        with pytest.raises(ValueError):
            Rect(0, 0, 1, 1).intersection(Rect(5, 5, 6, 6))

    def test_expanded_with_clip(self):
        clip = Rect(0, 0, 9, 9)
        assert Rect(4, 4, 5, 5).expanded(2, clip) == Rect(2, 2, 7, 7)
        assert Rect(0, 0, 1, 1).expanded(3, clip) == Rect(0, 0, 4, 4)

    def test_sites_enumeration(self):
        sites = list(Rect(0, 0, 1, 2).sites())
        assert len(sites) == 6
        assert sites[0] == (0, 0)
        assert sites[-1] == (1, 2)

    def test_center(self):
        assert Rect(0, 0, 2, 2).center() == (1.0, 1.0)
        assert Rect(0, 0, 1, 1).center() == (0.5, 0.5)


def test_manhattan():
    assert manhattan((0, 0), (3, 4)) == 7
    assert manhattan((2, 2), (2, 2)) == 0


def test_half_perimeter():
    assert half_perimeter([]) == 0
    assert half_perimeter([(1, 1)]) == 0
    assert half_perimeter([(0, 0), (3, 4)]) == 7
    assert half_perimeter([(0, 0), (1, 1), (3, 4), (2, 0)]) == 7
