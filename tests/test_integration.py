"""End-to-end integration: the paper's full flow on a real benchmark."""

import pytest

from repro.debug import EmulationDebugSession
from repro.debug.session import run_campaign
from repro.emu import frames_for_tiles
from repro.generators import build_design
from repro.pnr.effort import EFFORT_PRESETS
from repro.tiling.partition import TilingOptions


@pytest.mark.slow
def test_styr_campaign_tiled_beats_quick_eco():
    """The headline claim on a real MCNC benchmark."""

    def factory():
        return build_design("styr").packed

    reports = run_campaign(
        factory,
        ["tiled", "quick_eco"],
        error_kind="wrong_function",
        seed=3,
        preset=EFFORT_PRESETS["fast"],
        n_cycles=5,
        n_patterns=64,
    )
    tiled = reports["tiled"]
    quick = reports["quick_eco"]
    assert tiled.fixed and quick.fixed
    assert tiled.n_commits == quick.n_commits  # same debugging work
    assert (
        tiled.total_effort.work_units < quick.total_effort.work_units
    ), "tiling must reduce back-end effort"


def test_lock_invariant_across_debug_session():
    """Unaffected tile frames stay byte-identical through a whole session."""
    bundle = build_design("9sym")
    session = EmulationDebugSession(
        bundle.packed, strategy="tiled", seed=2,
        preset=EFFORT_PRESETS["fast"], n_cycles=4, n_patterns=64,
        tiling=TilingOptions(n_tiles=6, area_overhead=0.3),
    )
    report = session.run(
        error_kind="output_invert", error_seed=4, max_probes=3
    )
    assert report.detected
    strategy = session.strategy
    tiled = strategy.tiled
    assert tiled is not None

    # one more committed change with frame snapshots around it
    from repro.netlist.cells import CellKind
    from repro.tiling.eco import ChangeRecorder

    netlist = bundle.packed.netlist
    lut = next(
        i for i in netlist.instances()
        if i.kind is CellKind.LUT and i.inputs
    )
    rects = [t.rect for t in tiled.tiles]
    before = frames_for_tiles(tiled.layout, rects)
    with ChangeRecorder(netlist, "post-session touch") as rec:
        lut.params = {"table": lut.params["table"] ^ 1}
    commit = tiled.apply_changeset(
        rec.changes, seed=9, preset=EFFORT_PRESETS["fast"]
    )
    after = frames_for_tiles(tiled.layout, rects)
    changed = {i for i, (a, b) in enumerate(zip(before, after)) if a != b}
    assert changed <= set(commit.affected_tiles)


def test_incremental_strategy_end_to_end():
    bundle = build_design("9sym")
    session = EmulationDebugSession(
        bundle.packed, strategy="incremental", seed=6,
        preset=EFFORT_PRESETS["fast"], n_cycles=4, n_patterns=64,
    )
    report = session.run(
        error_kind="wrong_function", error_seed=1, max_probes=3
    )
    assert report.detected
    assert report.fixed
