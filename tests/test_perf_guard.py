"""Perf smoke guard: structure caching and cone-engine invariants.

These tests exist so cache-invalidation bugs fail fast:

* non-mutating analysis/simulation must not bump the netlist revision
  or recompute the memoized ``topo_order()``/``levels()``/adjacency;
* every mutation class must bump the revision and drop the caches;
* the compiled kernel must stay on the incremental path for
  changeset-tracked ECOs and recompile fully for untracked ones;
* the bitset cone engine must agree with the BFS reference.
"""

import pytest

from repro.debug.instrument import add_observation_point
from repro.netlist import (
    CellKind,
    CombinationalSimulator,
    ConeIndex,
    Netlist,
    SequentialSimulator,
    kernel_for,
)
from repro.netlist.compiled import CompiledKernel
from repro.rng import make_rng
from tests.conftest import make_adder_netlist


@pytest.fixture
def mid_design(styr_bundle):
    """Mid-size mapped design, read-only (session-scoped bundle)."""
    return styr_bundle.mapped


class TestStructureCaching:
    def test_nonmutating_calls_do_not_recompute(self, mid_design):
        netlist = mid_design
        rev = netlist.revision
        order = netlist.topo_order()
        levels = netlist.levels()
        adj = netlist.adjacency()
        # simulate both engines and re-query: no recompute, no bump
        sim = SequentialSimulator(netlist, engine="compiled")
        sim.step({n.name.split(":", 1)[-1]: 0
                  for n in netlist.primary_inputs()}, 1)
        CombinationalSimulator(netlist)
        netlist.stats()
        assert netlist.topo_order() is order
        assert netlist.levels() is levels
        assert netlist.adjacency() is adj
        assert netlist.revision == rev

    def test_every_mutation_class_bumps_revision(self):
        netlist = make_adder_netlist(4, registered=True)
        order = netlist.topo_order()

        def bumped(before):
            assert netlist.revision > before
            assert netlist.topo_order() is not order
            return netlist.revision

        rev = netlist.revision
        net = netlist.add_net("guard_net")
        rev = bumped(rev)
        inst = netlist.add_lut([net], 0b01, name="guard_lut")
        order = netlist.topo_order()
        rev = netlist.revision
        netlist.set_params(inst, {"table": 0b10})
        rev = bumped(rev)
        order = netlist.topo_order()
        netlist.change_kind(inst, CellKind.BUF)
        rev = bumped(rev)
        order = netlist.topo_order()
        other = netlist.net(netlist.primary_inputs()[0].output.name)
        netlist.set_input(inst, 0, other)
        rev = bumped(rev)
        order = netlist.topo_order()
        netlist.rename_instance(inst, "guard_lut2")
        rev = bumped(rev)
        order = netlist.topo_order()
        netlist.remove_instance(inst)
        rev = bumped(rev)
        order = netlist.topo_order()
        netlist.prune_dangling()
        rev = bumped(rev)

    def test_levels_and_adjacency_invalidate_on_mutation(self):
        netlist = make_adder_netlist(4)
        levels = netlist.levels()
        adj = netlist.adjacency()
        netlist.add_net("x")
        assert netlist.levels() is not levels
        assert netlist.adjacency() is not adj


class TestCompiledKernelGuard:
    def test_shared_kernel_not_recompiled_by_reuse(self, mid_design):
        kernel = kernel_for(mid_design)
        assert kernel is kernel_for(mid_design)
        count = kernel.compile_count
        names = {
            pi.name.split(":", 1)[-1] for pi in mid_design.primary_inputs()
        }
        rng = make_rng(0, "guard")
        inputs = {n: rng.getrandbits(16) for n in names}
        kernel.run(inputs, 16)
        kernel.probe(inputs, 16)
        assert kernel.compile_count == count

    def test_tracked_eco_stays_incremental(self):
        netlist = make_adder_netlist(6, registered=True)
        from repro.synth import map_to_luts

        mapped = map_to_luts(netlist)
        kernel = CompiledKernel(mapped)
        watch = mapped.primary_outputs()[0].inputs[0].name
        changes, _ = add_observation_point(mapped, [watch], "g0")
        kernel.apply_changeset(changes)
        assert kernel.compile_count == 1
        assert kernel.incremental_count == 1

    def test_partial_changeset_forces_full_recompile(self):
        """A changeset that doesn't start at the kernel's synced
        revision (untracked edits slipped in between) must not be
        applied incrementally over the gap."""
        netlist = make_adder_netlist(6, registered=True)
        from repro.synth import map_to_luts

        mapped = map_to_luts(netlist)
        kernel = CompiledKernel(mapped)
        # untracked edit: bumps the revision without a changeset
        lut = next(i for i in mapped.instances() if i.is_lut and i.inputs)
        mapped.set_params(lut, {"table": lut.params["table"] ^ 1})
        # tracked edit recorded after the gap
        watch = mapped.primary_outputs()[0].inputs[0].name
        changes, _ = add_observation_point(mapped, [watch], "g1")
        kernel.apply_changeset(changes)
        assert kernel.compile_count == 2
        assert kernel.incremental_count == 0
        # and the recompiled tape must reflect the untracked retable
        fresh = CompiledKernel(mapped)
        inputs = {
            pi.name.split(":", 1)[-1]: 0b1011
            for pi in mapped.primary_inputs()
        }
        assert kernel.run(inputs, 4) == fresh.run(inputs, 4)

    def test_untracked_eco_forces_full_recompile(self):
        netlist = make_adder_netlist(6, registered=True)
        from repro.synth import map_to_luts

        mapped = map_to_luts(netlist)
        kernel = CompiledKernel(mapped)
        lut = next(i for i in mapped.instances() if i.is_lut and i.inputs)
        mapped.set_params(lut, {"table": lut.params["table"] ^ 1})
        kernel.probe(
            {pi.name.split(":", 1)[-1]: 0
             for pi in mapped.primary_inputs()}, 1
        )
        assert kernel.compile_count == 2


class TestConeEngine:
    def test_bitset_cones_match_bfs(self, mid_design):
        for stop in (False, True):
            index = ConeIndex(mid_design, stop_at_ffs=stop)
            sample = sorted(
                i.name for i in mid_design.instances()
            )[:: max(1, len(mid_design) // 25)]
            for name in sample:
                inst = mid_design.instance(name)
                assert index.names_of(index.fanin(name)) == (
                    mid_design.fanin_cone([inst], stop_at_ffs=stop)
                )

    def test_mask_roundtrip(self, mid_design):
        index = ConeIndex(mid_design)
        names = {i.name for i in mid_design.instances()}
        assert index.names_of(index.mask_of(names)) == names
        assert index.mask_of([]) == 0
        assert index.names_of(0) == set()


class TestFanoutConeSeeds:
    def test_generator_seeds_match_list_seeds(self):
        netlist = make_adder_netlist(6, registered=True)
        ffs = netlist.flip_flops()
        assert ffs
        from_list = netlist.fanout_cone(list(ffs), stop_at_ffs=True)
        from_gen = netlist.fanout_cone(
            (ff for ff in ffs), stop_at_ffs=True
        )
        assert from_gen == from_list
        # seed FFs must expand through their own Q fanout
        assert any(name not in {f.name for f in ffs} for name in from_gen)
