"""Technology mapping: primitive set, size, and functional equivalence."""

import random

from hypothesis import given, settings, strategies as st

from repro.generators.random_logic import random_combinational_netlist
from repro.netlist import CellKind, check_netlist, simulate_words
from repro.synth import map_to_luts
from tests.conftest import make_adder_netlist


def assert_equivalent(original, mapped, n_patterns=64, seed=0):
    rng = random.Random(seed)
    ins = {}
    for pi in original.primary_inputs():
        name = pi.name.split(":", 1)[-1]
        ins[name] = rng.getrandbits(n_patterns)
    assert simulate_words(original, ins, n_patterns) == simulate_words(
        mapped, ins, n_patterns
    )


def test_only_primitives_remain(adder4):
    mapped = map_to_luts(adder4)
    check_netlist(mapped)
    allowed = {CellKind.INPUT, CellKind.OUTPUT, CellKind.LUT, CellKind.DFF}
    assert all(inst.kind in allowed for inst in mapped.instances())


def test_lut_inputs_within_limit(adder4):
    mapped = map_to_luts(adder4)
    assert all(
        len(inst.inputs) <= 4
        for inst in mapped.instances()
        if inst.kind is CellKind.LUT
    )


def test_adder_equivalence(adder4):
    assert_equivalent(adder4, map_to_luts(adder4))


def test_registered_design_keeps_ffs(adder4_registered):
    mapped = map_to_luts(adder4_registered)
    assert len(mapped.flip_flops()) == len(adder4_registered.flip_flops())


def test_collapse_reduces_luts(adder4):
    uncollapsed = map_to_luts(adder4, collapse=False)
    collapsed = map_to_luts(adder4, collapse=True)
    assert collapsed.stats().n_luts <= uncollapsed.stats().n_luts
    assert_equivalent(adder4, collapsed)
    assert_equivalent(adder4, uncollapsed)


def test_constants_are_folded():
    from repro.netlist import Netlist, NetlistBuilder

    n = Netlist("c")
    b = NetlistBuilder(n)
    a = n.add_input("a")
    one = b.const_bit(1)
    zero = b.const_bit(0)
    y = b.and_(a, one)       # == a
    z = b.or_(a, zero)       # == a
    n.add_output("y", y)
    n.add_output("z", z)
    mapped = map_to_luts(n)
    check_netlist(mapped)
    out = simulate_words(mapped, {"a": 0b10}, 2)
    assert out["y"] == 0b10
    assert out["z"] == 0b10


def test_constant_feeding_output_becomes_lut0():
    from repro.netlist import Netlist, NetlistBuilder

    n = Netlist("c")
    b = NetlistBuilder(n)
    n.add_input("a")
    n.add_output("one", b.const_bit(1))
    mapped = map_to_luts(n)
    out = simulate_words(mapped, {"a": 0}, 1)
    assert out["one"] == 1


def test_wide_gates_decomposed():
    from repro.netlist import Netlist

    n = Netlist("w")
    ins = [n.add_input(f"i{k}") for k in range(8)]
    n.add_output("y", n.add_gate(CellKind.NAND, ins))
    mapped = map_to_luts(n)
    check_netlist(mapped)
    all_ones = {f"i{k}": 1 for k in range(8)}
    assert simulate_words(mapped, all_ones, 1)["y"] == 0
    all_ones["i3"] = 0
    assert simulate_words(mapped, all_ones, 1)["y"] == 1


@given(seed=st.integers(0, 1000))
@settings(max_examples=10, deadline=None)
def test_random_logic_equivalence_property(seed):
    """Mapping preserves behaviour on arbitrary random circuits."""
    original = random_combinational_netlist(
        f"rand{seed}", n_inputs=8, n_outputs=6, n_gates=40, seed=seed
    )
    check_netlist(original)
    mapped = map_to_luts(original)
    check_netlist(mapped)
    assert_equivalent(original, mapped, seed=seed)


def test_mips_sized_mapping_is_clean(styr_bundle):
    # calibrated bundles are mapped at build time; re-verify structure
    check_netlist(styr_bundle.mapped)
    assert styr_bundle.mapped.stats().n_gates == 0
