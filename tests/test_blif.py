"""BLIF reader/writer round trips and MCNC-format corner cases."""

import random

import pytest

from repro.errors import NetlistError
from repro.netlist import Netlist, check_netlist, simulate_words
from repro.netlist.blif import read_blif, write_blif
from tests.conftest import make_adder_netlist


SAMPLE = """
# a tiny sequential BLIF
.model sample
.inputs a b
.outputs y q
.names a b t1
11 1
.names t1 y
0 1
.latch t1 q re clk 0
.end
"""


def test_read_basic_structure():
    n = read_blif(SAMPLE)
    assert n.name == "sample"
    check_netlist(n)
    assert len(n.primary_inputs()) == 2
    assert len(n.primary_outputs()) == 2
    assert len(n.flip_flops()) == 1


def test_read_semantics():
    n = read_blif(SAMPLE)
    out = simulate_words(n, {"a": 0b11, "b": 0b01}, 2)
    # y = NOT(a AND b): pattern0 a=b=1 -> 0; pattern1 a=1,b=0 -> 1
    assert out["y"] == 0b10


def test_dont_care_cover():
    text = """
.model dc
.inputs a b c
.outputs y
.names a b c y
1-- 1
-11 1
.end
"""
    n = read_blif(text)
    out = simulate_words(n, {"a": 0b0011, "b": 0b0101, "c": 0b1111}, 4)
    # y = a OR (b AND c)
    for p in range(4):
        a, b, c = (0b0011 >> p) & 1, (0b0101 >> p) & 1, 1
        assert (out["y"] >> p) & 1 == (a | (b & c))


def test_offset_cover():
    text = """
.model off
.inputs a b
.outputs y
.names a b y
11 0
"""
    n = read_blif(text)
    out = simulate_words(n, {"a": 0b0101, "b": 0b0011}, 4)
    for p in range(4):
        a, b = (0b0101 >> p) & 1, (0b0011 >> p) & 1
        assert (out["y"] >> p) & 1 == (0 if (a and b) else 1)


def test_constant_names():
    text = """
.model consts
.inputs a
.outputs one zero
.names one
1
.names zero
.end
"""
    n = read_blif(text)
    out = simulate_words(n, {"a": 0}, 1)
    assert out["one"] == 1
    assert out["zero"] == 0


def test_wide_cover_expands_to_gates():
    lits = "abcdefgh"
    rows = "\n".join("1" * 8 + " 1" for _ in range(1))
    text = (
        ".model wide\n.inputs " + " ".join(lits)
        + "\n.outputs y\n.names " + " ".join(lits) + " y\n" + "1" * 8 + " 1\n.end"
    )
    n = read_blif(text)
    check_netlist(n)
    ones = {c: 1 for c in lits}
    assert simulate_words(n, ones, 1)["y"] == 1
    ones["d"] = 0
    assert simulate_words(n, ones, 1)["y"] == 0


def test_malformed_directive_rejected():
    with pytest.raises(NetlistError):
        read_blif(".model x\n.frobnicate\n.end")


def test_roundtrip_preserves_function():
    rng = random.Random(11)
    original = make_adder_netlist(5, registered=True)
    text = write_blif(original)
    parsed = read_blif(text)
    check_netlist(parsed)

    from repro.netlist import SequentialSimulator

    sim_a = SequentialSimulator(original)
    sim_b = SequentialSimulator(parsed)
    for _ in range(4):
        ins = {f"a[{i}]": rng.getrandbits(16) for i in range(5)}
        ins |= {f"b[{i}]": rng.getrandbits(16) for i in range(5)}
        out_a = sim_a.step(ins, 16)
        out_b = sim_b.step(ins, 16)
        assert out_a == out_b


def test_roundtrip_of_mapped_netlist(styr_bundle):
    text = write_blif(styr_bundle.mapped)
    parsed = read_blif(text)
    check_netlist(parsed)
    stats_a = styr_bundle.mapped.stats()
    stats_b = parsed.stats()
    assert stats_a.n_ffs == stats_b.n_ffs
    assert stats_a.n_inputs == stats_b.n_inputs
