"""Architecture model: family table, geometry, device selection."""

import pytest

from repro.arch import XC4000_FAMILY, custom_device, pick_device
from repro.errors import ArchitectureError


def test_family_is_sorted_by_capacity():
    sizes = [spec.n_clbs for spec in XC4000_FAMILY]
    assert sizes == sorted(sizes)


def test_pick_device_smallest_fit():
    dev = pick_device(90)
    assert dev.name == "XC4003"
    dev = pick_device(90, area_overhead=0.2)
    assert dev.name == "XC4005"


def test_pick_device_io_constraint():
    dev = pick_device(50, min_io=100)
    assert dev.spec.io_capacity >= 100


def test_pick_device_too_big():
    with pytest.raises(ArchitectureError):
        pick_device(10_000)


def test_custom_device_validation():
    with pytest.raises(ArchitectureError):
        custom_device(0, 5)


class TestGeometry:
    def setup_method(self):
        self.dev = custom_device(4, 3)

    def test_clb_sites(self):
        assert self.dev.is_clb_site(0, 0)
        assert self.dev.is_clb_site(3, 2)
        assert not self.dev.is_clb_site(4, 0)
        assert not self.dev.is_clb_site(0, -1)

    def test_io_ring(self):
        assert self.dev.is_io_slot(-1, 0)
        assert self.dev.is_io_slot(4, 2)
        assert self.dev.is_io_slot(0, -1)
        assert self.dev.is_io_slot(2, 3)
        # corners are not IOB slots
        assert not self.dev.is_io_slot(-1, -1)
        assert not self.dev.is_io_slot(4, 3)

    def test_io_slot_count(self):
        slots = self.dev.io_slots()
        assert len(slots) == 2 * (4 + 3)
        assert len(set(slots)) == len(slots)

    def test_neighbors_inside_grid(self):
        assert set(self.dev.neighbors(0, 0)) == {(1, 0), (0, 1), (-1, 0), (0, -1)}

    def test_routable_excludes_outside(self):
        assert self.dev.is_routable(-1, 1)
        assert not self.dev.is_routable(-2, 1)
        assert not self.dev.is_routable(-1, -1)
