"""Maze router: connectivity, capacity negotiation, confinement."""

import pytest

from repro.arch import custom_device, pick_device
from repro.errors import RoutingError
from repro.geometry import Rect
from repro.pnr import EFFORT_PRESETS, EffortMeter, RoutingState, route_nets
from repro.pnr.placer import place_design
from repro.pnr.router import grow_steiner_tree
from tests.conftest import fresh_packed_design


def placed_design():
    packed = fresh_packed_design()
    device = pick_device(packed.n_clbs, area_overhead=0.5,
                         min_io=len(packed.io_blocks()))
    placement = place_design(packed, device, seed=1,
                             preset=EFFORT_PRESETS["fast"])
    return packed, device, placement


def test_all_nets_routed_and_connected():
    packed, device, placement = placed_design()
    routes = route_nets(packed, device, placement)
    assert set(routes) == set(packed.nets)
    for idx, tree in routes.items():
        net = packed.nets[idx]
        assert placement.site_of(net.driver) in tree.cells
        for sink in net.sinks:
            assert placement.site_of(sink) in tree.cells
            assert sink in tree.sink_hops


def test_routes_use_adjacent_cells_only():
    packed, device, placement = placed_design()
    routes = route_nets(packed, device, placement)
    for tree in routes.values():
        for a, b in tree.edges:
            assert abs(a[0] - b[0]) + abs(a[1] - b[1]) == 1


def test_capacity_respected_after_negotiation():
    packed, device, placement = placed_design()
    state = RoutingState(device)
    route_nets(packed, device, placement, state=state)
    cap = device.channel_width
    assert all(u <= cap for u in state.usage.values())


def test_narrow_channels_raise_when_strict():
    packed = fresh_packed_design(width=8)
    device = pick_device(packed.n_clbs, area_overhead=0.3,
                         min_io=len(packed.io_blocks()), channel_width=1)
    placement = place_design(packed, device, seed=1,
                             preset=EFFORT_PRESETS["fast"])
    with pytest.raises(RoutingError):
        route_nets(packed, device, placement, strict=True)


def test_region_confinement():
    packed, device, placement = placed_design()
    # pick a net fully inside some bounding box and reroute confined
    routes = route_nets(packed, device, placement)
    for idx, tree in routes.items():
        net = packed.nets[idx]
        sites = [placement.site_of(b) for b in (net.driver, *net.sinks)]
        if all(device.is_clb_site(*s) for s in sites):
            xs = [s[0] for s in sites]
            ys = [s[1] for s in sites]
            region = Rect(min(xs), min(ys), max(xs), max(ys))
            fresh = route_nets(
                packed, device, placement, [idx],
                state=RoutingState(device), region=region,
            )
            for cell in fresh[idx].cells:
                assert region.contains(*cell)
            return
    pytest.skip("no fully-internal net in this placement")


def test_expansions_metered():
    packed, device, placement = placed_design()
    meter = EffortMeter()
    route_nets(packed, device, placement, meter=meter)
    assert meter.route_expansions > 0


def test_grow_steiner_tree_reaches_targets():
    device = custom_device(8, 8)
    state = RoutingState(device)
    cells, edges, hops = grow_steiner_tree(
        device, {(0, 0)}, [(4, 4), (7, 0)], state
    )
    assert (4, 4) in cells and (7, 0) in cells
    # hop counts measure the path from the *tree*, so each is at least 1
    # and the first-reached target is at least its Manhattan distance
    assert min(hops.values()) >= 1
    assert max(hops.values()) >= 7
    # the tree is connected: every edge endpoint is a tree cell
    for a, b in edges:
        assert a in cells and b in cells


def test_grow_steiner_tree_region_violation():
    device = custom_device(8, 8)
    state = RoutingState(device)
    with pytest.raises(RoutingError):
        grow_steiner_tree(
            device, {(0, 0)}, [(7, 7)], state, region=Rect(0, 0, 2, 2)
        )


def test_zero_capacity_channels_track_overuse():
    """cap == 0: the first occupant is already over capacity."""
    from repro.pnr.router import RouteTree

    device = custom_device(4, 4, channel_width=0)
    state = RoutingState(device)
    tree = RouteTree(0)
    tree.edges = {((0, 0), (0, 1))}
    state.add(tree)
    assert state.overused_edges() == [((0, 0), (0, 1))]
    state.remove(tree)
    assert not state.overused_ids and not state.usage


def test_routing_state_add_remove_roundtrip():
    device = custom_device(4, 4)
    state = RoutingState(device)
    from repro.pnr.router import RouteTree

    tree = RouteTree(0)
    tree.edges = {((0, 0), (0, 1)), ((0, 1), (0, 2))}
    state.add(tree)
    assert state.usage[((0, 0), (0, 1))] == 1
    state.remove(tree)
    assert not state.usage
