"""The SAT layer wired through the pipeline: prove, "sat" strategy, CEGIS."""

import os

import pytest

from repro.api import RunSpec, run_spec
from repro.debug.correct import synthesize_lut_fix
from repro.debug.detect import detect_on_layout
from repro.errors import SpecError
from repro.generators import build_design

FAST = dict(preset="fast", max_probes=6, cache="private")


def fast_spec(**overrides) -> RunSpec:
    merged = {**FAST, "design": "9sym", "error_seed": 1}
    merged.update(overrides)
    return RunSpec(**merged)


FSM_PARAMS = {
    "name": "fsm_t", "n_states": 12, "n_inputs": 4, "n_outputs": 4,
}


# ----------------------------------------------------------------------
# spec plumbing
# ----------------------------------------------------------------------

class TestSpecFields:
    def test_defaults_are_legacy(self):
        spec = RunSpec()
        assert spec.verify == "simulate"
        assert spec.prove_frames is None
        assert spec.correction == "oracle"

    @pytest.mark.parametrize("overrides", [
        {"verify": "nonesuch"},
        {"correction": "nonesuch"},
        {"prove_frames": 0},
        {"prove_frames": "four"},
    ])
    def test_validation(self, overrides):
        with pytest.raises(SpecError):
            RunSpec(**overrides)

    def test_round_trip(self):
        spec = fast_spec(verify="both", prove_frames=3, correction="cegis")
        assert RunSpec.from_json(spec.to_json()) == spec

    def test_cli_flags_override(self):
        from repro.api.cli import build_parser, _spec_from_args

        args = build_parser().parse_args(
            ["run", "--verify", "prove", "--prove-frames", "5",
             "--correction", "cegis"]
        )
        spec = _spec_from_args(args)
        assert spec.verify == "prove"
        assert spec.prove_frames == 5
        assert spec.correction == "cegis"


# ----------------------------------------------------------------------
# verify="prove"
# ----------------------------------------------------------------------

class TestFormalVerify:
    def test_prove_after_fix_on_smallest_design(self):
        result = run_spec(fast_spec(verify="prove"))
        assert result.detected and result.fixed
        assert result.proved is True
        assert result.proof["n_structural"] == len(result.proof["outputs"])
        assert result.counterexample is None

    def test_prove_after_fix_on_fsm(self):
        spec = RunSpec(design="fsm", design_params=FSM_PARAMS,
                       error_seed=3, verify="prove", **FAST)
        result = run_spec(spec)
        assert result.detected and result.localized and result.fixed
        assert result.proved is True

    def test_prove_after_fix_on_s9234(self):
        spec = RunSpec(design="s9234", error_seed=3, verify="prove",
                       preset="fast", cache="private")
        result = run_spec(spec)
        assert result.detected and result.fixed
        assert result.proved is True

    def test_unfixed_error_yields_confirmed_counterexample(self):
        # break the fix: a verify-only pipeline over a netlist whose
        # error was never corrected must produce a counterexample the
        # compiled simulator reproduces
        from repro.api.pipeline import (
            DebugPipeline, DetectStage, RunContext, VerifyStage,
        )

        spec = fast_spec(verify="prove")
        ctx = RunContext.from_spec(spec)
        DebugPipeline(stages=(DetectStage(), VerifyStage())).execute(ctx)
        assert ctx.detected
        assert ctx.proved is False
        assert ctx.counterexample is not None
        assert ctx.counterexample_confirmed is True
        assert ctx.remaining, "cex mismatches become the regression record"
        assert ctx.fixed is False

    def test_both_mode_requires_simulation_and_proof(self):
        result = run_spec(fast_spec(verify="both"))
        assert result.fixed and result.proved is True
        assert result.spec["verify"] == "both"


# ----------------------------------------------------------------------
# strategy="sat"
# ----------------------------------------------------------------------

class TestSatStrategy:
    def test_bit_reproducible_and_no_more_probes_than_tiled(self):
        sat1 = run_spec(fast_spec(strategy="sat"))
        sat2 = run_spec(fast_spec(strategy="sat"))
        tiled = run_spec(fast_spec(strategy="tiled"))
        assert sat1.trajectory_key() == sat2.trajectory_key()
        assert sat1.candidates == sat2.candidates
        assert sat1.detected and sat1.localized and sat1.fixed
        assert sat1.n_probes <= tiled.n_probes
        assert sat1.n_sat_eliminated > 0
        assert "sat" in sat1.timings["localization"]

    def test_engine_independent(self):
        compiled = run_spec(fast_spec(strategy="sat", engine="compiled"))
        interp = run_spec(fast_spec(strategy="sat", engine="interpreted"))
        assert compiled.trajectory_key() == interp.trajectory_key()
        assert compiled.candidates == interp.candidates

    def test_s9234_campaign(self):
        sat = run_spec(RunSpec(design="s9234", error_seed=3,
                               strategy="sat", preset="fast",
                               cache="private"))
        tiled = run_spec(RunSpec(design="s9234", error_seed=3,
                                 strategy="tiled", preset="fast",
                                 cache="private"))
        assert sat.localized and sat.fixed
        assert sat.n_probes <= tiled.n_probes

    @pytest.mark.slow
    @pytest.mark.skipif(
        not os.environ.get("REPRO_SLOW"),
        reason="large-design campaigns; set REPRO_SLOW=1",
    )
    @pytest.mark.parametrize("design,error_seed", [
        ("mips", 2), ("des", 1),
    ])
    def test_large_design_campaigns(self, design, error_seed):
        spec = RunSpec(design=design, error_seed=error_seed,
                       strategy="sat", preset="fast", cache="private")
        first = run_spec(spec)
        second = run_spec(spec)
        tiled = run_spec(spec.replaced(strategy="tiled"))
        assert first.localized and first.fixed
        assert first.trajectory_key() == second.trajectory_key()
        assert first.n_probes <= tiled.n_probes


# ----------------------------------------------------------------------
# correction="cegis"
# ----------------------------------------------------------------------

class TestCegisCorrection:
    def test_cegis_fix_verifies_and_proves(self):
        result = run_spec(fast_spec(correction="cegis", verify="both"))
        assert result.fixed and result.proved is True
        assert result.correction is not None
        assert result.correction["iterations"] >= 1
        assert result.correction["instance"] in result.correction["tried"]

    def test_cegis_falls_back_on_structural_errors(self):
        # a rewired input pin admits no truth-table repair at the same
        # support; the stage must note the fallback and still fix via
        # back-annotation
        result = run_spec(
            fast_spec(error_seed=0, error_kind="wrong_source",
                      correction="cegis", max_probes=8)
        )
        assert result.detected and result.fixed
        assert result.correction is None
        assert any("fell back" in note for note in result.notes)

    def test_synthesize_lut_fix_direct(self):
        from repro.api.pipeline import (
            DebugPipeline, DetectStage, LocalizeStage, RunContext,
        )

        spec = fast_spec()
        ctx = RunContext.from_spec(spec)
        DebugPipeline(stages=(DetectStage(), LocalizeStage())).execute(ctx)
        assert ctx.detected and ctx.localization is not None
        fix = synthesize_lut_fix(
            ctx.packed.netlist, ctx.golden,
            sorted(ctx.localization.candidates), ctx.mismatches,
            ctx.stimulus, ctx.n_patterns,
        )
        assert fix is not None
        assert fix.changes.changed_instances == {fix.instance}
        # the applied retable clears every mismatch on the stimulus
        ctx.strategy.commit(fix.changes, anchor_instance=fix.instance)
        remaining = detect_on_layout(
            ctx.strategy.layout, ctx.golden, ctx.stimulus, ctx.n_patterns,
        )
        assert remaining == []
