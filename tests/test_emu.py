"""Emulator and bitstream model."""

import pytest

from repro.emu import Bitstream, Emulator, frames_for_tiles
from repro.errors import EmulationError
from repro.geometry import Rect
from repro.netlist.simulate import SequentialSimulator


def test_emulator_matches_golden_model(small_layout):
    emulator = Emulator(small_layout)
    golden = SequentialSimulator(small_layout.packed.netlist)
    inputs = {
        pi.name.split(":", 1)[-1]: 0b1011
        for pi in small_layout.packed.netlist.primary_inputs()
    }
    emulator.reset(4)
    golden.reset(4)
    for _ in range(4):
        assert emulator.step(inputs, 4) == golden.step(inputs, 4)


def test_emulator_rejects_incomplete_configuration(small_layout):
    broken = small_layout.copy()
    some_block = broken.packed.clb_blocks()[0].index
    broken.placement.remove(some_block)
    with pytest.raises(EmulationError):
        Emulator(broken)


def test_run_with_flags_separates_observation(small_layout):
    emulator = Emulator(small_layout)
    names = {
        pi.name.split(":", 1)[-1]
        for pi in small_layout.packed.netlist.primary_inputs()
    }
    stim = [{n: 0 for n in names}] * 2
    functional, flags = emulator.run_with_flags(stim)
    assert len(functional) == 2
    assert all(not k.startswith("obs_flag") for out in functional for k in out)


class TestBitstream:
    def test_frames_deterministic(self, small_layout):
        rect = Rect(0, 0, 3, 3)
        a = Bitstream(small_layout).frame_digest(rect)
        b = Bitstream(small_layout).frame_digest(rect)
        assert a == b

    def test_frames_differ_after_logic_change(self, small_layout):
        rect = small_layout.device.clb_region
        before = Bitstream(small_layout, include_routing=False).frame_digest(rect)
        netlist = small_layout.packed.netlist
        lut = next(
            i for i in netlist.instances()
            if i.kind.value == "LUT" and i.inputs
        )
        old = lut.params["table"]
        try:
            lut.params = {"table": old ^ 1}
            after = Bitstream(
                small_layout, include_routing=False
            ).frame_digest(rect)
        finally:
            lut.params = {"table": old}
        assert before != after

    def test_empty_region_stable(self, small_layout):
        # a region with no placed CLBs hashes the <empty> markers
        rect = Rect(
            small_layout.device.nx - 1, small_layout.device.ny - 1,
            small_layout.device.nx - 1, small_layout.device.ny - 1,
        )
        digest = Bitstream(small_layout).frame_digest(rect)
        assert isinstance(digest, str) and len(digest) == 64

    def test_frames_for_tiles_length(self, small_layout):
        rects = [Rect(0, 0, 2, 2), Rect(3, 0, 5, 2)]
        frames = frames_for_tiles(small_layout, rects)
        assert len(frames) == 2
