"""The debug service: warm registry, job queue, daemon round-trips.

The service's one invariant is that warm state is a *cache*, never a
semantic input: a daemon answer must be bit-identical (modulo timings
and attempt metadata) to an in-process :func:`run_spec` of the same
spec, whether the warm registry hit or missed.  Everything here — the
invalidation axes, the LRU bound, the fork structural digest, the
cold/warm daemon comparison, worker-death re-queues, restart resume —
is a facet of that invariant.
"""

import contextlib
import json
import os

import pytest

from repro.api.campaign import CampaignResult
from repro.api.design import load_bundle
from repro.api.journal import CampaignJournal, JsonlJournal
from repro.api.pipeline import run_spec
from repro.api.result import RunResult
from repro.api.spec import RunSpec
from repro.resilience.failure import WORKER_STAGE
from repro.service.client import Client, ServiceError
from repro.service.daemon import ReproService, ServiceConfig
from repro.service.queue import DONE, QUEUED, JobQueue
from repro.service.warm import (
    WarmRegistry,
    design_digest,
    fork_bundle,
    warm_key,
)

#: the cheapest spec that actually excites and fixes a bug
#: (error_seed=0 on 9sym never excites — keep seeds >= 1)
FAST = dict(design="9sym", preset="fast", max_probes=6, cache="off",
            error_seed=1)

#: result fields that legitimately differ between two executions of the
#: same spec — wall clock, per-stage timings, attempt bookkeeping
VOLATILE = {"wall_seconds", "timings", "effort", "cache", "attempts",
            "n_commit_cache_hits"}


def stable(result_dict: dict) -> dict:
    """A result dict with the volatile, timing-shaped fields removed."""
    return {k: v for k, v in result_dict.items() if k not in VOLATILE}


def netlist_digest(netlist) -> tuple:
    """Canonical structural signature: tables, wiring, connectivity."""
    insts = tuple(
        (
            inst.name,
            inst.kind.value,
            tuple(n.name for n in inst.inputs),
            inst.output.name if inst.output else None,
            tuple(sorted(inst.params.items())),
        )
        for inst in sorted(netlist.instances(), key=lambda i: i.name)
    )
    nets = tuple(
        (
            net.name,
            net.driver.name if net.driver else None,
            tuple(sorted((i.name, idx) for i, idx in net.sinks)),
        )
        for net in sorted(netlist.nets(), key=lambda n: n.name)
    )
    return insts, nets


@contextlib.contextmanager
def service(tmp_path, **overrides):
    """A running daemon + client against a tmp socket and spool."""
    config = dict(
        socket_path=str(tmp_path / "svc.sock"),
        spool_dir=str(tmp_path / "spool"),
        workers=1,
    )
    config.update(overrides)
    svc = ReproService(ServiceConfig(**config))
    svc.start()
    try:
        yield svc, Client(config["socket_path"])
    finally:
        svc.stop()


# ----------------------------------------------------------------------
# warm registry: keys, invalidation, LRU
# ----------------------------------------------------------------------

def test_warm_key_covers_every_design_axis():
    base = RunSpec(**FAST)
    # error/debug axes do not change what the design *is*: same key
    same = RunSpec(**dict(FAST, error_seed=3, seed=9, strategy="sat",
                          max_probes=2))
    assert warm_key(same) == warm_key(base)
    # any axis feeding bundle or device construction must miss
    for change in (
        dict(preset="thorough"),
        dict(device="XC4005"),
        dict(channel_width=9),
        dict(device_overhead=0.5),
        dict(design="styr"),
        dict(design="random", design_params={"n_gates": 40}),
    ):
        other = RunSpec(**dict(FAST, **change))
        assert warm_key(other) != warm_key(base), change
    # design_params feed the digest half, not the device/preset half
    p1 = RunSpec(**dict(FAST, design="random",
                        design_params={"n_gates": 40}))
    p2 = RunSpec(**dict(FAST, design="random",
                        design_params={"n_gates": 48}))
    assert design_digest(p1) != design_digest(p2)


def test_warm_lookup_hits_and_golden_mutation_invalidates():
    registry = WarmRegistry()
    spec = RunSpec(**FAST)
    entry, hit = registry.lookup(spec)
    assert not hit and registry.misses == 1
    again, hit = registry.lookup(spec)
    assert hit and again is entry and registry.hits == 1
    assert registry.would_hit(spec)
    # the pipeline must never mutate the shared golden; if anything
    # does, the revision guard declares the entry stale
    entry.golden.add_net("warm_guard_probe")
    assert not registry.would_hit(spec)
    rebuilt, hit = registry.lookup(spec)
    assert not hit and rebuilt is not entry
    assert registry.invalidations == 1


def test_forked_bundle_is_structurally_identical_and_mutation_safe():
    registry = WarmRegistry()
    spec = RunSpec(**FAST)
    parts = registry.context_parts(spec)
    cold = load_bundle(spec)
    # structural identity with a cold build — the whole reason a fork
    # can stand in for a rebuild
    assert (netlist_digest(parts["bundle"].packed.netlist)
            == netlist_digest(cold.packed.netlist))
    # but never the pristine object itself: each job gets its own copy
    entry, _ = registry.lookup(spec)
    assert parts["bundle"] is not entry.bundle
    assert parts["bundle"].packed.netlist is not entry.bundle.packed.netlist
    second = fork_bundle(entry.bundle)
    assert second.packed.netlist is not parts["bundle"].packed.netlist
    # the golden *is* shared (read-only) — that is what keeps its
    # compiled kernel warm across jobs
    assert registry.context_parts(spec)["golden"] is parts["golden"]


def test_warm_runs_are_bit_identical_never_stale_replays():
    registry = WarmRegistry()
    spec1 = RunSpec(**FAST)
    spec2 = RunSpec(**dict(FAST, error_seed=2))
    cold1 = run_spec(spec1)
    cold2 = run_spec(spec2)
    warm1 = run_spec(spec1, warm=registry)            # registry miss
    warm2 = run_spec(spec2, warm=registry)            # warm hit
    assert registry.hits >= 1 and registry.misses == 1
    # each warm answer equals its own cold answer — a hit on the seed-1
    # entry must not replay seed-1 artifacts into the seed-2 run
    assert stable(warm1.to_dict()) == stable(cold1.to_dict())
    assert stable(warm2.to_dict()) == stable(cold2.to_dict())
    assert warm2.error_instance == cold2.error_instance


def test_warm_registry_lru_eviction_at_bound():
    registry = WarmRegistry(max_entries=2)
    specs = [RunSpec(**dict(FAST, device_overhead=ov))
             for ov in (0.35, 0.55, 0.75)]
    for spec in specs:
        registry.lookup(spec)
    assert len(registry) == 2
    assert registry.evictions == 1
    # oldest out, newest in
    assert not registry.would_hit(specs[0])
    assert registry.would_hit(specs[1])
    assert registry.would_hit(specs[2])
    # touching an entry refreshes it: next eviction takes the other one
    registry.lookup(specs[1])
    registry.lookup(specs[0])  # rebuild; evicts specs[2], not specs[1]
    assert registry.would_hit(specs[1])
    assert not registry.would_hit(specs[2])
    stats = registry.stats()
    assert stats["entries"] == 2 and stats["evictions"] == 2


# ----------------------------------------------------------------------
# job queue: priorities, dedup, spool resume
# ----------------------------------------------------------------------

def test_queue_priority_dedup_and_fresh():
    queue = JobQueue()
    a = RunSpec(**FAST)
    b = RunSpec(**dict(FAST, error_seed=2))
    job_a, deduped = queue.submit(a)
    assert not deduped
    again, deduped = queue.submit(a)
    assert deduped and again is job_a
    job_b, _ = queue.submit(b, priority=5)
    assert queue.claim(timeout_s=1.0) is job_b  # priority first
    assert queue.claim(timeout_s=1.0) is job_a
    assert queue.claim(timeout_s=0.05) is None  # empty → timeout
    queue.finish(job_a, {"status": "ok"})
    done, deduped = queue.submit(a)
    assert deduped and done.state == DONE
    fresh, deduped = queue.submit(a, fresh=True)
    assert not deduped and fresh is job_a
    assert fresh.state == QUEUED and fresh.result is None
    assert fresh.attempts == 0 and not len(fresh.events)


def test_queue_spool_survives_restart_without_duplicates(tmp_path):
    spool = str(tmp_path / "spool")
    a = RunSpec(**FAST)
    b = RunSpec(**dict(FAST, error_seed=2))
    first = JobQueue(spool_dir=spool)
    first.submit(a)
    first.submit(b)
    claimed = first.claim(timeout_s=1.0)
    first.finish(claimed, {"status": "ok", "marker": 41})

    resumed = JobQueue(spool_dir=spool)
    assert resumed.stats() == {"jobs": 2, "queued": 1, "running": 0,
                               "done": 1}
    # the finished job keeps answering with its journaled result
    kept = resumed.get(claimed.digest)
    assert kept.state == DONE and kept.result["marker"] == 41
    # the unfinished one is re-queued exactly once
    pending = resumed.claim(timeout_s=1.0)
    assert pending.digest == b.digest()
    assert resumed.claim(timeout_s=0.05) is None


# ----------------------------------------------------------------------
# daemon round-trips
# ----------------------------------------------------------------------

def test_daemon_cold_warm_bit_identity_dedup_and_events(tmp_path):
    spec = RunSpec(**FAST)
    local = run_spec(spec)
    with service(tmp_path) as (svc, client):
        assert client.ping()["version"] == 1
        cold = client.run(spec)
        assert not cold["warm"]["hit"]
        assert cold["result"]["status"] == "ok"
        # same digest, no fresh → coalesces onto the done job
        dedup = client.submit(spec)
        assert dedup["deduped"] and dedup["state"] == "done"
        warm = client.run(spec, fresh=True)
        assert warm["warm"]["hit"]
        # the invariant: daemon answers equal the in-process answer,
        # cold and warm alike
        assert stable(cold["result"]) == stable(local.to_dict())
        assert stable(warm["result"]) == stable(local.to_dict())
        # the event stream replays the pipeline's progress and ends
        # with the done sentinel
        events = list(client.events(cold["job"]))
        kinds = [e.get("event") for e in events]
        assert "stage_start" in kinds and "commit" in kinds
        assert kinds[-1] == "done"
        assert events[-1]["status"] == "ok"
        stats = client.stats()
        assert stats["queue"]["done"] == 1
        assert stats["workers"][0]["jobs_done"] == 2


def test_daemon_worker_death_requeues_once_and_completes(tmp_path):
    # the fault SIGKILLs the worker in localize on the first dispatch;
    # its finite fires-budget died with that process, so the re-queued
    # attempt runs clean
    spec = RunSpec(**dict(FAST, chaos={"faults": [
        {"kind": "worker_kill", "stage": "localize", "fires": 1}]}))
    with service(tmp_path) as (svc, client):
        response = client.run(spec, timeout_s=300.0)
        assert response["result"]["status"] == "ok"
        assert response["attempts"] == 2
        events = list(client.events(response["job"]))
        requeues = [e for e in events if e.get("event") == "requeued"]
        assert len(requeues) == 1
        assert requeues[0]["error"] == "WorkerCrashed"
        assert svc.workers[0].deaths == 1


def test_daemon_persistent_death_folds_into_worker_failure(tmp_path):
    # fires: null — the fault survives re-dispatch, so the job kills
    # every worker it touches and must settle as failed, carrying one
    # stage-"worker" failure per death
    spec = RunSpec(**dict(FAST, chaos={"faults": [
        {"kind": "worker_kill", "stage": "localize", "fires": None}]}))
    with service(tmp_path, max_requeues=1) as (svc, client):
        response = client.run(spec, timeout_s=300.0)
        result = response["result"]
        assert result["status"] == "failed"
        assert len(result["failures"]) == 2
        assert all(f["stage"] == WORKER_STAGE
                   for f in result["failures"])
        assert all(f["error"] == "WorkerCrashed"
                   for f in result["failures"])


def test_daemon_restart_resumes_spool_without_duplicates(tmp_path):
    spool = str(tmp_path / "spool")
    specs = [RunSpec(**FAST), RunSpec(**dict(FAST, error_seed=2))]
    digests = [s.digest() for s in specs]

    # a daemon with no workers accepts work but cannot run it — the
    # jobs land in the spool and stay there across stop()
    with service(tmp_path, spool_dir=spool, workers=0) as (svc, client):
        for spec in specs:
            accepted = client.submit(spec)
            assert accepted["state"] == "queued"
        with pytest.raises(ServiceError, match="not finished"):
            client.result(digests[0])

    # restart with a worker: the spool replays, both jobs complete
    with service(tmp_path, spool_dir=spool, workers=1) as (svc, client):
        for digest, spec in zip(digests, specs):
            response = client.wait(digest, timeout_s=300.0)
            assert response["result"]["status"] == "ok"
            assert response["result"]["spec"]["error_seed"] == \
                spec.error_seed

    # each job finished exactly once — no duplicate executions
    records = JsonlJournal(os.path.join(spool, "results.jsonl")).records()
    assert sorted(r["digest"] for r in records) == sorted(digests)

    # a third start answers from the journal without any worker at all
    with service(tmp_path, spool_dir=spool, workers=0) as (svc, client):
        for digest in digests:
            assert client.result(digest)["result"]["status"] == "ok"
        assert client.stats()["queue"] == {
            "jobs": 2, "queued": 0, "running": 0, "done": 2,
        }


# ----------------------------------------------------------------------
# CLI satellites: report over directories, consistent summaries
# ----------------------------------------------------------------------

def test_campaign_summary_line_prints_executor_and_workers():
    empty = CampaignResult(wall_seconds=2.0, workers=4,
                           executor="process")
    assert empty.summary_line() == (
        "0 runs, 0 detected, 0 localized, 0 fixed "
        "(2.0s, process executor, 4 workers)"
    )
    solo = CampaignResult(wall_seconds=0.5)
    assert solo.summary_line().endswith("(0.5s, thread executor, "
                                        "1 worker)")


def test_report_accepts_a_directory_of_results(tmp_path, capsys):
    from repro.api.cli import main

    spec = RunSpec(**FAST)
    result = run_spec(spec)

    report_dir = tmp_path / "results"
    report_dir.mkdir()
    # one bare RunResult JSON ...
    (report_dir / "single.json").write_text(
        json.dumps(result.to_dict())
    )
    # ... one campaign JSON ...
    campaign = CampaignResult(results=[result], wall_seconds=1.5,
                              workers=3, executor="process")
    (report_dir / "campaign.json").write_text(
        json.dumps(campaign.to_dict())
    )
    # ... and one journal, as `campaign --journal` / the service write
    journal = CampaignJournal(str(report_dir / "journal.jsonl"))
    journal.append(spec, result)
    (report_dir / "notes.txt").write_text("ignored")

    assert main(["report", str(report_dir)]) == 0
    out = capsys.readouterr().out
    # campaign and report print the identical summary line
    assert campaign.summary_line() in out
    assert "process executor, 3 workers" in out
    assert "3 results" in out and "across 3 files" in out
    assert out.count("9sym") == 3


def test_daemon_forwards_spans_when_traced_and_serves_metrics(tmp_path):
    """`submit trace:true` streams span lines; `stats metrics` exposes
    the merged per-job metric deltas in Prometheus text format."""
    from repro.obs.metrics import METRICS

    spec = RunSpec(**FAST)
    # the daemon's registry is this process's METRICS; earlier tests
    # may have written to it, so assert on the delta, not absolutes
    before = METRICS.snapshot()
    with service(tmp_path) as (svc, client):
        plain = client.run(spec)
        assert plain["result"]["status"] == "ok"
        plain_kinds = {e.get("event")
                       for e in client.events(plain["job"])}
        assert "span_start" not in plain_kinds  # untraced job: no spans

        traced = client.submit(spec, fresh=True, trace=True)
        client.wait(traced["job"])
        events = list(client.events(traced["job"]))
        starts = [e for e in events if e.get("event") == "span_start"]
        ends = [e for e in events if e.get("event") == "span_end"]
        names = {e["name"] for e in starts}
        assert {"run", "detect", "diagnose", "round", "localize",
                "verify"} <= names
        assert len(starts) == len(ends)
        run_end = next(e for e in ends if e["name"] == "run")
        assert run_end["status"] == "ok"
        assert run_end["seconds"] > 0
        assert run_end["attrs"]["rounds"] == 1

        stats = client.stats(metrics=True)
        text = stats["metrics_text"]
        assert text.endswith("\n")
        for line in text.strip().splitlines():
            assert line.startswith("#") or " " in line, line
        for name in ("repro_runs_total", "repro_probes_total",
                     "repro_service_jobs_total",
                     "repro_warm_registry_hits_total",
                     "repro_queue_depth", "repro_stage_seconds_bucket"):
            assert any(line.startswith(name)
                       for line in text.splitlines()), name
        # worker per-job deltas merged into the daemon registry:
        # exactly these two jobs' worth of counters landed
        grew = {
            (c["name"], tuple(sorted(c["labels"].items()))): c["value"]
            for c in METRICS.delta(before)["counters"]
        }
        assert grew[("repro_runs_total", (("status", "ok"),))] == 2.0
        assert grew[
            ("repro_service_jobs_total", (("status", "ok"),))
        ] == 2.0
        assert grew[("repro_probes_total", ())] > 0
        # the fresh re-submit hit the worker's warm registry
        assert grew[("repro_warm_registry_hits_total", ())] == 1.0
        # a plain stats answer has no exposition payload
        assert "metrics_text" not in client.stats()
