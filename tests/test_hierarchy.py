"""Design-hierarchy tree and back-annotation queries."""

import pytest

from repro.errors import NetlistError
from repro.netlist import HierNode, build_flat_hierarchy
from tests.conftest import make_adder_netlist


def sample_tree():
    root = HierNode("chip")
    alu = root.add_child("alu")
    alu.assign(["add0", "add1"])
    ctl = root.add_child("control")
    ctl.assign(["dec0"])
    sub = alu.add_child("carry")
    sub.assign(["cy0"])
    return root


def test_paths():
    root = sample_tree()
    assert root.path() == "<root>"
    assert root.find("alu/carry").path() == "alu/carry"


def test_ensure_path_creates_once():
    root = HierNode("chip")
    node = root.ensure_path("a/b/c")
    assert root.ensure_path("a/b/c") is node


def test_duplicate_child_rejected():
    root = sample_tree()
    with pytest.raises(NetlistError):
        root.add_child("alu")


def test_all_instances_subtree():
    root = sample_tree()
    assert root.find("alu").all_instances() == {"add0", "add1", "cy0"}
    assert root.all_instances() == {"add0", "add1", "cy0", "dec0"}


def test_functional_block_of():
    root = sample_tree()
    assert root.functional_block_of("cy0").name == "alu"
    assert root.functional_block_of("dec0").name == "control"
    with pytest.raises(NetlistError):
        root.functional_block_of("nope")


def test_node_of_finds_deepest_owner():
    root = sample_tree()
    assert root.node_of("cy0").path() == "alu/carry"


def test_check_covers_reports_gaps():
    netlist = make_adder_netlist(2)
    root = HierNode(netlist.name)
    root.add_child("half").assign(
        [netlist.logic_instances()[0].name]
    )
    problems = root.check_covers(netlist)
    assert problems  # most instances unassigned


def test_adopt_new_instances():
    netlist = make_adder_netlist(2)
    root = build_flat_hierarchy(netlist)
    assert not root.check_covers(netlist)
    # new logic appears (e.g. instrumentation)
    new_net = netlist.add_gate(
        __import__("repro.netlist.cells", fromlist=["CellKind"]).CellKind.NOT,
        [netlist.net("a[0]")],
    )
    adopted = root.adopt_new_instances(netlist, node_path="block0")
    assert adopted == 1
    assert not root.check_covers(netlist)


def test_flat_hierarchy_block_count():
    netlist = make_adder_netlist(4)
    root = build_flat_hierarchy(netlist, n_blocks=3)
    assert len(root.functional_blocks()) == 3
    assert root.all_instances() == {
        i.name for i in netlist.logic_instances()
    }
