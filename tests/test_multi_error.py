"""The multi-error debug loop: injection sets, grouped localization,
the diagnose→fix→re-detect rounds, cardinality-k SAT pruning, joint
CEGIS, and observation-point retirement."""

import itertools
import json

import pytest

from repro.api import RunSpec, expand_matrix, run_spec
from repro.api.cli import main as cli_main
from repro.debug.correct import apply_correction, synthesize_lut_fix
from repro.debug.detect import compare_runs
from repro.debug.errors import (
    ERROR_KINDS,
    inject_error,
    inject_errors,
)
from repro.debug.instrument import (
    add_observation_point,
    remove_observation_points,
)
from repro.debug.testgen import random_stimulus
from repro.errors import DebugFlowError, SpecError
from repro.generators import build_design
from repro.netlist.core import port_name
from repro.netlist.simulate import initial_state, make_engine, replay_outputs
from repro.sat.cnf import CNF, add_at_most_k
from repro.sat.diagnose import SuspectPruner
from repro.sat.solver import Solver

FAST = dict(preset="fast", max_probes=6, cache="private")


def netlist_digest(netlist) -> tuple:
    """Canonical structural signature: tables, wiring, connectivity."""
    insts = tuple(
        (
            inst.name,
            inst.kind.value,
            tuple(n.name for n in inst.inputs),
            inst.output.name if inst.output else None,
            tuple(sorted(inst.params.items())),
        )
        for inst in sorted(netlist.instances(), key=lambda i: i.name)
    )
    nets = tuple(
        (
            net.name,
            net.driver.name if net.driver else None,
            tuple(sorted((i.name, idx) for i, idx in net.sinks)),
        )
        for net in sorted(netlist.nets(), key=lambda n: n.name)
    )
    return insts, nets


# ----------------------------------------------------------------------
# injection
# ----------------------------------------------------------------------

class TestInjectErrors:
    @pytest.mark.parametrize("kind", ERROR_KINDS)
    def test_k1_shim_is_bit_identical(self, kind):
        a = build_design("styr").packed.netlist
        b = build_design("styr").packed.netlist
        rec_single = inject_error(a, kind, seed=5)
        [rec_multi] = inject_errors(b, [kind], seed=5)
        assert (rec_single.kind, rec_single.instance, rec_single.detail,
                rec_single.undo) == (
            rec_multi.kind, rec_multi.instance, rec_multi.detail,
            rec_multi.undo)
        assert netlist_digest(a) == netlist_digest(b)

    def test_k3_distinct_instances(self):
        netlist = build_design("styr").packed.netlist
        records = inject_errors(
            netlist, ["table_bit", "output_invert", "wrong_source"], seed=2
        )
        names = [r.instance for r in records]
        assert len(set(names)) == 3

    def test_single_kind_broadcasts(self):
        netlist = build_design("9sym").packed.netlist
        records = inject_errors(netlist, "table_bit", seed=1, n_errors=3)
        assert [r.kind for r in records] == ["table_bit"] * 3
        assert len({r.instance for r in records}) == 3

    def test_kind_count_mismatch_rejected(self):
        netlist = build_design("9sym").packed.netlist
        with pytest.raises(DebugFlowError):
            inject_errors(netlist, ["table_bit", "input_swap"], n_errors=3)
        with pytest.raises(DebugFlowError):
            inject_errors(netlist, "table_bit", n_errors=0)
        with pytest.raises(DebugFlowError):
            inject_errors(netlist, ["nonesuch"])

    def test_second_wrong_source_is_deterministic(self):
        """The candidate pool of a second injection into an already-
        mutated netlist is a pure function of the netlist state."""
        def run():
            netlist = build_design("styr").packed.netlist
            return inject_errors(
                netlist, ["wrong_source", "wrong_source"], seed=7
            )

        first, second = run(), run()
        assert [(r.instance, r.detail, r.undo) for r in first] == [
            (r.instance, r.detail, r.undo) for r in second
        ]
        assert first[0].instance != first[1].instance

    def test_wrong_source_stays_cycle_safe_when_stacked(self):
        netlist = build_design("styr").packed.netlist
        inject_errors(netlist, ["wrong_source"] * 3, seed=3)
        netlist.topo_order()  # raises ValidationError on a cycle


# ----------------------------------------------------------------------
# undo: apply_correction exactly reverses every kind
# ----------------------------------------------------------------------

class TestCorrectionUndo:
    @pytest.mark.parametrize("kind", ERROR_KINDS)
    @pytest.mark.parametrize("seed", [0, 3])
    def test_k1_every_kind_round_trips(self, kind, seed):
        netlist = build_design("styr").packed.netlist
        before = netlist_digest(netlist)
        record = inject_error(netlist, kind, seed=seed)
        assert netlist_digest(netlist) != before  # injection did change it
        apply_correction(netlist, record)
        assert netlist_digest(netlist) == before

    @pytest.mark.parametrize("seed", [1, 4, 9])
    def test_k3_stack_undoes_in_reverse(self, seed):
        kinds = ["wrong_source", "input_swap", "table_bit"]
        netlist = build_design("styr").packed.netlist
        before = netlist_digest(netlist)
        records = inject_errors(netlist, kinds, seed=seed)
        assert netlist_digest(netlist) != before
        for record in reversed(records):
            apply_correction(netlist, record)
        assert netlist_digest(netlist) == before

    def test_k3_all_same_kind_round_trips(self):
        for kind in ("table_bit", "output_invert", "wrong_function"):
            netlist = build_design("9sym").packed.netlist
            before = netlist_digest(netlist)
            records = inject_errors(netlist, kind, seed=2, n_errors=3)
            for record in reversed(records):
                apply_correction(netlist, record)
            assert netlist_digest(netlist) == before


# ----------------------------------------------------------------------
# observation-point removal
# ----------------------------------------------------------------------

class TestObservationPointRemoval:
    def test_add_then_remove_restores_netlist(self):
        netlist = build_design("styr").packed.netlist
        before = netlist_digest(netlist)
        nets = sorted(
            n.name for n in netlist.nets() if n.driver is not None
            and not n.driver.is_io
        )[:5]
        added, outputs = add_observation_point(
            netlist, nets, "probe0", sticky=True
        )
        assert netlist_digest(netlist) != before
        removed = remove_observation_points(netlist, ["probe0"])
        assert removed.removed_instances == added.new_instances
        assert netlist_digest(netlist) == before

    def test_removal_only_touches_named_point(self):
        netlist = build_design("9sym").packed.netlist
        nets = sorted(
            n.name for n in netlist.nets() if n.driver is not None
            and not n.driver.is_io
        )
        add_observation_point(netlist, nets[:2], "keep", sticky=False)
        mid = netlist_digest(netlist)
        add_observation_point(netlist, nets[2:4], "drop", sticky=False)
        remove_observation_points(netlist, ["drop"])
        assert netlist_digest(netlist) == mid

    def test_unknown_name_is_a_noop(self):
        netlist = build_design("9sym").packed.netlist
        changes = remove_observation_points(netlist, ["nonesuch"])
        assert changes.is_empty


# ----------------------------------------------------------------------
# cardinality constraint
# ----------------------------------------------------------------------

class TestAtMostK:
    @pytest.mark.parametrize("n,k", [(3, 1), (4, 2), (5, 3), (4, 4)])
    def test_matches_brute_force(self, n, k):
        cnf = CNF()
        lits = [cnf.new_var() for _ in range(n)]
        add_at_most_k(cnf, lits, k)
        solver = Solver(cnf, seed=1)
        for bits in itertools.product([False, True], repeat=n):
            assumptions = [
                var if bit else -var for var, bit in zip(lits, bits)
            ]
            expected = sum(bits) <= k
            assert solver.solve(assumptions) == expected, (bits, k)

    def test_zero_forces_all_false(self):
        cnf = CNF()
        lits = [cnf.new_var() for _ in range(3)]
        add_at_most_k(cnf, lits, 0)
        solver = Solver(cnf, seed=1)
        assert solver.solve()
        assert not solver.solve([lits[1]])


# ----------------------------------------------------------------------
# cardinality-k pruner soundness
# ----------------------------------------------------------------------

def _golden_history(golden, stimulus, n_patterns):
    comb = make_engine(golden, "compiled")
    state = initial_state(golden, n_patterns)
    names = {port_name(pi) for pi in golden.primary_inputs()}
    flops = golden.flip_flops()
    history = []
    for cycle_in in stimulus:
        values = comb.probe(
            {n: cycle_in.get(n, 0) for n in names}, n_patterns, state
        )
        history.append(values)
        state = {ff.name: values[ff.inputs[0].name] for ff in flops}
    return history


def _double_fault_case(design, seed, n_patterns=32, n_cycles=4):
    """(dut, golden, stimulus, mismatches, history, truth) or None."""
    bundle = build_design(design)
    netlist = bundle.packed.netlist
    golden = netlist.copy(netlist.name + ".golden")
    records = inject_errors(netlist, "table_bit", seed=seed, n_errors=2)
    stimulus = random_stimulus(golden, n_cycles, n_patterns, seed=1)
    mismatches = compare_runs(
        replay_outputs(netlist, stimulus, n_patterns),
        replay_outputs(golden, stimulus, n_patterns),
    )
    if not mismatches:
        return None
    history = _golden_history(golden, stimulus, n_patterns)
    truth = {r.instance for r in records}
    return netlist, golden, stimulus, mismatches, history, truth


class TestPrunerSoundness:
    def test_never_eliminates_true_error_instances(self):
        """Across >= 20 seeded double injections, the cardinality-k
        pruner must never eliminate a true error instance, and a
        refuted k-subset must never contain the whole true error set."""
        checked = 0
        for design in ("9sym", "styr", "sand"):
            for seed in range(10):
                case = _double_fault_case(design, seed)
                if case is None:
                    continue
                dut, golden, stimulus, mismatches, history, truth = case
                candidates = {
                    i.name for i in dut.instances()
                    if not i.is_io and not i.is_ff and i.output is not None
                    and golden.has_instance(i.name)
                }
                pruner = SuspectPruner(
                    dut, golden, stimulus, mismatches, history,
                    seed=seed, n_errors=2, max_checks=6,
                )
                eliminated = pruner.prune(candidates, [])
                assert not (eliminated & truth), (
                    design, seed, eliminated & truth
                )
                _feasible, refuted = pruner.rank_pairs(candidates, [])
                for pair in refuted:
                    assert set(pair) != truth, (design, seed, pair)
                checked += 1
        assert checked >= 20, f"only {checked} detectable double faults"

    def test_k1_mode_unchanged(self):
        case = _double_fault_case("9sym", 1)
        assert case is not None
        dut, golden, stimulus, mismatches, history, truth = case
        pruner = SuspectPruner(
            dut, golden, stimulus, mismatches, history, seed=1, n_errors=1,
        )
        # single-fault mode still runs the legacy one-hot queries
        pruner.prune({next(iter(truth)), "nonesuch"} | truth, [])
        assert pruner.n_checks >= 1


# ----------------------------------------------------------------------
# joint CEGIS
# ----------------------------------------------------------------------

def _two_fault_toy():
    """out = (a&b) | (c&d) with both AND tables corrupted.

    No single retable repairs it: with ``g2`` stuck at NAND the output
    is forced high whenever ``c&d == 0``, and with ``g1`` stuck at OR
    it is forced high whenever ``a|b``, so each fault's effect is
    observable outside the other LUT's control.
    """
    from repro.netlist.core import Netlist

    def build():
        n = Netlist("toy2")
        a, b, c, d = (n.add_input(x) for x in "abcd")
        g1 = n.add_lut([a, b], 0b1000, name="g1")
        g2 = n.add_lut([c, d], 0b1000, name="g2")
        g3 = n.add_lut([g1.output, g2.output], 0b1110, name="g3")
        n.add_output("out", g3.output)
        return n

    golden = build()
    dut = build()
    dut.set_params(dut.instance("g1"), {"table": 0b1110})  # became OR
    dut.set_params(dut.instance("g2"), {"table": 0b0111})  # became NAND
    return dut, golden


class TestJointCegis:
    def test_pair_repairs_what_singles_cannot(self):
        dut, golden = _two_fault_toy()
        n_patterns = 16
        stimulus = [{
            name: sum(
                ((p >> i) & 1) << p for p in range(16)
            )
            for i, name in enumerate("abcd")
        }]
        mismatches = compare_runs(
            replay_outputs(dut, stimulus, n_patterns),
            replay_outputs(golden, stimulus, n_patterns),
        )
        assert mismatches
        single = synthesize_lut_fix(
            dut.copy("single"), golden, ["g1", "g2"], mismatches,
            stimulus, n_patterns, max_luts=1,
        )
        # neither AND alone can express OR^AND over the exhaustive set
        assert single is None
        joint = synthesize_lut_fix(
            dut, golden, ["g1", "g2"], mismatches, stimulus, n_patterns,
            max_luts=2,
        )
        assert joint is not None
        assert sorted(joint.instances) == ["g1", "g2"]
        assert not compare_runs(
            replay_outputs(dut, stimulus, n_patterns),
            replay_outputs(golden, stimulus, n_patterns),
        )

    def test_single_candidate_path_unchanged(self):
        dut, golden = _two_fault_toy()
        # fix g2 by hand; then g1 alone is a single-LUT repair
        dut.set_params(dut.instance("g2"), {"table": 0b1000})
        n_patterns = 16
        stimulus = [{
            name: sum(((p >> i) & 1) << p for p in range(16))
            for i, name in enumerate("abcd")
        }]
        mismatches = compare_runs(
            replay_outputs(dut, stimulus, n_patterns),
            replay_outputs(golden, stimulus, n_patterns),
        )
        fix = synthesize_lut_fix(
            dut, golden, ["g1"], mismatches, stimulus, n_patterns,
        )
        assert fix is not None and fix.instances == ["g1"]
        assert fix.table == 0b1000


# ----------------------------------------------------------------------
# spec / CLI / matrix plumbing
# ----------------------------------------------------------------------

class TestMultiErrorSpec:
    def test_round_trip(self):
        spec = RunSpec(
            design="9sym", n_errors=2,
            error_kinds=["table_bit", "input_swap"], max_rounds=3,
            **FAST,
        )
        restored = RunSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.resolved_error_kinds() == [
            "table_bit", "input_swap",
        ]
        assert restored.effective_max_rounds() == 3

    def test_defaults_resolve(self):
        spec = RunSpec(n_errors=3)
        assert spec.resolved_error_kinds() == ["table_bit"] * 3
        assert spec.effective_max_rounds() == 3
        assert RunSpec().effective_max_rounds() == 1

    @pytest.mark.parametrize("overrides", [
        {"n_errors": 0},
        {"n_errors": "two"},
        {"max_rounds": 0},
        {"error_kinds": []},
        {"error_kinds": ["nonesuch"]},
        {"n_errors": 1, "error_kinds": ["table_bit", "input_swap"]},
    ])
    def test_validation_rejects(self, overrides):
        with pytest.raises(SpecError):
            RunSpec(**overrides)

    def test_expand_matrix_n_errors_axis(self):
        base = RunSpec(design="9sym", **FAST)
        specs = expand_matrix(base, n_errors=[1, 2, 3])
        assert [s.n_errors for s in specs] == [1, 2, 3]
        # an explicit kind list on the base must not pin the axis count
        pinned = RunSpec(design="9sym", n_errors=2,
                         error_kinds=["table_bit", "input_swap"], **FAST)
        specs = expand_matrix(pinned, n_errors=[1, 3])
        assert [s.n_errors for s in specs] == [1, 3]
        assert all(s.error_kinds is None for s in specs)


# ----------------------------------------------------------------------
# the diagnose→fix→re-detect loop, end to end
# ----------------------------------------------------------------------

class TestMultiErrorPipeline:
    def test_k1_reproduces_single_pass_run(self):
        """Explicit n_errors=1 (even with round budget to spare) is the
        historical pipeline bit-for-bit."""
        legacy = run_spec(RunSpec(design="9sym", error_seed=1, **FAST))
        multi = run_spec(RunSpec(design="9sym", error_seed=1, n_errors=1,
                                 max_rounds=3, **FAST))
        assert legacy.trajectory_key() == multi.trajectory_key()
        assert legacy.candidates == multi.candidates
        assert legacy.n_commits == multi.n_commits
        assert multi.n_rounds == 1

    def test_k2_two_round_loop(self):
        result = run_spec(RunSpec(design="9sym", error_seed=6, n_errors=2,
                                  **FAST))
        assert result.detected and result.fixed
        assert result.n_errors_injected == 2 and len(result.errors) == 2
        assert result.n_rounds == 2
        assert result.localized
        assert set(result.errors_found) == {
            e["instance"] for e in result.errors
        }
        # every probe record names its round; rounds partition them
        assert {p["round"] for p in result.probe_trajectory} == {1, 2}
        assert sum(r["n_probes"] for r in result.rounds) == result.n_probes
        # round 2 retired round 1's probes before probing afresh
        assert result.rounds[1]["probes_retired"] > 0
        assert result.rounds[0]["residual_mismatches"] > 0
        assert result.rounds[1]["residual_mismatches"] == 0
        assert result.residual_mismatches == 0

    def test_k2_engines_bit_identical(self):
        compiled = run_spec(RunSpec(design="9sym", error_seed=6, n_errors=2,
                                    engine="compiled", **FAST))
        interpreted = run_spec(RunSpec(design="9sym", error_seed=6,
                                       n_errors=2, engine="interpreted",
                                       **FAST))
        assert compiled.trajectory_key() == interpreted.trajectory_key()
        assert compiled.candidates == interpreted.candidates
        assert compiled.rounds == interpreted.rounds

    def test_k2_prove_verdict(self):
        result = run_spec(RunSpec(design="9sym", error_seed=6, n_errors=2,
                                  verify="prove", **FAST))
        assert result.fixed and result.proved
        assert result.n_rounds == 2

    def test_k2_sat_strategy_prunes_soundly(self):
        result = run_spec(RunSpec(design="9sym", error_seed=6, n_errors=2,
                                  strategy="sat", verify="prove", **FAST))
        assert result.fixed and result.proved
        # SAT eliminations never touched the true error instances
        found = {e["instance"] for e in result.errors}
        assert set(result.errors_found) == found

    def test_k2_drained_round_falls_back_to_oracle(self):
        result = run_spec(RunSpec(design="s9234", error_seed=4, n_errors=2,
                                  verify="prove", **FAST))
        assert result.fixed and result.proved
        assert any(r["drained"] for r in result.rounds)
        assert any("back-annotating" in n for n in result.notes)

    def test_k2_result_json_round_trip(self):
        from repro.api import RunResult

        result = run_spec(RunSpec(design="9sym", error_seed=6, n_errors=2,
                                  **FAST))
        restored = RunResult.from_dict(json.loads(result.to_json()))
        assert restored.to_dict() == result.to_dict()
        assert restored.rounds == result.rounds
        assert restored.errors == result.errors

    def test_budget_exhaustion_reports_residual(self):
        result = run_spec(RunSpec(design="9sym", error_seed=6, n_errors=2,
                                  max_rounds=1, preset="fast", max_probes=6,
                                  cache="private"))
        assert result.n_rounds == 1
        assert not result.fixed
        assert result.residual_mismatches > 0


class TestMultiErrorCli:
    def test_run_flags(self, capsys):
        code = cli_main([
            "run", "--design", "9sym", "--error-seed", "6",
            "--n-errors", "2", "--preset", "fast", "--max-probes", "6",
            "--cache", "private", "--json", "-",
        ])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["n_errors_injected"] == 2
        assert data["n_rounds"] >= 2
        assert data["fixed"] is True
        assert data["spec"]["n_errors"] == 2

    def test_error_kinds_list_implies_count(self, capsys):
        code = cli_main([
            "run", "--design", "9sym", "--error-seed", "6",
            "--error-kinds-list", "table_bit,table_bit",
            "--preset", "fast", "--max-probes", "6",
            "--cache", "private", "--json", "-",
        ])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["spec"]["n_errors"] == 2
        assert data["spec"]["error_kinds"] == ["table_bit", "table_bit"]
