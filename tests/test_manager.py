"""TiledLayout: creation, Figure 3/4 models, changeset commits, lock."""

import pytest

from repro.arch import pick_device
from repro.emu import frames_for_tiles
from repro.errors import TilingError
from repro.netlist.cells import CellKind
from repro.pnr import EFFORT_PRESETS
from repro.synth import map_to_luts, pack_netlist
from repro.tiling import TiledLayout, TilingOptions
from repro.tiling.eco import ChangeRecorder
from tests.conftest import make_adder_netlist


@pytest.fixture()
def tiled_ctx():
    netlist = make_adder_netlist(10, registered=True)
    mapped = map_to_luts(netlist)
    packed = pack_netlist(mapped)
    device = pick_device(packed.n_clbs, area_overhead=0.6,
                         min_io=len(packed.io_blocks()) + 8)
    tiled = TiledLayout.create(
        packed, device, TilingOptions(n_tiles=4, area_overhead=0.3),
        seed=2, preset=EFFORT_PRESETS["fast"],
    )
    return mapped, packed, tiled


class TestCreation:
    def test_all_blocks_in_tiles(self, tiled_ctx):
        mapped, packed, tiled = tiled_ctx
        assert sum(t.used for t in tiled.tiles) == packed.n_clbs

    def test_placement_respects_tiles(self, tiled_ctx):
        mapped, packed, tiled = tiled_ctx
        for tile in tiled.tiles:
            for b in tile.blocks:
                assert tile.rect.contains(*tiled.layout.placement.site_of(b))

    def test_stats_overhead(self, tiled_ctx):
        mapped, packed, tiled = tiled_ctx
        stats = tiled.stats()
        assert stats.total_used == packed.n_clbs
        assert stats.area_overhead > 0.1

    def test_tile_of_instance(self, tiled_ctx):
        mapped, packed, tiled = tiled_ctx
        lut = next(i for i in mapped.instances() if i.kind is CellKind.LUT)
        assert 0 <= tiled.tile_of_instance(lut.name) < len(tiled.tiles)
        with pytest.raises(TilingError):
            tiled.tile_of_instance("nonexistent")


class TestFigureModels:
    def test_affected_tiles_monotone_in_size(self, tiled_ctx):
        mapped, packed, tiled = tiled_ctx
        counts = [
            len(tiled.affected_tiles_for_logic(k, 0))
            for k in range(0, tiled.total_slack() + 1,
                           max(1, tiled.total_slack() // 5))
        ]
        assert all(b >= a for a, b in zip(counts, counts[1:]))

    def test_small_logic_affects_one_tile(self, tiled_ctx):
        mapped, packed, tiled = tiled_ctx
        slack0 = tiled.tiles[0].slack
        if slack0 == 0:
            pytest.skip("tile 0 has no slack")
        assert tiled.affected_tiles_for_logic(slack0, 0) == [0]

    def test_oversized_logic_raises(self, tiled_ctx):
        mapped, packed, tiled = tiled_ctx
        with pytest.raises(TilingError):
            tiled.affected_tiles_for_logic(tiled.total_slack() + 1, 0)

    def test_max_logic_decreases_with_points(self, tiled_ctx):
        mapped, packed, tiled = tiled_ctx
        budgets = [tiled.max_logic_for_test_points(p) for p in (1, 2, 4, 8, 16)]
        assert all(b >= a for a, b in zip(budgets[1:], budgets))
        assert budgets[0] == max(t.slack for t in tiled.tiles)


class TestCommits:
    def _flip_lut(self, mapped):
        lut = next(
            i for i in mapped.instances()
            if i.kind is CellKind.LUT and i.inputs
        )
        with ChangeRecorder(mapped, "flip") as rec:
            size = 1 << len(lut.inputs)
            lut.params = {"table": lut.params["table"] ^ (size - 1)}
        return lut, rec.changes

    def test_commit_confines_frames(self, tiled_ctx):
        mapped, packed, tiled = tiled_ctx
        rects = [t.rect for t in tiled.tiles]
        before = frames_for_tiles(tiled.layout, rects)
        lut, changes = self._flip_lut(mapped)
        report = tiled.apply_changeset(
            changes, seed=4, preset=EFFORT_PRESETS["fast"],
        )
        after = frames_for_tiles(tiled.layout, rects)
        diffs = {
            i for i, (x, y) in enumerate(zip(before, after)) if x != y
        }
        assert diffs <= set(report.affected_tiles)

    def test_commit_reports_effort(self, tiled_ctx):
        mapped, packed, tiled = tiled_ctx
        lut, changes = self._flip_lut(mapped)
        report = tiled.apply_changeset(
            changes, seed=4, preset=EFFORT_PRESETS["fast"],
        )
        assert report.effort.work_units > 0
        assert report.effort.invocations == 1

    def test_commit_with_new_logic_expands_when_needed(self, tiled_ctx):
        mapped, packed, tiled = tiled_ctx
        from repro.debug.instrument import test_logic_block

        anchor = next(
            i for i in mapped.instances() if i.kind is CellKind.LUT
        )
        slack0 = tiled.tiles[tiled.tile_of_instance(anchor.name)].slack
        changes = test_logic_block(
            mapped, n_clbs=slack0 + 2, attach_net=anchor.output.name,
            name="big",
        )
        report = tiled.apply_changeset(
            changes, seed=5, preset=EFFORT_PRESETS["fast"],
            anchor_instance=anchor.name,
        )
        assert report.expanded
        assert len(report.affected_tiles) >= 2

    def test_commit_keeps_layout_legal(self, tiled_ctx):
        mapped, packed, tiled = tiled_ctx
        lut, changes = self._flip_lut(mapped)
        tiled.apply_changeset(changes, seed=6, preset=EFFORT_PRESETS["fast"])
        tiled.layout.placement.check_complete()
        # every net still fully connected
        for idx, tree in tiled.layout.routes.items():
            net = packed.nets[idx]
            assert tiled.layout.placement.site_of(net.driver) in tree.cells
            for sink in net.sinks:
                assert tiled.layout.placement.site_of(sink) in tree.cells
