"""Levelized simulation engines."""

import pytest

from repro.errors import NetlistError
from repro.netlist import (
    CellKind,
    CombinationalSimulator,
    Netlist,
    NetlistBuilder,
    SequentialSimulator,
    simulate_words,
)


def test_missing_stimulus_raises(adder4):
    with pytest.raises(NetlistError):
        simulate_words(adder4, {"a[0]": 1}, 1)


def test_bit_parallel_equals_serial(adder4):
    ins_parallel = {f"a[{i}]": 0b1010 >> i & 1 and 0b1111 for i in range(4)}
    # simpler: two explicit patterns
    ins = {f"a[{i}]": 0 for i in range(4)} | {f"b[{i}]": 0 for i in range(4)}
    ins["a[0]"] = 0b01  # pattern0: a=1; pattern1: a=0
    ins["b[0]"] = 0b10  # pattern0: b=0; pattern1: b=1
    out = simulate_words(adder4, ins, 2)
    # both patterns sum to 1
    assert out["s[0]"] == 0b11
    assert out["cout"] == 0


def test_probe_returns_internal_nets(adder4):
    sim = CombinationalSimulator(adder4)
    ins = {f"a[{i}]": 0 for i in range(4)} | {f"b[{i}]": 0 for i in range(4)}
    values = sim.probe(ins, 1)
    assert len(values) > 8  # internal nets included


def test_sequential_state_advances(adder4_registered):
    sim = SequentialSimulator(adder4_registered)
    ins = {f"a[{i}]": (3 >> i) & 1 for i in range(4)}
    ins |= {f"b[{i}]": (2 >> i) & 1 for i in range(4)}
    first = sim.step(ins)
    # registered outputs show the reset value on the first cycle
    assert sum(first[f"s[{i}]"] << i for i in range(4)) == 0
    second = sim.step(ins)
    assert sum(second[f"s[{i}]"] << i for i in range(4)) == 5


def test_reset_restores_init():
    n = Netlist("t")
    b = NetlistBuilder(n)
    q = b.counter(3, name="c")
    b.output_word("q", q)
    sim = SequentialSimulator(n)
    sim.step({})
    sim.step({})
    sim.reset()
    out = sim.step({})
    assert sum(out[f"q[{i}]"] << i for i in range(3)) == 0


def test_dff_init_value_respected():
    n = Netlist("t")
    src = n.add_input("d")
    ff = n.add_dff(src, name="ff", init=1)
    n.add_output("q", ff.output)
    sim = SequentialSimulator(n)
    out = sim.step({"d": 0})
    assert out["q"] == 1  # init visible on first cycle
    out = sim.step({"d": 0})
    assert out["q"] == 0


def test_run_applies_cycle_sequence(adder4_registered):
    sim = SequentialSimulator(adder4_registered)
    zeros = {f"a[{i}]": 0 for i in range(4)} | {f"b[{i}]": 0 for i in range(4)}
    ones = dict(zeros) | {"a[0]": 1}
    outs = sim.run([ones, zeros, zeros])
    assert len(outs) == 3
    assert outs[1]["s[0]"] == 1  # registered result of cycle 0
    assert outs[2]["s[0]"] == 0
