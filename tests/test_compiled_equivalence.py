"""Compiled vs interpreted engine equivalence (property-based).

The compiled instruction-tape kernel must be bit-exact against the
interpreted reference on outputs, probe words and next-FF-state — for
randomized designs, before and after ECO edits (error injection,
observation-point insertion, control points, correction), and whether
the edits reach the kernel incrementally or force a full recompile.
"""

from hypothesis import assume, given, settings, strategies as st

from repro.debug import ERROR_KINDS, apply_correction, inject_error
from repro.debug.instrument import add_control_point, add_observation_point
from repro.errors import DebugFlowError
from repro.generators.random_logic import random_sequential_netlist
from repro.netlist import CombinationalSimulator, CompiledKernel, initial_state
from repro.netlist.simulate import SequentialSimulator
from repro.rng import make_rng
from repro.synth import map_to_luts
from repro.tiling.eco import ChangeRecorder


def _random_design(seed: int, mapped: bool):
    netlist = random_sequential_netlist(
        f"eq{seed}", n_inputs=7, n_outputs=5, n_ffs=6, n_gates=40, seed=seed
    )
    return map_to_luts(netlist) if mapped else netlist


def _assert_equivalent(netlist, kernel, seed, n_patterns=64, n_cycles=3):
    """Outputs, probe words and FF next-state agree for a few cycles."""
    interp = CombinationalSimulator(netlist)
    rng = make_rng(seed, "eq-stim")
    names = {
        pi.name.split(":", 1)[-1] for pi in netlist.primary_inputs()
    }
    state = initial_state(netlist, n_patterns)
    for _ in range(n_cycles):
        inputs = {n: rng.getrandbits(n_patterns) for n in names}
        out_i, next_i = interp.next_state(inputs, n_patterns, state)
        out_c, next_c = kernel.next_state(inputs, n_patterns, state)
        assert out_i == out_c
        assert next_i == next_c
        assert interp.probe(inputs, n_patterns, state) == kernel.probe(
            inputs, n_patterns, state
        )
        state = next_i


@given(seed=st.integers(0, 10_000), mapped=st.booleans())
@settings(max_examples=15, deadline=None)
def test_engines_agree_on_random_designs(seed, mapped):
    netlist = _random_design(seed, mapped)
    _assert_equivalent(netlist, CompiledKernel(netlist), seed)


@given(
    seed=st.integers(0, 5_000),
    kind=st.sampled_from(ERROR_KINDS),
)
@settings(max_examples=15, deadline=None)
def test_engines_agree_across_eco_edits(seed, kind):
    """Inject → observe → control → correct, applied incrementally."""
    netlist = _random_design(seed, mapped=True)
    kernel = CompiledKernel(netlist)
    _assert_equivalent(netlist, kernel, seed)

    with ChangeRecorder(netlist, "inject") as rec:
        try:
            record = inject_error(netlist, kind, seed=seed)
        except DebugFlowError:
            assume(False)  # e.g. only symmetric LUTs for input_swap
    kernel.apply_changeset(rec.changes)
    _assert_equivalent(netlist, kernel, seed + 1)

    watch = netlist.primary_outputs()[0].inputs[0].name
    changes, _ = add_observation_point(netlist, [watch], "eq", sticky=True)
    kernel.apply_changeset(changes)
    _assert_equivalent(netlist, kernel, seed + 2)

    target = next(
        i.output.name
        for i in netlist.instances()
        if i.is_lut and i.output.sinks
    )
    changes, _ = add_control_point(netlist, target, "eqc")
    kernel.apply_changeset(changes)
    _assert_equivalent(netlist, kernel, seed + 3)

    changes = apply_correction(netlist, record)
    kernel.apply_changeset(changes)
    _assert_equivalent(netlist, kernel, seed + 4)

    # every edit above must have gone through the incremental path
    assert kernel.compile_count == 1
    assert kernel.incremental_count == 4


@given(seed=st.integers(0, 5_000))
@settings(max_examples=10, deadline=None)
def test_incremental_matches_full_recompile(seed):
    """The incrementally patched tape equals a from-scratch lowering."""
    netlist = _random_design(seed, mapped=True)
    kernel = CompiledKernel(netlist)
    with ChangeRecorder(netlist, "inject") as rec:
        inject_error(netlist, "table_bit", seed=seed)
    kernel.apply_changeset(rec.changes)
    fresh = CompiledKernel(netlist)
    rng = make_rng(seed, "ifull")
    names = {
        pi.name.split(":", 1)[-1] for pi in netlist.primary_inputs()
    }
    inputs = {n: rng.getrandbits(64) for n in names}
    state = initial_state(netlist, 64)
    assert kernel.probe(inputs, 64, state) == fresh.probe(inputs, 64, state)
    assert kernel.next_state(inputs, 64, state) == fresh.next_state(
        inputs, 64, state
    )


@given(seed=st.integers(0, 5_000))
@settings(max_examples=8, deadline=None)
def test_untracked_mutations_trigger_full_recompile(seed):
    """Edits made without a changeset are caught by the revision check."""
    netlist = _random_design(seed, mapped=True)
    kernel = CompiledKernel(netlist)
    inject_error(netlist, "output_invert", seed=seed)
    # no apply_changeset: next use must notice the revision bump
    _assert_equivalent(netlist, kernel, seed)
    assert kernel.compile_count == 2


@given(seed=st.integers(0, 5_000), engine=st.sampled_from(
    ["compiled", "interpreted"]
))
@settings(max_examples=8, deadline=None)
def test_sequential_simulator_engines_agree(seed, engine):
    netlist = _random_design(seed, mapped=False)
    ref = SequentialSimulator(netlist, engine="interpreted")
    dut = SequentialSimulator(netlist, engine=engine)
    rng = make_rng(seed, "seq")
    names = {
        pi.name.split(":", 1)[-1] for pi in netlist.primary_inputs()
    }
    ref.reset(32)
    dut.reset(32)
    for _ in range(4):
        inputs = {n: rng.getrandbits(32) for n in names}
        assert ref.step(inputs, 32) == dut.step(inputs, 32)
    assert ref.state == dut.state
