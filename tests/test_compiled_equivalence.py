"""Three-engine equivalence (property-based).

The compiled instruction-tape kernel and the codegen straight-line
kernel must both be bit-exact against the interpreted reference on
outputs, probe words and next-FF-state — for randomized designs,
across error kinds and stimulus seeds, before and after ECO edits
(error injection, observation-point insertion, control points,
correction), and whether the edits reach the kernel incrementally or
force a full recompile.  The codegen engine's cone-sliced probe
runners must agree with full replay on the sliced ports.
"""

from hypothesis import assume, given, settings, strategies as st

from repro.debug import ERROR_KINDS, apply_correction, inject_error
from repro.debug.instrument import add_control_point, add_observation_point
from repro.errors import DebugFlowError
from repro.generators.random_logic import random_sequential_netlist
from repro.netlist import CombinationalSimulator, CompiledKernel, initial_state
from repro.netlist.codegen import CodegenKernel
from repro.netlist.simulate import SequentialSimulator, replay_outputs
from repro.rng import make_rng
from repro.synth import map_to_luts
from repro.tiling.eco import ChangeRecorder

#: both lowered kernels; every kernel test runs against each
KERNEL_CLASSES = (CompiledKernel, CodegenKernel)

ALL_ENGINES = ("interpreted", "compiled", "codegen")


def _random_design(seed: int, mapped: bool):
    netlist = random_sequential_netlist(
        f"eq{seed}", n_inputs=7, n_outputs=5, n_ffs=6, n_gates=40, seed=seed
    )
    return map_to_luts(netlist) if mapped else netlist


def _input_names(netlist):
    return {pi.name.split(":", 1)[-1] for pi in netlist.primary_inputs()}


def _assert_equivalent(netlist, kernel, seed, n_patterns=64, n_cycles=3):
    """Outputs, probe words and FF next-state agree for a few cycles."""
    interp = CombinationalSimulator(netlist)
    rng = make_rng(seed, "eq-stim")
    names = _input_names(netlist)
    state = initial_state(netlist, n_patterns)
    for _ in range(n_cycles):
        inputs = {n: rng.getrandbits(n_patterns) for n in names}
        out_i, next_i = interp.next_state(inputs, n_patterns, state)
        out_c, next_c = kernel.next_state(inputs, n_patterns, state)
        assert out_i == out_c
        assert next_i == next_c
        assert interp.probe(inputs, n_patterns, state) == kernel.probe(
            inputs, n_patterns, state
        )
        state = next_i


@given(seed=st.integers(0, 10_000), mapped=st.booleans())
@settings(max_examples=15, deadline=None)
def test_engines_agree_on_random_designs(seed, mapped):
    netlist = _random_design(seed, mapped)
    for kernel_cls in KERNEL_CLASSES:
        _assert_equivalent(netlist, kernel_cls(netlist), seed)


@given(
    seed=st.integers(0, 5_000),
    kind=st.sampled_from(ERROR_KINDS),
    stim_seed=st.integers(0, 1_000),
)
@settings(max_examples=12, deadline=None)
def test_three_engine_replay_identity(seed, kind, stim_seed):
    """interpreted vs compiled vs codegen over designs × errors × stimuli."""
    netlist = _random_design(seed, mapped=True)
    try:
        inject_error(netlist, kind, seed=seed)
    except DebugFlowError:
        assume(False)  # e.g. only symmetric LUTs for input_swap
    rng = make_rng(stim_seed, "tri-stim")
    names = _input_names(netlist)
    stim = [
        {n: rng.getrandbits(48) for n in names} for _ in range(4)
    ]
    replays = [
        replay_outputs(netlist, stim, 48, engine=e) for e in ALL_ENGINES
    ]
    assert replays[0] == replays[1] == replays[2]


@given(
    seed=st.integers(0, 5_000),
    kind=st.sampled_from(ERROR_KINDS),
    kernel_cls=st.sampled_from(KERNEL_CLASSES),
)
@settings(max_examples=15, deadline=None)
def test_engines_agree_across_eco_edits(seed, kind, kernel_cls):
    """Inject → observe → control → correct, applied incrementally."""
    netlist = _random_design(seed, mapped=True)
    kernel = kernel_cls(netlist)
    _assert_equivalent(netlist, kernel, seed)

    with ChangeRecorder(netlist, "inject") as rec:
        try:
            record = inject_error(netlist, kind, seed=seed)
        except DebugFlowError:
            assume(False)  # e.g. only symmetric LUTs for input_swap
    kernel.apply_changeset(rec.changes)
    _assert_equivalent(netlist, kernel, seed + 1)

    watch = netlist.primary_outputs()[0].inputs[0].name
    changes, _ = add_observation_point(netlist, [watch], "eq", sticky=True)
    kernel.apply_changeset(changes)
    _assert_equivalent(netlist, kernel, seed + 2)

    target = next(
        i.output.name
        for i in netlist.instances()
        if i.is_lut and i.output.sinks
    )
    changes, _ = add_control_point(netlist, target, "eqc")
    kernel.apply_changeset(changes)
    _assert_equivalent(netlist, kernel, seed + 3)

    changes = apply_correction(netlist, record)
    kernel.apply_changeset(changes)
    _assert_equivalent(netlist, kernel, seed + 4)

    # every edit above must have gone through the incremental path
    assert kernel.compile_count == 1
    assert kernel.incremental_count == 4


@given(
    seed=st.integers(0, 5_000),
    kernel_cls=st.sampled_from(KERNEL_CLASSES),
)
@settings(max_examples=10, deadline=None)
def test_incremental_matches_full_recompile(seed, kernel_cls):
    """The incrementally patched kernel equals a from-scratch lowering."""
    netlist = _random_design(seed, mapped=True)
    kernel = kernel_cls(netlist)
    with ChangeRecorder(netlist, "inject") as rec:
        inject_error(netlist, "table_bit", seed=seed)
    kernel.apply_changeset(rec.changes)
    fresh = kernel_cls(netlist)
    rng = make_rng(seed, "ifull")
    names = _input_names(netlist)
    inputs = {n: rng.getrandbits(64) for n in names}
    state = initial_state(netlist, 64)
    assert kernel.probe(inputs, 64, state) == fresh.probe(inputs, 64, state)
    assert kernel.next_state(inputs, 64, state) == fresh.next_state(
        inputs, 64, state
    )


@given(
    seed=st.integers(0, 5_000),
    kernel_cls=st.sampled_from(KERNEL_CLASSES),
)
@settings(max_examples=8, deadline=None)
def test_untracked_mutations_trigger_full_recompile(seed, kernel_cls):
    """Edits made without a changeset are caught by the revision check."""
    netlist = _random_design(seed, mapped=True)
    kernel = kernel_cls(netlist)
    inject_error(netlist, "output_invert", seed=seed)
    # no apply_changeset: next use must notice the revision bump
    _assert_equivalent(netlist, kernel, seed)
    assert kernel.compile_count == 2


@given(seed=st.integers(0, 5_000))
@settings(max_examples=8, deadline=None)
def test_cone_runner_matches_full_replay(seed):
    """A cone-sliced probe runner reproduces full-replay port values."""
    netlist = _random_design(seed, mapped=True)
    inject_error(netlist, "table_bit", seed=seed)
    watch = netlist.primary_outputs()[0].inputs[0].name
    add_observation_point(netlist, [watch], "cr", sticky=False)
    kernel = CodegenKernel(netlist)
    port = "obs_probe_cr"
    runner = kernel.cone_runner((port,))
    assert runner is not None
    full = SequentialSimulator(netlist, engine="interpreted")
    rng = make_rng(seed, "cone-stim")
    names = _input_names(netlist)
    full.reset(32)
    runner.reset(32)
    for _ in range(5):
        inputs = {n: rng.getrandbits(32) for n in names}
        out_full = full.step(inputs, 32)
        out_slice = runner.step(inputs, 32)
        assert out_slice[port] == out_full[port]
    # the same (revision, observed-set) request reuses the memo entry
    assert kernel.cone_runner((port,)) is runner


@given(seed=st.integers(0, 5_000), engine=st.sampled_from(ALL_ENGINES))
@settings(max_examples=8, deadline=None)
def test_sequential_simulator_engines_agree(seed, engine):
    netlist = _random_design(seed, mapped=False)
    ref = SequentialSimulator(netlist, engine="interpreted")
    dut = SequentialSimulator(netlist, engine=engine)
    rng = make_rng(seed, "seq")
    names = _input_names(netlist)
    ref.reset(32)
    dut.reset(32)
    for _ in range(4):
        inputs = {n: rng.getrandbits(32) for n in names}
        assert ref.step(inputs, 32) == dut.step(inputs, 32)
    assert ref.state == dut.state
