"""The `repro.api` facade: specs, pipeline, results, campaigns, CLI."""

import dataclasses
import json

import pytest

from repro.api import (
    CampaignRunner,
    PipelineHooks,
    RunResult,
    RunSpec,
    expand_matrix,
    run_spec,
)
from repro.api.cli import main as cli_main
from repro.debug import STRATEGY_REGISTRY, make_strategy
from repro.debug.session import EmulationDebugSession, run_campaign
from repro.errors import DebugFlowError, SpecError
from repro.generators import build_design
from repro.pnr.effort import EFFORT_PRESETS

FAST = dict(preset="fast", max_probes=6, cache="private")


def fast_spec(**overrides) -> RunSpec:
    merged = {**FAST, "design": "9sym", "error_seed": 1}
    merged.update(overrides)
    return RunSpec(**merged)


# ----------------------------------------------------------------------
# RunSpec
# ----------------------------------------------------------------------

class TestRunSpec:
    def test_every_field_survives_json_round_trip(self):
        spec = RunSpec(
            design="des",
            design_seed=7,
            design_params={"name": "des_small", "n_rounds": 2,
                           "pipeline": True},
            blif_path=None,
            device="XC4013",
            channel_width=28,
            device_overhead=0.4,
            strategy="incremental",
            preset="thorough",
            engine="interpreted",
            seed=9,
            n_patterns=32,
            n_cycles=4,
            error_kind="wrong_function",
            error_seed=11,
            max_probes=3,
            goal_size=2,
            tiling={"n_tiles": 6, "area_overhead": 0.25},
            cache="private",
            cache_dir="/tmp/somewhere",
        )
        data = json.loads(json.dumps(spec.to_dict()))
        restored = RunSpec.from_dict(data)
        assert restored == spec
        for f in dataclasses.fields(RunSpec):
            assert getattr(restored, f.name) == getattr(spec, f.name)

    def test_defaults_round_trip(self):
        spec = RunSpec()
        assert RunSpec.from_json(spec.to_json()) == spec

    @pytest.mark.parametrize("overrides", [
        {"design": "nonesuch"},
        {"strategy": "nonesuch"},
        {"preset": "nonesuch"},
        {"engine": "nonesuch"},
        {"error_kind": "nonesuch"},
        {"cache": "nonesuch"},
        {"device": "XC9999"},
        {"tiling": {"bogus_key": 1}},
        {"n_patterns": 0},
        {"goal_size": 0},
        # 9sym takes no design_params (not a parameterizable generator)
        {"design": "9sym", "design_params": {"x": 1}},
    ])
    def test_validation_rejects(self, overrides):
        with pytest.raises(SpecError):
            RunSpec(**overrides)

    def test_spec_error_is_value_error(self):
        with pytest.raises(ValueError):
            RunSpec(design="nonesuch")

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(SpecError, match="unknown spec fields"):
            RunSpec.from_dict({"design": "9sym", "bogus": 1})

    def test_replaced_revalidates(self):
        spec = RunSpec()
        with pytest.raises(SpecError):
            spec.replaced(strategy="nonesuch")


# ----------------------------------------------------------------------
# strategy registry
# ----------------------------------------------------------------------

class TestStrategyRegistry:
    def test_unknown_strategy_raises_value_error_listing_names(self):
        bundle = build_design("9sym")
        from repro.api import device_for

        device = device_for(bundle.packed)
        with pytest.raises(ValueError) as excinfo:
            make_strategy("nonesuch", bundle.packed, device)
        for name in STRATEGY_REGISTRY:
            assert name in str(excinfo.value)

    def test_unknown_strategy_still_a_debug_flow_error(self):
        bundle = build_design("9sym")
        from repro.api import device_for

        device = device_for(bundle.packed)
        with pytest.raises(DebugFlowError):
            make_strategy("nonesuch", bundle.packed, device)

    def test_registry_exported_from_debug_package(self):
        assert set(STRATEGY_REGISTRY) == {
            "tiled", "sat", "quick_eco", "incremental", "full",
        }


# ----------------------------------------------------------------------
# pipeline + RunResult
# ----------------------------------------------------------------------

class RecordingHooks(PipelineHooks):
    def __init__(self):
        self.stages_started = []
        self.stages_ended = []
        self.probes = []
        self.commits = []

    def on_stage_start(self, stage, ctx):
        self.stages_started.append(stage.name)

    def on_stage_end(self, stage, ctx, seconds):
        self.stages_ended.append(stage.name)

    def on_probe(self, ctx, step):
        self.probes.append(step)

    def on_commit(self, ctx, record):
        self.commits.append(record)


class TestPipeline:
    def test_run_spec_full_flow(self):
        result = run_spec(fast_spec())
        assert result.detected and result.localized and result.fixed
        assert result.error_instance in result.candidates
        assert result.n_probes == len(result.probe_trajectory)
        assert result.n_commits == result.n_probes + 1  # probes + the fix
        assert set(result.timings["stages"]) == {
            "detect", "localize", "correct", "verify",
        }
        assert result.spec == fast_spec().to_dict()

    def test_hooks_observe_stages_probes_commits(self):
        hooks = RecordingHooks()
        result = run_spec(fast_spec(), hooks=hooks)
        assert hooks.stages_started == [
            "detect", "localize", "correct", "verify",
        ]
        assert hooks.stages_ended == hooks.stages_started
        assert len(hooks.probes) == result.n_probes
        assert len(hooks.commits) == result.n_commits

    def test_undetected_error_reports_cleanly(self):
        result = run_spec(fast_spec(error_seed=2))
        assert not result.detected and not result.fixed
        assert result.n_probes == 0 and result.n_commits == 0
        assert any("never excited" in note for note in result.notes)

    def test_result_json_round_trip(self):
        result = run_spec(fast_spec())
        restored = RunResult.from_dict(json.loads(result.to_json()))
        assert restored.to_dict() == result.to_dict()
        for f in dataclasses.fields(RunResult):
            assert getattr(restored, f.name) == getattr(result, f.name)

    def test_engines_bit_identical(self):
        compiled = run_spec(fast_spec(engine="compiled"))
        interpreted = run_spec(fast_spec(engine="interpreted"))
        assert compiled.trajectory_key() == interpreted.trajectory_key()
        assert compiled.candidates == interpreted.candidates


# ----------------------------------------------------------------------
# deprecation shims stay bit-identical
# ----------------------------------------------------------------------

def _legacy_signature(report):
    loc = report.localization
    steps = [] if loc is None else [
        (s.probe_instance, s.mismatch, s.candidates_before,
         s.candidates_after)
        for s in loc.steps
    ]
    candidates = [] if loc is None else sorted(loc.candidates)
    return steps, candidates, report.detected, report.fixed


def _facade_signature(result):
    return (
        [tuple(t) for t in result.trajectory_key()],
        list(result.candidates),
        result.detected,
        result.fixed,
    )


class TestShimEquivalence:
    @pytest.mark.parametrize("seed", [1, 3])
    def test_session_matches_facade_on_s9234(self, seed):
        session = EmulationDebugSession(
            build_design("s9234").packed, strategy="tiled", seed=seed,
            preset=EFFORT_PRESETS["fast"], tile_cache=None,
        )
        report = session.run(error_kind="table_bit", error_seed=seed)
        result = run_spec(RunSpec(
            design="s9234", strategy="tiled", seed=seed, error_seed=seed,
            preset="fast", cache="off",
        ))
        assert _legacy_signature(report) == _facade_signature(result)

    def test_run_campaign_matches_campaign_runner_on_s9234(self):
        reports = run_campaign(
            lambda: build_design("s9234").packed, ["tiled", "quick_eco"],
            error_kind="table_bit", seed=3, preset=EFFORT_PRESETS["fast"],
        )
        specs = expand_matrix(
            RunSpec(design="s9234", seed=3, error_seed=3, preset="fast"),
            strategies=["tiled", "quick_eco"],
        )
        campaign = CampaignRunner().run(specs)
        for result in campaign.results:
            report = reports[result.strategy]
            assert _legacy_signature(report) == _facade_signature(result)
            assert report.n_commits == result.n_commits


# ----------------------------------------------------------------------
# campaigns
# ----------------------------------------------------------------------

class TestCampaign:
    def test_expand_matrix_order_and_values(self):
        base = fast_spec()
        specs = expand_matrix(
            base, designs=["9sym", "styr"], error_seeds=[1, 5]
        )
        assert [(s.design, s.error_seed) for s in specs] == [
            ("9sym", 1), ("9sym", 5), ("styr", 1), ("styr", 5),
        ]
        # untouched axes keep the base value
        assert all(s.preset == "fast" for s in specs)

    def test_expand_matrix_no_axes(self):
        base = fast_spec()
        assert expand_matrix(base) == [base]

    def test_expand_matrix_empty_axes_keep_base(self):
        # an empty CSV flag (--designs "") must not collapse the matrix
        # to zero runs; empty axes behave exactly like omitted ones
        base = fast_spec()
        assert expand_matrix(base, designs=[], seeds=[]) == [base]
        specs = expand_matrix(base, designs=[], error_seeds=[1, 5])
        assert [s.error_seed for s in specs] == [1, 5]
        assert all(s.design == base.design for s in specs)

    def test_expand_matrix_single_spec_matrix(self):
        base = fast_spec()
        specs = expand_matrix(base, designs=["styr"])
        assert len(specs) == 1
        assert specs[0] == base.replaced(design="styr")

    def test_workers_do_not_change_results(self):
        specs = expand_matrix(fast_spec(), error_seeds=[1, 3, 5])
        serial = CampaignRunner(workers=1).run(specs)
        threaded = CampaignRunner(workers=4).run(specs)
        assert serial.n_runs == threaded.n_runs == 3
        for a, b in zip(serial.results, threaded.results):
            assert a.trajectory_key() == b.trajectory_key()
            assert a.candidates == b.candidates
            assert (a.detected, a.localized, a.fixed) == (
                b.detected, b.localized, b.fixed
            )

    def test_campaign_result_round_trip(self, tmp_path):
        campaign = CampaignRunner().run([fast_spec()])
        path = tmp_path / "campaign.json"
        campaign.save(str(path))
        from repro.api import CampaignResult

        restored = CampaignResult.load(str(path))
        assert restored.to_dict() == campaign.to_dict()

    def test_cache_dir_warms_second_campaign(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        # "private" keeps the test hermetic: each campaign starts from
        # its own cache, warmed only by what --cache-dir persisted
        specs = [fast_spec(cache="private")]
        cold = CampaignRunner(cache_dir=cache_dir).run(specs)
        assert cold.cache["hits"] == 0
        warm = CampaignRunner(cache_dir=cache_dir).run(specs)
        assert warm.cache["hits"] > 0
        assert warm.cache["hit_rate"] > 0
        for a, b in zip(cold.results, warm.results):
            assert a.trajectory_key() == b.trajectory_key()
            assert a.candidates == b.candidates

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            CampaignRunner(workers=0)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

class TestCli:
    def test_run_emits_result_json(self, tmp_path, capsys):
        out = tmp_path / "result.json"
        code = cli_main([
            "run", "--design", "9sym", "--error-seed", "1",
            "--preset", "fast", "--max-probes", "6",
            "--cache", "private", "--json", str(out),
        ])
        assert code == 0
        data = json.loads(out.read_text())
        assert data["localized"] is True and data["fixed"] is True

    def test_run_json_to_stdout(self, capsys):
        code = cli_main([
            "run", "--design", "9sym", "--error-seed", "1",
            "--preset", "fast", "--cache", "private", "--json", "-",
        ])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["design"] == "9sym"

    def test_campaign_and_report(self, tmp_path, capsys):
        out = tmp_path / "campaign.json"
        code = cli_main([
            "campaign", "--designs", "9sym", "--error-seeds", "1,3",
            "--preset", "fast", "--max-probes", "6",
            "--cache", "private", "--out", str(out),
        ])
        assert code == 0
        data = json.loads(out.read_text())
        assert data["n_runs"] == 2
        capsys.readouterr()
        assert cli_main(["report", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "9sym" in printed

    def test_report_on_saved_campaign_file(self, tmp_path, capsys):
        # report must work from the file alone — no live objects: a
        # fabricated results payload stands in for an old campaign
        from repro.api import CampaignResult

        runs = []
        for design, fixed in (("9sym", True), ("styr", False)):
            runs.append(RunResult(
                design=design, strategy="tiled", engine="compiled",
                error_kind="table_bit", error_instance="lut$1",
                detected=True, localized=fixed, fixed=fixed,
                n_probes=3, n_commits=4,
                effort={"debug": {"work_units": 123.0}},
                wall_seconds=1.5,
            ))
        campaign = CampaignResult(results=runs, wall_seconds=3.0,
                                  workers=2,
                                  cache={"hits": 1.0, "misses": 2.0,
                                         "hit_rate": 1 / 3})
        path = tmp_path / "old_campaign.json"
        campaign.save(str(path))
        assert cli_main(["report", str(path)]) == 0
        printed = capsys.readouterr().out
        assert "9sym" in printed and "styr" in printed
        assert "2 runs, 2 detected, 1 localized, 1 fixed" in printed
        assert "hit rate 0.33" in printed

    def test_report_on_single_run_file(self, tmp_path, capsys):
        result = RunResult(design="9sym", strategy="tiled",
                           engine="compiled", detected=True, fixed=True)
        path = tmp_path / "run.json"
        path.write_text(result.to_json())
        assert cli_main(["report", str(path)]) == 0
        assert "9sym" in capsys.readouterr().out

    def test_version_flag(self, capsys):
        from repro._version import __version__

        with pytest.raises(SystemExit) as exc:
            cli_main(["--version"])
        assert exc.value.code == 0
        assert f"repro {__version__}" in capsys.readouterr().out

    def test_run_json_is_self_describing(self, capsys):
        # the emitted payload carries the spec's *resolved* defaults
        code = cli_main([
            "run", "--design", "9sym", "--error-seed", "1",
            "--preset", "fast", "--cache", "private", "--json", "-",
        ])
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        spec = data["spec"]
        assert spec["design"] == "9sym" and spec["preset"] == "fast"
        # fields never mentioned on the command line appear resolved
        assert spec["n_patterns"] == 64
        assert spec["strategy"] == "tiled"
        assert spec["verify"] == "simulate"
        assert spec["correction"] == "oracle"

    def test_bad_spec_exits_2(self, capsys):
        assert cli_main(["run", "--design", "nonesuch"]) == 2

    def test_undetected_run_exits_1(self, tmp_path):
        code = cli_main([
            "run", "--design", "9sym", "--error-seed", "2",
            "--preset", "fast", "--cache", "private",
        ])
        assert code == 1


class TestDesignParamsValidation:
    def test_unknown_generator_kwargs_fail_fast(self):
        with pytest.raises(SpecError, match="not accepted by"):
            RunSpec(design="mips",
                    design_params={"name": "x", "n_rounds": 2})

    def test_matching_generator_kwargs_accepted(self):
        spec = RunSpec(design="des",
                       design_params={"name": "d", "n_rounds": 2})
        assert RunSpec.from_json(spec.to_json()) == spec
