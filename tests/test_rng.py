"""Deterministic seed derivation."""

from repro.rng import derive_seed, make_rng


def test_derivation_is_deterministic():
    assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)


def test_derivation_separates_labels():
    assert derive_seed(1, "place") != derive_seed(1, "route")
    assert derive_seed(1, "a", "b") != derive_seed(1, "ab")


def test_derivation_separates_base_seeds():
    assert derive_seed(1, "x") != derive_seed(2, "x")


def test_streams_are_reproducible():
    a = make_rng(7, "anneal")
    b = make_rng(7, "anneal")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_streams_are_decorrelated():
    a = make_rng(7, "anneal")
    b = make_rng(8, "anneal")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]
