"""Shared fixtures: small circuits and cached mid-size design bundles."""

from __future__ import annotations

import pytest

from repro.arch import pick_device
from repro.generators import build_design
from repro.netlist import Netlist, NetlistBuilder
from repro.pnr import EFFORT_PRESETS, full_place_and_route
from repro.synth import map_to_luts, pack_netlist


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "slow: long-running campaigns, opt in with REPRO_SLOW=1",
    )


def make_adder_netlist(width: int = 4, registered: bool = False) -> Netlist:
    """A ripple adder, optionally with an output register."""
    netlist = Netlist(f"adder{width}{'r' if registered else ''}")
    b = NetlistBuilder(netlist)
    a = b.input_word("a", width)
    c = b.input_word("b", width)
    total, carry = b.adder(a, c)
    if registered:
        total = b.register(total, name="r")
    b.output_word("s", total)
    netlist.add_output("cout", carry)
    return netlist


@pytest.fixture
def adder4() -> Netlist:
    return make_adder_netlist(4)


@pytest.fixture
def adder4_registered() -> Netlist:
    return make_adder_netlist(4, registered=True)


@pytest.fixture(scope="session")
def styr_bundle():
    """Mid-size sequential benchmark, shared read-only across tests."""
    return build_design("styr")


@pytest.fixture(scope="session")
def small_layout():
    """A placed-and-routed small design (fresh copy not needed: read-only)."""
    netlist = make_adder_netlist(8, registered=True)
    mapped = map_to_luts(netlist)
    packed = pack_netlist(mapped)
    device = pick_device(
        packed.n_clbs, area_overhead=0.5,
        min_io=len(packed.io_blocks()),
    )
    layout = full_place_and_route(
        packed, device, seed=7, preset=EFFORT_PRESETS["fast"],
    )
    return layout


def fresh_packed_design(width: int = 6, registered: bool = True):
    """A small packed design, fresh per call (tests may mutate it)."""
    netlist = make_adder_netlist(width, registered=registered)
    mapped = map_to_luts(netlist)
    return pack_netlist(mapped)
