"""Experiment drivers reproduce the paper's qualitative shapes (small cfg)."""

import math

import pytest

from repro.analysis import (
    ExperimentConfig,
    format_figure3,
    format_figure4,
    format_figure5,
    format_table1,
    run_figure3,
    run_figure4,
    run_figure5,
    run_table1,
)
from repro.analysis.experiments import (
    ExperimentSuite,
    fig5_aggregate,
    run_ablation_boundaries,
    run_ablation_slack,
)


@pytest.fixture(scope="module")
def suite():
    return ExperimentSuite(ExperimentConfig(designs=["9sym", "styr"]))


def test_table1_shape(suite):
    rows = run_table1(suite=suite)
    assert len(rows) == 2
    for row in rows:
        # paper: ~20% requested slack lands between 0.19 and 0.30 after
        # tile quantization
        assert 0.15 <= row.area_overhead <= 0.35
        assert abs(row.timing_overhead) < 0.6
        assert row.n_tiles == 10
    text = format_table1(rows)
    assert "9sym" in text and "styr" in text


def test_figure3_staircase_properties(suite):
    series = run_figure3(suite=suite)
    for s in series:
        # monotone non-decreasing, starts near one tile (10%), ends at 100%
        assert all(
            b >= a - 1e-9 for a, b in zip(s.pct_affected, s.pct_affected[1:])
        )
        assert s.pct_affected[0] <= 25.0
        assert s.pct_affected[-1] == 100.0
    assert "%" in format_figure3(series)


def test_figure4_decay_properties(suite):
    series = run_figure4(suite=suite)
    for s in series:
        assert all(
            b <= a for a, b in zip(s.max_logic, s.max_logic[1:])
        )
        assert s.max_logic[0] >= 1
    assert "test points" in format_figure4(series)


def test_figure5_speedups(suite):
    rows = run_figure5(suite=suite, tile_fractions=(0.10, 0.25))
    feasible = [r for r in rows if r.feasible]
    assert feasible, "at least one design/fraction must be feasible"
    for r in feasible:
        assert r.speedup_vs_quick_eco > 1.0  # tiling must win
    # finer tiles never slower than the coarsest for the same design
    by_design = {}
    for r in feasible:
        by_design.setdefault(r.design, {})[r.tile_fraction] = r
    for design, by_frac in by_design.items():
        if 0.10 in by_frac and 0.25 in by_frac:
            assert (
                by_frac[0.10].speedup_vs_quick_eco
                >= 0.7 * by_frac[0.25].speedup_vs_quick_eco
            )
    agg = fig5_aggregate(rows)
    assert all("mean" in v and "median" in v for v in agg.values())
    assert "tile size" in format_figure5(rows)


def test_infeasible_fractions_reported(suite):
    rows = run_figure5(suite=suite, tile_fractions=(0.025,))
    small = [r for r in rows if r.design == "9sym"]
    assert small and not small[0].feasible  # 9sym cannot do 2.5% tiles


def test_ablation_slack_monotone():
    rows = run_ablation_slack(
        design="styr", overheads=(0.15, 0.30), logic_sizes=(1, 10, 19)
    )
    # more slack -> fewer (or equal) tiles affected at the same size
    by_size = {}
    for r in rows:
        by_size.setdefault(r.logic_size, {})[r.area_overhead] = r.pct_affected
    for size, results in by_size.items():
        assert results[0.30] <= results[0.15] + 1e-9


def test_ablation_boundaries_reduces_cut():
    rows = run_ablation_boundaries(designs=["styr"])
    uniform = next(r for r in rows if not r.refined)
    refined = next(r for r in rows if r.refined)
    assert refined.inter_tile_nets <= uniform.inter_tile_nets
