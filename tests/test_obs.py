"""Observability: span tracing, the metrics registry, profiling.

The layer's contract has two halves.  Armed, a tracer must see every
structural event of a run — stages, diagnose rounds, probes, commits —
nested correctly even when a stage dies or a cooperative deadline
trips mid-flight.  Disarmed (the default), nothing may change: the
pipeline's answers are bit-identical with and without observation, and
metrics accounting must agree across execution topologies (in-process
threads vs. supervised worker processes vs. the service daemon).
"""

import json
import re

from repro.api.campaign import CampaignRunner, expand_matrix
from repro.api.cli import main as cli_main
from repro.api.pipeline import run_spec
from repro.api.spec import RunSpec
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    METRICS,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import Tracer, render_chrome_tree, render_span_tree

#: the cheapest spec that excites, localizes, and fixes a bug
FAST = dict(design="9sym", preset="fast", max_probes=6, cache="off",
            error_seed=1)
#: known two-round, two-error configuration (see test_multi_error)
TWO_ROUND = dict(design="9sym", preset="fast", max_probes=6,
                 cache="private", error_seed=6, n_errors=2)

#: one Prometheus sample line: name{labels} value
_PROM_SAMPLE = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_]+="[^"]*"'
    r'(,[a-zA-Z_]+="[^"]*")*\})? -?[0-9.+eEinf]+$'
)


def _index(root):
    """Flatten a span tree into name -> [spans]."""
    out = {}

    def walk(span):
        out.setdefault(span.name, []).append(span)
        for child in span.children:
            walk(child)

    walk(root)
    return out


def _counters(delta: dict) -> dict:
    return {
        (c["name"], tuple(sorted(c["labels"].items()))): c["value"]
        for c in delta["counters"]
    }


# ----------------------------------------------------------------------
# tracing: nesting, exception/timeout closure, export
# ----------------------------------------------------------------------

def test_spans_nest_across_diagnose_rounds():
    tracer = Tracer()
    result = run_spec(RunSpec(**TWO_ROUND), tracer=tracer)
    assert result.fixed and result.n_rounds == 2

    [run] = tracer.roots
    assert run.name == "run" and run.status == "ok"
    assert run.attrs["rounds"] == 2
    top = [c.name for c in run.children]
    assert top.count("detect") >= 1  # re-detect after round 1's fix
    assert "diagnose" in top and "verify" in top

    diagnose = next(c for c in run.children if c.name == "diagnose")
    rounds = [c for c in diagnose.children if c.name == "round"]
    assert [r.attrs["round"] for r in rounds] == [1, 2]
    for round_span in rounds:
        names = [c.name for c in round_span.children]
        assert "localize" in names and "correct" in names

    # probes nest under localize, one span per trajectory step, with
    # the candidate-narrowing attrs recorded where the work happened
    spans = _index(run)
    probes = spans["probe"]
    assert len(probes) == result.n_probes
    assert all("mismatch" in p.attrs and "candidates_after" in p.attrs
               for p in probes)
    # commits appear as instants; every span closed
    assert len(spans["commit"]) == result.n_commits
    assert all(s.end_ns is not None
               for group in spans.values() for s in group)

    tree = render_span_tree(tracer)
    assert tree.startswith("run [ok]")
    assert tree.count("round [ok]") == 2


def test_stage_exception_closes_spans_with_error_status():
    tracer = Tracer()
    spec = RunSpec(**FAST, chaos={"kind": "exception",
                                  "stage": "localize"})
    result = run_spec(spec, tracer=tracer)
    assert result.status == "failed"
    [run] = tracer.roots
    assert run.status == "error"
    spans = _index(run)
    [localize] = spans["localize"]
    assert localize.status == "error"
    # the stage that completed before the blast keeps its ok status
    assert spans["detect"][0].status == "ok"
    assert all(s.end_ns is not None
               for group in spans.values() for s in group)


def test_cooperative_timeout_closes_spans_with_timeout_status():
    tracer = Tracer()
    spec = RunSpec(**FAST, timeout_s=0.5,
                   chaos={"kind": "hang", "stage": "localize",
                          "hang_s": 30.0})
    result = run_spec(spec, tracer=tracer)
    assert result.status == "timeout"
    [run] = tracer.roots
    assert run.status == "timeout"
    spans = _index(run)
    assert spans["localize"][0].status == "timeout"
    assert spans["detect"][0].status == "ok"
    assert all(s.end_ns is not None
               for group in spans.values() for s in group)


def test_tracing_never_changes_the_answer():
    plain = run_spec(RunSpec(**FAST))
    traced = run_spec(RunSpec(**FAST), tracer=Tracer(), profile=True)
    assert plain.trajectory_key() == traced.trajectory_key()
    assert plain.candidates == traced.candidates
    assert plain.status == traced.status == "ok"
    assert plain.profile is None and traced.profile is not None


def test_chrome_trace_export_shape_and_tree_rebuild(tmp_path):
    tracer = Tracer()
    result = run_spec(RunSpec(**FAST), tracer=tracer)
    assert result.status == "ok"
    path = tmp_path / "trace.json"
    tracer.write_chrome_trace(str(path))
    trace = json.loads(path.read_text())
    assert set(trace) == {"traceEvents", "displayTimeUnit", "otherData"}
    events = trace["traceEvents"]
    assert events, "trace must not be empty"
    for event in events:
        assert event["ph"] == "X"
        assert event["ts"] >= 0 and event["dur"] >= 0
        assert isinstance(event["pid"], int)
        assert "status" in event["args"]
    names = {e["name"] for e in events}
    assert {"run", "detect", "diagnose", "round", "localize",
            "probe", "commit", "verify"} <= names
    # the tree rebuilt from ts/dur containment matches the live render
    assert render_chrome_tree(trace) == render_span_tree(tracer)


def test_profile_lands_per_stage_top_functions():
    result = run_spec(RunSpec(**FAST), profile=True)
    profile = result.profile
    assert profile["profiler"] == "cProfile"
    assert {"detect", "localize", "correct", "verify"} <= set(
        profile["stages"]
    )
    for rows in profile["stages"].values():
        for row in rows:
            assert set(row) == {"func", "ncalls", "tottime_s",
                                "cumtime_s"}
    # profile survives the JSON round-trip like every result field
    from repro.api.result import RunResult

    again = RunResult.from_dict(json.loads(json.dumps(result.to_dict())))
    assert again.profile == profile


# ----------------------------------------------------------------------
# metrics registry: snapshot / merge / delta / exposition
# ----------------------------------------------------------------------

def test_registry_snapshot_merge_and_delta_semantics():
    a = MetricsRegistry()
    a.inc("runs", status="ok")
    a.inc("runs", status="ok")
    a.inc("probes", value=5.0)
    a.set_gauge("depth", 3)
    a.observe("lat", 0.002, stage="detect")
    a.observe("lat", 0.2, stage="detect")

    before = a.snapshot()
    a.inc("runs", status="failed")
    a.inc("probes", value=2.0)
    a.set_gauge("depth", 1)
    a.observe("lat", 5.0, stage="detect")
    delta = a.delta(before)
    # only what changed, counters as differences, gauges current
    assert _counters(delta) == {
        ("runs", (("status", "failed"),)): 1.0,
        ("probes", ()): 2.0,
    }
    [gauge] = delta["gauges"]
    assert gauge["value"] == 1.0
    [hist] = delta["histograms"]
    assert hist["count"] == 1 and hist["samples"] == [5.0]

    b = MetricsRegistry()
    b.inc("runs", status="ok")
    b.observe("lat", 0.004, stage="detect")
    b.merge(a.snapshot())
    assert b.counter_value("runs", status="ok") == 3.0
    assert b.counter_value("runs") == 4.0  # subset match sums statuses
    assert b.gauge_value("depth") == 1.0
    merged = b.histogram("lat", stage="detect")
    assert merged.count == 4
    assert merged.min == 0.002 and merged.max == 5.0
    # a merged delta adds exactly the delta, not the donor's history
    c = MetricsRegistry()
    c.merge(delta)
    assert c.counter_value("probes") == 2.0
    assert c.histogram("lat", stage="detect").count == 1


def test_histogram_quantiles_and_bucket_assignment():
    hist = Histogram()
    for ms in range(1, 101):
        hist.observe(ms / 1000.0)
    assert hist.count == 100
    # nearest-rank over the retained samples
    assert hist.quantile(0.5) in (0.05, 0.051)
    assert hist.quantile(0.95) in (0.095, 0.096)
    assert hist.max == 0.1
    assert sum(hist.buckets) == hist.count


def test_prometheus_exposition_parses_and_buckets_are_cumulative():
    reg = MetricsRegistry()
    reg.inc("repro_runs_total", status="ok", value=3)
    reg.inc("repro_runs_total", status="we ird\n", value=1)
    reg.set_gauge("repro_queue_depth", 2)
    for value in (0.002, 0.002, 0.3, 7.0):
        reg.observe("repro_stage_seconds", value, stage="detect")
    text = reg.to_prometheus()
    types = {}
    for line in text.strip().splitlines():
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ")
            types[name] = kind
            continue
        assert _PROM_SAMPLE.match(line), line
    assert types == {
        "repro_runs_total": "counter",
        "repro_queue_depth": "gauge",
        "repro_stage_seconds": "histogram",
    }
    # bucket counts are cumulative and end at +Inf == _count
    buckets = [
        float(line.rsplit(" ", 1)[1])
        for line in text.splitlines()
        if line.startswith("repro_stage_seconds_bucket")
    ]
    assert len(buckets) == len(DEFAULT_BUCKETS) + 1
    assert buckets == sorted(buckets)
    assert buckets[-1] == 4
    assert 'le="+Inf"' in text
    assert "\\n" in text  # newline in a label value stays escaped
    assert "repro_stage_seconds_sum" in text
    assert "repro_stage_seconds_count" in text


def test_pipeline_records_run_probe_and_stage_metrics():
    before = METRICS.snapshot()
    result = run_spec(RunSpec(**FAST))
    assert result.status == "ok"
    delta = _counters(METRICS.delta(before))
    assert delta[("repro_runs_total", (("status", "ok"),))] == 1.0
    assert delta[("repro_probes_total", ())] == result.n_probes
    assert delta[("repro_rounds_total", ())] == result.n_rounds
    stage_hists = {
        tuple(sorted(h["labels"].items())): h["count"]
        for h in METRICS.delta(before)["histograms"]
        if h["name"] == "repro_stage_seconds"
    }
    assert stage_hists[(("stage", "detect"),)] >= 1


def test_process_campaign_metrics_merge_equals_thread_mode():
    """Sum of per-worker snapshots == in-process accounting.

    The same matrix runs bit-identically under both executors, so
    every deterministic counter the children ship back (runs, probes,
    rounds, solver work) must merge to exactly what the thread
    executor records in-process.
    """
    specs = expand_matrix(RunSpec(**FAST), error_seeds=[1, 2])

    before = METRICS.snapshot()
    thread_campaign = CampaignRunner(executor="thread").run(specs)
    thread_counts = _counters(METRICS.delta(before))

    before = METRICS.snapshot()
    process_campaign = CampaignRunner(executor="process").run(specs)
    process_counts = _counters(METRICS.delta(before))

    assert thread_campaign.n_fixed == process_campaign.n_fixed >= 1
    assert process_counts == thread_counts
    assert process_counts[
        ("repro_runs_total", (("status", "ok"),))
    ] == 2.0  # both specs complete (fixed or not: status stays ok)
    assert process_counts[
        ("repro_campaign_runs_total", (("status", "ok"),))
    ] == 2.0
    # stage latency histograms shipped by the children merged too
    merged = METRICS.histogram("repro_stage_seconds", stage="detect")
    assert merged is not None and merged.count >= 4


# ----------------------------------------------------------------------
# CLI surface: run --trace/--profile, report --timings, trace report
# ----------------------------------------------------------------------

def test_cli_run_trace_profile_and_trace_report(tmp_path, capsys):
    trace_path = tmp_path / "trace.json"
    json_path = tmp_path / "result.json"
    rc = cli_main([
        "run", "--design", "9sym", "--preset", "fast",
        "--error-seed", "1", "--max-probes", "6",
        "--trace", str(trace_path), "--profile",
        "--json", str(json_path),
    ])
    assert rc == 0
    trace = json.loads(trace_path.read_text())
    assert trace["traceEvents"]
    assert "profile" in trace["otherData"]
    result = json.loads(json_path.read_text())
    assert result["profile"]["stages"]
    capsys.readouterr()

    rc = cli_main(["report", str(trace_path)])
    assert rc == 0
    out = capsys.readouterr().out
    assert out.startswith("run [ok]")
    assert "└─" in out and "stage profile" in out


def test_cli_report_timings_table(tmp_path, capsys):
    result = run_spec(RunSpec(**FAST))
    (tmp_path / "a.json").write_text(json.dumps(result.to_dict()))
    (tmp_path / "b.json").write_text(json.dumps(result.to_dict()))
    rc = cli_main(["report", str(tmp_path), "--timings"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "p50 s" in out and "p95 s" in out
    detect_row = next(line for line in out.splitlines()
                      if line.startswith("detect"))
    assert detect_row.split()[1] == "2"  # both files counted
