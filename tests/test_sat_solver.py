"""The CDCL solver: correctness against brute force, incrementality."""

import itertools
import random

import pytest

from repro.sat.cnf import CNF, SatError
from repro.sat.solver import Solver, _luby


def brute_force_sat(n_vars, clauses):
    for bits in itertools.product([0, 1], repeat=n_vars):
        if all(
            any((lit > 0) == bool(bits[abs(lit) - 1]) for lit in clause)
            for clause in clauses
        ):
            return True
    return False


def make_random_cnf(n_vars, n_clauses, rng):
    cnf = CNF()
    clauses = []
    for _ in range(n_vars):
        cnf.new_var()
    for _ in range(n_clauses):
        width = rng.randint(1, min(3, n_vars))
        chosen = rng.sample(range(1, n_vars + 1), width)
        clause = [v if rng.random() < 0.5 else -v for v in chosen]
        clauses.append(clause)
        cnf.add_clause(clause)
    return cnf, clauses


class TestSolverCorrectness:
    def test_matches_brute_force_on_random_instances(self):
        rng = random.Random(11)
        for trial in range(80):
            n = rng.randint(2, 10)
            cnf, clauses = make_random_cnf(n, rng.randint(1, 4 * n), rng)
            solver = Solver(cnf, seed=trial % 5)
            got = solver.solve()
            assert got == brute_force_sat(n, clauses)
            if got:
                for clause in clauses:
                    assert any(solver.lit_true(lit) for lit in clause)

    def test_empty_formula_is_sat(self):
        assert Solver(CNF()).solve() is True

    def test_empty_clause_is_unsat(self):
        cnf = CNF()
        cnf.new_var()
        cnf.clauses.append(())
        solver = Solver(cnf)
        assert solver.solve() is False
        assert solver.ok is False

    def test_unit_propagation_chain(self):
        cnf = CNF()
        a, b, c, d = (cnf.new_var() for _ in range(4))
        cnf.add_clause([a])
        cnf.add_clause([-a, b])
        cnf.add_clause([-b, c])
        cnf.add_clause([-c, d])
        solver = Solver(cnf)
        assert solver.solve()
        assert all(solver.value(v) == 1 for v in (a, b, c, d))
        assert solver.stats.decisions == 0

    def test_pigeonhole_unsat(self):
        # 4 pigeons in 3 holes: exercises learning and backjumping
        cnf = CNF()
        var = {
            (p, h): cnf.new_var() for p in range(4) for h in range(3)
        }
        for p in range(4):
            cnf.add_clause([var[p, h] for h in range(3)])
        for h in range(3):
            for p1 in range(4):
                for p2 in range(p1 + 1, 4):
                    cnf.add_clause([-var[p1, h], -var[p2, h]])
        solver = Solver(cnf, seed=1)
        assert solver.solve() is False
        assert solver.stats.conflicts > 0
        assert solver.stats.learned > 0

    def test_luby_sequence(self):
        assert [_luby(i) for i in range(15)] == [
            1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8,
        ]

    def test_rejects_zero_literal(self):
        cnf = CNF()
        cnf.new_var()
        solver = Solver(cnf)
        with pytest.raises(SatError):
            solver.solve([0])

    def test_model_unavailable_after_unsat(self):
        cnf = CNF()
        a = cnf.new_var()
        cnf.add_clause([a])
        cnf.add_clause([-a])
        solver = Solver(cnf)
        assert solver.solve() is False
        with pytest.raises(SatError):
            solver.value(a)


class TestAssumptionsAndIncrementality:
    def test_assumptions_branch_the_same_formula(self):
        cnf = CNF()
        a, b, c = (cnf.new_var() for _ in range(3))
        cnf.add_clause([a, b])
        cnf.add_clause([-a, c])
        solver = Solver(cnf)
        assert solver.solve([a]) and solver.lit_true(c)
        assert solver.solve([-a]) and solver.lit_true(b)
        assert solver.solve([a, -c]) is False
        # a refuted assumption set must not poison the instance
        assert solver.ok is True
        assert solver.solve([a]) is True

    def test_conflicting_assumptions(self):
        cnf = CNF()
        a = cnf.new_var()
        solver = Solver(cnf)
        assert solver.solve([a, -a]) is False
        assert solver.ok is True

    def test_clauses_added_between_solves(self):
        cnf = CNF()
        a, b = cnf.new_var(), cnf.new_var()
        cnf.add_clause([a, b])
        solver = Solver(cnf)
        assert solver.solve([-a]) and solver.lit_true(b)
        cnf.add_clause([-b])  # grows the attached CNF
        assert solver.solve([-a]) is False
        assert solver.solve([a]) is True
        cnf.add_clause([-a])
        assert solver.solve() is False
        assert solver.ok is False

    def test_variables_added_between_solves(self):
        cnf = CNF()
        a = cnf.new_var()
        cnf.add_clause([a])
        solver = Solver(cnf)
        assert solver.solve()
        b = cnf.new_var()
        cnf.add_clause([-a, b])
        assert solver.solve()
        assert solver.value(b) == 1


class TestDeterminism:
    def _run(self, seed):
        rng = random.Random(3)
        cnf, _ = make_random_cnf(25, 95, rng)
        solver = Solver(cnf, seed=seed)
        sat = solver.solve()
        model = (
            [solver.value(v) for v in range(1, 26)] if sat else None
        )
        return sat, model, solver.stats.snapshot()

    def test_same_seed_same_run(self):
        assert self._run(7) == self._run(7)
        assert self._run(0) == self._run(0)

    def test_verdict_independent_of_seed(self):
        assert self._run(1)[0] == self._run(2)[0] == self._run(0)[0]
