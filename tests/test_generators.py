"""Benchmark generators: calibration to Table 1 and golden functionality."""

import random

import pytest

from repro.generators import PAPER_DESIGNS, build_design, paper_design_names
from repro.generators.alu import reference_alu
from repro.generators.des import (
    PC1,
    _permute_int,
    make_des,
    reference_des,
)
from repro.generators.hamming import (
    N_CHECK,
    N_DATA,
    encode_check_bits,
    reference_correct,
)
from repro.generators.parity import reference_9sym_value
from repro.netlist import check_netlist, simulate_words
from repro.netlist.simulate import SequentialSimulator

SMALL = ["9sym", "styr", "sand", "c499", "planet1", "c880", "s9234"]


@pytest.mark.parametrize("name", SMALL)
def test_calibration_within_15pct(name):
    bundle = build_design(name)
    deviation = abs(bundle.n_clbs - bundle.paper_clbs) / bundle.paper_clbs
    assert deviation <= 0.15, (
        f"{name}: {bundle.n_clbs} vs paper {bundle.paper_clbs}"
    )


@pytest.mark.parametrize("name", SMALL)
def test_netlists_validate(name):
    bundle = build_design(name)
    check_netlist(bundle.netlist)
    check_netlist(bundle.mapped)


def test_design_registry_complete():
    assert set(paper_design_names()) == set(PAPER_DESIGNS)
    assert len(PAPER_DESIGNS) == 9


def test_unknown_design_rejected():
    from repro.errors import ReproError

    with pytest.raises(ReproError):
        build_design("z80")


def test_hierarchy_covers_mapped_netlist():
    bundle = build_design("styr")
    assert not bundle.hierarchy.check_covers(bundle.mapped)


def test_9sym_function():
    bundle = build_design("9sym")
    rng = random.Random(5)
    W = 64
    xs = [rng.getrandbits(W) for _ in range(9)]
    ins = {}
    for pi in bundle.netlist.primary_inputs():
        name = pi.name.split(":", 1)[-1]
        ins[name] = 0
    for i in range(9):
        ins[f"x0[{i}]"] = xs[i]
    out = simulate_words(bundle.netlist, ins, W)
    for p in range(W):
        bits = [(xs[i] >> p) & 1 for i in range(9)]
        assert (out["f0"] >> p) & 1 == reference_9sym_value(bits)


def test_c499_corrects_all_single_errors():
    bundle = build_design("c499")
    data = 0xDEADBEEF
    check = encode_check_bits(data)
    for flip in range(N_DATA):
        rx = data ^ (1 << flip)
        ins = {f"d[{i}]": (rx >> i) & 1 for i in range(N_DATA)}
        ins |= {f"c[{j}]": (check >> j) & 1 for j in range(N_CHECK)}
        ins["en"] = 1
        out = simulate_words(bundle.netlist, ins, 1)
        got = sum((out[f"q[{i}]"] & 1) << i for i in range(N_DATA))
        assert got == data == reference_correct(rx, check)


def test_c499_clean_word_untouched():
    bundle = build_design("c499")
    data = 0x12345678
    check = encode_check_bits(data)
    ins = {f"d[{i}]": (data >> i) & 1 for i in range(N_DATA)}
    ins |= {f"c[{j}]": (check >> j) & 1 for j in range(N_CHECK)}
    ins["en"] = 1
    out = simulate_words(bundle.netlist, ins, 1)
    got = sum((out[f"q[{i}]"] & 1) << i for i in range(N_DATA))
    assert got == data
    assert out["err"] == 0


def test_c880_alu_against_reference():
    bundle = build_design("c880")
    rng = random.Random(2)
    width = 10
    for op in range(8):
        a = rng.getrandbits(width)
        b = rng.getrandbits(width)
        ins = {"cin": 0}
        ins |= {f"op[{i}]": (op >> i) & 1 for i in range(3)}
        ins |= {f"a0[{i}]": (a >> i) & 1 for i in range(width)}
        ins |= {f"b0[{i}]": (b >> i) & 1 for i in range(width)}
        # second slice inputs: zeros
        ins |= {f"a1[{i}]": 0 for i in range(width)}
        ins |= {f"b1[{i}]": 0 for i in range(width)}
        out = simulate_words(bundle.netlist, ins, 1)
        got = sum((out[f"r0[{i}]"] & 1) << i for i in range(width))
        want, _ = reference_alu(a, b, op, 0, width)
        assert got == want, f"op={op}"


def test_des_known_answer_fips():
    """Full 16-round DES against the classic FIPS test vector."""
    key56 = _permute_int(0x133457799BBCDFF1, 64, PC1)
    pt = 0x0123456789ABCDEF
    assert reference_des(pt, key56, 16) == 0x85E813540F0AB405

    netlist = make_des("ka", n_rounds=16, pipeline=False)
    ins = {f"pt[{i}]": (pt >> (63 - i)) & 1 for i in range(64)}
    ins |= {f"key[{i}]": (key56 >> (55 - i)) & 1 for i in range(56)}
    out = simulate_words(netlist, ins, 1)
    ct = 0
    for i in range(64):
        ct = (ct << 1) | (out[f"ct[{i}]"] & 1)
    assert ct == 0x85E813540F0AB405


def test_des_pipelined_matches_reference():
    key56 = _permute_int(0xAABB09182736CCDD, 64, PC1)
    pt = 0x123456ABCD132536
    netlist = make_des("pipe", n_rounds=5, pipeline=True)
    sim = SequentialSimulator(netlist)
    ins = {f"pt[{i}]": (pt >> (63 - i)) & 1 for i in range(64)}
    ins |= {f"key[{i}]": (key56 >> (55 - i)) & 1 for i in range(56)}
    for _ in range(5):
        out = sim.step(ins)
    ct = 0
    for i in range(64):
        ct = (ct << 1) | (out[f"ct[{i}]"] & 1)
    assert ct == reference_des(pt, key56, 5)


def test_mips_executes_addi_and_branch():
    from repro.generators.mips import make_mips

    netlist = make_mips(width=8, n_regs=4)
    check_netlist(netlist)
    sim = SequentialSimulator(netlist)

    def step(instr, mem=0):
        ins = {f"instr[{i}]": (instr >> i) & 1 for i in range(32)}
        ins |= {f"mem_rdata[{i}]": (mem >> i) & 1 for i in range(8)}
        return sim.step(ins)

    def pc_of(out):
        return sum((out[f"pc_out[{i}]"] & 1) << i for i in range(8))

    # addi $1, $0, 5  (opcode 001000, rs=0, rt=1, imm=5)
    addi = (0b001000 << 26) | (0 << 21) | (1 << 16) | 5
    out = step(addi)
    assert pc_of(out) == 0
    # store $1 to observe it: sw $1, 0($0) -> mem_wdata = reg1
    sw = (0b101011 << 26) | (0 << 21) | (1 << 16) | 0
    out = step(sw)
    assert pc_of(out) == 4  # PC advanced
    wdata = sum((out[f"mem_wdata[{i}]"] & 1) << i for i in range(8))
    assert wdata == 5
    assert out["mem_write"] == 1

    # beq $0, $0, +3 -> branch taken: pc = pc+4 + 3*4
    beq = (0b000100 << 26) | (0 << 21) | (0 << 16) | 3
    out = step(beq)
    pc_before = pc_of(out)
    out = step(addi)
    assert pc_of(out) == pc_before + 4 + 12
