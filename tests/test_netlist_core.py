"""Netlist data model: construction, mutation, analysis."""

import pytest

from repro.errors import NetlistError, ValidationError
from repro.netlist import CellKind, Netlist, check_netlist


def tiny():
    """y = (a AND b) XOR c, plus a register on the XOR."""
    n = Netlist("tiny")
    a, b, c = n.add_input("a"), n.add_input("b"), n.add_input("c")
    g1 = n.add_instance(CellKind.AND, [a, b], name="g1")
    g2 = n.add_instance(CellKind.XOR, [g1.output, c], name="g2")
    ff = n.add_dff(g2.output, name="ff")
    n.add_output("y", g2.output)
    n.add_output("q", ff.output)
    return n


class TestConstruction:
    def test_connectivity_tables(self):
        n = tiny()
        g1 = n.instance("g1")
        assert g1.output.driver is g1
        assert (n.instance("g2"), 0) in g1.output.sinks

    def test_duplicate_names_rejected(self):
        n = tiny()
        with pytest.raises(NetlistError):
            n.add_net("a")
        with pytest.raises(NetlistError):
            n.add_instance(CellKind.AND, [n.net("a"), n.net("b")], name="g1")

    def test_double_driver_rejected(self):
        n = tiny()
        with pytest.raises(NetlistError):
            n.add_instance(
                CellKind.AND, [n.net("a"), n.net("b")], output=n.net("a")
            )

    def test_foreign_net_rejected(self):
        n, other = tiny(), Netlist("other")
        foreign = other.add_net("x")
        with pytest.raises(NetlistError):
            n.add_instance(CellKind.NOT, [foreign])

    def test_fresh_names_unique(self):
        n = tiny()
        names = {n.fresh_name("t") for _ in range(50)}
        assert len(names) == 50

    def test_lut_table_width_checked(self):
        n = tiny()
        with pytest.raises(NetlistError):
            n.add_lut([n.net("a")], table=0b100)  # 1 input, 2-entry table

    def test_stats(self):
        st = tiny().stats()
        assert st.n_inputs == 3
        assert st.n_outputs == 2
        assert st.n_gates == 2
        assert st.n_ffs == 1
        assert st.depth == 2


class TestMutation:
    def test_set_input_rewires_both_tables(self):
        n = tiny()
        g2 = n.instance("g2")
        a = n.net("a")
        old = g2.inputs[1]
        n.set_input(g2, 1, a)
        assert g2.inputs[1] is a
        assert (g2, 1) in a.sinks
        assert (g2, 1) not in old.sinks
        check_netlist(n)

    def test_change_kind_checks_arity(self):
        n = tiny()
        g1 = n.instance("g1")
        n.change_kind(g1, CellKind.NAND)
        assert g1.kind is CellKind.NAND
        with pytest.raises(NetlistError):
            n.change_kind(g1, CellKind.NOT)  # arity 1 != 2

    def test_transfer_sinks(self):
        n = tiny()
        a, c = n.net("a"), n.net("c")
        moved = n.transfer_sinks(c, a)
        assert moved == 1
        assert c.fanout == 0
        check_netlist(n)

    def test_transfer_sinks_with_keep(self):
        n = tiny()
        g2 = n.instance("g2")
        c, a = n.net("c"), n.net("a")
        n.transfer_sinks(c, a, keep=lambda inst, idx: inst is g2)
        assert (g2, 1) in c.sinks

    def test_remove_instance_detaches(self):
        n = tiny()
        ff = n.instance("ff")
        out_net = ff.output
        n.remove_instance(ff)
        assert out_net.driver is None
        assert not n.has_instance("ff")
        problems = check_netlist(n, strict=False)
        assert any("undriven" in p for p in problems)

    def test_prune_dangling(self):
        n = tiny()
        n.add_net("orphan")
        assert n.prune_dangling() == 1
        assert not n.has_net("orphan")

    def test_rename_instance(self):
        n = tiny()
        g1 = n.instance("g1")
        n.rename_instance(g1, "gate_one")
        assert n.instance("gate_one") is g1
        with pytest.raises(NetlistError):
            n.rename_instance(g1, "g2")


class TestAnalysis:
    def test_topo_order_respects_dependencies(self):
        n = tiny()
        order = [i.name for i in n.topo_order()]
        assert order.index("g1") < order.index("g2")

    def test_topo_order_handles_ff_feedback(self):
        n = Netlist("loop")
        q = n.add_net("q")
        inv = n.add_instance(CellKind.NOT, [q], name="inv")
        n.add_dff(inv.output, name="ff", output=q)
        order = [i.name for i in n.topo_order()]
        assert set(order) == {"inv", "ff"}

    def test_combinational_loop_detected(self):
        n = Netlist("bad")
        x = n.add_net("x")
        g = n.add_instance(CellKind.NOT, [x], name="g")
        # manually close a combinational loop: g drives x via a buffer
        n.add_instance(CellKind.BUF, [g.output], name="b", output=x)
        with pytest.raises(ValidationError):
            n.topo_order()

    def test_levels_and_depth(self):
        n = tiny()
        levels = n.levels()
        assert levels["g1"] == 1
        assert levels["g2"] == 2
        assert n.depth() == 2

    def test_fanin_cone(self):
        n = tiny()
        cone = n.fanin_cone([n.instance("g2")])
        assert {"g1", "g2"} <= cone
        assert "ff" not in cone

    def test_fanout_cone(self):
        n = tiny()
        cone = n.fanout_cone([n.instance("g1")])
        assert {"g1", "g2", "ff"} <= cone

    def test_copy_is_deep_and_equal(self):
        n = tiny()
        clone = n.copy()
        assert sorted(i.name for i in clone.instances()) == sorted(
            i.name for i in n.instances()
        )
        clone.change_kind(clone.instance("g1"), CellKind.OR)
        assert n.instance("g1").kind is CellKind.AND
        check_netlist(clone)
