"""Packaging metadata: pyproject.toml, src layout, dynamic version."""

import subprocess
import sys
import tomllib
from pathlib import Path

from setuptools import find_packages

REPO = Path(__file__).resolve().parent.parent


def load_pyproject() -> dict:
    with open(REPO / "pyproject.toml", "rb") as fh:
        return tomllib.load(fh)


def test_pyproject_names_the_package():
    data = load_pyproject()
    assert data["project"]["name"] == "repro"
    assert "version" in data["project"]["dynamic"]
    attr = data["tool"]["setuptools"]["dynamic"]["version"]["attr"]
    assert attr == "repro._version.__version__"


def test_src_layout_discovers_every_package():
    data = load_pyproject()
    assert data["tool"]["setuptools"]["packages"]["find"]["where"] == ["src"]
    found = set(find_packages(where=str(REPO / "src")))
    assert "repro" in found
    assert "repro.sat" in found, "the SAT subsystem must ship"
    assert "repro.api" in found
    assert "repro.netlist" in found


def test_setup_py_resolves_metadata_offline():
    # the classic path (no wheel needed) must read name and the dynamic
    # version straight from pyproject.toml
    out = subprocess.run(
        [sys.executable, "setup.py", "--name", "--version"],
        cwd=REPO, capture_output=True, text=True, timeout=120,
    )
    assert out.returncode == 0, out.stderr
    lines = [l for l in out.stdout.strip().splitlines() if l and not l.startswith("/")]
    from repro._version import __version__

    assert lines[-2:] == ["repro", __version__]
