"""CLB packing: BLE formation, pairing, block nets, ECO extension."""

import pytest

from repro.errors import SynthesisError
from repro.netlist import CellKind, Netlist
from repro.synth import map_to_luts, pack_netlist
from repro.synth.pack import extend_packing, refresh_block_nets
from tests.conftest import make_adder_netlist


def packed_adder(width=4, registered=True):
    netlist = make_adder_netlist(width, registered=registered)
    mapped = map_to_luts(netlist)
    return mapped, pack_netlist(mapped)


def test_unmapped_netlist_rejected(adder4):
    with pytest.raises(SynthesisError):
        pack_netlist(adder4)


def test_every_logic_instance_has_a_block():
    mapped, packed = packed_adder()
    for inst in mapped.logic_instances():
        assert inst.name in packed.block_of_instance


def test_clb_capacity_two_bles():
    mapped, packed = packed_adder()
    for clb in packed.clbs:
        assert 1 <= len(clb.bles) <= 2


def test_lut_ff_pairs_merge_into_one_ble():
    mapped, packed = packed_adder(4, registered=True)
    merged = [
        ble for clb in packed.clbs for ble in clb.bles if ble.lut and ble.ff
    ]
    assert merged  # the registered adder has LUT->FF chains


def test_clb_count_near_half_ble_count():
    mapped, packed = packed_adder(8, registered=True)
    n_bles = sum(len(clb.bles) for clb in packed.clbs)
    assert packed.n_clbs == (n_bles + 1) // 2


def test_block_nets_exclude_intra_clb():
    mapped, packed = packed_adder()
    for net in packed.nets.values():
        blocks = {net.driver, *net.sinks}
        assert len(blocks) >= 2


def test_io_blocks_created():
    mapped, packed = packed_adder(4, registered=False)
    assert len([b for b in packed.io_blocks()]) == 8 + 5


def test_blocks_of_instances_ignores_unknown():
    mapped, packed = packed_adder()
    known = mapped.logic_instances()[0].name
    found = packed.blocks_of_instances({known, "not_a_cell"})
    assert len(found) == 1


class TestEcoExtension:
    def test_extend_packing_creates_blocks(self):
        mapped, packed = packed_adder()
        target = mapped.primary_outputs()[0].inputs[0]
        lut = mapped.add_lut([target], 0b01, name="eco_lut")
        before = len(packed.blocks)
        fresh = extend_packing(packed, {"eco_lut"})
        assert len(fresh) == 1
        assert len(packed.blocks) == before + 1
        assert packed.block_of_instance["eco_lut"] in fresh

    def test_extend_packing_merges_new_lut_ff(self):
        mapped, packed = packed_adder()
        src = mapped.primary_outputs()[0].inputs[0]
        lut = mapped.add_lut([src], 0b10, name="eco_lut")
        ff = mapped.add_dff(lut.output, name="eco_ff")
        fresh = extend_packing(packed, {"eco_lut", "eco_ff"})
        assert len(fresh) == 1  # one CLB holds the merged BLE
        block = packed.blocks[next(iter(fresh))]
        assert set(block.instances) == {"eco_lut", "eco_ff"}

    def test_extend_packing_rejects_gates(self):
        mapped, packed = packed_adder()
        pos = mapped.primary_outputs()
        gate = mapped.add_instance(
            CellKind.AND, [pos[0].inputs[0], pos[1].inputs[0]],
            name="bad_gate",
        )
        with pytest.raises(SynthesisError):
            extend_packing(packed, {"bad_gate"})

    def test_refresh_tracks_new_and_changed(self):
        mapped, packed = packed_adder()
        src = mapped.primary_outputs()[0].inputs[0]
        mapped.add_output("probe", src)
        extend_packing(packed, {"po:probe"})
        new_ids, changed_ids, removed_ids = refresh_block_nets(packed)
        # the probed net gained a sink block: changed (or new if it was
        # previously intra-block)
        assert new_ids or changed_ids
        assert not removed_ids

    def test_refresh_preserves_unchanged_indices(self):
        mapped, packed = packed_adder()
        before = dict(packed.nets)
        new_ids, changed_ids, removed_ids = refresh_block_nets(packed)
        assert not new_ids and not changed_ids and not removed_ids
        assert packed.nets == before

    def test_refresh_removes_dead_nets(self):
        mapped, packed = packed_adder(4, registered=False)
        po = next(iter(mapped.primary_outputs()))
        name_before = len(packed.nets)
        mapped.remove_instance(po)
        new_ids, changed_ids, removed_ids = refresh_block_nets(packed)
        assert removed_ids or changed_ids  # the PO's net lost its IOB sink
