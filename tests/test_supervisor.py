"""Supervised process workers, campaign journal/resume, backoff clamp.

The process executor's contract: bit-identical results to the thread
executor when workers live, structured stage-``"worker"`` failures when
they die (crash, hang, hard timeout), and journal-backed resume that
re-executes only unfinished specs after an interrupt.
"""

import json
import os

import pytest

from repro.api.campaign import CampaignRunner, expand_matrix
from repro.api.journal import CampaignJournal
from repro.api.pipeline import PipelineHooks, run_spec
from repro.api.result import RunResult
from repro.api.spec import RunSpec
from repro.resilience.budget import (
    Deadline,
    backoff_seconds,
    clamp_backoff,
    deadline_scope,
)
from repro.resilience.failure import WORKER_STAGE, RunFailure
from repro.resilience.supervisor import hard_timeout_for, run_supervised

#: the cheapest spec that actually excites and fixes a bug
#: (error_seed=0 on 9sym never excites — keep seeds >= 1)
FAST = dict(design="9sym", preset="fast", max_probes=6, cache="off",
            error_seed=1)

KILL_SECOND = {
    "faults": [{
        "kind": "worker_kill", "stage": "localize",
        "match": {"error_seed": [2]},
    }]
}


def identical(a: RunResult, b: RunResult) -> bool:
    return (
        a.trajectory_key() == b.trajectory_key()
        and a.candidates == b.candidates
        and a.status == b.status
        and a.fixed == b.fixed
    )


# ----------------------------------------------------------------------
# run_supervised
# ----------------------------------------------------------------------

def test_supervised_run_is_bit_identical_to_in_process():
    spec = RunSpec(**FAST)
    local = run_spec(spec)
    remote = run_supervised(spec)
    assert remote.status == "ok"
    assert identical(local, remote)
    assert remote.spec == spec.to_dict()


def test_worker_kill_becomes_structured_worker_failure():
    spec = RunSpec(design="9sym", preset="fast", max_probes=6,
                   cache="off", error_seed=2, chaos=KILL_SECOND)
    result = run_supervised(spec)
    assert result.status == "failed"
    assert len(result.failures) == 1
    failure = result.failures[0]
    assert failure["stage"] == WORKER_STAGE
    assert failure["error"] == "WorkerCrashed"
    assert "SIGKILL" in failure["message"]


def test_worker_hang_trips_heartbeat_and_is_killed():
    chaos = {"faults": [{"kind": "worker_hang", "stage": "localize"}]}
    spec = RunSpec(design="9sym", preset="fast", max_probes=6,
                   cache="off", error_seed=1, chaos=chaos)
    result = run_supervised(spec, heartbeat_timeout_s=1.5)
    assert result.status == "failed"
    assert result.failures[0]["stage"] == WORKER_STAGE
    assert result.failures[0]["error"] == "WorkerHeartbeatLost"


def test_hard_timeout_kills_a_cooperation_proof_worker():
    # an in-pipeline hang with no cooperative deadline armed: only the
    # supervisor's hard ceiling can end this run
    chaos = {"faults": [{"kind": "hang", "stage": "localize",
                         "hang_s": 60.0}]}
    spec = RunSpec(design="9sym", preset="fast", max_probes=6,
                   cache="off", error_seed=1, chaos=chaos)
    result = run_supervised(spec, hard_timeout_s=2.0)
    assert result.status == "timeout"
    assert result.failures[0]["stage"] == WORKER_STAGE
    assert result.failures[0]["error"] == "WorkerHardTimeout"


def test_hard_timeout_derivation():
    assert hard_timeout_for(RunSpec(**FAST)) is None
    spec = RunSpec(**dict(FAST, timeout_s=10.0))
    assert hard_timeout_for(spec) == pytest.approx(40.0)
    assert hard_timeout_for(spec, hard_timeout_s=7.0) == 7.0


def test_slow_heartbeat_worker_is_not_falsely_killed():
    # a worker configured to beat once a second must survive a 2.5 s
    # watchdog grace: interval < grace means silence is never mistaken
    # for death, however leisurely the beat
    spec = RunSpec(**FAST)
    local = run_spec(spec)
    remote = run_supervised(spec, heartbeat_interval_s=1.0,
                            heartbeat_timeout_s=2.5)
    assert remote.status == "ok"
    assert identical(local, remote)


def test_heartbeat_interval_rides_into_the_worker():
    # the converse proves the knob actually reaches the child: with the
    # first beat scheduled *after* the grace window, a perfectly healthy
    # worker is declared heartbeat-lost
    spec = RunSpec(**dict(FAST, chaos={"faults": [
        {"kind": "hang", "stage": "localize", "hang_s": 30.0}]}))
    result = run_supervised(spec, heartbeat_interval_s=10.0,
                            heartbeat_timeout_s=2.0, hard_timeout_s=60.0)
    assert result.status == "failed"
    assert result.failures[0]["stage"] == WORKER_STAGE
    assert result.failures[0]["error"] == "WorkerHeartbeatLost"


def test_worker_kinds_are_inert_in_process():
    # under the thread executor the same chaos config must be a no-op:
    # an in-process SIGKILL would take the whole campaign down
    spec = RunSpec(design="9sym", preset="fast", max_probes=6,
                   cache="off", error_seed=2, chaos=KILL_SECOND)
    result = run_spec(spec)
    assert result.status == "ok"
    assert not result.failures


# ----------------------------------------------------------------------
# journal
# ----------------------------------------------------------------------

def test_journal_roundtrip_and_torn_tail(tmp_path):
    journal = CampaignJournal(str(tmp_path / "journal.jsonl"))
    assert journal.load() == {}
    spec = RunSpec(**FAST)
    result = RunResult(spec=spec.to_dict(), status="ok", design="9sym")
    journal.append(spec, result)
    entries = journal.load()
    assert set(entries) == {spec.digest()}
    assert entries[spec.digest()]["status"] == "ok"
    # a crash mid-append can tear the last line; load must survive it
    with open(journal.path, "a") as fh:
        fh.write('{"v": 1, "digest": "abc", "status": "o')
    assert set(journal.load()) == {spec.digest()}
    # a re-executed run supersedes its first entry
    journal.append(spec, RunResult(spec=spec.to_dict(), status="failed"))
    assert journal.load()[spec.digest()]["status"] == "failed"


def test_spec_digest_ignores_harness_fields():
    spec = RunSpec(**FAST)
    assert spec.digest() == spec.replaced(chaos=KILL_SECOND).digest()
    assert spec.digest() == spec.replaced(cache_dir="/tmp/x").digest()
    assert spec.digest() != spec.replaced(error_seed=2).digest()
    assert spec.digest() != spec.replaced(strategy="full").digest()


def test_worker_failure_result_is_spec_complete():
    spec = RunSpec(**FAST)
    failure = RunFailure(stage=WORKER_STAGE, error="WorkerCrashed",
                         message="killed")
    result = RunResult.worker_failure(spec, failure, wall_seconds=1.25)
    assert result.status == "failed"
    assert result.spec == spec.to_dict()
    assert result.design == "9sym"
    assert result.strategy == spec.strategy
    assert result.failures == [failure.to_dict()]
    # JSON-complete like every other result
    assert RunResult.from_json(result.to_json()).failures == result.failures


# ----------------------------------------------------------------------
# process-executor campaigns
# ----------------------------------------------------------------------

def test_process_campaign_survives_worker_kill_and_resumes(tmp_path):
    cache_dir = str(tmp_path / "cache")
    journal = str(tmp_path / "journal.jsonl")
    base = RunSpec(design="9sym", preset="fast", max_probes=6,
                   cache="shared", error_seed=1, chaos=KILL_SECOND)
    specs = expand_matrix(base, error_seeds=[1, 2, 3])

    runner = CampaignRunner(workers=2, executor="process",
                            cache_dir=cache_dir, journal=journal)
    campaign = runner.run(specs)
    assert [r.status for r in campaign.results] == ["ok", "failed", "ok"]
    assert campaign.executor == "process"
    assert not campaign.aborted and not campaign.interrupted
    killed = campaign.results[1]
    assert killed.failures[0]["stage"] == WORKER_STAGE

    # surviving runs are bit-identical to the thread executor
    thread = CampaignRunner(workers=1).run(
        [s.replaced(chaos=None) for s in specs]
    )
    assert identical(campaign.results[0], thread.results[0])
    assert identical(campaign.results[2], thread.results[2])

    # the shared store survived the kill and verifies clean
    from repro.tiling.cache import cache_file_path, verify_cache_file

    assert verify_cache_file(cache_file_path(cache_dir)) > 0

    # resume re-executes only the killed spec and reaches all-ok
    resumed = CampaignRunner(
        workers=2, executor="process", cache_dir=cache_dir,
        journal=journal, resume=True,
    ).run([s.replaced(chaos=None) for s in specs])
    assert [r.status for r in resumed.results] == ["ok", "ok", "ok"]
    assert any("resume: skipped 2" in n for n in resumed.notes)
    assert identical(resumed.results[1], thread.results[1])


def test_process_campaign_aggregates_worker_cache_deltas(tmp_path):
    cache_dir = str(tmp_path / "cache")
    spec = RunSpec(design="9sym", preset="fast", max_probes=6,
                   cache="shared", error_seed=1)
    campaign = CampaignRunner(
        workers=1, executor="process", cache_dir=cache_dir
    ).run([spec])
    assert campaign.cache is not None
    assert campaign.cache["stores"] > 0


# ----------------------------------------------------------------------
# interrupt + resume (thread executor)
# ----------------------------------------------------------------------

class _InterruptOnSeed(PipelineHooks):
    """Simulates Ctrl-C landing mid-campaign, at a chosen run's start."""

    def __init__(self, error_seed: int) -> None:
        self.error_seed = error_seed

    def on_stage_start(self, stage, ctx) -> None:
        if (
            stage.name == "detect"
            and ctx.spec is not None
            and ctx.spec.error_seed == self.error_seed
        ):
            raise KeyboardInterrupt


def test_sigint_mid_campaign_journals_partial_and_resumes(tmp_path):
    journal = str(tmp_path / "journal.jsonl")
    base = RunSpec(**FAST)
    specs = expand_matrix(base, error_seeds=[1, 2, 3])

    uninterrupted = CampaignRunner(workers=1).run(specs)
    assert all(r.status == "ok" for r in uninterrupted.results)

    interrupted = CampaignRunner(
        workers=1, hooks=_InterruptOnSeed(2), journal=journal
    ).run(specs)
    assert interrupted.interrupted
    assert len(interrupted.results) == 1
    assert any("interrupted" in n for n in interrupted.notes)
    # the completed run was journaled before the interrupt landed
    assert len(CampaignJournal(journal).load()) == 1

    resumed = CampaignRunner(
        workers=1, journal=journal, resume=True
    ).run(specs)
    assert not resumed.interrupted
    assert len(resumed.results) == 3
    assert any("resume: skipped 1" in n for n in resumed.notes)
    # completing only the remainder yields the uninterrupted campaign
    for got, want in zip(resumed.results, uninterrupted.results):
        assert identical(got, want)
    # ... and the journal now covers every spec
    assert len(CampaignJournal(journal).load()) == 3


def test_runner_validation():
    with pytest.raises(ValueError):
        CampaignRunner(executor="fork")
    with pytest.raises(ValueError):
        CampaignRunner(resume=True)  # resume needs a journal
    with pytest.raises(ValueError):
        CampaignRunner(executor="process", hooks=PipelineHooks())


# ----------------------------------------------------------------------
# backoff clamp
# ----------------------------------------------------------------------

def test_clamp_backoff_without_budget_is_identity():
    assert clamp_backoff(1.5) == 1.5
    assert clamp_backoff(0.0) == 0.0
    assert clamp_backoff(-1.0) == 0.0


def test_clamp_backoff_honors_run_budget():
    # the sleep may take at most half the budget: the retry attempt
    # itself must get the larger share
    assert clamp_backoff(10.0, budget_s=4.0) == 2.0
    assert clamp_backoff(1.0, budget_s=4.0) == 1.0


def test_clamp_backoff_honors_armed_deadline():
    with deadline_scope(Deadline(0.5)):
        assert clamp_backoff(10.0, budget_s=60.0) <= 0.25
    # the deadline wins even when tighter than the explicit budget
    with deadline_scope(Deadline(100.0)):
        assert clamp_backoff(10.0, budget_s=4.0) == 2.0


def test_backoff_sleep_cannot_exceed_half_timeout():
    # the composition the pipeline uses at its retry site
    spec = RunSpec(**dict(FAST, retries=2, retry_backoff_s=8.0,
                          timeout_s=1.0))
    for attempt in (1, 2):
        raw = backoff_seconds(attempt, seed=spec.seed,
                              base=spec.retry_backoff_s)
        assert clamp_backoff(raw, budget_s=spec.timeout_s) <= 0.5


# ----------------------------------------------------------------------
# CLI: cache verify
# ----------------------------------------------------------------------

def test_cli_cache_verify(tmp_path, capsys):
    from repro.api.cli import main
    from repro.tiling.cache import TileConfig, TileConfigStore, \
        cache_file_path

    cache_dir = str(tmp_path)
    assert main(["cache", "verify", str(tmp_path / "missing")]) == 0

    store = TileConfigStore(cache_file_path(cache_dir))
    store.write_entry("k1", TileConfig({}, {}, {}))
    store.write_entry("k2", TileConfig({}, {}, {}))
    assert main(["cache", "verify", cache_dir]) == 0
    # the bare store directory is accepted too
    assert main(["cache", "verify", store.root]) == 0

    with open(store.entry_path("k2"), "wb") as fh:
        fh.write(b"garbage")
    assert main(["cache", "verify", cache_dir]) == 1
    out = capsys.readouterr().out
    assert "1 corrupt" in out
