"""Property tests bridging the SAT and simulation subsystems.

Random netlists from the existing generators, two obligations:

* the Tseitin-encoded CNF must agree with the compiled kernel on the
  value of every output under random input assignments (the encodings
  and the instruction tape are two independent interpretations of the
  same netlist — they may never drift);
* a miter between a netlist and an error-injected copy must be SAT,
  and the extracted counterexample must reproduce the mismatch in
  simulation.
"""

import pytest

from repro.debug.errors import inject_error
from repro.debug.testgen import random_stimulus
from repro.generators.random_logic import (
    random_combinational_netlist,
    random_sequential_netlist,
)
from repro.netlist.simulate import SequentialSimulator
from repro.sat.cnf import CNF, GateBuilder
from repro.sat.encode import CircuitEncoder
from repro.sat.equiv import counterexample_mismatches, prove_equivalence
from repro.sat.solver import Solver
from repro.synth.techmap import map_to_luts

N_PATTERNS = 8
FRAMES = 3


def _assume_inputs(enc, stimulus, pattern):
    assume = []
    for (port, frame), var in sorted(enc.input_vars.items()):
        bit = (stimulus[frame].get(port, 0) >> pattern) & 1
        assume.append(var if bit else -var)
    return assume


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
@pytest.mark.parametrize("mapped", [False, True])
def test_cnf_agrees_with_compiled_kernel(seed, mapped):
    netlist = random_sequential_netlist(
        f"prop{seed}", n_inputs=6, n_outputs=5, n_ffs=4, n_gates=40,
        seed=seed,
    )
    if mapped:
        netlist = map_to_luts(netlist)
    stimulus = random_stimulus(netlist, FRAMES, N_PATTERNS, seed=seed)
    sim = SequentialSimulator(netlist, engine="compiled")
    sim.reset(N_PATTERNS)
    outputs = sim.run(stimulus, N_PATTERNS)

    gb = GateBuilder(CNF())
    enc = CircuitEncoder(netlist, gb)
    lits = {
        (name, t): enc.output_lit(name, t)
        for name in enc.output_names()
        for t in range(FRAMES)
    }
    solver = Solver(gb.cnf, seed=seed)
    for pattern in range(N_PATTERNS):
        assert solver.solve(_assume_inputs(enc, stimulus, pattern))
        for (name, t), lit in lits.items():
            want = (outputs[t][name] >> pattern) & 1
            assert int(solver.lit_true(lit)) == want, (
                seed, mapped, pattern, name, t,
            )


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_combinational_cnf_agrees_after_mapping(seed):
    netlist = map_to_luts(
        random_combinational_netlist(
            f"comb{seed}", n_inputs=8, n_outputs=4, n_gates=30, seed=seed
        )
    )
    stimulus = random_stimulus(netlist, 1, N_PATTERNS, seed=seed + 10)
    sim = SequentialSimulator(netlist, engine="compiled")
    sim.reset(N_PATTERNS)
    outputs = sim.run(stimulus, N_PATTERNS)
    gb = GateBuilder(CNF())
    enc = CircuitEncoder(netlist, gb)
    lits = {name: enc.output_lit(name, 0) for name in enc.output_names()}
    solver = Solver(gb.cnf, seed=seed)
    for pattern in range(N_PATTERNS):
        assert solver.solve(_assume_inputs(enc, stimulus, pattern))
        for name, lit in lits.items():
            want = (outputs[0][name] >> pattern) & 1
            assert int(solver.lit_true(lit)) == want


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_injected_error_miter_is_sat_with_live_counterexample(seed):
    golden = map_to_luts(
        random_combinational_netlist(
            f"bug{seed}", n_inputs=6, n_outputs=6, n_gates=35, seed=seed
        )
    )
    bad = golden.copy("bad")
    # output_invert corrupts an entire LUT, so every injection site that
    # feeds an output is excitable — no dead-logic flakiness
    record = inject_error(bad, "output_invert", seed=seed)
    proof = prove_equivalence(bad, golden, frames=2, seed=seed)
    if proof.proved:
        # the corrupted LUT drives no primary output: simulation must
        # agree the netlists are indistinguishable
        stim = random_stimulus(golden, 4, 32, seed=seed)
        sims = []
        for nl in (bad, golden):
            sim = SequentialSimulator(nl, engine="compiled")
            sim.reset(32)
            sims.append(sim.run(stim, 32))
        assert sims[0] == sims[1], record
        return
    mismatches = counterexample_mismatches(bad, golden, proof.counterexample)
    assert mismatches, (seed, record)
    assert proof.cex_output in {m.output for m in mismatches}
