"""Cell library: arity validation and bit-parallel gate evaluation."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import NetlistError
from repro.netlist.cells import (
    CellKind,
    arity_of,
    eval_gate,
    eval_lut,
    is_combinational,
    is_sequential,
    lut_table_for_gate,
)


class TestArity:
    def test_fixed_arities(self):
        assert arity_of(CellKind.NOT, 1) == 1
        assert arity_of(CellKind.MUX2, 3) == 3
        assert arity_of(CellKind.DFF, 1) == 1
        assert arity_of(CellKind.INPUT, 0) == 0

    def test_fixed_arity_violations(self):
        with pytest.raises(NetlistError):
            arity_of(CellKind.NOT, 2)
        with pytest.raises(NetlistError):
            arity_of(CellKind.MUX2, 2)

    def test_variadic_ranges(self):
        assert arity_of(CellKind.AND, 2) == 2
        assert arity_of(CellKind.AND, 8) == 8
        with pytest.raises(NetlistError):
            arity_of(CellKind.AND, 1)
        with pytest.raises(NetlistError):
            arity_of(CellKind.XOR, 9)

    def test_lut_range(self):
        assert arity_of(CellKind.LUT, 0) == 0
        assert arity_of(CellKind.LUT, 4) == 4
        with pytest.raises(NetlistError):
            arity_of(CellKind.LUT, 5)


class TestClassification:
    def test_gates_are_combinational(self):
        for kind in (CellKind.AND, CellKind.MUX2, CellKind.LUT, CellKind.BUF):
            assert is_combinational(kind)

    def test_dff_is_sequential(self):
        assert is_sequential(CellKind.DFF)
        assert not is_combinational(CellKind.DFF)


class TestEvalGate:
    MASK = 0b1111

    def test_and(self):
        assert eval_gate(CellKind.AND, [0b1100, 0b1010], self.MASK) == 0b1000

    def test_nand(self):
        assert eval_gate(CellKind.NAND, [0b1100, 0b1010], self.MASK) == 0b0111

    def test_or_nor(self):
        assert eval_gate(CellKind.OR, [0b1100, 0b1010], self.MASK) == 0b1110
        assert eval_gate(CellKind.NOR, [0b1100, 0b1010], self.MASK) == 0b0001

    def test_xor_xnor(self):
        assert eval_gate(CellKind.XOR, [0b1100, 0b1010], self.MASK) == 0b0110
        assert eval_gate(CellKind.XNOR, [0b1100, 0b1010], self.MASK) == 0b1001

    def test_not_bounded_by_mask(self):
        assert eval_gate(CellKind.NOT, [0b0101], self.MASK) == 0b1010

    def test_mux2_selects(self):
        sel, d0, d1 = 0b1100, 0b1010, 0b0110
        out = eval_gate(CellKind.MUX2, [sel, d0, d1], self.MASK)
        assert out == (d0 & ~sel | d1 & sel) & self.MASK

    def test_constants(self):
        assert eval_gate(CellKind.CONST0, [], self.MASK) == 0
        assert eval_gate(CellKind.CONST1, [], self.MASK) == self.MASK

    def test_nary_gates(self):
        assert eval_gate(CellKind.AND, [15, 12, 10], 15) == 8
        assert eval_gate(CellKind.XOR, [1, 2, 4], 7) == 7


class TestLutTables:
    def test_and2_table(self):
        assert lut_table_for_gate(CellKind.AND, 2) == 0b1000

    def test_or2_table(self):
        assert lut_table_for_gate(CellKind.OR, 2) == 0b1110

    def test_xor2_table(self):
        assert lut_table_for_gate(CellKind.XOR, 2) == 0b0110

    def test_buf_and_not(self):
        assert lut_table_for_gate(CellKind.BUF, 1) == 0b10
        assert lut_table_for_gate(CellKind.NOT, 1) == 0b01

    def test_mux2_table_matches_eval(self):
        table = lut_table_for_gate(CellKind.MUX2, 3)
        for sel in (0, 1):
            for d0 in (0, 1):
                for d1 in (0, 1):
                    minterm = sel | d0 << 1 | d1 << 2
                    expected = d1 if sel else d0
                    assert (table >> minterm) & 1 == expected

    def test_eval_lut_zero_input(self):
        assert eval_lut(1, [], 0b11) == 0b11
        assert eval_lut(0, [], 0b11) == 0


@given(
    table=st.integers(min_value=0, max_value=(1 << 16) - 1),
    inputs=st.lists(st.integers(min_value=0, max_value=255), min_size=4, max_size=4),
)
def test_eval_lut_matches_scalar_reference(table, inputs):
    """Bit-parallel LUT evaluation agrees with per-pattern lookup."""
    mask = 0xFF
    word = eval_lut(table, inputs, mask)
    for p in range(8):
        minterm = sum(((inputs[j] >> p) & 1) << j for j in range(4))
        assert (word >> p) & 1 == (table >> minterm) & 1


@given(
    kind=st.sampled_from(
        [CellKind.AND, CellKind.OR, CellKind.XOR, CellKind.NAND,
         CellKind.NOR, CellKind.XNOR]
    ),
    n=st.integers(min_value=2, max_value=4),
    data=st.data(),
)
def test_gate_eval_agrees_with_its_lut_table(kind, n, data):
    """eval_gate and the absorbed LUT table are the same function."""
    mask = 0xFF
    inputs = [
        data.draw(st.integers(min_value=0, max_value=mask)) for _ in range(n)
    ]
    table = lut_table_for_gate(kind, n)
    assert eval_gate(kind, inputs, mask) == eval_lut(table, inputs, mask)
