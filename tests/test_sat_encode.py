"""GateBuilder folding/hashing and the unrolled netlist encoder."""

import itertools

from repro.netlist.cells import CellKind
from repro.netlist.core import Netlist
from repro.netlist.simulate import SequentialSimulator, simulate_words
from repro.sat.cnf import CNF, GateBuilder, _cofactor, _flip_var
from repro.sat.encode import CircuitEncoder
from repro.sat.solver import Solver


class TestGateBuilderFolding:
    def test_and_folding(self):
        gb = GateBuilder()
        x, y = gb.cnf.new_var(), gb.cnf.new_var()
        assert gb.lit_and([]) == gb.true
        assert gb.lit_and([x]) == x
        assert gb.lit_and([x, gb.true]) == x
        assert gb.lit_and([x, gb.false]) == gb.false
        assert gb.lit_and([x, x, y]) == gb.lit_and([y, x])
        assert gb.lit_and([x, -x]) == gb.false

    def test_xor_normalization(self):
        gb = GateBuilder()
        x, y = gb.cnf.new_var(), gb.cnf.new_var()
        assert gb.lit_xor([x, x]) == gb.false
        assert gb.lit_xor([x, -x]) == gb.true
        assert gb.lit_xor([x, gb.false]) == x
        assert gb.lit_xor([x, gb.true]) == -x
        assert gb.lit_xor([x, y]) == gb.lit_xor([y, x])
        assert gb.lit_xor([-x, y]) == -gb.lit_xor([x, y])

    def test_mux_folding(self):
        gb = GateBuilder()
        s, x, y = (gb.cnf.new_var() for _ in range(3))
        assert gb.lit_mux(gb.true, x, y) == y
        assert gb.lit_mux(gb.false, x, y) == x
        assert gb.lit_mux(s, x, x) == x
        assert gb.lit_mux(s, -x, x) == gb.lit_xor([s, -x])
        assert gb.lit_mux(-s, x, y) == gb.lit_mux(s, y, x)

    def test_structural_hashing_shares_nodes(self):
        gb = GateBuilder()
        x, y = gb.cnf.new_var(), gb.cnf.new_var()
        before = gb.cnf.n_vars
        a1 = gb.lit_and([x, y])
        a2 = gb.lit_and([y, x])
        assert a1 == a2
        assert gb.cnf.n_vars == before + 1

    def test_lut_canonicalizes_to_gate_nodes(self):
        gb = GateBuilder()
        x, y = gb.cnf.new_var(), gb.cnf.new_var()
        assert gb.lit_lut(0b0110, [x, y]) == gb.lit_xor([x, y])
        assert gb.lit_lut(0b1000, [x, y]) == gb.lit_and([x, y])
        assert gb.lit_lut(0b1110, [x, y]) == gb.lit_or([x, y])
        assert gb.lit_lut(0b0111, [x, y]) == -gb.lit_and([x, y])
        # constant input cofactors away; don't-care input drops
        assert gb.lit_lut(0b1000, [x, gb.true]) == x
        assert gb.lit_lut(0b1010, [x, y]) == x  # ignores y
        assert gb.lit_lut(0b0101, [x, y]) == -x

    def test_cofactor_and_flip_helpers(self):
        table = 0b0110  # xor2
        assert _cofactor(table, 2, 0, 0) == 0b10  # xor(0, b) = b
        assert _cofactor(table, 2, 0, 1) == 0b01  # xor(1, b) = ~b
        assert _flip_var(table, 2, 0) == 0b1001  # xnor

    def test_every_lut_semantics_exhaustively(self):
        for k in (1, 2, 3):
            for table in range(1 << (1 << k)):
                gb = GateBuilder()
                ins = [gb.cnf.new_var() for _ in range(k)]
                out = gb.lit_lut(table, ins)
                solver = Solver(gb.cnf)
                for bits in itertools.product([0, 1], repeat=k):
                    assume = [
                        v if b else -v for v, b in zip(ins, bits)
                    ]
                    minterm = sum(b << j for j, b in enumerate(bits))
                    want = (table >> minterm) & 1
                    assert solver.solve(
                        assume + [out if want else -out]
                    ), (k, table, bits)
                    assert not solver.solve(
                        assume + [-out if want else out]
                    ), (k, table, bits)


def _solve_inputs(enc, solver, stimulus, pattern):
    """Assumption literals fixing every encoded input to the pattern."""
    assume = []
    for (port, frame), var in sorted(enc.input_vars.items()):
        bit = (stimulus[frame].get(port, 0) >> pattern) & 1
        assume.append(var if bit else -var)
    return assume


class TestCircuitEncoder:
    def _comb_netlist(self):
        nl = Netlist("comb")
        a, b, c = nl.add_input("a"), nl.add_input("b"), nl.add_input("c")
        g1 = nl.add_gate(CellKind.AND, [a, b])
        g2 = nl.add_gate(CellKind.XOR, [g1, c])
        lut = nl.add_lut([a, g2], 0b0111, name="l0")
        nl.add_output("y", g2)
        nl.add_output("z", lut.output)
        return nl

    def test_combinational_agrees_with_simulator(self):
        nl = self._comb_netlist()
        gb = GateBuilder(CNF())
        enc = CircuitEncoder(nl, gb)
        lits = {name: enc.output_lit(name, 0) for name in ("y", "z")}
        solver = Solver(gb.cnf)
        for bits in itertools.product([0, 1], repeat=3):
            inputs = dict(zip("abc", bits))
            want = simulate_words(nl, inputs, 1)
            stim = [inputs]
            assert solver.solve(_solve_inputs(enc, solver, stim, 0))
            for name, lit in lits.items():
                assert int(solver.lit_true(lit)) == want[name]

    def test_sequential_frames_match_simulator(self):
        nl = Netlist("seq")
        a = nl.add_input("a")
        q0 = nl.add_net("q0")
        q1 = nl.add_net("q1")
        x = nl.add_gate(CellKind.XOR, [a, q0])
        nl.add_dff(x, name="ff0", output=q0, init=1)
        nl.add_dff(q0, name="ff1", output=q1)
        nl.add_output("y", q1)
        frames = 4
        stimulus = [{"a": p & 1} for p in (1, 0, 1, 1)]
        sim = SequentialSimulator(nl, engine="interpreted")
        sim.reset(1)
        outs = sim.run(stimulus, 1)
        gb = GateBuilder(CNF())
        enc = CircuitEncoder(nl, gb)
        lits = [enc.output_lit("y", t) for t in range(frames)]
        solver = Solver(gb.cnf)
        assert solver.solve(_solve_inputs(enc, solver, stimulus, 0))
        for t in range(frames):
            assert int(solver.lit_true(lits[t])) == outs[t]["y"]

    def test_frame_zero_uses_init_state(self):
        nl = Netlist("init")
        a = nl.add_input("a")
        q = nl.add_net("q")
        nl.add_dff(a, name="ff", output=q, init=1)
        nl.add_output("y", q)
        gb = GateBuilder(CNF())
        enc = CircuitEncoder(nl, gb)
        assert enc.output_lit("y", 0) == gb.true

    def test_constant_stimulus_folds_everything(self):
        nl = self._comb_netlist()
        gb = GateBuilder(CNF())
        enc = CircuitEncoder(
            nl, gb, inputs=lambda port, frame: gb.const(port == "a")
        )
        # a=1, b=0, c=0: the whole cone is constant — no clauses needed
        assert gb.const_value(enc.output_lit("y", 0)) == 0
        assert gb.const_value(enc.output_lit("z", 0)) == 1

    def test_relax_hook_replaces_instance_output(self):
        nl = self._comb_netlist()
        gb = GateBuilder(CNF())
        free = {}

        def relax(inst, frame, in_lits, lit):
            if inst.name != "l0":
                return lit
            return free.setdefault(frame, gb.cnf.new_var())

        enc = CircuitEncoder(nl, gb, relax=relax)
        z = enc.output_lit("z", 0)
        assert z == free[0]
