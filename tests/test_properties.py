"""Property-based tests over the core invariants (hypothesis)."""

from hypothesis import assume, given, settings, strategies as st

from repro.debug import ERROR_KINDS, apply_correction, inject_error
from repro.errors import DebugFlowError
from repro.generators.random_logic import (
    random_combinational_netlist,
    random_sequential_netlist,
)
from repro.netlist import check_netlist, simulate_words
from repro.netlist.blif import read_blif, write_blif
from repro.netlist.simulate import SequentialSimulator
from repro.rng import make_rng
from repro.synth import map_to_luts, pack_netlist


@given(seed=st.integers(0, 10_000))
@settings(max_examples=15, deadline=None)
def test_random_netlists_always_validate(seed):
    n = random_sequential_netlist(
        f"p{seed}", n_inputs=6, n_outputs=4, n_ffs=5, n_gates=30, seed=seed
    )
    assert check_netlist(n) == []


@given(seed=st.integers(0, 10_000))
@settings(max_examples=10, deadline=None)
def test_blif_roundtrip_property(seed):
    """write_blif . read_blif preserves combinational behaviour."""
    n = random_combinational_netlist(
        f"b{seed}", n_inputs=6, n_outputs=4, n_gates=25, seed=seed
    )
    parsed = read_blif(write_blif(n))
    rng = make_rng(seed, "stim")
    ins = {f"in{i}": rng.getrandbits(32) for i in range(6)}
    assert simulate_words(n, ins, 32) == simulate_words(parsed, ins, 32)


@given(seed=st.integers(0, 10_000))
@settings(max_examples=10, deadline=None)
def test_mapping_then_packing_preserves_instances(seed):
    n = random_sequential_netlist(
        f"m{seed}", n_inputs=6, n_outputs=4, n_ffs=4, n_gates=25, seed=seed
    )
    mapped = map_to_luts(n)
    packed = pack_netlist(mapped)
    placed_instances = {
        name
        for block in packed.blocks
        for name in block.instances
    }
    expected = {i.name for i in mapped.instances()}
    assert placed_instances == expected


@given(
    kind=st.sampled_from(ERROR_KINDS),
    seed=st.integers(0, 1000),
)
@settings(max_examples=15, deadline=None)
def test_inject_then_correct_is_identity(kind, seed):
    """Correction is the exact inverse of injection, functionally."""
    golden = map_to_luts(
        random_sequential_netlist(
            f"e{seed}", n_inputs=5, n_outputs=4, n_ffs=3, n_gates=24,
            seed=seed,
        )
    )
    dut = golden.copy()
    try:
        record = inject_error(dut, kind, seed=seed)
    except DebugFlowError:
        # e.g. a netlist with only symmetric LUTs cannot host input_swap
        assume(False)
    apply_correction(dut, record)
    check_netlist(dut)
    rng = make_rng(seed, "verify")
    sim_g = SequentialSimulator(golden)
    sim_d = SequentialSimulator(dut)
    for _ in range(3):
        ins = {f"in{i}": rng.getrandbits(32) for i in range(5)}
        assert sim_d.step(ins, 32) == sim_g.step(ins, 32)


@given(seed=st.integers(0, 500), n_tiles=st.integers(2, 8))
@settings(max_examples=8, deadline=None)
def test_tile_partition_conserves_blocks(seed, n_tiles):
    from repro.arch import pick_device
    from repro.pnr import EFFORT_PRESETS, full_place_and_route
    from repro.tiling import TilingOptions, assign_blocks_to_tiles, plan_tile_grid

    mapped = map_to_luts(
        random_sequential_netlist(
            f"t{seed}", n_inputs=5, n_outputs=4, n_ffs=4, n_gates=30,
            seed=seed,
        )
    )
    packed = pack_netlist(mapped)
    device = pick_device(
        packed.n_clbs, area_overhead=0.8, min_io=len(packed.io_blocks())
    )
    layout = full_place_and_route(
        packed, device, seed=seed, preset=EFFORT_PRESETS["fast"],
        strict_routing=False,
    )
    rects = plan_tile_grid(
        packed.n_clbs, device,
        TilingOptions(n_tiles=n_tiles, area_overhead=0.3),
    )
    tiles = assign_blocks_to_tiles(packed, layout.placement, rects)
    assigned = sorted(b for t in tiles for b in t.blocks)
    assert assigned == sorted(b.index for b in packed.clb_blocks())
    assert all(t.used <= t.capacity for t in tiles)
