"""Legacy setup shim — all metadata lives in ``pyproject.toml``.

Two install paths, because offline environments often lack the
``wheel`` package that modern editable installs build with:

* ``pip install -e . --no-use-pep517 --no-build-isolation`` — the
  classic develop-install path wherever setuptools *and* wheel exist
  (pip >= 23.1 refuses the flag without both);
* ``python setup.py develop`` — the fallback that needs setuptools
  only, for containers where ``wheel`` is absent and cannot be
  fetched.

Either way the metadata (name, dynamic version from
``repro._version``, ``src/`` package discovery) comes from
``pyproject.toml``; this file stays an empty shim.
"""

from setuptools import setup

setup()
