"""Ablation C: effort-model decomposition (DESIGN.md).

Breaks one tiled commit and one Quick_ECO commit into their components
(fixed invocation overhead / placer moves / router expansions) so the
calibration of INVOCATION_OVERHEAD_UNITS is transparent.
"""

from repro.analysis.experiments import (
    _measure_single_tile_change,
    _pick_change_instance,
)
from repro.pnr.effort import (
    EffortMeter,
    INVOCATION_OVERHEAD_UNITS,
    ROUTE_EXPANSION_WEIGHT,
)
from repro.pnr.flow import full_place_and_route
from benchmarks.conftest import bench_designs


def test_ablation_effort(benchmark, suite):
    designs = [d for d in bench_designs() if d in ("styr", "s9234", "des")]
    designs = designs or bench_designs()[:1]

    def run():
        results = []
        for name in designs:
            ctx = suite.context(name)
            tiled = ctx.tiled(10)
            target = _pick_change_instance(ctx)
            tile_meter = _measure_single_tile_change(ctx, tiled, target, seed=77)
            qe_meter = EffortMeter()
            full_place_and_route(
                ctx.bundle.packed, ctx.device, seed=78,
                preset=suite.config.preset, meter=qe_meter,
                strict_routing=False,
            )
            results.append((name, tile_meter, qe_meter))
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n== Ablation C: effort decomposition (work units) ==")
    print(
        f"{'design':<8} {'kind':<10} {'overhead':>9} {'placer':>9} "
        f"{'router':>9} {'total':>10}"
    )
    for name, tile_meter, qe_meter in results:
        for kind, meter in (("tiled", tile_meter), ("quick_eco", qe_meter)):
            print(
                f"{name:<8} {kind:<10} "
                f"{INVOCATION_OVERHEAD_UNITS * meter.invocations:>9.0f} "
                f"{meter.place_moves:>9} "
                f"{ROUTE_EXPANSION_WEIGHT * meter.route_expansions:>9.0f} "
                f"{meter.work_units:>10.0f}"
            )
        assert tile_meter.work_units < qe_meter.work_units
