"""Ablation A: slack budget vs Figure-3 staircases (DESIGN.md).

More slack per tile means fewer tiles are pulled into a change of the
same size — the quantitative justification for the paper's 20 % default
("as little as 10 % ... would not allow enough room").
"""

from repro.analysis.experiments import run_ablation_slack
from benchmarks.conftest import bench_preset


def test_ablation_slack(benchmark):
    rows = benchmark.pedantic(
        lambda: run_ablation_slack(
            design="s9234", overheads=(0.10, 0.20, 0.30),
            preset=bench_preset(),
        ),
        rounds=1, iterations=1,
    )
    print("\n== Ablation A: slack budget vs affected tiles (s9234) ==")
    by_overhead: dict[float, list] = {}
    for r in rows:
        by_overhead.setdefault(r.area_overhead, []).append(r)
    for overhead, series in sorted(by_overhead.items()):
        series.sort(key=lambda r: r.logic_size)
        cells = "".join(f"{r.pct_affected:>6.0f}%" for r in series)
        print(f"  slack {overhead * 100:3.0f}%: {cells}")

    # more slack -> no more tiles affected at any size
    sizes = sorted({r.logic_size for r in rows})
    table = {(r.area_overhead, r.logic_size): r.pct_affected for r in rows}
    for size in sizes:
        assert table[(0.30, size)] <= table[(0.10, size)] + 1e-9
