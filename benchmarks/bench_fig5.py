"""Figure 5: place-and-route speedup vs tile size.

Paper reference: at 2.5 % tiles DES 2.8x, MIPS 5.6x, s9234 17.0x; the
average (median) speedup falls from 7.6 (2.6) at 5 % tiles to 1.5 (1.3)
at 25 % tiles; small designs cannot be tiled at 2.5 %.
"""

from repro.analysis import format_figure5, run_figure5
from repro.analysis.experiments import fig5_aggregate


def test_figure5(benchmark, suite):
    rows = benchmark.pedantic(
        lambda: run_figure5(suite=suite), rounds=1, iterations=1
    )
    print("\n== Figure 5: Place-and-Route Speedup (vs Quick_ECO) ==")
    print(format_figure5(rows))
    print("\nper-design detail (work units):")
    for r in rows:
        if r.feasible:
            print(
                f"  {r.design:>8} @{r.tile_fraction * 100:4.1f}%: "
                f"tiled={r.tiled_work:9.0f}  quick_eco={r.quick_eco_work:9.0f}  "
                f"incremental={r.incremental_work:9.0f}  "
                f"speedup_qe={r.speedup_vs_quick_eco:5.1f}x  "
                f"speedup_inc={r.speedup_vs_incremental:5.1f}x"
            )

    feasible = [r for r in rows if r.feasible]
    assert feasible
    # tiling always wins against whole-block re-P&R
    assert all(r.speedup_vs_quick_eco > 1.0 for r in feasible)
    # speedup decays from finest to coarsest tiles (paper's headline)
    agg = fig5_aggregate(rows)
    fractions = sorted(agg)
    if len(fractions) >= 2:
        assert agg[fractions[0]]["mean"] >= agg[fractions[-1]]["mean"]
