"""Benchmark configuration.

Environment knobs:

* ``REPRO_BENCH_DESIGNS`` — comma-separated subset (default: all nine
  paper designs; e.g. ``REPRO_BENCH_DESIGNS=9sym,styr,s9234`` for a
  quick pass);
* ``REPRO_BENCH_PRESET`` — effort preset (default ``fast``; the numbers
  recorded in EXPERIMENTS.md were produced with ``normal``).

Each benchmark regenerates one table/figure of the paper and prints it,
so ``pytest benchmarks/ --benchmark-only -s`` reproduces the evaluation
section end to end.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.experiments import ExperimentConfig, ExperimentSuite
from repro.generators import paper_design_names
from repro.pnr.effort import EFFORT_PRESETS


def bench_designs() -> list[str]:
    raw = os.environ.get("REPRO_BENCH_DESIGNS", "")
    if not raw:
        return paper_design_names()
    names = [n.strip() for n in raw.split(",") if n.strip()]
    known = set(paper_design_names())
    unknown = [n for n in names if n not in known]
    if unknown:
        raise ValueError(f"unknown designs in REPRO_BENCH_DESIGNS: {unknown}")
    return names


def bench_preset():
    name = os.environ.get("REPRO_BENCH_PRESET", "fast")
    return EFFORT_PRESETS[name]


@pytest.fixture(scope="session")
def suite() -> ExperimentSuite:
    config = ExperimentConfig(
        designs=bench_designs(),
        seed=1,
        preset=bench_preset(),
    )
    return ExperimentSuite(config)
