"""Figure 4: maximum test-logic size per test point.

Paper reference: hyperbolic decay from ~20 CLBs (largest design, one
test point) toward zero as 100 test points split the per-tile slack.
"""

from repro.analysis import format_figure4, run_figure4


def test_figure4(benchmark, suite):
    series = benchmark.pedantic(
        lambda: run_figure4(suite=suite), rounds=1, iterations=1
    )
    print("\n== Figure 4: Maximum Test Logic Size ==")
    print(format_figure4(series))
    for s in series:
        assert all(b <= a for a, b in zip(s.max_logic, s.max_logic[1:])), (
            f"{s.design} budget must decay with test points"
        )
