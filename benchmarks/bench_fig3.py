"""Figure 3: % of tiles affected by test-logic introduction.

Paper reference: staircase curves per design; with ten tiles and 20 %
slack, s9234 (47 CLBs of slack) saturates to 100 % around 50 CLBs of
new logic while DES (210 CLBs of slack) stays near 50 % at 100 CLBs.
"""

from repro.analysis import format_figure3, run_figure3


def test_figure3(benchmark, suite):
    series = benchmark.pedantic(
        lambda: run_figure3(suite=suite), rounds=1, iterations=1
    )
    print("\n== Figure 3: Tiles Affected by Logic Introduction ==")
    print(format_figure3(series))
    for s in series:
        assert all(
            b >= a - 1e-9 for a, b in zip(s.pct_affected, s.pct_affected[1:])
        ), f"{s.design} curve must be monotone"
