"""Ablation B: uniform vs min-cut-refined tile boundaries (DESIGN.md).

The paper requires "inter-tile interconnect is minimized"; this bench
quantifies what the KL-style refinement pass buys over purely geometric
boundaries.
"""

from repro.analysis.experiments import run_ablation_boundaries
from benchmarks.conftest import bench_designs, bench_preset


def test_ablation_boundaries(benchmark):
    designs = [d for d in bench_designs() if d in ("styr", "c880", "s9234")]
    designs = designs or ["styr"]
    rows = benchmark.pedantic(
        lambda: run_ablation_boundaries(designs=designs, preset=bench_preset()),
        rounds=1, iterations=1,
    )
    print("\n== Ablation B: boundary refinement vs inter-tile cut ==")
    print(f"{'design':<10} {'refined':>8} {'cut nets':>9} {'timing ns':>10}")
    for r in rows:
        print(
            f"{r.design:<10} {str(r.refined):>8} {r.inter_tile_nets:>9} "
            f"{r.timing_ns:>10.1f}"
        )
    by_design: dict[str, dict[bool, int]] = {}
    for r in rows:
        by_design.setdefault(r.design, {})[r.refined] = r.inter_tile_nets
    for design, cuts in by_design.items():
        assert cuts[True] <= cuts[False], f"{design}: refinement regressed"
