"""Engine performance benchmark: compiled kernel vs interpreted engine.

Measures, per design:

* **simulation throughput** — pattern-cycles/second of the sequential
  simulator under each engine (identical outputs asserted);
* **localization wall-clock** — a full detect→localize campaign under
  each engine; the localization *compute* time (seed + probe picking +
  emulation, excluding the tile P&R commits, which are engine-agnostic
  and identical) is reported per probe, with the speedup and a
  bit-identical check on every probe verdict and the final candidates.

Results land in ``BENCH_perf.json`` so the perf trajectory is tracked
across PRs.  Run with::

    PYTHONPATH=src python benchmarks/bench_perf.py \
        [--designs s9234,mips,des] [--out BENCH_perf.json]

The acceptance bar (checked at the end, non-zero exit on failure):
>=5x localization-compute speedup on the largest benchmarked design.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.debug.session import EmulationDebugSession
from repro.debug.testgen import random_stimulus
from repro.errors import DebugFlowError
from repro.generators import build_design
from repro.netlist.simulate import SequentialSimulator
from repro.pnr.effort import EFFORT_PRESETS

DEFAULT_DESIGNS = ("s9234", "mips", "des")
#: error seeds chosen so each design's campaign detects and probes
ERROR_SEEDS = {"s9234": 3, "mips": 2, "des": 1}
ENGINES = ("interpreted", "compiled")


def bench_sim_throughput(
    design: str, n_cycles: int = 24, n_patterns: int = 64, seed: int = 1
) -> dict:
    """Pattern-cycles/sec of the sequential simulator, both engines."""
    bundle = build_design(design)
    netlist = bundle.mapped
    stimulus = random_stimulus(netlist, n_cycles, n_patterns, seed=seed)
    out = {"n_instances": len(netlist)}
    outputs = {}
    for engine in ENGINES:
        sim = SequentialSimulator(netlist, engine=engine)
        sim.reset(n_patterns)  # warm: lowering happens at construction
        t0 = time.perf_counter()
        outputs[engine] = sim.run(stimulus, n_patterns)
        dt = time.perf_counter() - t0
        out[engine] = {
            "seconds": dt,
            "pattern_cycles_per_sec": n_cycles * n_patterns / dt,
        }
    assert outputs["interpreted"] == outputs["compiled"], (
        f"{design}: engines disagree on simulation outputs"
    )
    out["identical_outputs"] = True
    out["speedup"] = (
        out["compiled"]["pattern_cycles_per_sec"]
        / out["interpreted"]["pattern_cycles_per_sec"]
    )
    return out


def _localization_campaign(design: str, engine: str, error_seed: int):
    """One detect→localize→correct campaign; fresh design per engine."""
    bundle = build_design(design)
    session = EmulationDebugSession(
        bundle.packed,
        strategy="tiled",
        seed=1,
        preset=EFFORT_PRESETS["fast"],
        engine=engine,
    )
    t0 = time.perf_counter()
    report = session.run(error_kind="table_bit", error_seed=error_seed,
                         max_probes=12)
    total = time.perf_counter() - t0
    return report, total


def bench_localization(design: str, error_seed: int) -> dict:
    out: dict = {}
    reports = {}
    for engine in ENGINES:
        report, total = _localization_campaign(design, engine, error_seed)
        reports[engine] = report
        loc = report.localization
        if loc is None or not loc.steps:
            raise DebugFlowError(
                f"{design}: error seed {error_seed} produced no probes; "
                "pick a different ERROR_SEEDS entry"
            )
        out[engine] = {
            "campaign_seconds": total,
            "n_probes": loc.n_probes,
            "n_candidates": len(loc.candidates),
            "localization_seconds": loc.localization_seconds,
            "seconds_per_probe": loc.localization_seconds / loc.n_probes,
            "timings": {k: round(v, 6) for k, v in loc.timings.items()},
        }

    li = reports["interpreted"].localization
    lc = reports["compiled"].localization
    steps_i = [
        (s.probe_instance, s.mismatch, s.candidates_before,
         s.candidates_after)
        for s in li.steps
    ]
    steps_c = [
        (s.probe_instance, s.mismatch, s.candidates_before,
         s.candidates_after)
        for s in lc.steps
    ]
    assert steps_i == steps_c, f"{design}: probe trajectories diverge"
    assert li.candidates == lc.candidates, (
        f"{design}: final candidate sets diverge"
    )
    out["identical_results"] = True
    out["speedup"] = (
        li.localization_seconds / lc.localization_seconds
    )
    out["campaign_speedup"] = (
        out["interpreted"]["campaign_seconds"]
        / out["compiled"]["campaign_seconds"]
    )
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--designs", default=",".join(DEFAULT_DESIGNS),
        help="comma-separated design names (default: %(default)s)",
    )
    parser.add_argument(
        "--out", default="BENCH_perf.json", help="output JSON path"
    )
    args = parser.parse_args(argv)
    designs = [d.strip() for d in args.designs.split(",") if d.strip()]
    if not designs:
        parser.error("--designs must name at least one design")
    from repro.generators import paper_design_names

    unknown = [d for d in designs if d not in paper_design_names()]
    if unknown:
        parser.error(
            f"unknown designs {unknown}; known: "
            + ", ".join(paper_design_names())
        )

    results: dict = {"designs": {}}
    for design in designs:
        print(f"== {design} ==")
        sim = bench_sim_throughput(design)
        print(
            "  sim: interpreted {:.0f} pc/s, compiled {:.0f} pc/s "
            "({:.1f}x, bit-identical)".format(
                sim["interpreted"]["pattern_cycles_per_sec"],
                sim["compiled"]["pattern_cycles_per_sec"],
                sim["speedup"],
            )
        )
        loc = bench_localization(design, ERROR_SEEDS.get(design, 1))
        print(
            "  localization: interpreted {:.3f}s ({:.3f}s/probe), "
            "compiled {:.3f}s ({:.4f}s/probe) — {:.1f}x, "
            "bit-identical over {} probes".format(
                loc["interpreted"]["localization_seconds"],
                loc["interpreted"]["seconds_per_probe"],
                loc["compiled"]["localization_seconds"],
                loc["compiled"]["seconds_per_probe"],
                loc["speedup"],
                loc["compiled"]["n_probes"],
            )
        )
        results["designs"][design] = {
            "sim_throughput": sim,
            "localization": loc,
        }

    # acceptance: >=5x localization speedup on the largest design
    # (largest by instance count, not by --designs order)
    largest = max(
        designs,
        key=lambda d: results["designs"][d]["sim_throughput"]["n_instances"],
    )
    largest_speedup = results["designs"][largest]["localization"]["speedup"]
    results["largest_design"] = largest
    results["largest_localization_speedup"] = largest_speedup
    results["speedup_target"] = 5.0
    results["speedup_ok"] = largest_speedup >= 5.0

    with open(args.out, "w") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
    print(f"\nwrote {args.out}")
    print(
        "largest design {}: {:.1f}x localization speedup (target >=5x) "
        "{}".format(
            largest, largest_speedup,
            "OK" if results["speedup_ok"] else "FAIL",
        )
    )
    return 0 if results["speedup_ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
