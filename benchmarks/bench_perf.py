"""Performance benchmark: simulation engines and the commit path.

Measures, per design:

* **simulation throughput** — pattern-cycles/second of the sequential
  simulator under each engine (identical outputs asserted);
* **localization wall-clock** — a full detect→localize campaign under
  each engine (interpreted, compiled, codegen); the localization
  *compute* time (seed + probe picking + emulation, excluding the P&R
  commits) is reported per probe, with the speedup and a bit-identical
  check on every probe verdict and the final candidates;
* **codegen emulate phase** — the exec-compiled engine's probe-verdict
  replay time against the compiled tape's, plus the same codegen
  campaign forced onto full-tape replay (cone slicing disabled) to
  price the fanin-sliced probe kernels against their alternative;
* **commit phase** — the per-probe-round place-and-route cost.  The
  interpreted campaign runs against a cleared tile-configuration cache
  (cold: every commit pays the fresh hot-loop P&R), the compiled
  campaign re-presents the identical commits and replays precomputed
  configurations (warm).  Reported: seconds per commit cold/warm, warm
  cache hit rate, ``commit_speedup`` (cold/warm), and a routed-legality
  check of the final warm layout;
* **formal verify** — a corrected-vs-golden miter per output cone
  (:func:`repro.sat.equiv.prove_equivalence`) on the finished compiled
  campaign: miter build and solve seconds, the proof verdict, and how
  many outputs collapsed structurally before the solver ran;
* **multi-error loop** — a two-fault campaign through the
  diagnose→fix→re-detect round loop with ``verify="prove"``: rounds
  taken, probes and retired observation points per round, SAT
  eliminations per round (``"sat"`` strategy), and the final
  fixed/proved verdicts;
* **service warm-start** — the same spec submitted twice to a private
  debug-service daemon (:mod:`repro.service`): cold submission pays
  every per-process cost, warm must hit the worker's warm registry,
  answer bit-identically, and land ``service_warm_speedup`` >= 2x;
* **observability overhead** — the largest design's campaign with and
  without an armed :class:`~repro.obs.trace.Tracer`; the armed run
  must stay within ``OBS_OVERHEAD_LIMIT_PCT`` of the disarmed one and
  answer bit-identically.

Results land in ``BENCH_perf.json``; every run also *appends* a
timestamped summary to the file's ``history`` list, so the perf
trajectory accumulates across PRs instead of being overwritten.
Run with::

    PYTHONPATH=src python benchmarks/bench_perf.py \
        [--designs s9234,mips,des] [--out BENCH_perf.json] [--quick]

``--quick`` benches only the smallest design with a reduced probe
budget — the CI smoke configuration.

Acceptance gates (checked at the end, non-zero exit on failure):

* >=5x localization-compute speedup on the largest benchmarked design;
* >=2x commit-phase speedup (cold/warm) on the largest design;
* >2.5x end-to-end campaign speedup on ``des`` whenever it is benched;
* >=2x warm-vs-cold submission latency through the debug service
  (``service_warm``) on the largest design, with the second submission
  hitting the worker's warm registry and the results bit-identical;
* >=2x codegen-vs-compiled localization *emulate* speedup on at least
  one benchmarked design (``codegen_emulate_speedup``; relaxed to a
  regression canary under ``--quick``, whose millisecond emulate phase
  is noise-dominated);
* cone-sliced probe rounds within ``CONE_SLICE_TOLERANCE`` of the
  same campaign on full-tape replay, on every design
  (``codegen_cone_sliced``);
* the warm codegen submission through the daemon serves kernels from
  the digest-addressed cache — ``repro_codegen_cache_hits_total``
  must move between submissions (``codegen_warm_kernel_hit``);
* <5% wall-clock overhead with tracing armed (``obs_overhead``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro.api import DebugPipeline, RunContext, RunResult, RunSpec
from repro.debug.testgen import random_stimulus
from repro.errors import DebugFlowError
from repro.generators import build_design
from repro.netlist.simulate import SequentialSimulator
from repro.pnr.flow import layout_legality_errors
from repro.tiling.cache import DEFAULT_TILE_CACHE

DEFAULT_DESIGNS = ("s9234", "mips", "des")
QUICK_DESIGNS = ("s9234",)
#: error seeds chosen so each design's campaign detects and probes
ERROR_SEEDS = {"s9234": 3, "mips": 2, "des": 1}
#: error seeds whose two-fault injection detects on each design
MULTI_ERROR_SEEDS = {"s9234": 4, "mips": 1, "des": 1, "9sym": 6}
#: the "sat" strategy's cardinality-k pruner is benched on designs
#: small enough for the all-instances relaxation
MULTI_SAT_DESIGNS = {"s9234", "9sym"}
ENGINES = ("interpreted", "compiled", "codegen")

SPEEDUP_TARGET = 5.0
COMMIT_SPEEDUP_TARGET = 2.0
CAMPAIGN_SPEEDUP_TARGET = 2.5
SERVICE_WARM_TARGET = 2.0
#: codegen must beat the compiled tape on the localization emulate
#: phase by this much on at least one benchmarked design; the quick
#: (CI smoke) figure is a regression canary — the smallest design's
#: emulate phase is milliseconds, so its ratio is noise-dominated
CODEGEN_EMULATE_TARGET = 2.0
CODEGEN_EMULATE_TARGET_QUICK = 0.5
#: cone-sliced probe rounds may cost at most this much relative to
#: the same campaign forced onto full-tape replay ("never slower",
#: with headroom for millisecond-scale timing noise)
CONE_SLICE_TOLERANCE = 1.25
#: armed tracing may cost at most this much wall-clock over disarmed
OBS_OVERHEAD_LIMIT_PCT = 5.0


def bench_sim_throughput(
    design: str, n_cycles: int = 24, n_patterns: int = 64, seed: int = 1
) -> dict:
    """Pattern-cycles/sec of the sequential simulator, both engines."""
    bundle = build_design(design)
    netlist = bundle.mapped
    stimulus = random_stimulus(netlist, n_cycles, n_patterns, seed=seed)
    out = {"n_instances": len(netlist)}
    outputs = {}
    for engine in ENGINES:
        sim = SequentialSimulator(netlist, engine=engine)
        # warm untimed: lowering happens at construction, codegen's
        # exec-compile on first use — throughput is the steady state
        sim.reset(n_patterns)
        sim.run(stimulus[:1], n_patterns)
        sim.reset(n_patterns)
        t0 = time.perf_counter()
        outputs[engine] = sim.run(stimulus, n_patterns)
        dt = time.perf_counter() - t0
        out[engine] = {
            "seconds": dt,
            "pattern_cycles_per_sec": n_cycles * n_patterns / dt,
        }
    for engine in ENGINES[1:]:
        assert outputs["interpreted"] == outputs[engine], (
            f"{design}: {engine} disagrees with interpreted simulation"
        )
    out["identical_outputs"] = True
    for engine in ("compiled", "codegen"):
        out[f"{engine}_speedup"] = (
            out[engine]["pattern_cycles_per_sec"]
            / out["interpreted"]["pattern_cycles_per_sec"]
        )
    out["speedup"] = out["compiled_speedup"]
    return out


def _localization_campaign(design: str, engine: str, error_seed: int,
                           max_probes: int):
    """One detect→localize→correct campaign; fresh design per engine.

    Driven through the :mod:`repro.api` pipeline.  Context
    materialization (design build, strategy construction) stays outside
    the timed region, matching the historical ``session.run`` timing.
    """
    spec = RunSpec(
        design=design, strategy="tiled", seed=1, preset="fast",
        engine=engine, error_kind="table_bit", error_seed=error_seed,
        max_probes=max_probes,
    )
    ctx = RunContext.from_spec(spec)
    t0 = time.perf_counter()
    DebugPipeline().execute(ctx)
    total = time.perf_counter() - t0
    return RunResult.from_context(ctx, wall_seconds=total), ctx


def bench_localization(design: str, error_seed: int,
                       max_probes: int = 12) -> dict:
    out: dict = {}
    results: dict[str, RunResult] = {}
    contexts = {}
    # the interpreted campaign runs cold (fresh cache); the compiled
    # campaign re-presents the identical commit sequence and replays the
    # precomputed configurations — the commit-phase comparison
    DEFAULT_TILE_CACHE.clear()
    for engine in ENGINES:
        result, ctx = _localization_campaign(
            design, engine, error_seed, max_probes
        )
        results[engine] = result
        contexts[engine] = ctx
        if not result.probe_trajectory:
            raise DebugFlowError(
                f"{design}: error seed {error_seed} produced no probes; "
                "pick a different ERROR_SEEDS entry"
            )
        out[engine] = {
            "campaign_seconds": result.wall_seconds,
            "n_probes": result.n_probes,
            "n_candidates": len(result.candidates),
            "localization_seconds": result.localization_seconds,
            "seconds_per_probe": (
                result.localization_seconds / result.n_probes
            ),
            "timings": dict(result.timings["localization"]),
            "commit_cache_hits": result.n_commit_cache_hits,
        }

    ri = results["interpreted"]
    rc = results["compiled"]
    for engine in ENGINES[1:]:
        assert ri.trajectory_key() == results[engine].trajectory_key(), (
            f"{design}: {engine} probe trajectory diverges"
        )
        assert ri.candidates == results[engine].candidates, (
            f"{design}: {engine} final candidate set diverges"
        )
    out["identical_results"] = True
    out["speedup"] = (
        ri.localization_seconds / rc.localization_seconds
    )
    out["campaign_speedup"] = (
        out["interpreted"]["campaign_seconds"]
        / out["compiled"]["campaign_seconds"]
    )

    # ---- codegen: emulate phase vs the compiled tape, cone slicing ----
    from repro.debug.localize import ConeLocalizer

    ConeLocalizer.use_cone_slicing = False
    try:
        unsliced, _ = _localization_campaign(
            design, "codegen", error_seed, max_probes
        )
    finally:
        ConeLocalizer.use_cone_slicing = True
    assert ri.trajectory_key() == unsliced.trajectory_key(), (
        f"{design}: unsliced codegen probe trajectory diverges"
    )
    emulate_compiled = rc.timings["localization"]["emulate"]
    emulate_codegen = results["codegen"].timings["localization"]["emulate"]
    emulate_unsliced = unsliced.timings["localization"]["emulate"]
    out["codegen_phase"] = {
        "emulate_compiled_seconds": round(emulate_compiled, 6),
        "emulate_codegen_seconds": round(emulate_codegen, 6),
        "emulate_speedup": emulate_compiled / emulate_codegen,
        # the same codegen campaign forced onto full-tape replay for
        # every probe verdict: cone slicing must never be slower
        "emulate_unsliced_seconds": round(emulate_unsliced, 6),
        "cone_sliced_ratio": emulate_codegen / emulate_unsliced,
    }

    # ---- commit phase: cold (fresh P&R) vs warm (replayed configs) ----
    cold = ri.commit_seconds
    warm = rc.commit_seconds
    n_commits = rc.n_commits
    warm_hits = rc.n_commit_cache_hits
    out["commit_phase"] = {
        "n_commits": n_commits,
        "cold_seconds": round(cold, 6),
        "warm_seconds": round(warm, 6),
        "seconds_per_commit_cold": round(cold / max(1, n_commits), 6),
        "seconds_per_commit_warm": round(warm / max(1, n_commits), 6),
        "warm_cache_hits": warm_hits,
        "warm_cache_hit_rate": warm_hits / max(1, n_commits),
        "commit_speedup": cold / warm if warm > 0 else float("inf"),
        # region commits run non-strict, so capacity is reported by the
        # gate only through the overuse-allowance check at replay time
        "routed_legal": not layout_legality_errors(
            contexts["compiled"].strategy.layout, check_capacity=False
        ),
    }

    # ---- formal verify: per-output-cone miter on the corrected DUT ----
    out["formal_verify"] = bench_formal_verify(contexts["compiled"])
    return out


def bench_formal_verify(ctx, frames: int = 8) -> dict:
    """Bounded-equivalence proof of the campaign's corrected netlist."""
    from repro.sat.equiv import prove_equivalence

    proof = prove_equivalence(
        ctx.packed.netlist, ctx.golden, frames=frames, seed=1
    )
    return {
        "frames": frames,
        "proved": proof.proved,
        "n_outputs": len(proof.outputs),
        "n_structural": proof.n_structural,
        "n_vars": proof.n_vars,
        "n_clauses": proof.n_clauses,
        "build_seconds": round(proof.build_seconds, 6),
        "solve_seconds": round(proof.solve_seconds, 6),
        "solver_stats": proof.solver_stats,
    }


def bench_multi_error(design: str, error_seed: int,
                      max_probes: int = 12) -> dict:
    """Two-fault diagnose→fix→re-detect campaign with a bounded proof.

    Runs the ``"sat"`` strategy (cardinality-k pruning) on designs the
    all-instances relaxation can afford, plain ``"tiled"`` elsewhere.
    """
    from repro.api import run_spec

    strategy = "sat" if design in MULTI_SAT_DESIGNS else "tiled"
    spec = RunSpec(
        design=design, strategy=strategy, seed=1, preset="fast",
        error_kind="table_bit", error_seed=error_seed, n_errors=2,
        verify="prove", max_probes=max_probes, cache="private",
    )
    t0 = time.perf_counter()
    result = run_spec(spec)
    wall = time.perf_counter() - t0
    return {
        "strategy": strategy,
        "error_seed": error_seed,
        "n_errors": result.n_errors_injected,
        "detected": result.detected,
        "fixed": result.fixed,
        "proved": result.proved,
        "n_rounds": result.n_rounds,
        "errors_found": len(result.errors_found),
        "n_probes": result.n_probes,
        "n_sat_eliminated": result.n_sat_eliminated,
        "rounds": [
            {
                "round": r["round"],
                "n_probes": r["n_probes"],
                "probes_retired": r["probes_retired"],
                "sat_eliminated": r["sat_eliminated"],
                "corrected": r["corrected"],
                "residual_mismatches": r["residual_mismatches"],
            }
            for r in result.rounds
        ],
        "wall_seconds": round(wall, 6),
    }


#: RunResult fields that legitimately differ between two executions of
#: the same spec (clocks, attempt metadata, cache counters)
_VOLATILE_RESULT_FIELDS = {
    "wall_seconds", "timings", "effort", "cache", "attempts",
    "n_commit_cache_hits",
}


def _scrape_counter(client, name: str) -> float:
    """One counter's value from the daemon's Prometheus text export."""
    text = client.stats(metrics=True).get("metrics_text", "")
    total = 0.0
    for line in text.splitlines():
        parts = line.split()
        if len(parts) == 2 and parts[0].split("{")[0] == name:
            total += float(parts[1])
    return total


def bench_service_warm(design: str, error_seed: int,
                       max_probes: int = 12,
                       engine: str = "compiled") -> dict:
    """Warm-vs-cold submission latency through the service daemon.

    Starts a private daemon (one worker, fresh cache dir), submits the
    same spec twice — the first pays every cold-start cost (bundle
    build, kernel lowering, fabric tables, cone bitsets, fresh P&R),
    the second must hit the worker's warm registry and replay tile
    configs — and reports client-observed latency for each.  Both
    results must be bit-identical modulo timing/attempt metadata:
    warm state is a cache, never a semantic input.

    Under ``engine="codegen"`` the daemon's Prometheus export is
    scraped around the warm submission: the re-run must serve its
    kernels out of the worker's digest-addressed codegen cache
    (``repro_codegen_cache_hits_total`` moves) instead of re-exec'ing
    source.
    """
    import shutil
    import tempfile

    from repro.service.client import Client
    from repro.service.daemon import ReproService, ServiceConfig

    spec = RunSpec(
        design=design, strategy="tiled", seed=1, preset="fast",
        engine=engine, error_kind="table_bit", error_seed=error_seed,
        max_probes=max_probes,
    )
    tmp = tempfile.mkdtemp(prefix="repro-bench-service-")
    config = ServiceConfig(
        socket_path=os.path.join(tmp, "service.sock"),
        cache_dir=os.path.join(tmp, "cache"),
        workers=1,
    )
    service = ReproService(config)
    service.start()
    try:
        client = Client(config.socket_path)
        # boot (python import + registry construction) is not part of
        # the cold-submission story; wait for the worker to report in
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            workers = client.stats().get("workers", [])
            if workers and all(w.get("ready") for w in workers):
                break
            time.sleep(0.05)

        t0 = time.perf_counter()
        cold_resp = client.run(spec, timeout_s=600.0)
        cold = time.perf_counter() - t0
        hits_after_cold = (
            _scrape_counter(client, "repro_codegen_cache_hits_total")
            if engine == "codegen" else 0.0
        )
        t0 = time.perf_counter()
        warm_resp = client.run(spec, fresh=True, timeout_s=600.0)
        warm = time.perf_counter() - t0
        hits_after_warm = (
            _scrape_counter(client, "repro_codegen_cache_hits_total")
            if engine == "codegen" else 0.0
        )
    finally:
        service.stop()
        shutil.rmtree(tmp, ignore_errors=True)

    assert not cold_resp["warm"]["hit"], (
        f"{design}: first service submission reported a warm hit"
    )
    assert warm_resp["warm"]["hit"], (
        f"{design}: second service submission missed the warm registry"
    )
    cold_result = cold_resp["result"]
    warm_result = warm_resp["result"]
    diverged = sorted(
        k for k in cold_result
        if k not in _VOLATILE_RESULT_FIELDS
        and cold_result[k] != warm_result.get(k)
    )
    assert not diverged, (
        f"{design}: warm service result diverges from cold on {diverged}"
    )
    out = {
        "engine": engine,
        "cold_seconds": round(cold, 6),
        "warm_seconds": round(warm, 6),
        "service_warm_speedup": cold / warm if warm > 0 else float("inf"),
        "warm_hit": True,
        "identical_results": True,
        "status": warm_result.get("status"),
    }
    if engine == "codegen":
        hits_delta = hits_after_warm - hits_after_cold
        assert hits_delta > 0, (
            f"{design}: warm codegen submission re-lowered every kernel "
            "(repro_codegen_cache_hits_total never moved)"
        )
        out["codegen_cache_hits_warm_delta"] = hits_delta
        out["codegen_warm_kernel_hit"] = True
    return out


def bench_obs_overhead(design: str, error_seed: int,
                       max_probes: int = 12, iters: int = 2) -> dict:
    """Wall-clock cost of an armed tracer on a full campaign run.

    The observability layer promises "zero-cost when disarmed" (the
    default path never touches a tracer) and "cheap when armed".  This
    section prices the armed half: the same spec run with and without a
    :class:`~repro.obs.trace.Tracer`, min-of-``iters`` per arm to shed
    scheduler noise, with semantic bit-identity asserted between arms —
    tracing observes the run, it must never steer it.
    """
    from repro.api import run_spec
    from repro.obs.trace import Tracer

    spec = RunSpec(
        design=design, strategy="tiled", seed=1, preset="fast",
        engine="compiled", error_kind="table_bit", error_seed=error_seed,
        max_probes=max_probes, cache="private",
    )
    run_spec(spec)  # warm-up: imports + kernel lowering, untimed

    def timed(tracer):
        t0 = time.perf_counter()
        result = run_spec(spec, tracer=tracer)
        return time.perf_counter() - t0, result

    plain_s, plain_result = min(
        (timed(None) for _ in range(iters)), key=lambda t: t[0]
    )
    tracers = [Tracer() for _ in range(iters)]
    traced_s, traced_result = min(
        (timed(t) for t in tracers), key=lambda t: t[0]
    )
    n_events = max(len(t.to_chrome_trace()["traceEvents"])
                   for t in tracers)

    plain_dict = plain_result.to_dict()
    traced_dict = traced_result.to_dict()
    diverged = sorted(
        k for k in plain_dict
        if k not in _VOLATILE_RESULT_FIELDS
        and plain_dict[k] != traced_dict.get(k)
    )
    assert not diverged, (
        f"{design}: traced run diverges from untraced on {diverged}"
    )
    overhead_pct = 100.0 * (traced_s - plain_s) / plain_s
    return {
        "design": design,
        "iters": iters,
        "plain_seconds": round(plain_s, 6),
        "traced_seconds": round(traced_s, 6),
        "overhead_pct": round(overhead_pct, 3),
        "overhead_limit_pct": OBS_OVERHEAD_LIMIT_PCT,
        "n_trace_events": n_events,
        "identical_results": True,
    }


def append_history(out_path: str, results: dict) -> list:
    """Load any existing run history and append this run's summary."""
    history = []
    if os.path.exists(out_path):
        try:
            with open(out_path) as fh:
                history = json.load(fh).get("history", [])
        except (json.JSONDecodeError, OSError):
            history = []
    summary = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S", time.localtime()),
        "quick": results["quick"],
        "designs": {},
        "largest_design": results["largest_design"],
        "largest_localization_speedup": results[
            "largest_localization_speedup"
        ],
        "largest_commit_speedup": results["largest_commit_speedup"],
        "obs_overhead_pct": results["obs_overhead"]["overhead_pct"],
        "best_codegen_emulate_speedup": round(
            results["best_codegen_emulate_speedup"], 3
        ),
        "gates_ok": results["gates_ok"],
    }
    swc = results["service_warm_codegen"]
    summary["service_warm_codegen"] = {
        "design": swc["design"],
        "cold_seconds": swc["cold_seconds"],
        "warm_seconds": swc["warm_seconds"],
        "cache_hits_warm_delta": swc["codegen_cache_hits_warm_delta"],
    }
    for name, data in results["designs"].items():
        loc = data["localization"]
        fv = loc["formal_verify"]
        me = data["multi_error"]
        sw = data["service_warm"]
        summary["designs"][name] = {
            "service_warm": {
                "cold_seconds": sw["cold_seconds"],
                "warm_seconds": sw["warm_seconds"],
                "speedup": round(sw["service_warm_speedup"], 3),
            },
            "sim_speedup": round(data["sim_throughput"]["speedup"], 3),
            "codegen_sim_speedup": round(
                data["sim_throughput"]["codegen_speedup"], 3
            ),
            "localization_speedup": round(loc["speedup"], 3),
            "codegen_emulate_speedup": round(
                loc["codegen_phase"]["emulate_speedup"], 3
            ),
            "cone_sliced_ratio": round(
                loc["codegen_phase"]["cone_sliced_ratio"], 3
            ),
            "campaign_speedup": round(loc["campaign_speedup"], 3),
            "commit_speedup": round(
                loc["commit_phase"]["commit_speedup"], 3
            ),
            "commit_hit_rate": loc["commit_phase"]["warm_cache_hit_rate"],
            "formal_verify": {
                "proved": fv["proved"],
                "build_seconds": fv["build_seconds"],
                "solve_seconds": fv["solve_seconds"],
            },
            "multi_error": {
                "strategy": me["strategy"],
                "fixed": me["fixed"],
                "proved": me["proved"],
                "n_rounds": me["n_rounds"],
                "n_probes": me["n_probes"],
                "probes_retired": sum(
                    r["probes_retired"] for r in me["rounds"]
                ),
                "sat_eliminated": me["n_sat_eliminated"],
                "wall_seconds": me["wall_seconds"],
            },
        }
    history.append(summary)
    return history


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--designs", default=None,
        help="comma-separated design names "
             f"(default: {','.join(DEFAULT_DESIGNS)})",
    )
    parser.add_argument(
        "--out", default=None,
        help="output JSON path (default: BENCH_perf.json, or "
             "BENCH_quick.json with --quick so smoke runs never "
             "overwrite the tracked full-run trajectory)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: smallest design only, reduced probe budget",
    )
    args = parser.parse_args(argv)
    if args.out is None:
        args.out = "BENCH_quick.json" if args.quick else "BENCH_perf.json"
    if args.designs is not None:
        designs = [d.strip() for d in args.designs.split(",") if d.strip()]
    elif args.quick:
        designs = list(QUICK_DESIGNS)
    else:
        designs = list(DEFAULT_DESIGNS)
    if not designs:
        parser.error("--designs must name at least one design")
    from repro.generators import paper_design_names

    unknown = [d for d in designs if d not in paper_design_names()]
    if unknown:
        parser.error(
            f"unknown designs {unknown}; known: "
            + ", ".join(paper_design_names())
        )
    max_probes = 6 if args.quick else 12

    results: dict = {"designs": {}, "quick": args.quick}
    for design in designs:
        print(f"== {design} ==")
        sim = bench_sim_throughput(design)
        print(
            "  sim: interpreted {:.0f} pc/s, compiled {:.0f} pc/s "
            "({:.1f}x), codegen {:.0f} pc/s ({:.1f}x, bit-identical)".format(
                sim["interpreted"]["pattern_cycles_per_sec"],
                sim["compiled"]["pattern_cycles_per_sec"],
                sim["compiled_speedup"],
                sim["codegen"]["pattern_cycles_per_sec"],
                sim["codegen_speedup"],
            )
        )
        loc = bench_localization(
            design, ERROR_SEEDS.get(design, 1), max_probes=max_probes
        )
        print(
            "  localization: interpreted {:.3f}s ({:.3f}s/probe), "
            "compiled {:.3f}s ({:.4f}s/probe) — {:.1f}x, "
            "bit-identical over {} probes".format(
                loc["interpreted"]["localization_seconds"],
                loc["interpreted"]["seconds_per_probe"],
                loc["compiled"]["localization_seconds"],
                loc["compiled"]["seconds_per_probe"],
                loc["speedup"],
                loc["compiled"]["n_probes"],
            )
        )
        cg = loc["codegen_phase"]
        print(
            "  codegen emulate: compiled {:.3f}s -> codegen {:.3f}s "
            "({:.1f}x); sliced/full-replay {:.2f} "
            "(unsliced {:.3f}s)".format(
                cg["emulate_compiled_seconds"],
                cg["emulate_codegen_seconds"],
                cg["emulate_speedup"],
                cg["cone_sliced_ratio"],
                cg["emulate_unsliced_seconds"],
            )
        )
        cp = loc["commit_phase"]
        print(
            "  commit: cold {:.3f}s ({:.1f}ms/commit), warm {:.3f}s "
            "({:.1f}ms/commit) — {:.1f}x, {}/{} cached, legal={}".format(
                cp["cold_seconds"],
                1e3 * cp["seconds_per_commit_cold"],
                cp["warm_seconds"],
                1e3 * cp["seconds_per_commit_warm"],
                cp["commit_speedup"],
                cp["warm_cache_hits"],
                cp["n_commits"],
                cp["routed_legal"],
            )
        )
        print(
            "  campaign: {:.1f}x end-to-end".format(loc["campaign_speedup"])
        )
        fv = loc["formal_verify"]
        print(
            "  formal verify: proved={} over {} frames, {}/{} outputs "
            "structural, build {:.3f}s solve {:.3f}s".format(
                fv["proved"], fv["frames"], fv["n_structural"],
                fv["n_outputs"], fv["build_seconds"], fv["solve_seconds"],
            )
        )
        me = bench_multi_error(
            design, MULTI_ERROR_SEEDS.get(design, 1), max_probes=max_probes
        )
        print(
            "  multi-error ({}): fixed={} proved={} over {} rounds, "
            "{} probes, {} retired, {} sat-eliminated, {:.2f}s".format(
                me["strategy"], me["fixed"], me["proved"], me["n_rounds"],
                me["n_probes"],
                sum(r["probes_retired"] for r in me["rounds"]),
                me["n_sat_eliminated"], me["wall_seconds"],
            )
        )
        sw = bench_service_warm(
            design, ERROR_SEEDS.get(design, 1), max_probes=max_probes
        )
        print(
            "  service: cold {:.3f}s -> warm {:.3f}s ({:.1f}x, warm hit, "
            "bit-identical)".format(
                sw["cold_seconds"], sw["warm_seconds"],
                sw["service_warm_speedup"],
            )
        )
        results["designs"][design] = {
            "sim_throughput": sim,
            "localization": loc,
            "multi_error": me,
            "service_warm": sw,
        }

    # gates run on the largest design (by instance count, not order)
    largest = max(
        designs,
        key=lambda d: results["designs"][d]["sim_throughput"]["n_instances"],
    )
    largest_loc = results["designs"][largest]["localization"]
    results["largest_design"] = largest
    results["largest_localization_speedup"] = largest_loc["speedup"]
    results["largest_commit_speedup"] = (
        largest_loc["commit_phase"]["commit_speedup"]
    )
    results["speedup_target"] = SPEEDUP_TARGET
    results["commit_speedup_target"] = COMMIT_SPEEDUP_TARGET
    results["campaign_speedup_target"] = CAMPAIGN_SPEEDUP_TARGET
    results["service_warm_target"] = SERVICE_WARM_TARGET
    results["largest_service_warm_speedup"] = results["designs"][
        largest
    ]["service_warm"]["service_warm_speedup"]
    # the codegen emulate gate wants the engine's best showing: slicing
    # pays off with design size, and quick mode benches only the
    # smallest design whose emulate phase is noise-dominated
    results["codegen_emulate_target"] = (
        CODEGEN_EMULATE_TARGET_QUICK if args.quick
        else CODEGEN_EMULATE_TARGET
    )
    results["best_codegen_emulate_speedup"] = max(
        data["localization"]["codegen_phase"]["emulate_speedup"]
        for data in results["designs"].values()
    )

    # codegen through the daemon: the warm re-run must serve kernels
    # out of the worker's digest-addressed cache (once is enough —
    # cache behaviour is design-independent, so the smallest suffices)
    svc_cg = bench_service_warm(
        designs[0], ERROR_SEEDS.get(designs[0], 1),
        max_probes=max_probes, engine="codegen",
    )
    results["service_warm_codegen"] = {"design": designs[0], **svc_cg}
    print(
        "service codegen ({}): cold {:.3f}s -> warm {:.3f}s, "
        "{:.0f} kernel-cache hits on the warm submit".format(
            designs[0], svc_cg["cold_seconds"], svc_cg["warm_seconds"],
            svc_cg["codegen_cache_hits_warm_delta"],
        )
    )

    obs = bench_obs_overhead(
        largest, ERROR_SEEDS.get(largest, 1), max_probes=max_probes
    )
    results["obs_overhead"] = obs
    print(
        "obs overhead ({}): plain {:.3f}s -> traced {:.3f}s "
        "({:+.2f}%, {} events, bit-identical; limit {:.0f}%)".format(
            largest, obs["plain_seconds"], obs["traced_seconds"],
            obs["overhead_pct"], obs["n_trace_events"],
            OBS_OVERHEAD_LIMIT_PCT,
        )
    )

    gates = {
        "obs_overhead": obs["overhead_pct"] < OBS_OVERHEAD_LIMIT_PCT,
        "service_warm_speedup": (
            results["largest_service_warm_speedup"]
            >= SERVICE_WARM_TARGET
        ),
        "localization_speedup": (
            largest_loc["speedup"] >= SPEEDUP_TARGET
        ),
        "commit_speedup": (
            largest_loc["commit_phase"]["commit_speedup"]
            >= COMMIT_SPEEDUP_TARGET
        ),
        "routed_legal": largest_loc["commit_phase"]["routed_legal"],
        "codegen_emulate_speedup": (
            results["best_codegen_emulate_speedup"]
            >= results["codegen_emulate_target"]
        ),
        # cone-sliced probe rounds must never lose to full-tape replay
        "codegen_cone_sliced": all(
            data["localization"]["codegen_phase"]["cone_sliced_ratio"]
            <= CONE_SLICE_TOLERANCE
            for data in results["designs"].values()
        ),
        "codegen_warm_kernel_hit": results["service_warm_codegen"][
            "codegen_warm_kernel_hit"
        ],
        # the two-fault loop must land a verified fix on every design
        "multi_error_fixed": all(
            data["multi_error"]["fixed"] and data["multi_error"]["proved"]
            for data in results["designs"].values()
        ),
    }
    if "des" in results["designs"]:
        gates["des_campaign_speedup"] = (
            results["designs"]["des"]["localization"]["campaign_speedup"]
            > CAMPAIGN_SPEEDUP_TARGET
        )
    results["gates"] = gates
    results["gates_ok"] = all(gates.values())
    # retained for older tooling reading this file
    results["speedup_ok"] = gates["localization_speedup"]

    results["history"] = append_history(args.out, results)
    with open(args.out, "w") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
    print(f"\nwrote {args.out} ({len(results['history'])} runs in history)")
    print(
        "largest design {}: {:.1f}x localization (>= {:.0f}x), "
        "{:.1f}x commit phase (>= {:.0f}x) — {}".format(
            largest,
            largest_loc["speedup"],
            SPEEDUP_TARGET,
            largest_loc["commit_phase"]["commit_speedup"],
            COMMIT_SPEEDUP_TARGET,
            "OK" if results["gates_ok"] else "FAIL "
            + str([k for k, v in gates.items() if not v]),
        )
    )
    return 0 if results["gates_ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
