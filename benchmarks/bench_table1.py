"""Table 1: tiled physical layout statistics (area & timing overhead).

Paper reference values: ~20 % requested slack lands at 0.19-0.227 area
overhead per design; timing overhead is small with both signs
(-0.055 ... +0.137).
"""

from repro.analysis import format_table1, run_table1


def test_table1(benchmark, suite):
    rows = benchmark.pedantic(
        lambda: run_table1(suite=suite), rounds=1, iterations=1
    )
    print("\n== Table 1: Tiled Physical Layout Statistics ==")
    print(format_table1(rows))
    for row in rows:
        assert 0.15 <= row.area_overhead <= 0.40
        assert abs(row.timing_overhead) < 0.8
