"""Per-worker warm-state registry — the daemon's resident artifacts.

A cold :func:`~repro.api.pipeline.run_spec` rebuilds, per call: the
design bundle (generate → map → pack), the device (and with it the
process-wide ``_Fabric`` tables), a golden-model copy whose compiled
emulation kernel is keyed per netlist *object*, the localizer's
:class:`~repro.netlist.cones.ConeIndex` bitsets, and — when a
``cache_dir`` is set — a full tile-config store load.  In a long-lived
service worker every one of those is reusable, but only under precise
invalidation rules; this module owns them.

One :class:`WarmRegistry` lives in each worker process.  Entries are
keyed by ``(design digest, device, preset)``:

* the **design digest** (:func:`design_digest`) hashes every spec field
  that feeds bundle or device construction — design name, generator
  seed/params, BLIF path, channel width, device overhead — so any
  change to what the design *is* misses;
* **device** and **preset** key separately because the same design can
  be debugged on different fabrics or effort levels, each with its own
  strategy tables.

Within a hit, the pristine bundle is never handed to the pipeline
(which mutates ``packed.netlist`` by injecting errors and observation
logic); each job gets a **fork** — ``mapped.copy()`` re-packed — which
is structurally identical by construction and 4–10x cheaper than a
rebuild.  The golden model *is* shared across jobs (the pipeline only
reads it), so its compiled kernel — keyed by netlist object in
:func:`~repro.emulate.kernel.kernel_for`'s ``WeakKeyDictionary`` — and
its simulation net-history stay warm; a revision guard invalidates the
entry if any future code path mutates it.

Registry-wide (not per entry): one :class:`TileConfigCache` warmed once
from the daemon's ``--cache-dir``, its open
:class:`~repro.tiling.cache.TileConfigStore` handle, and a
:class:`~repro.netlist.cones.ConeMemo` so structurally identical
netlists (same design, different error seeds) transplant cone bitsets.

Everything here is a cache, never a semantic input: a hit must produce
artifacts *exactly* equal to what ``RunContext.from_spec`` would build
cold, and the service bit-identity tests hold it to that.
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict

from repro.netlist.codegen import (
    KernelCache,
    load_kernel_sources,
    save_kernel_sources,
)
from repro.netlist.cones import ConeMemo
from repro.obs.metrics import METRICS
from repro.tiling.cache import (
    TileConfigCache,
    TileConfigStore,
    cache_file_path,
    load_tile_cache,
)

#: spec fields that feed bundle or device construction — the complete
#: input of :meth:`RunContext.from_spec`'s design/device half
_DESIGN_FIELDS = (
    "design",
    "design_seed",
    "design_params",
    "blif_path",
    "channel_width",
    "device_overhead",
)


def design_digest(spec) -> str:
    """SHA-256 over the spec fields that determine bundle + device."""
    payload = {name: getattr(spec, name) for name in _DESIGN_FIELDS}
    blob = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode()).hexdigest()


def warm_key(spec) -> tuple:
    """The registry key: (design digest, device name, preset)."""
    return (design_digest(spec), spec.device or "auto", spec.preset)


def fork_bundle(bundle):
    """A fresh, mutation-safe bundle structurally equal to ``bundle``.

    The pipeline injects errors and observation logic into
    ``packed.netlist``, so the pristine warm copy can never be handed
    out directly.  Deep-copying the whole bundle via pickle overflows
    the recursion limit on real netlists (instance↔net cross-links);
    instead the fork re-derives the mutable half — copy the mapped
    netlist, re-pack it — which is deterministic, structurally
    identical, and far cheaper than a full generate → map → pack.
    """
    from repro.generators.registry import DesignBundle
    from repro.synth.pack import pack_netlist

    mapped = bundle.mapped.copy(bundle.mapped.name)
    packed = pack_netlist(mapped)
    return DesignBundle(
        name=bundle.name,
        netlist=bundle.netlist,
        mapped=mapped,
        packed=packed,
        hierarchy=bundle.hierarchy,
        paper_clbs=bundle.paper_clbs,
        kind=bundle.kind,
    )


class WarmEntry:
    """Resident artifacts for one (design digest, device, preset)."""

    def __init__(self, bundle, device, golden) -> None:
        #: pristine bundle — forked per job, never handed out directly
        self.bundle = bundle
        #: shared device object; carries the memoized ``_Fabric`` tables
        self.device = device
        #: shared read-only golden model; its compiled kernel is keyed
        #: by this object, so sharing it keeps the kernel warm
        self.golden = golden
        #: revision guard — the pipeline must never mutate the golden;
        #: if some future path does, the entry self-invalidates
        self.golden_revision = golden.revision
        self.uses = 0


class WarmRegistry:
    """LRU-bounded warm-state registry for one worker process.

    ``context_parts(spec)`` is the single integration point with the
    pipeline: it returns the ``bundle``/``device``/``golden`` keyword
    arguments :meth:`RunContext.from_spec` accepts, building (and
    caching) them on a miss and forking the bundle on every call.
    """

    def __init__(self, cache_dir: str | None = None,
                 max_entries: int = 8) -> None:
        self.cache_dir = cache_dir
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self._entries: OrderedDict[tuple, WarmEntry] = OrderedDict()
        #: shared cone-index memo; the worker installs it process-wide
        self.cone_memo = ConeMemo()
        #: digest-addressed codegen kernel cache; the worker installs
        #: it process-wide so every ``engine="codegen"`` job shares the
        #: generated functions, and repeat submissions skip codegen
        self.codegen_cache = KernelCache()
        self.kernels_written = 0
        #: the worker-resident tile cache, warmed once from disk; every
        #: ``cache="shared"`` job reads and feeds it
        self.tile_cache = TileConfigCache()
        #: open store handle for incremental write-back
        self.store: TileConfigStore | None = None
        if cache_dir is not None:
            load_tile_cache(cache_dir, self.tile_cache)
            self.store = TileConfigStore(cache_file_path(cache_dir))
            # kernel sources persist beside the tile-config store,
            # content-addressed by tape digest
            load_kernel_sources(cache_dir, self.codegen_cache)

    def __len__(self) -> int:
        return len(self._entries)

    # -- entry lifecycle -----------------------------------------------

    def _build_entry(self, spec) -> WarmEntry:
        from repro.api.design import device_for, load_bundle

        bundle = load_bundle(spec)
        packed = bundle.packed
        device = device_for(
            packed, device=spec.device,
            channel_width=spec.channel_width,
            area_overhead=spec.device_overhead,
        )
        golden = packed.netlist.copy(f"{packed.netlist.name}.golden")
        return WarmEntry(bundle, device, golden)

    def lookup(self, spec) -> tuple[WarmEntry, bool]:
        """The entry for ``spec`` and whether it was a warm hit."""
        key = warm_key(spec)
        entry = self._entries.get(key)
        if entry is not None and entry.golden.revision != entry.golden_revision:
            # something mutated the shared golden — stale, rebuild
            del self._entries[key]
            self.invalidations += 1
            entry = None
        if entry is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            METRICS.inc("repro_warm_registry_hits_total")
            entry.uses += 1
            return entry, True
        self.misses += 1
        METRICS.inc("repro_warm_registry_misses_total")
        entry = self._build_entry(spec)
        entry.uses += 1
        self._entries[key] = entry
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1
            METRICS.inc("repro_warm_registry_evictions_total")
        return entry, False

    def would_hit(self, spec) -> bool:
        """Whether ``spec`` would hit warm (no counters touched)."""
        entry = self._entries.get(warm_key(spec))
        return (entry is not None
                and entry.golden.revision == entry.golden_revision)

    def context_parts(self, spec) -> dict:
        """``RunContext.from_spec`` keyword arguments for ``spec``."""
        entry, _ = self.lookup(spec)
        return {
            "bundle": fork_bundle(entry.bundle),
            "device": entry.device,
            "golden": entry.golden,
        }

    # -- tile cache ----------------------------------------------------

    def cache_for(self, spec) -> TileConfigCache | None:
        """The tile cache a job should run with, per the spec policy.

        Mirrors :func:`~repro.api.pipeline.resolve_tile_cache`, except
        "shared" maps to the worker-resident cache (pre-warmed from the
        daemon's ``--cache-dir``) rather than the process default.
        """
        if spec.cache == "off":
            return None
        if spec.cache == "private":
            return TileConfigCache()
        return self.tile_cache

    def write_back(self) -> int:
        """Persist new tile configs to the store (0 without a store).

        Codegen kernel sources ride along: new digests land beside the
        tile configs so the next worker generation starts warm.
        """
        if self.store is None:
            return 0
        if self.cache_dir is not None:
            self.kernels_written += save_kernel_sources(
                self.cache_dir, self.codegen_cache
            )
        return self.store.write_back(self.tile_cache)

    # -- introspection -------------------------------------------------

    def stats(self) -> dict:
        return {
            "entries": len(self._entries),
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "cone_memo": self.cone_memo.stats(),
            "codegen_cache": self.codegen_cache.stats(),
            "kernels_written": self.kernels_written,
            "tile_cache": self.tile_cache.stats(),
        }
