"""The service worker — a supervised child that *loops* over jobs.

``python -m repro.service.worker`` is the looping sibling of
``python -m repro.resilience.supervisor``: same JSONL-on-stdio contract
(heartbeats + structured events, so the daemon reuses the supervisor's
liveness and kill policy verbatim), but instead of one spec → exit it
reads an ``init`` line, builds its :class:`~repro.service.warm.
WarmRegistry`, reports ``ready``, and then serves ``job`` lines until
stdin closes.  Everything warm — compiled kernels, fabric tables, cone
bitsets, the tile-config cache — lives and accumulates here.

Per job the worker:

1. strips spent chaos faults on a re-dispatch (a ``fires: 1``
   ``worker_kill`` already fired when it killed the previous worker;
   re-arming it would kill every retry — only unlimited-``fires``
   faults survive, so "repeated death" stays testable);
2. runs :func:`~repro.api.pipeline.run_spec` with an event-forwarding
   hook (stage/probe/commit lines tagged with the job digest, streamed
   to the daemon as they happen), the registry's tile cache per the
   spec's cache policy, and the registry as the warm source;
3. writes newly produced tile configs back to the store and emits one
   ``result`` event carrying the RunResult plus warm-hit telemetry.

A job whose pipeline raises still answers (``run_spec`` never throws
for pipeline faults; a protocol-level exception emits ``job_error``)
— the worker only exits on EOF or a kill from above.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time

from repro.api.spec import RunSpec
from repro.obs.metrics import METRICS
from repro.obs.trace import Tracer
from repro.resilience.failure import WORKER_STAGE, RunFailure
from repro.resilience.supervisor import (
    HEARTBEAT_INTERVAL_S,
    emit_event,
    heartbeat_loop,
)


def effective_spec(spec: RunSpec, attempt: int) -> RunSpec:
    """The spec as this dispatch attempt should run it.

    First dispatch runs verbatim.  On a re-dispatch after worker death,
    chaos faults with a finite ``fires`` budget are considered spent —
    the fault that killed the previous worker fired in *that* process,
    and its counter died with it — while ``fires: null`` (unlimited)
    faults stay armed, so a persistently-faulty job keeps dying and
    folds into a failed result at the daemon's re-queue bound.
    """
    if attempt <= 1 or spec.chaos is None:
        return spec
    from repro.resilience.chaos import ChaosConfig

    config = ChaosConfig.coerce(spec.chaos)
    kept = [f.to_dict() for f in config.faults if f.fires is None]
    if not kept:
        return spec.replaced(chaos=None)
    return spec.replaced(chaos={"faults": kept, "seed": config.seed})


class _EventHooks:
    """PipelineHooks → JSONL lines tagged with the job digest."""

    def __init__(self, job: str, lock: threading.Lock) -> None:
        self.job = job
        self.lock = lock

    def _send(self, payload: dict) -> None:
        payload["job"] = self.job
        payload["t"] = round(time.time(), 3)
        try:
            emit_event(payload, self.lock)
        except (TypeError, ValueError):
            pass  # an unserializable event must never fail the run

    def on_stage_start(self, stage, ctx) -> None:
        self._send({"event": "stage_start", "stage": stage.name})

    def on_stage_end(self, stage, ctx, seconds: float) -> None:
        self._send({
            "event": "stage_end", "stage": stage.name,
            "seconds": round(seconds, 6),
        })

    def on_probe(self, ctx, step) -> None:
        self._send({
            "event": "probe",
            "instance": getattr(step, "probe_instance", None),
            "mismatch": getattr(step, "mismatch", None),
            "candidates_before": getattr(step, "candidates_before", None),
            "candidates_after": getattr(step, "candidates_after", None),
        })

    def on_commit(self, ctx, record) -> None:
        effort = getattr(record, "effort", None)
        self._send({
            "event": "commit",
            "description": getattr(record, "description", None),
            "work_units": round(effort.work_units, 3)
            if effort is not None else None,
        })

    def span_listener(self, phase: str, span) -> None:
        """Tracer listener → ``span_start``/``span_end`` event lines.

        Zero-duration instants (commits, cache points) arrive as
        ``span_point``.  Rides the same per-job stream the stage
        events use, so a ``trace: true`` submit sees the full span
        hierarchy live through the daemon's ``events`` verb.
        """
        kind = {"start": "span_start", "instant": "span_point"}
        payload = {
            "event": kind.get(phase, "span_end"),
            "name": span.name,
            "category": span.category,
        }
        if phase != "start":
            payload["status"] = span.status
            payload["seconds"] = round(span.duration_s, 6)
            if span.attrs:
                payload["attrs"] = dict(span.attrs)
        self._send(payload)


def serve_jobs(stdin=None) -> int:
    """The worker loop: init line, ``ready``, then jobs until EOF."""
    from repro.api.pipeline import run_spec
    from repro.netlist.codegen import set_active_kernel_cache
    from repro.netlist.cones import set_active_cone_memo
    from repro.service.warm import WarmRegistry, warm_key

    stdin = stdin if stdin is not None else sys.stdin
    lock = threading.Lock()
    stop = threading.Event()

    init_line = stdin.readline()
    if not init_line:
        return 0
    try:
        init = json.loads(init_line)
        if init.get("op") != "init":
            raise ValueError(f"expected init, got {init.get('op')!r}")
        interval_s = float(
            init.get("heartbeat_interval_s") or HEARTBEAT_INTERVAL_S
        )
        registry = WarmRegistry(
            cache_dir=init.get("cache_dir"),
            max_entries=int(init.get("warm_max_entries") or 8),
        )
    except BaseException as exc:  # noqa: BLE001 — report, don't crash
        emit_event({
            "event": "error",
            "failure": RunFailure.from_exception(
                exc, stage=WORKER_STAGE
            ).to_dict(),
        }, lock)
        return 1
    set_active_cone_memo(registry.cone_memo)
    set_active_kernel_cache(registry.codegen_cache)
    beat = threading.Thread(
        target=heartbeat_loop, args=(lock, stop, interval_s), daemon=True
    )
    beat.start()
    started = time.perf_counter()  # monotonic: uptime is a duration
    emit_event({"event": "ready", "pid": os.getpid()}, lock)

    for line in stdin:
        line = line.strip()
        if not line:
            continue
        job_id = None
        try:
            request = json.loads(line)
            op = request.get("op")
            if op == "stop":
                break
            if op != "job":
                raise ValueError(f"unknown worker op {op!r}")
            job_id = request.get("job")
            spec = RunSpec.from_dict(request["spec"])
            attempt = int(request.get("attempt", 1))
            current = effective_spec(spec, attempt)
            was_warm = registry.would_hit(current)
            hooks = _EventHooks(job_id, lock)
            tracer = (
                Tracer(listener=hooks.span_listener)
                if request.get("trace") else None
            )
            metrics_before = METRICS.snapshot()
            t0 = time.perf_counter()
            result = run_spec(
                current,
                hooks=hooks,
                tile_cache=registry.cache_for(current),
                warm=registry,
                tracer=tracer,
            )
            written = registry.write_back()
            emit_event({
                "event": "result",
                "job": job_id,
                "result": result.to_dict(),
                "warm": {
                    "hit": was_warm,
                    "key": list(warm_key(current)),
                    "service_seconds": round(time.perf_counter() - t0, 6),
                    "configs_written": written,
                },
                # per-job *delta*, not a whole-process snapshot: the
                # worker is long-lived, so shipping totals would double-
                # count every earlier job when the daemon merges
                "metrics": METRICS.delta(metrics_before),
            }, lock)
        except BaseException as exc:  # noqa: BLE001
            if isinstance(exc, KeyboardInterrupt):
                break
            emit_event({
                "event": "job_error",
                "job": job_id,
                "failure": RunFailure.from_exception(
                    exc, stage=WORKER_STAGE
                ).to_dict(),
            }, lock)
    stop.set()
    emit_event({
        "event": "bye",
        "uptime_s": round(time.perf_counter() - started, 3),
        "warm": registry.stats(),
    }, lock)
    return 0


if __name__ == "__main__":
    sys.exit(serve_jobs())
