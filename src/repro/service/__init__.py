"""repro.service — warm-start debug-as-a-service daemon.

The paper's pitch is fast turnaround: precomputed spare configurations
make the *next* debug iteration cheap.  This package extends that idea
from tile configs to every per-process artifact a cold ``run_spec``
pays for — compiled emulation kernels, ``_Fabric`` routing tables,
:class:`~repro.netlist.cones.ConeIndex` bitsets, the open
:class:`~repro.tiling.cache.TileConfigStore` — by keeping a pool of
long-lived worker processes resident behind a unix-socket daemon.

Layout:

* :mod:`repro.service.warm` — per-worker warm-state registry
  (LRU-bounded, invalidation by design digest / device / preset).
* :mod:`repro.service.queue` — priority job queue with digest dedup
  and a crash-safe persistent spool.
* :mod:`repro.service.protocol` — newline-delimited JSON framing and
  verb shapes shared by daemon and client.
* :mod:`repro.service.worker` — the looping child process
  (``python -m repro.service.worker``).
* :mod:`repro.service.daemon` — the socket server + worker pool
  (``python -m repro serve``).
* :mod:`repro.service.client` — :class:`Client` python API backing
  ``python -m repro client``.

Warm state is a cache, never a semantic input: results are bit-identical
to a cold in-process :func:`~repro.api.pipeline.run_spec` on the same
spec (modulo timings and attempt metadata), which the service test
suite asserts field-for-field.
"""

from repro.service.client import Client
from repro.service.daemon import ReproService, ServiceConfig
from repro.service.warm import WarmRegistry, design_digest

__all__ = [
    "Client",
    "ReproService",
    "ServiceConfig",
    "WarmRegistry",
    "design_digest",
]
