"""Wire protocol of the debug service — newline-delimited JSON.

One request per connection: the client connects to the daemon's unix
socket, writes exactly one JSON object terminated by ``\\n``, and reads
JSON lines back.  Every verb except ``events`` answers with a single
response line; ``events`` streams one line per pipeline event (stage /
probe / commit / heartbeat) and closes with an ``{"event": "done"}``
sentinel once the job settles.  Plain lines over a stream socket keep
the whole transport inside the stdlib (``socket`` + ``socketserver``)
and make the protocol trivially scriptable — ``nc -U`` works.

Requests are ``{"verb": ..., ...}``; responses are ``{"ok": true, ...}``
or ``{"ok": false, "error": "..."}``.  The verb set:

========  ============================================================
verb      payload / response
========  ============================================================
ping      → ``{"ok": true, "pid": ...}``
submit    ``spec`` (RunSpec dict), optional ``priority`` (higher runs
          first), ``fresh`` (re-run even if a result exists),
          ``trace`` (stream ``span_start``/``span_end`` lines over
          ``events``) → job descriptor
submit-batch  ``base`` spec dict + campaign axes (``designs``,
          ``strategies``, ``engines``, ``error_kinds``,
          ``error_seeds``, ``seeds``, ``n_errors``) expanded
          server-side → job descriptor list
status    ``job`` digest (omit for all jobs) → job descriptor(s)
result    ``job`` digest → final RunResult dict (error if unfinished)
events    ``job`` digest → JSONL event stream, ``done`` sentinel last
stats     optional ``metrics`` → queue depth, warm hit rates,
          per-worker uptime; with ``metrics`` also ``metrics_text``,
          the merged registry in Prometheus text exposition format
shutdown  → ``{"ok": true}``, then the daemon drains and exits
========  ============================================================

Job identity is :meth:`RunSpec.digest` — the same key the campaign
journal resumes by — so duplicate submissions of one spec coalesce.
"""

from __future__ import annotations

import json
import socket

PROTOCOL_VERSION = 1

VERBS = (
    "ping",
    "submit",
    "submit-batch",
    "status",
    "result",
    "events",
    "stats",
    "shutdown",
)

#: maximum accepted request-line length (a spec dict is ~1 KiB; this is
#: generous headroom for large batch requests, not a real limit)
MAX_LINE_BYTES = 8 * 1024 * 1024


def encode_line(payload: dict) -> bytes:
    """One protocol line: compact JSON + newline."""
    return json.dumps(payload, sort_keys=True).encode() + b"\n"


def decode_line(line: bytes) -> dict:
    """Parse one protocol line (raising ``ValueError`` when malformed)."""
    payload = json.loads(line.decode())
    if not isinstance(payload, dict):
        raise ValueError("protocol line must be a JSON object")
    return payload


def read_line(stream) -> dict | None:
    """Read one protocol line from a file-like stream (None on EOF)."""
    line = stream.readline(MAX_LINE_BYTES)
    if not line:
        return None
    return decode_line(line)


def connect(socket_path: str, timeout_s: float | None = None
            ) -> socket.socket:
    """An AF_UNIX stream connection to the daemon."""
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    if timeout_s is not None:
        sock.settimeout(timeout_s)
    sock.connect(socket_path)
    return sock


def error_response(message: str) -> dict:
    return {"ok": False, "error": message}


def ok_response(**fields) -> dict:
    payload = {"ok": True}
    payload.update(fields)
    return payload
