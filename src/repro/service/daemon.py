"""The debug-service daemon — socket front end + warm worker pool.

``python -m repro serve --cache-dir CACHE --workers N`` runs one
:class:`ReproService`: a ``socketserver.ThreadingUnixStreamServer``
answering the :mod:`repro.service.protocol` verbs, a
:class:`~repro.service.queue.JobQueue` with a crash-safe spool under
``<cache-dir>/service/``, and ``N`` long-lived
``python -m repro.service.worker`` children, each supervised with the
exact policy :func:`~repro.resilience.supervisor.run_supervised`
applies to one-shot campaign workers — heartbeat-silence watchdog,
per-spec hard wall-clock ceiling, SIGKILL + reap — just re-applied per
*job* instead of per process lifetime.

Worker death mid-job is a first-class event, not an error path: the
dispatcher folds the death into a stage-``"worker"``
:class:`~repro.resilience.failure.RunFailure`, re-queues the job once
(``max_requeues``), respawns the worker, and only after repeated death
settles the job as ``status="failed"`` carrying every death record.  A
hard-timeout kill settles immediately as ``status="timeout"`` — a job
that blew a 3x wall-clock ceiling once will blow it again.

Shutdown drains politely: the socket answers ``{"ok": true}`` first,
workers get a ``stop`` line + stdin EOF (finishing their current job),
and anything still queued stays in the spool for the next start —
restart-resume is the spool's whole point.
"""

from __future__ import annotations

import json
import os
import socketserver
import subprocess
import sys
import threading
import time
from dataclasses import dataclass

from repro.api.result import RunResult
from repro.api.spec import RunSpec
from repro.errors import ReproError
from repro.obs.metrics import METRICS
from repro.resilience.failure import WORKER_STAGE, RunFailure
from repro.resilience.supervisor import (
    DEFAULT_HEARTBEAT_TIMEOUT_S,
    HEARTBEAT_INTERVAL_S,
    hard_timeout_for,
    kill_process,
    worker_env,
)
from repro.service import protocol
from repro.service.queue import DONE, Job, JobQueue

#: dispatcher poll period while waiting on a worker
_POLL_S = 0.05
#: seconds a worker gets to finish its current job at shutdown
_DRAIN_S = 30.0


def default_socket_path(cache_dir: str | None = None) -> str:
    """Where the daemon listens unless told otherwise."""
    base = cache_dir if cache_dir is not None else "/tmp"
    return os.path.join(base, "repro-service.sock")


@dataclass
class ServiceConfig:
    """Everything the daemon needs; RunSpec-independent by design."""

    socket_path: str
    cache_dir: str | None = None
    workers: int = 1
    #: spool directory (default ``<cache_dir>/service``); ``None``
    #: without a cache dir → in-memory queue, no restart resume
    spool_dir: str | None = None
    #: worker heartbeat cadence (satellite: no longer hardwired 0.25s)
    heartbeat_interval_s: float = HEARTBEAT_INTERVAL_S
    #: watchdog grace before a silent worker is declared wedged
    heartbeat_timeout_s: float = DEFAULT_HEARTBEAT_TIMEOUT_S
    #: hard per-job wall-clock ceiling override (None → derive from
    #: each spec's ``timeout_s`` exactly like the one-shot supervisor)
    hard_timeout_s: float | None = None
    warm_max_entries: int = 8
    #: worker deaths tolerated per job before it settles as failed
    max_requeues: int = 1

    def __post_init__(self) -> None:
        if self.spool_dir is None and self.cache_dir is not None:
            self.spool_dir = os.path.join(self.cache_dir, "service")
        if self.heartbeat_timeout_s <= self.heartbeat_interval_s:
            raise ReproError(
                f"heartbeat timeout ({self.heartbeat_timeout_s}s) must "
                f"exceed the heartbeat interval "
                f"({self.heartbeat_interval_s}s)"
            )


class WorkerHandle:
    """One resident worker process and its liveness bookkeeping."""

    def __init__(self, index: int, config: ServiceConfig,
                 queue: JobQueue) -> None:
        self.index = index
        self.config = config
        self.queue = queue
        self.proc: subprocess.Popen | None = None
        self.lock = threading.Lock()
        self.last_event = time.monotonic()
        self.ready = threading.Event()
        self.job_done = threading.Event()
        self.job_result: dict | None = None
        self.current_job: str | None = None
        self.started_at: float | None = None
        self.jobs_done = 0
        self.deaths = 0
        self.stderr_tail: list[str] = []

    # -- lifecycle -----------------------------------------------------

    def spawn(self) -> None:
        self.ready.clear()
        self.proc = subprocess.Popen(
            [sys.executable, "-u", "-m", "repro.service.worker"],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=worker_env(),
            text=True,
        )
        self.started_at = time.monotonic()  # uptime is a duration
        self.last_event = time.monotonic()
        threading.Thread(target=self._read_events, daemon=True).start()
        threading.Thread(target=self._read_stderr, daemon=True).start()
        self._send({
            "op": "init",
            "cache_dir": self.config.cache_dir,
            "heartbeat_interval_s": self.config.heartbeat_interval_s,
            "warm_max_entries": self.config.warm_max_entries,
        })

    def alive(self) -> bool:
        return self.proc is not None and self.proc.poll() is None

    def kill(self) -> None:
        if self.proc is not None:
            kill_process(self.proc)

    def stop(self) -> None:
        """Polite stop: stop line + EOF; the worker finishes its job."""
        if self.proc is None:
            return
        try:
            self.proc.stdin.write(json.dumps({"op": "stop"}) + "\n")
            self.proc.stdin.close()
        except (BrokenPipeError, OSError, ValueError):
            pass

    # -- I/O -----------------------------------------------------------

    def _send(self, payload: dict) -> bool:
        try:
            self.proc.stdin.write(json.dumps(payload) + "\n")
            self.proc.stdin.flush()
            return True
        except (BrokenPipeError, OSError, ValueError):
            return False

    def _read_events(self) -> None:
        proc = self.proc
        for line in proc.stdout:
            self.last_event = time.monotonic()
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except ValueError:
                continue
            if not isinstance(event, dict):
                continue
            kind = event.get("event")
            if kind == "heartbeat":
                continue
            if kind == "ready":
                self.ready.set()
                continue
            job = event.get("job")
            if kind in ("result", "job_error"):
                with self.lock:
                    if job == self.current_job:
                        self.job_result = event
                        self.job_done.set()
                continue
            if job:
                # stage/probe/commit — stream into the job's buffer
                self.queue.add_event(job, event)

    def _read_stderr(self) -> None:
        proc = self.proc
        for line in proc.stderr:
            self.stderr_tail.append(line.rstrip("\n"))
            del self.stderr_tail[:-20]

    def silent_for(self) -> float:
        return time.monotonic() - self.last_event

    def uptime_s(self) -> float:
        if self.started_at is None:
            return 0.0
        return time.monotonic() - self.started_at

    def stats(self) -> dict:
        return {
            "worker": self.index,
            "pid": self.proc.pid if self.proc else None,
            "alive": self.alive(),
            "ready": self.ready.is_set(),
            "uptime_s": round(self.uptime_s(), 3),
            "jobs_done": self.jobs_done,
            "deaths": self.deaths,
            "current_job": self.current_job,
        }


class ReproService:
    """The daemon: queue + worker pool + unix-socket request server."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.queue = JobQueue(spool_dir=config.spool_dir)
        self.workers: list[WorkerHandle] = []
        self._dispatchers: list[threading.Thread] = []
        self._stopping = threading.Event()
        self._server: socketserver.ThreadingUnixStreamServer | None = None
        self._server_thread: threading.Thread | None = None
        self.started_at = time.time()  # wall clock, display only
        self._started_mono = time.monotonic()  # uptime is a duration

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        """Spawn workers, bind the socket, serve in the background."""
        for index in range(self.config.workers):
            handle = WorkerHandle(index, self.config, self.queue)
            handle.spawn()
            self.workers.append(handle)
            thread = threading.Thread(
                target=self._dispatch_loop, args=(handle,), daemon=True
            )
            thread.start()
            self._dispatchers.append(thread)

        service = self

        class Handler(socketserver.StreamRequestHandler):
            def handle(self) -> None:
                try:
                    request = protocol.read_line(self.rfile)
                except ValueError:
                    self.wfile.write(protocol.encode_line(
                        protocol.error_response("malformed request")
                    ))
                    return
                if request is None:
                    return
                service.handle_request(request, self.wfile)

        sock_dir = os.path.dirname(os.path.abspath(
            self.config.socket_path
        ))
        os.makedirs(sock_dir, exist_ok=True)
        if os.path.exists(self.config.socket_path):
            os.unlink(self.config.socket_path)  # stale socket from a crash
        server = socketserver.ThreadingUnixStreamServer(
            self.config.socket_path, Handler
        )
        server.daemon_threads = True
        self._server = server
        self._server_thread = threading.Thread(
            target=server.serve_forever, daemon=True
        )
        self._server_thread.start()

    def stop(self) -> None:
        """Drain workers, close the socket, keep the spool for resume."""
        if self._stopping.is_set():
            return
        self._stopping.set()
        for handle in self.workers:
            handle.stop()
        deadline = time.monotonic() + _DRAIN_S
        for handle in self.workers:
            while handle.alive() and time.monotonic() < deadline:
                time.sleep(_POLL_S)
            if handle.alive():
                handle.kill()
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            if os.path.exists(self.config.socket_path):
                os.unlink(self.config.socket_path)

    def serve_until_shutdown(self) -> None:
        """Block until a ``shutdown`` verb (or KeyboardInterrupt)."""
        try:
            while not self._stopping.is_set():
                time.sleep(0.2)
        except KeyboardInterrupt:
            pass
        finally:
            self.stop()

    # -- dispatch ------------------------------------------------------

    def _dispatch_loop(self, handle: WorkerHandle) -> None:
        while not self._stopping.is_set():
            job = self.queue.claim(timeout_s=0.2)
            if job is None:
                continue
            if self._stopping.is_set():
                # too late to run it; leave it for the spool to resume
                self.queue.requeue(job)
                return
            self._run_job(handle, job)

    def _respawn(self, handle: WorkerHandle) -> None:
        handle.deaths += 1
        METRICS.inc("repro_worker_restarts_total")
        handle.kill()
        if not self._stopping.is_set():
            handle.spawn()

    def _run_job(self, handle: WorkerHandle, job: Job) -> None:
        if not handle.alive():
            handle.spawn()
        if not handle.ready.wait(timeout=120.0):
            self._settle_death(handle, job, RunFailure(
                stage=WORKER_STAGE, error="WorkerNotReady",
                message=f"worker {handle.index} never reported ready",
                elapsed_s=0.0,
            ), elapsed=0.0)
            self._respawn(handle)
            return
        with handle.lock:
            handle.current_job = job.digest
            handle.job_result = None
            handle.job_done.clear()
        job.worker = handle.index
        sent = handle._send({
            "op": "job",
            "job": job.digest,
            "spec": job.spec.to_dict(),
            "attempt": job.attempts,
            "trace": job.trace,
        })
        t0 = time.perf_counter()
        ceiling = hard_timeout_for(job.spec, self.config.hard_timeout_s)
        failure: RunFailure | None = None
        status = "failed"
        if not sent:
            failure = RunFailure(
                stage=WORKER_STAGE, error="WorkerCrashed",
                message=f"worker {handle.index} pipe closed before "
                        "dispatch", elapsed_s=0.0,
            )
        while failure is None:
            if handle.job_done.wait(timeout=_POLL_S):
                break
            elapsed = time.perf_counter() - t0
            if not handle.alive():
                # grace period: the result line may still be in flight
                handle.job_done.wait(timeout=1.0)
                if handle.job_done.is_set():
                    break
                failure = self._death_failure(handle, elapsed)
                break
            if ceiling is not None and elapsed > ceiling:
                handle.kill()
                status = "timeout"
                failure = RunFailure(
                    stage=WORKER_STAGE, error="WorkerHardTimeout",
                    message=f"job exceeded hard wall-clock limit "
                            f"{ceiling:.1f}s on worker {handle.index}; "
                            "killed", elapsed_s=round(elapsed, 6),
                )
                break
            if handle.silent_for() > self.config.heartbeat_timeout_s:
                handle.kill()
                failure = RunFailure(
                    stage=WORKER_STAGE, error="WorkerHeartbeatLost",
                    message=f"no worker event for "
                            f"{self.config.heartbeat_timeout_s:.1f}s "
                            "(hung or stopped); killed",
                    elapsed_s=round(elapsed, 6),
                )
                break

        elapsed = time.perf_counter() - t0
        with handle.lock:
            event = handle.job_result
            handle.current_job = None

        if failure is None and event is not None:
            if event.get("event") == "result":
                handle.jobs_done += 1
                result = event.get("result") or {}
                # fold the worker's per-job metrics delta into the
                # daemon's registry — deltas never double-count
                metrics = event.get("metrics")
                if metrics is not None:
                    METRICS.merge(metrics)
                METRICS.inc("repro_service_jobs_total",
                            status=result.get("status") or "unknown")
                self.queue.finish(job, result, warm=event.get("warm"))
                return
            # job_error: the worker survived but the job blew up at the
            # protocol level — settle as failed, keep the worker
            raw = event.get("failure")
            try:
                failure = RunFailure.from_dict(raw)
            except (TypeError, ValueError):
                failure = RunFailure(
                    stage=WORKER_STAGE, error="WorkerProtocolError",
                    message="worker job_error did not deserialize",
                    elapsed_s=round(elapsed, 6),
                )
            self._settle_failed(job, failure, status="failed",
                                elapsed=elapsed)
            return

        if failure is None:  # pragma: no cover — loop always sets one
            failure = self._death_failure(handle, elapsed)

        if status == "timeout":
            # no re-queue: a ceiling blown once will blow again
            self._settle_failed(job, failure, status="timeout",
                                elapsed=elapsed)
            self._respawn(handle)
            return
        self._settle_death(handle, job, failure, elapsed)
        self._respawn(handle)

    def _death_failure(self, handle: WorkerHandle,
                       elapsed: float) -> RunFailure:
        rc = handle.proc.returncode if handle.proc else None
        detail = (f"worker {handle.index} died mid-job "
                  f"(exit code {rc})")
        tail = "\n".join(handle.stderr_tail).strip()
        if tail:
            detail += f"; stderr tail: {tail[-500:]}"
        return RunFailure(
            stage=WORKER_STAGE, error="WorkerCrashed", message=detail,
            elapsed_s=round(elapsed, 6),
        )

    def _settle_death(self, handle: WorkerHandle, job: Job,
                      failure: RunFailure, elapsed: float) -> None:
        """Re-queue after a death, or fold repeated deaths into failed."""
        job.death_failures.append(failure.to_dict())
        if job.attempts <= self.config.max_requeues:
            self.queue.add_event(job.digest, {
                "event": "requeued", "job": job.digest,
                "attempt": job.attempts, "error": failure.error,
            })
            self.queue.requeue(job)
            return
        self._settle_failed(job, failure, status="failed",
                            elapsed=elapsed)

    def _settle_failed(self, job: Job, failure: RunFailure,
                       status: str, elapsed: float) -> None:
        result = RunResult.worker_failure(
            job.spec, failure, status=status,
            wall_seconds=round(elapsed, 6),
        ).to_dict()
        if len(job.death_failures) > 1:
            # every death this job caused, oldest first
            result["failures"] = list(job.death_failures)
        METRICS.inc("repro_service_jobs_total", status=status)
        self.queue.finish(job, result)

    # -- request handling ----------------------------------------------

    def handle_request(self, request: dict, wfile) -> None:
        verb = request.get("verb")
        try:
            if verb == "events":
                self._stream_events(request, wfile)
                return
            response = self._answer(verb, request)
        except ReproError as exc:
            response = protocol.error_response(str(exc))
        except Exception as exc:  # noqa: BLE001 — daemon must not die
            response = protocol.error_response(
                f"{type(exc).__name__}: {exc}"
            )
        try:
            wfile.write(protocol.encode_line(response))
        except (BrokenPipeError, OSError):
            pass

    def _answer(self, verb, request: dict) -> dict:
        if verb == "ping":
            return protocol.ok_response(
                pid=os.getpid(), version=protocol.PROTOCOL_VERSION
            )
        if verb == "submit":
            return self._submit(request)
        if verb == "submit-batch":
            return self._submit_batch(request)
        if verb == "status":
            return self._status(request)
        if verb == "result":
            return self._result(request)
        if verb == "stats":
            payload = self.stats()
            if request.get("metrics"):
                payload["metrics_text"] = self.metrics_text()
            return protocol.ok_response(**payload)
        if verb == "shutdown":
            threading.Thread(target=self.stop, daemon=True).start()
            return protocol.ok_response(stopping=True)
        return protocol.error_response(
            f"unknown verb {verb!r}; valid verbs: "
            + ", ".join(protocol.VERBS)
        )

    def _submit(self, request: dict) -> dict:
        spec = RunSpec.from_dict(request.get("spec") or {})
        job, deduped = self.queue.submit(
            spec,
            priority=int(request.get("priority", 0)),
            fresh=bool(request.get("fresh", False)),
            trace=bool(request.get("trace", False)),
        )
        return protocol.ok_response(deduped=deduped, **job.descriptor())

    def _submit_batch(self, request: dict) -> dict:
        from repro.api.campaign import expand_matrix

        base = RunSpec.from_dict(request.get("base") or {})
        specs = expand_matrix(
            base,
            designs=request.get("designs"),
            strategies=request.get("strategies"),
            engines=request.get("engines"),
            error_kinds=request.get("error_kinds"),
            error_seeds=request.get("error_seeds"),
            seeds=request.get("seeds"),
            n_errors=request.get("n_errors"),
        )
        priority = int(request.get("priority", 0))
        fresh = bool(request.get("fresh", False))
        jobs = []
        for spec in specs:
            job, deduped = self.queue.submit(
                spec, priority=priority, fresh=fresh
            )
            jobs.append(dict(deduped=deduped, **job.descriptor()))
        return protocol.ok_response(n_jobs=len(jobs), jobs=jobs)

    def _status(self, request: dict) -> dict:
        digest = request.get("job")
        if digest is None:
            return protocol.ok_response(jobs=self.queue.snapshot())
        job = self.queue.get(digest)
        if job is None:
            return protocol.error_response(f"unknown job {digest!r}")
        return protocol.ok_response(**job.descriptor())

    def _result(self, request: dict) -> dict:
        digest = request.get("job")
        job = self.queue.get(digest) if digest else None
        if job is None:
            return protocol.error_response(f"unknown job {digest!r}")
        timeout_s = request.get("timeout_s")
        if job.state != DONE and timeout_s is not None:
            job = self.queue.wait_for(digest, timeout_s=float(timeout_s))
        if job is None or job.state != DONE:
            return protocol.error_response(
                f"job {digest} not finished"
            )
        payload = job.descriptor()
        payload["result"] = job.result
        payload["warm"] = job.warm
        return protocol.ok_response(**payload)

    def _stream_events(self, request: dict, wfile) -> None:
        digest = request.get("job")
        if digest is None or self.queue.get(digest) is None:
            wfile.write(protocol.encode_line(
                protocol.error_response(f"unknown job {digest!r}")
            ))
            return
        wfile.write(protocol.encode_line(protocol.ok_response(
            streaming=True, job=digest
        )))
        wfile.flush()
        cursor = 0
        while True:
            events, cursor, done = self.queue.events_since(
                digest, cursor, timeout_s=1.0
            )
            try:
                for event in events:
                    wfile.write(protocol.encode_line(event))
                if events:
                    wfile.flush()
                if done:
                    job = self.queue.get(digest)
                    wfile.write(protocol.encode_line({
                        "event": "done", "job": digest,
                        "status": (job.result or {}).get("status")
                        if job else None,
                    }))
                    wfile.flush()
                    return
            except (BrokenPipeError, OSError):
                return  # client hung up; stop streaming
            if self._stopping.is_set():
                return

    def stats(self) -> dict:
        warm = [w for w in (h.stats() for h in self.workers)]
        return {
            "pid": os.getpid(),
            "uptime_s": round(time.monotonic() - self._started_mono, 3),
            "queue": self.queue.stats(),
            "workers": warm,
            "socket": self.config.socket_path,
            "cache_dir": self.config.cache_dir,
            "spool_dir": self.config.spool_dir,
        }

    def metrics_text(self) -> str:
        """The daemon's registry in Prometheus text exposition format.

        Point-in-time gauges (queue depth, live workers) are refreshed
        on every scrape; counters and the merged per-job deltas from
        workers accumulate between scrapes.
        """
        queue_stats = self.queue.stats()
        METRICS.set_gauge("repro_queue_depth", queue_stats["queued"])
        METRICS.set_gauge(
            "repro_service_workers",
            sum(1 for h in self.workers if h.alive()),
        )
        return METRICS.to_prometheus()


def serve(config: ServiceConfig) -> int:
    """Run a daemon in the foreground until shutdown; returns 0."""
    service = ReproService(config)
    service.start()
    print(f"repro service listening on {config.socket_path} "
          f"({config.workers} worker(s), cache_dir="
          f"{config.cache_dir or 'none'})", flush=True)
    service.serve_until_shutdown()
    print("repro service stopped", flush=True)
    return 0
