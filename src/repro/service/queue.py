"""The daemon's job queue — priorities, digest dedup, crash-safe spool.

Jobs are keyed by :meth:`RunSpec.digest` — the same identity the
campaign journal resumes by — so submitting one spec twice coalesces
onto one job (the second submitter just observes it) unless the caller
asks for a ``fresh`` re-run.  Dispatch order is highest priority first,
FIFO within a priority.

Persistence reuses the journal primitives from
:mod:`repro.api.journal`: every accepted job is appended to a
``pending`` spool before it is queued, and every finished job to a
``results`` :class:`CampaignJournal`, both fsynced JSONL.  A daemon
restart replays both — results pre-populate done jobs (so ``result``
queries keep answering), and any spooled job without a result is
re-queued.  The spool is append-only; "still pending" is defined as
*spooled minus resulted*, so no rewrite-in-place step can tear it.

The queue is the synchronization hub: worker dispatchers block in
:meth:`claim`, clients block in :meth:`wait_for`, and the ``events``
verb streams each job's bounded event buffer as it grows — all off one
condition variable.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque

from repro.api.journal import _JOURNAL_VERSION, CampaignJournal, JsonlJournal
from repro.api.spec import RunSpec

#: per-job pipeline-event buffer bound; a 9sym debug run emits a few
#: dozen events, a deep multi-error campaign run a few hundred
MAX_JOB_EVENTS = 2000

QUEUED = "queued"
RUNNING = "running"
DONE = "done"


class Job:
    """One unit of service work: a spec, its state, and its artifacts."""

    def __init__(self, spec: RunSpec, priority: int = 0,
                 seq: int = 0, trace: bool = False) -> None:
        self.digest = spec.digest()
        self.spec = spec
        self.priority = priority
        self.seq = seq
        self.trace = trace
        self.state = QUEUED
        self.attempts = 0
        self.result: dict | None = None
        self.warm: dict | None = None
        self.worker: int | None = None
        self.submitted_at = time.time()
        self.finished_at: float | None = None
        #: stage/probe/commit events streamed by the ``events`` verb
        self.events: deque = deque(maxlen=MAX_JOB_EVENTS)
        #: worker-death failures accumulated across re-queues
        self.death_failures: list[dict] = []

    def descriptor(self) -> dict:
        """The job as the ``submit``/``status`` verbs report it."""
        out = {
            "job": self.digest,
            "state": self.state,
            "priority": self.priority,
            "attempts": self.attempts,
            "design": self.spec.design,
            "n_events": len(self.events),
        }
        if self.result is not None:
            out["status"] = self.result.get("status")
        if self.warm is not None:
            out["warm"] = self.warm
        if self.worker is not None:
            out["worker"] = self.worker
        return out


class JobQueue:
    """Priority queue with digest dedup and a persistent spool."""

    def __init__(self, spool_dir: str | None = None) -> None:
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._jobs: dict[str, Job] = {}
        self._ready: list[Job] = []
        self._seq = 0
        self._pending_spool: JsonlJournal | None = None
        self._results: CampaignJournal | None = None
        if spool_dir is not None:
            os.makedirs(spool_dir, exist_ok=True)
            self._pending_spool = JsonlJournal(
                os.path.join(spool_dir, "pending.jsonl")
            )
            self._results = CampaignJournal(
                os.path.join(spool_dir, "results.jsonl")
            )
            self._resume()

    # -- restart resume ------------------------------------------------

    def _resume(self) -> None:
        """Replay the spool: done jobs keep answering, the rest re-queue."""
        finished = self._results.load() if self._results else {}
        with self._lock:
            self._replay(finished)

    def _replay(self, finished: dict) -> None:
        for record in (self._pending_spool.records()
                       if self._pending_spool else []):
            spec_dict = record.get("spec")
            if not isinstance(spec_dict, dict):
                continue
            try:
                spec = RunSpec.from_dict(spec_dict)
            except Exception:
                continue  # malformed spool line; skip, don't crash
            digest = spec.digest()
            if digest in self._jobs:
                continue
            job = Job(spec, priority=int(record.get("priority", 0)),
                      seq=self._seq)
            self._seq += 1
            self._jobs[digest] = job
            if digest in finished:
                job.state = DONE
                job.result = finished[digest]
                job.finished_at = time.time()
            else:
                self._push(job)

    # -- internals (caller holds the lock) -----------------------------

    def _push(self, job: Job) -> None:
        job.state = QUEUED
        self._ready.append(job)
        # highest priority first, FIFO within a priority; re-queued jobs
        # keep their original seq, so they resume near the front
        self._ready.sort(key=lambda j: (-j.priority, j.seq))
        self._cond.notify_all()

    def _spool(self, job: Job) -> None:
        if self._pending_spool is not None:
            self._pending_spool.append_record({
                "v": _JOURNAL_VERSION,
                "digest": job.digest,
                "priority": job.priority,
                "spec": job.spec.to_dict(),
            })

    # -- submission ----------------------------------------------------

    def submit(self, spec: RunSpec, priority: int = 0,
               fresh: bool = False,
               trace: bool = False) -> tuple[Job, bool]:
        """Accept one spec; returns ``(job, deduped)``.

        An existing queued/running job for the same digest always wins
        (the submission coalesces).  A *done* job is returned as-is
        unless ``fresh`` is set, which resets it and re-queues — the
        path warm-latency measurements use.
        """
        with self._lock:
            job = self._jobs.get(spec.digest())
            if job is not None:
                if job.state == DONE and fresh:
                    job.state = QUEUED
                    job.priority = priority
                    job.trace = trace
                    job.result = None
                    job.warm = None
                    job.worker = None
                    job.attempts = 0
                    job.finished_at = None
                    job.events.clear()
                    job.death_failures = []
                    self._spool(job)
                    self._push(job)
                    return job, False
                return job, True
            job = Job(spec, priority=priority, seq=self._seq,
                      trace=trace)
            self._seq += 1
            self._jobs[job.digest] = job
            self._spool(job)
            self._push(job)
            return job, False

    # -- dispatch ------------------------------------------------------

    def claim(self, timeout_s: float | None = None) -> Job | None:
        """Block until a job is ready, mark it running, return it."""
        deadline = (time.monotonic() + timeout_s
                    if timeout_s is not None else None)
        with self._lock:
            while not self._ready:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return None
                self._cond.wait(remaining)
            job = self._ready.pop(0)
            job.state = RUNNING
            job.attempts += 1
            return job

    def requeue(self, job: Job) -> None:
        """Put a running job back (worker died mid-job)."""
        with self._lock:
            self._push(job)

    def finish(self, job: Job, result: dict,
               warm: dict | None = None) -> None:
        """Settle a job with its final result (journaled durably)."""
        with self._lock:
            job.state = DONE
            job.result = result
            job.warm = warm
            job.finished_at = time.time()
            if self._results is not None:
                self._results.append_record({
                    "v": _JOURNAL_VERSION,
                    "digest": job.digest,
                    "status": result.get("status"),
                    "result": result,
                })
            self._cond.notify_all()

    def add_event(self, digest: str, event: dict) -> None:
        """Append one pipeline event to a job's stream buffer."""
        with self._lock:
            job = self._jobs.get(digest)
            if job is not None:
                job.events.append(event)
                self._cond.notify_all()

    # -- observation ---------------------------------------------------

    def get(self, digest: str) -> Job | None:
        with self._lock:
            return self._jobs.get(digest)

    def wait_for(self, digest: str,
                 timeout_s: float | None = None) -> Job | None:
        """Block until the job settles (None on timeout/unknown)."""
        deadline = (time.monotonic() + timeout_s
                    if timeout_s is not None else None)
        with self._lock:
            while True:
                job = self._jobs.get(digest)
                if job is None:
                    return None
                if job.state == DONE:
                    return job
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return None
                self._cond.wait(remaining)

    def events_since(self, digest: str, start: int,
                     timeout_s: float | None = None
                     ) -> tuple[list[dict], int, bool]:
        """Events past index ``start``: ``(new, next_index, done)``.

        Blocks until at least one new event arrives or the job settles;
        the ``events`` verb loops on this to stream live.
        """
        deadline = (time.monotonic() + timeout_s
                    if timeout_s is not None else None)
        with self._lock:
            while True:
                job = self._jobs.get(digest)
                if job is None:
                    return [], start, True
                events = list(job.events)
                if len(events) > start:
                    return events[start:], len(events), job.state == DONE
                if job.state == DONE:
                    return [], start, True
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return [], start, False
                self._cond.wait(remaining)

    def depth(self) -> int:
        with self._lock:
            return len(self._ready)

    def stats(self) -> dict:
        with self._lock:
            states: dict[str, int] = {QUEUED: 0, RUNNING: 0, DONE: 0}
            for job in self._jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
            return {
                "jobs": len(self._jobs),
                "queued": states[QUEUED],
                "running": states[RUNNING],
                "done": states[DONE],
            }

    def snapshot(self) -> list[dict]:
        with self._lock:
            jobs = sorted(self._jobs.values(), key=lambda j: j.seq)
            return [job.descriptor() for job in jobs]
