"""Python client for the debug service — one class, all the verbs.

:class:`Client` speaks the :mod:`repro.service.protocol` over the
daemon's unix socket: one connection per request, one JSON line out,
one (or, for ``events``, a stream of) JSON line(s) back.  It is what
``python -m repro client ...`` wraps and what tests and the
``service_warm`` benchmark drive programmatically.

The blocking conveniences (:meth:`run`, :meth:`wait`) poll the daemon
rather than holding a connection open, so a client outliving a daemon
restart just keeps polling the new instance.
"""

from __future__ import annotations

import time

from repro.errors import ReproError
from repro.service import protocol


class ServiceError(ReproError):
    """The daemon answered ``ok: false`` (or not at all)."""


class Client:
    """Thin requester against a running service daemon."""

    def __init__(self, socket_path: str,
                 timeout_s: float | None = 60.0) -> None:
        self.socket_path = socket_path
        self.timeout_s = timeout_s

    # -- plumbing ------------------------------------------------------

    def request(self, payload: dict) -> dict:
        """One verb round-trip; raises :class:`ServiceError` on error."""
        try:
            sock = protocol.connect(self.socket_path, self.timeout_s)
        except OSError as exc:
            raise ServiceError(
                f"cannot reach service at {self.socket_path}: {exc}"
            ) from exc
        try:
            with sock, sock.makefile("rwb") as stream:
                stream.write(protocol.encode_line(payload))
                stream.flush()
                response = protocol.read_line(stream)
        except (OSError, ValueError) as exc:
            raise ServiceError(f"service request failed: {exc}") from exc
        if response is None:
            raise ServiceError("service closed the connection")
        if not response.get("ok", False):
            raise ServiceError(
                response.get("error", "service reported an error")
            )
        return response

    # -- verbs ---------------------------------------------------------

    def ping(self) -> dict:
        return self.request({"verb": "ping"})

    def submit(self, spec, priority: int = 0, fresh: bool = False,
               trace: bool = False) -> dict:
        """Submit one spec (a RunSpec or its dict); returns the job.

        ``trace=True`` arms a tracer in the worker for this job, so
        the ``events`` stream carries ``span_start``/``span_end``
        lines alongside the stage/probe/commit events.
        """
        spec_dict = spec.to_dict() if hasattr(spec, "to_dict") else spec
        payload = {
            "verb": "submit", "spec": spec_dict,
            "priority": priority, "fresh": fresh,
        }
        if trace:
            payload["trace"] = True
        return self.request(payload)

    def submit_batch(self, base, priority: int = 0, fresh: bool = False,
                     **axes) -> dict:
        """Expand a campaign matrix server-side; returns all jobs.

        ``axes`` are the :func:`~repro.api.campaign.expand_matrix`
        keyword lists (``designs``, ``strategies``, ``engines``,
        ``error_kinds``, ``error_seeds``, ``seeds``, ``n_errors``).
        """
        base_dict = base.to_dict() if hasattr(base, "to_dict") else base
        payload = {
            "verb": "submit-batch", "base": base_dict,
            "priority": priority, "fresh": fresh,
        }
        payload.update(axes)
        return self.request(payload)

    def status(self, job: str | None = None) -> dict:
        payload: dict = {"verb": "status"}
        if job is not None:
            payload["job"] = job
        return self.request(payload)

    def result(self, job: str, timeout_s: float | None = None) -> dict:
        payload: dict = {"verb": "result", "job": job}
        if timeout_s is not None:
            payload["timeout_s"] = timeout_s
        return self.request(payload)

    def stats(self, metrics: bool = False) -> dict:
        """Daemon stats; ``metrics=True`` adds ``metrics_text`` —
        the process-wide registry in Prometheus exposition format."""
        payload: dict = {"verb": "stats"}
        if metrics:
            payload["metrics"] = True
        return self.request(payload)

    def shutdown(self) -> dict:
        return self.request({"verb": "shutdown"})

    def events(self, job: str):
        """Generator of event dicts for one job, live until ``done``."""
        try:
            sock = protocol.connect(self.socket_path, None)
        except OSError as exc:
            raise ServiceError(
                f"cannot reach service at {self.socket_path}: {exc}"
            ) from exc
        with sock, sock.makefile("rwb") as stream:
            stream.write(protocol.encode_line(
                {"verb": "events", "job": job}
            ))
            stream.flush()
            header = protocol.read_line(stream)
            if header is None or not header.get("ok", False):
                raise ServiceError(
                    (header or {}).get("error", "events stream refused")
                )
            while True:
                event = protocol.read_line(stream)
                if event is None:
                    return
                yield event
                if event.get("event") == "done":
                    return

    # -- blocking conveniences -----------------------------------------

    def wait(self, job: str, timeout_s: float = 600.0,
             poll_s: float = 0.25) -> dict:
        """Block until ``job`` settles; returns the ``result`` response."""
        deadline = time.monotonic() + timeout_s
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ServiceError(
                    f"job {job} did not finish within {timeout_s:.0f}s"
                )
            try:
                return self.result(
                    job, timeout_s=min(remaining, 10.0)
                )
            except ServiceError as exc:
                if "not finished" not in str(exc):
                    raise
                time.sleep(poll_s)

    def run(self, spec, priority: int = 0, fresh: bool = False,
            timeout_s: float = 600.0) -> dict:
        """Submit + wait: the one-call synchronous path."""
        job = self.submit(spec, priority=priority, fresh=fresh)
        return self.wait(job["job"], timeout_s=timeout_s)
