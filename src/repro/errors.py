"""Exception hierarchy shared by every repro subsystem.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  Subsystems raise the most specific subclass that
describes the failure.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class NetlistError(ReproError):
    """Structural problem in a netlist (duplicate names, bad connectivity)."""


class ValidationError(NetlistError):
    """A netlist failed a structural validation check."""


class SynthesisError(ReproError):
    """Technology mapping or packing could not complete."""


class ArchitectureError(ReproError):
    """The requested design does not fit the architecture model."""


class PlacementError(ReproError):
    """The placer could not produce a legal placement."""


class RoutingError(ReproError):
    """The router could not route every net within channel capacity."""


class TilingError(ReproError):
    """Tile partitioning or a tile-confined operation failed."""


class DebugFlowError(ReproError):
    """The emulation debug loop was driven into an invalid state."""


class UnknownStrategyError(DebugFlowError, ValueError):
    """An unknown back-end strategy name was requested.

    Doubles as a :class:`ValueError` so spec validation and CLI argument
    parsing can treat a bad name like any other bad input, while callers
    catching :class:`DebugFlowError` keep working.
    """


class SpecError(ReproError, ValueError):
    """A :class:`repro.api.RunSpec` failed validation."""


class EmulationError(ReproError):
    """The emulator or bitstream model detected an inconsistency."""


class DeadlineExceeded(ReproError):
    """A cooperative wall-clock budget ran out mid-run.

    Raised by :func:`repro.resilience.budget.check_deadline` at stage
    boundaries and inside the long compute loops (localizer probes, SAT
    search, CEGIS iterations).  Carries enough context for a structured
    :class:`repro.resilience.failure.RunFailure` record.
    """

    def __init__(self, where: str = "", label: str = "run",
                 seconds: float = 0.0, elapsed: float = 0.0) -> None:
        self.where = where
        self.label = label
        self.seconds = seconds
        self.elapsed = elapsed
        super().__init__(
            f"deadline {label!r} ({seconds:.3f}s) exceeded after "
            f"{elapsed:.3f}s at {where or 'stage boundary'}"
        )


class ChaosError(ReproError):
    """An infrastructure fault injected by the chaos harness.

    Never raised outside a run whose spec (or campaign) asked for fault
    injection; the resilient executor turns it into a structured
    ``failed`` result exactly like a real worker exception.
    """
