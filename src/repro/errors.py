"""Exception hierarchy shared by every repro subsystem.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  Subsystems raise the most specific subclass that
describes the failure.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class NetlistError(ReproError):
    """Structural problem in a netlist (duplicate names, bad connectivity)."""


class ValidationError(NetlistError):
    """A netlist failed a structural validation check."""


class SynthesisError(ReproError):
    """Technology mapping or packing could not complete."""


class ArchitectureError(ReproError):
    """The requested design does not fit the architecture model."""


class PlacementError(ReproError):
    """The placer could not produce a legal placement."""


class RoutingError(ReproError):
    """The router could not route every net within channel capacity."""


class TilingError(ReproError):
    """Tile partitioning or a tile-confined operation failed."""


class DebugFlowError(ReproError):
    """The emulation debug loop was driven into an invalid state."""


class UnknownStrategyError(DebugFlowError, ValueError):
    """An unknown back-end strategy name was requested.

    Doubles as a :class:`ValueError` so spec validation and CLI argument
    parsing can treat a bad name like any other bad input, while callers
    catching :class:`DebugFlowError` keep working.
    """


class SpecError(ReproError, ValueError):
    """A :class:`repro.api.RunSpec` failed validation."""


class EmulationError(ReproError):
    """The emulator or bitstream model detected an inconsistency."""
