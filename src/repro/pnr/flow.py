"""Back-end flows: full P&R, region-confined re-P&R, incremental baseline.

Three entry points, all effort-metered:

* :func:`full_place_and_route` — place and route a packed design from
  scratch (the non-tiled baseline; also what Quick_ECO does to an
  affected *functional block*, which per paper §6 is the whole design in
  these experiments);
* :func:`replace_region` — rip up and re-place/re-route only the blocks
  in a set of rectangles, keeping everything else locked.  With
  ``confine_routing`` the reroute preserves route fragments outside the
  region and reconnects them at the old boundary-crossing cells — the
  physical meaning of the paper's *locked tile interfaces*;
* :func:`incremental_update` — the incremental-P&R baseline: rip up a
  window around the change (growing it when more room is needed) and
  re-place/re-route globally without interface preservation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.device import Device
from repro.errors import PlacementError, RoutingError
from repro.geometry import Rect
from repro.pnr.effort import EffortMeter, EffortPreset, EFFORT_PRESETS
from repro.pnr.placement import PlaceConstraints, Placement
from repro.pnr.placer import place_design
from repro.pnr.router import (
    Edge,
    RouteTree,
    RoutingState,
    grow_steiner_tree,
    route_nets,
)
from repro.pnr.timing import DEFAULT_TIMING, TimingModel, critical_path
from repro.synth.pack import PackedDesign


@dataclass
class Layout:
    """A complete physical implementation of a packed design."""

    packed: PackedDesign
    device: Device
    placement: Placement
    routes: dict[int, RouteTree]
    state: RoutingState

    def wirelength(self) -> int:
        return sum(tree.wirelength for tree in self.routes.values())

    def critical_path(self, model: TimingModel = DEFAULT_TIMING) -> float:
        return critical_path(self.packed, self.placement, self.routes, model)

    def copy(self) -> "Layout":
        return Layout(
            self.packed,
            self.device,
            self.placement.copy(),
            {idx: tree.copy() for idx, tree in self.routes.items()},
            self.state.copy(),
        )


def full_place_and_route(
    packed: PackedDesign,
    device: Device,
    seed: int = 1,
    preset: EffortPreset | None = None,
    meter: EffortMeter | None = None,
    constraints: PlaceConstraints | None = None,
    initial: Placement | None = None,
    movable: set[int] | None = None,
    strict_routing: bool = True,
) -> Layout:
    """Place and route from scratch; one metered tool invocation."""
    preset = preset or EFFORT_PRESETS["normal"]
    meter = meter if meter is not None else EffortMeter()
    meter.begin_invocation()
    try:
        placement = place_design(
            packed,
            device,
            seed=seed,
            preset=preset,
            meter=meter,
            initial=initial,
            constraints=constraints,
            movable=movable,
        )
        state = RoutingState(device)
        routes = route_nets(
            packed,
            device,
            placement,
            state=state,
            preset=preset,
            meter=meter,
            strict=strict_routing,
        )
    finally:
        meter.end_invocation()
    return Layout(packed, device, placement, routes, state)


# ----------------------------------------------------------------------
# region-confined re-place-and-route (the tiling primitive)
# ----------------------------------------------------------------------

def replace_region(
    layout: Layout,
    movable_blocks: set[int],
    regions: list[Rect],
    seed: int = 1,
    preset: EffortPreset | None = None,
    meter: EffortMeter | None = None,
    confine_routing: bool = True,
    extra_nets: list[int] | None = None,
) -> None:
    """Re-place ``movable_blocks`` inside ``regions`` and reroute their nets.

    Mutates ``layout`` in place.  Blocks outside the region set never
    move; with ``confine_routing`` their route fragments outside the
    region are byte-preserved and reconnected at the old boundary
    crossings (locked interfaces).  ``extra_nets`` forces a reroute of
    additional nets (e.g. brand-new nets of inserted test logic).
    """
    preset = preset or EFFORT_PRESETS["normal"]
    meter = meter if meter is not None else EffortMeter()
    packed, device = layout.packed, layout.device
    meter.begin_invocation()
    try:
        free_sites = _collect_sites(layout, regions)
        union_region = _bounding_rect(regions)

        # rip movable blocks out of the placement
        for block in movable_blocks:
            layout.placement.remove(block)

        region_map = {b: union_region for b in movable_blocks}
        constraints = PlaceConstraints(
            regions=region_map, locked=set(), free_sites=free_sites
        )
        layout.placement = place_design(
            packed,
            device,
            seed=seed,
            preset=preset,
            meter=meter,
            initial=layout.placement,
            constraints=constraints,
            movable=movable_blocks,
        )

        affected = {
            net.index
            for net in packed.nets_touching_blocks(movable_blocks)
        }
        if extra_nets:
            affected.update(extra_nets)
        _reroute_affected(
            layout, sorted(affected), regions, union_region,
            confine_routing, preset, meter,
        )
    finally:
        meter.end_invocation()


def _collect_sites(layout: Layout, regions: list[Rect]) -> set[tuple[int, int]]:
    sites: set[tuple[int, int]] = set()
    for region in regions:
        for site in region.sites():
            if layout.device.is_clb_site(*site):
                sites.add(site)
    return sites


def _bounding_rect(regions: list[Rect]) -> Rect:
    if not regions:
        raise PlacementError("replace_region needs at least one region")
    rect = regions[0]
    for region in regions[1:]:
        rect = rect.union(region)
    return rect


def _reroute_affected(
    layout: Layout,
    net_indices: list[int],
    regions: list[Rect],
    union_region: Rect,
    confine_routing: bool,
    preset: EffortPreset,
    meter: EffortMeter,
) -> None:
    packed, device = layout.packed, layout.device

    def inside(cell: tuple[int, int]) -> bool:
        return any(r.contains(*cell) for r in regions)

    confined: list[int] = []
    for net_idx in net_indices:
        net = packed.nets[net_idx]
        terminals = [layout.placement.site_of(b) for b in (net.driver, *net.sinks)]
        old = layout.routes.pop(net_idx, None)
        if old is not None:
            layout.state.remove(old)

        if all(inside(t) for t in terminals):
            confined.append(net_idx)
            continue

        if confine_routing and old is not None:
            tree = _reroute_with_locked_interface(
                layout, net_idx, old, inside, union_region, meter
            )
        else:
            tree = None
        if tree is None:
            # new inter-region net (or confinement disabled): global route
            fresh = route_nets(
                packed, device, layout.placement, [net_idx],
                state=layout.state, preset=preset, meter=meter, strict=False,
            )
            layout.routes.update(fresh)
        else:
            layout.routes[net_idx] = tree
            layout.state.add(tree)

    if confined:
        fresh = route_nets(
            packed, device, layout.placement, confined,
            state=layout.state, region=union_region,
            preset=preset, meter=meter, strict=False,
        )
        layout.routes.update(fresh)


def _reroute_with_locked_interface(
    layout: Layout,
    net_idx: int,
    old: RouteTree,
    inside,
    union_region: Rect,
    meter: EffortMeter,
) -> RouteTree | None:
    """Keep the route outside the region; rebuild only the inside part.

    Returns None when the old route never touched the region (shouldn't
    happen for affected nets) or reconnection fails, in which case the
    caller falls back to a global reroute.
    """
    packed = layout.packed
    net = packed.nets[net_idx]

    # a brand-new terminal outside the region (e.g. a fresh observation
    # pin on the IOB ring) cannot hang off the kept fragment — reroute
    # the whole net instead
    for sink in net.sinks:
        site = layout.placement.site_of(sink)
        if site not in old.cells and not inside(site):
            return None
    driver_site_check = layout.placement.site_of(net.driver)
    if driver_site_check not in old.cells and not inside(driver_site_check):
        return None

    outside_edges = {e for e in old.edges if not (inside(e[0]) and inside(e[1]))}
    # boundary anchors: cells of kept edges that sit inside the region,
    # plus outside fragment cells adjacent to the region
    anchors: set[tuple[int, int]] = set()
    outside_cells: set[tuple[int, int]] = set()
    for a, b in outside_edges:
        for cell in (a, b):
            if inside(cell):
                anchors.add(cell)
            else:
                outside_cells.add(cell)
    if not outside_edges:
        return None

    driver_site = layout.placement.site_of(net.driver)
    inside_sinks = [
        layout.placement.site_of(s)
        for s in net.sinks
        if inside(layout.placement.site_of(s))
    ]
    if inside(driver_site):
        seeds = {driver_site}
        targets = list(anchors) + inside_sinks
    else:
        if anchors:
            seeds = set(anchors)
        else:
            # route never crossed: seed at the outside cell closest to region
            seeds = {min(outside_cells)}
        targets = inside_sinks + [a for a in anchors if a not in seeds]

    try:
        cells, edges, hops = grow_steiner_tree(
            layout.device, seeds, targets, layout.state,
            region=union_region, meter=meter,
        )
    except RoutingError:
        return None

    tree = RouteTree(net_idx)
    tree.cells = cells | outside_cells | anchors
    tree.edges = edges | outside_edges
    tree.sink_hops = dict(old.sink_hops)
    for s in net.sinks:
        site = layout.placement.site_of(s)
        if site in hops:
            tree.sink_hops[s] = hops[site]
    return tree


# ----------------------------------------------------------------------
# layout legality
# ----------------------------------------------------------------------

def layout_legality_errors(
    layout: Layout, check_capacity: bool = True
) -> list[str]:
    """Full legality audit; returns human-readable violations (empty = legal).

    Checks placement completeness, every routed net's terminal
    connectivity over unit-length edges, channel-usage bookkeeping
    consistency against a recount, and (optionally) channel capacity.
    Shared by the perf benchmark's ``routed_legal`` gate and the tests.
    """
    errors: list[str] = []
    try:
        layout.placement.check_complete()
    except PlacementError as exc:
        errors.append(str(exc))
    pos = layout.placement.pos
    recount: dict[Edge, int] = {}
    for idx, tree in layout.routes.items():
        net = layout.packed.nets.get(idx)
        if net is None:
            errors.append(f"route for retired net index {idx}")
            continue
        if pos.get(net.driver) not in tree.cells:
            errors.append(f"net {net.name}: driver off its route tree")
        for sink in net.sinks:
            if pos.get(sink) not in tree.cells:
                errors.append(f"net {net.name}: sink {sink} disconnected")
            if sink not in tree.sink_hops:
                errors.append(f"net {net.name}: sink {sink} missing hops")
        for a, b in tree.edges:
            if abs(a[0] - b[0]) + abs(a[1] - b[1]) != 1:
                errors.append(f"net {net.name}: non-adjacent edge {a}-{b}")
            if a not in tree.cells or b not in tree.cells:
                errors.append(f"net {net.name}: edge {a}-{b} off tree cells")
            key = (a, b) if a <= b else (b, a)
            recount[key] = recount.get(key, 0) + 1
    if recount != layout.state.usage:
        errors.append("channel-usage bookkeeping diverged from routes")
    if check_capacity:
        cap = layout.device.channel_width
        over = [e for e, u in recount.items() if u > cap]
        if over:
            errors.append(f"{len(over)} channel segments over capacity")
    return errors


# ----------------------------------------------------------------------
# region-configuration snapshot/replay (TileConfigCache backend)
# ----------------------------------------------------------------------

def capture_region_config(
    layout: Layout,
    movable_blocks: set[int],
    io_blocks: set[int],
    net_indices: list[int],
) -> tuple[dict, dict, dict, dict]:
    """Snapshot the physical outcome of a region commit for reuse.

    Returns ``(sites, io_slots, routes, over_allow)`` keyed by block/net
    *names* so the snapshot resolves against an identically built
    sibling design.  ``over_allow`` records the capture-time occupancy
    of any over-capacity edge the routes touch — region re-routes run
    non-strict, so a replay is allowed to reproduce exactly the overuse
    the fresh path produced, and no more.
    """
    packed = layout.packed
    sites = {
        packed.blocks[b].name: layout.placement.site_of(b)
        for b in movable_blocks
    }
    io_slots = {
        packed.blocks[b].name: layout.placement.site_of(b)
        for b in io_blocks
    }
    routes: dict[str, tuple] = {}
    over_allow: dict[int, int] = {}
    state = layout.state
    usage = state._usage
    cap = layout.device.channel_width
    for idx in net_indices:
        tree = layout.routes.get(idx)
        if tree is None:
            continue
        net = packed.nets[idx]
        hops = tuple(
            sorted(
                (packed.blocks[b].name, h)
                for b, h in tree.sink_hops.items()
            )
        )
        eids = tuple(state._edge_ids(tree))
        routes[net.name] = (
            frozenset(tree.cells), frozenset(tree.edges), hops, eids,
        )
        for eid in eids:
            u = usage[eid]
            if u > cap:
                over_allow[eid] = u
    return sites, io_slots, routes, over_allow


def apply_region_config(
    layout: Layout,
    movable_blocks: set[int],
    io_blocks: set[int],
    net_indices: list[int],
    regions: list[Rect],
    sites: dict[str, tuple[int, int]],
    io_slots: dict[str, tuple[int, int]],
    routes: dict[str, tuple],
    over_allow: dict[int, int] | None = None,
) -> bool:
    """Verify, then install, a previously captured region configuration.

    Every check runs *before* any mutation, so a False return leaves the
    layout untouched and the caller falls back to a fresh re-place-and-
    route.  Checks: block/net name correspondence, site legality inside
    the regions, IOB slot capacity, terminal membership on the cached
    trees, and channel capacity after swapping the affected routes.
    """
    packed, device = layout.packed, layout.device
    placement = layout.placement
    state = layout.state

    # --- movable CLB sites -------------------------------------------
    name_of = {b: packed.blocks[b].name for b in movable_blocks}
    if set(sites) != set(name_of.values()):
        return False
    target_site: dict[int, tuple[int, int]] = {}
    seen_sites: set[tuple[int, int]] = set()
    for b in movable_blocks:
        site = sites[name_of[b]]
        if not device.is_clb_site(*site):
            return False
        if not any(r.contains(*site) for r in regions):
            return False
        if site in seen_sites:
            return False
        seen_sites.add(site)
        occupant = placement.clb_at.get(site)
        if occupant is not None and occupant not in movable_blocks:
            return False
        target_site[b] = site

    # --- freshly placed IOBs -----------------------------------------
    io_name_of = {b: packed.blocks[b].name for b in io_blocks}
    if set(io_slots) != set(io_name_of.values()):
        return False
    io_target: dict[int, tuple[int, int]] = {}
    slot_fill: dict[tuple[int, int], int] = {}
    for b in io_blocks:
        slot = io_slots[io_name_of[b]]
        if not device.is_io_slot(*slot):
            return False
        if placement.is_placed(b):
            if placement.site_of(b) != slot:
                return False
            continue
        pads = placement.io_at.get(slot, [])
        extra = slot_fill.get(slot, 0)
        if len(pads) + extra >= device.io_per_slot:
            return False
        slot_fill[slot] = extra + 1
        io_target[b] = slot

    # --- nets: correspondence, terminals, capacity -------------------
    affected = sorted(set(net_indices))
    net_name_of: dict[int, str] = {}
    for idx in affected:
        net = packed.nets.get(idx)
        if net is None:
            return False
        net_name_of[idx] = net.name
    if set(routes) != set(net_name_of.values()):
        return False

    def site_of_terminal(b: int) -> tuple[int, int] | None:
        if b in target_site:
            return target_site[b]
        if b in io_target:
            return io_target[b]
        if placement.is_placed(b):
            return placement.site_of(b)
        return None

    sink_index_of: dict[int, dict[str, int]] = {}
    for idx in affected:
        net = packed.nets[idx]
        cells, edges, hops, eids = routes[net_name_of[idx]]
        if len(eids) != len(edges):
            return False
        for b in (net.driver, *net.sinks):
            site = site_of_terminal(b)
            if site is None or site not in cells:
                return False
        by_name = {packed.blocks[s].name: s for s in net.sinks}
        sink_index_of[idx] = by_name
        for sink_name, _ in hops:
            if sink_name not in by_name:
                return False

    removed: dict[int, int] = {}
    for idx in affected:
        tree = layout.routes.get(idx)
        if tree is not None:
            for eid in state._edge_ids(tree):
                removed[eid] = removed.get(eid, 0) + 1
    added: dict[int, int] = {}
    for cells, edges, hops, eids in routes.values():
        for eid in eids:
            added[eid] = added.get(eid, 0) + 1
    cap = device.channel_width
    usage = state._usage
    allow = over_allow or {}
    for eid, k in added.items():
        if usage[eid] - removed.get(eid, 0) + k > max(cap, allow.get(eid, 0)):
            return False

    # --- all checks passed: install ----------------------------------
    for b in movable_blocks:
        placement.remove(b)
    for idx in affected:
        old = layout.routes.pop(idx, None)
        if old is not None:
            state.remove(old)
    for b, site in target_site.items():
        placement.place_clb(b, site)
    for b, slot in io_target.items():
        placement.place_io(b, slot)
    for idx in affected:
        cells, edges, hops, eids = routes[net_name_of[idx]]
        by_name = sink_index_of[idx]
        tree = RouteTree(
            idx,
            cells,
            edges,
            {by_name[name]: h for name, h in hops},
            eids,
        )
        layout.routes[idx] = tree
        state.add(tree)
    return True


# ----------------------------------------------------------------------
# incremental place-and-route baseline
# ----------------------------------------------------------------------

def incremental_update(
    layout: Layout,
    changed_blocks: set[int],
    new_blocks: set[int] | None = None,
    needed_free_sites: int | None = None,
    seed: int = 1,
    preset: EffortPreset | None = None,
    meter: EffortMeter | None = None,
    margin: int = 2,
    extra_nets: list[int] | None = None,
) -> Rect:
    """The incremental-P&R baseline: rip up a window around the change.

    The window starts at the bounding box of ``changed_blocks`` expanded
    by ``margin`` and grows until it holds enough empty sites for the
    (unplaced) ``new_blocks`` — modelling the paper's observation that
    incremental tools "re-place-and-route a much larger portion of the
    design to make sufficient room for the new logic".  Routing of
    affected nets is global (no interface locking).  Returns the final
    window.
    """
    preset = preset or EFFORT_PRESETS["normal"]
    meter = meter if meter is not None else EffortMeter()
    device = layout.device
    new_blocks = new_blocks or set()
    new_clbs = {
        b for b in new_blocks if layout.packed.blocks[b].is_clb
    }
    if needed_free_sites is None:
        needed_free_sites = len(new_clbs)

    sites = [
        layout.placement.site_of(b)
        for b in changed_blocks
        if layout.placement.is_placed(b)
    ]
    if not sites:
        raise PlacementError("incremental update needs at least one placed block")
    window = Rect(
        min(s[0] for s in sites),
        min(s[1] for s in sites),
        max(s[0] for s in sites),
        max(s[1] for s in sites),
    ).expanded(margin, clip=device.clb_region)

    while True:
        occupied = len(layout.placement.blocks_in_region(window))
        if window.area - occupied >= needed_free_sites:
            break
        if window == device.clb_region:
            break
        window = window.expanded(1, clip=device.clb_region)

    movable = (
        set(layout.placement.blocks_in_region(window))
        | set(changed_blocks)
        | new_clbs
    )
    replace_region(
        layout,
        movable,
        [window],
        seed=seed,
        preset=preset,
        meter=meter,
        confine_routing=False,
        extra_nets=extra_nets,
    )
    return window
