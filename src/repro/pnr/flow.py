"""Back-end flows: full P&R, region-confined re-P&R, incremental baseline.

Three entry points, all effort-metered:

* :func:`full_place_and_route` — place and route a packed design from
  scratch (the non-tiled baseline; also what Quick_ECO does to an
  affected *functional block*, which per paper §6 is the whole design in
  these experiments);
* :func:`replace_region` — rip up and re-place/re-route only the blocks
  in a set of rectangles, keeping everything else locked.  With
  ``confine_routing`` the reroute preserves route fragments outside the
  region and reconnects them at the old boundary-crossing cells — the
  physical meaning of the paper's *locked tile interfaces*;
* :func:`incremental_update` — the incremental-P&R baseline: rip up a
  window around the change (growing it when more room is needed) and
  re-place/re-route globally without interface preservation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.device import Device
from repro.errors import PlacementError, RoutingError
from repro.geometry import Rect
from repro.pnr.effort import EffortMeter, EffortPreset, EFFORT_PRESETS
from repro.pnr.placement import PlaceConstraints, Placement
from repro.pnr.placer import place_design
from repro.pnr.router import (
    RouteTree,
    RoutingState,
    grow_steiner_tree,
    route_nets,
)
from repro.pnr.timing import DEFAULT_TIMING, TimingModel, critical_path
from repro.synth.pack import PackedDesign


@dataclass
class Layout:
    """A complete physical implementation of a packed design."""

    packed: PackedDesign
    device: Device
    placement: Placement
    routes: dict[int, RouteTree]
    state: RoutingState

    def wirelength(self) -> int:
        return sum(tree.wirelength for tree in self.routes.values())

    def critical_path(self, model: TimingModel = DEFAULT_TIMING) -> float:
        return critical_path(self.packed, self.placement, self.routes, model)

    def copy(self) -> "Layout":
        state = RoutingState(self.device)
        state.usage = dict(self.state.usage)
        state.history = dict(self.state.history)
        return Layout(
            self.packed,
            self.device,
            self.placement.copy(),
            {idx: tree.copy() for idx, tree in self.routes.items()},
            state,
        )


def full_place_and_route(
    packed: PackedDesign,
    device: Device,
    seed: int = 1,
    preset: EffortPreset | None = None,
    meter: EffortMeter | None = None,
    constraints: PlaceConstraints | None = None,
    initial: Placement | None = None,
    movable: set[int] | None = None,
    strict_routing: bool = True,
) -> Layout:
    """Place and route from scratch; one metered tool invocation."""
    preset = preset or EFFORT_PRESETS["normal"]
    meter = meter if meter is not None else EffortMeter()
    meter.begin_invocation()
    try:
        placement = place_design(
            packed,
            device,
            seed=seed,
            preset=preset,
            meter=meter,
            initial=initial,
            constraints=constraints,
            movable=movable,
        )
        state = RoutingState(device)
        routes = route_nets(
            packed,
            device,
            placement,
            state=state,
            preset=preset,
            meter=meter,
            strict=strict_routing,
        )
    finally:
        meter.end_invocation()
    return Layout(packed, device, placement, routes, state)


# ----------------------------------------------------------------------
# region-confined re-place-and-route (the tiling primitive)
# ----------------------------------------------------------------------

def replace_region(
    layout: Layout,
    movable_blocks: set[int],
    regions: list[Rect],
    seed: int = 1,
    preset: EffortPreset | None = None,
    meter: EffortMeter | None = None,
    confine_routing: bool = True,
    extra_nets: list[int] | None = None,
) -> None:
    """Re-place ``movable_blocks`` inside ``regions`` and reroute their nets.

    Mutates ``layout`` in place.  Blocks outside the region set never
    move; with ``confine_routing`` their route fragments outside the
    region are byte-preserved and reconnected at the old boundary
    crossings (locked interfaces).  ``extra_nets`` forces a reroute of
    additional nets (e.g. brand-new nets of inserted test logic).
    """
    preset = preset or EFFORT_PRESETS["normal"]
    meter = meter if meter is not None else EffortMeter()
    packed, device = layout.packed, layout.device
    meter.begin_invocation()
    try:
        free_sites = _collect_sites(layout, regions)
        union_region = _bounding_rect(regions)

        # rip movable blocks out of the placement
        for block in movable_blocks:
            layout.placement.remove(block)

        region_map = {b: union_region for b in movable_blocks}
        constraints = PlaceConstraints(
            regions=region_map, locked=set(), free_sites=free_sites
        )
        layout.placement = place_design(
            packed,
            device,
            seed=seed,
            preset=preset,
            meter=meter,
            initial=layout.placement,
            constraints=constraints,
            movable=movable_blocks,
        )

        affected = {
            net.index
            for net in packed.nets_touching_blocks(movable_blocks)
        }
        if extra_nets:
            affected.update(extra_nets)
        _reroute_affected(
            layout, sorted(affected), regions, union_region,
            confine_routing, preset, meter,
        )
    finally:
        meter.end_invocation()


def _collect_sites(layout: Layout, regions: list[Rect]) -> set[tuple[int, int]]:
    sites: set[tuple[int, int]] = set()
    for region in regions:
        for site in region.sites():
            if layout.device.is_clb_site(*site):
                sites.add(site)
    return sites


def _bounding_rect(regions: list[Rect]) -> Rect:
    if not regions:
        raise PlacementError("replace_region needs at least one region")
    rect = regions[0]
    for region in regions[1:]:
        rect = rect.union(region)
    return rect


def _reroute_affected(
    layout: Layout,
    net_indices: list[int],
    regions: list[Rect],
    union_region: Rect,
    confine_routing: bool,
    preset: EffortPreset,
    meter: EffortMeter,
) -> None:
    packed, device = layout.packed, layout.device

    def inside(cell: tuple[int, int]) -> bool:
        return any(r.contains(*cell) for r in regions)

    confined: list[int] = []
    for net_idx in net_indices:
        net = packed.nets[net_idx]
        terminals = [layout.placement.site_of(b) for b in (net.driver, *net.sinks)]
        old = layout.routes.pop(net_idx, None)
        if old is not None:
            layout.state.remove(old)

        if all(inside(t) for t in terminals):
            confined.append(net_idx)
            continue

        if confine_routing and old is not None:
            tree = _reroute_with_locked_interface(
                layout, net_idx, old, inside, union_region, meter
            )
        else:
            tree = None
        if tree is None:
            # new inter-region net (or confinement disabled): global route
            fresh = route_nets(
                packed, device, layout.placement, [net_idx],
                state=layout.state, preset=preset, meter=meter, strict=False,
            )
            layout.routes.update(fresh)
        else:
            layout.routes[net_idx] = tree
            layout.state.add(tree)

    if confined:
        fresh = route_nets(
            packed, device, layout.placement, confined,
            state=layout.state, region=union_region,
            preset=preset, meter=meter, strict=False,
        )
        layout.routes.update(fresh)


def _reroute_with_locked_interface(
    layout: Layout,
    net_idx: int,
    old: RouteTree,
    inside,
    union_region: Rect,
    meter: EffortMeter,
) -> RouteTree | None:
    """Keep the route outside the region; rebuild only the inside part.

    Returns None when the old route never touched the region (shouldn't
    happen for affected nets) or reconnection fails, in which case the
    caller falls back to a global reroute.
    """
    packed = layout.packed
    net = packed.nets[net_idx]

    # a brand-new terminal outside the region (e.g. a fresh observation
    # pin on the IOB ring) cannot hang off the kept fragment — reroute
    # the whole net instead
    for sink in net.sinks:
        site = layout.placement.site_of(sink)
        if site not in old.cells and not inside(site):
            return None
    driver_site_check = layout.placement.site_of(net.driver)
    if driver_site_check not in old.cells and not inside(driver_site_check):
        return None

    outside_edges = {e for e in old.edges if not (inside(e[0]) and inside(e[1]))}
    # boundary anchors: cells of kept edges that sit inside the region,
    # plus outside fragment cells adjacent to the region
    anchors: set[tuple[int, int]] = set()
    outside_cells: set[tuple[int, int]] = set()
    for a, b in outside_edges:
        for cell in (a, b):
            if inside(cell):
                anchors.add(cell)
            else:
                outside_cells.add(cell)
    if not outside_edges:
        return None

    driver_site = layout.placement.site_of(net.driver)
    inside_sinks = [
        layout.placement.site_of(s)
        for s in net.sinks
        if inside(layout.placement.site_of(s))
    ]
    if inside(driver_site):
        seeds = {driver_site}
        targets = list(anchors) + inside_sinks
    else:
        if anchors:
            seeds = set(anchors)
        else:
            # route never crossed: seed at the outside cell closest to region
            seeds = {min(outside_cells)}
        targets = inside_sinks + [a for a in anchors if a not in seeds]

    try:
        cells, edges, hops = grow_steiner_tree(
            layout.device, seeds, targets, layout.state,
            region=union_region, meter=meter,
        )
    except RoutingError:
        return None

    tree = RouteTree(net_idx)
    tree.cells = cells | outside_cells | anchors
    tree.edges = edges | outside_edges
    tree.sink_hops = dict(old.sink_hops)
    for s in net.sinks:
        site = layout.placement.site_of(s)
        if site in hops:
            tree.sink_hops[s] = hops[site]
    return tree


# ----------------------------------------------------------------------
# incremental place-and-route baseline
# ----------------------------------------------------------------------

def incremental_update(
    layout: Layout,
    changed_blocks: set[int],
    new_blocks: set[int] | None = None,
    needed_free_sites: int | None = None,
    seed: int = 1,
    preset: EffortPreset | None = None,
    meter: EffortMeter | None = None,
    margin: int = 2,
    extra_nets: list[int] | None = None,
) -> Rect:
    """The incremental-P&R baseline: rip up a window around the change.

    The window starts at the bounding box of ``changed_blocks`` expanded
    by ``margin`` and grows until it holds enough empty sites for the
    (unplaced) ``new_blocks`` — modelling the paper's observation that
    incremental tools "re-place-and-route a much larger portion of the
    design to make sufficient room for the new logic".  Routing of
    affected nets is global (no interface locking).  Returns the final
    window.
    """
    preset = preset or EFFORT_PRESETS["normal"]
    meter = meter if meter is not None else EffortMeter()
    device = layout.device
    new_blocks = new_blocks or set()
    new_clbs = {
        b for b in new_blocks if layout.packed.blocks[b].is_clb
    }
    if needed_free_sites is None:
        needed_free_sites = len(new_clbs)

    sites = [
        layout.placement.site_of(b)
        for b in changed_blocks
        if layout.placement.is_placed(b)
    ]
    if not sites:
        raise PlacementError("incremental update needs at least one placed block")
    window = Rect(
        min(s[0] for s in sites),
        min(s[1] for s in sites),
        max(s[0] for s in sites),
        max(s[1] for s in sites),
    ).expanded(margin, clip=device.clb_region)

    while True:
        occupied = len(layout.placement.blocks_in_region(window))
        if window.area - occupied >= needed_free_sites:
            break
        if window == device.clb_region:
            break
        window = window.expanded(1, clip=device.clb_region)

    movable = (
        set(layout.placement.blocks_in_region(window))
        | set(changed_blocks)
        | new_clbs
    )
    replace_region(
        layout,
        movable,
        [window],
        seed=seed,
        preset=preset,
        meter=meter,
        confine_routing=False,
        extra_nets=extra_nets,
    )
    return window
