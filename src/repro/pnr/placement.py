"""Placement state: block → site assignment with legality tracking.

A :class:`Placement` maps every block of a :class:`PackedDesign` to a
device site: CLB blocks to exclusive CLB-grid sites, IOB blocks to ring
slots with per-slot capacity.  :class:`PlaceConstraints` carries what
tiling needs from the placer: allowed regions per block and a set of
immovable (locked) blocks — the physical-design constraints of paper
§3.2 ("the default is that all resources are locked").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.device import Device
from repro.errors import PlacementError
from repro.geometry import Rect
from repro.synth.pack import BlockKind, PackedDesign


@dataclass
class PlaceConstraints:
    """Constraints handed to the placer.

    ``regions`` limits each listed CLB block to a rectangle; unlisted
    blocks may use the whole grid.  ``locked`` blocks keep their current
    site.  ``free_sites`` (when given) restricts *all* movable blocks to
    that site set — the tiling manager passes the cleared tiles here.
    """

    regions: dict[int, Rect] = field(default_factory=dict)
    locked: set[int] = field(default_factory=set)
    free_sites: set[tuple[int, int]] | None = None

    def region_of(self, block: int, device: Device) -> Rect:
        return self.regions.get(block, device.clb_region)

    def allows_site(self, block: int, site: tuple[int, int], device: Device) -> bool:
        if self.free_sites is not None and site not in self.free_sites:
            return False
        return self.region_of(block, device).contains(*site)


class Placement:
    """Mutable block-to-site assignment."""

    def __init__(self, device: Device, packed: PackedDesign) -> None:
        self.device = device
        self.packed = packed
        self.pos: dict[int, tuple[int, int]] = {}
        self.clb_at: dict[tuple[int, int], int] = {}
        self.io_at: dict[tuple[int, int], list[int]] = {}

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------

    def place_clb(self, block: int, site: tuple[int, int]) -> None:
        if not self.device.is_clb_site(*site):
            raise PlacementError(f"{site} is not a CLB site")
        occupant = self.clb_at.get(site)
        if occupant is not None and occupant != block:
            raise PlacementError(f"site {site} already holds block {occupant}")
        self.remove(block)
        self.pos[block] = site
        self.clb_at[site] = block

    def place_io(self, block: int, slot: tuple[int, int]) -> None:
        if not self.device.is_io_slot(*slot):
            raise PlacementError(f"{slot} is not an IOB slot")
        pads = self.io_at.setdefault(slot, [])
        if block not in pads and len(pads) >= self.device.io_per_slot:
            raise PlacementError(f"IOB slot {slot} is full")
        self.remove(block)
        self.pos[block] = slot
        self.io_at.setdefault(slot, []).append(block)

    def remove(self, block: int) -> None:
        site = self.pos.pop(block, None)
        if site is None:
            return
        if site in self.clb_at and self.clb_at[site] == block:
            del self.clb_at[site]
        elif site in self.io_at and block in self.io_at[site]:
            self.io_at[site].remove(block)
            if not self.io_at[site]:
                del self.io_at[site]

    def swap_clbs(self, a: int, b: int) -> None:
        sa, sb = self.pos[a], self.pos[b]
        self.clb_at[sa], self.clb_at[sb] = b, a
        self.pos[a], self.pos[b] = sb, sa

    def move_clb(self, block: int, site: tuple[int, int]) -> None:
        """Move to a known-empty CLB site (no legality re-check)."""
        old = self.pos[block]
        del self.clb_at[old]
        self.pos[block] = site
        self.clb_at[site] = block

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def site_of(self, block: int) -> tuple[int, int]:
        try:
            return self.pos[block]
        except KeyError:
            raise PlacementError(f"block {block} is not placed") from None

    def is_placed(self, block: int) -> bool:
        return block in self.pos

    def blocks_in_region(self, region: Rect) -> list[int]:
        """CLB blocks currently inside ``region``."""
        found = []
        for site, block in self.clb_at.items():
            if region.contains(*site):
                found.append(block)
        return found

    def free_clb_sites_in(self, region: Rect) -> list[tuple[int, int]]:
        return [
            site
            for site in region.sites()
            if self.device.is_clb_site(*site) and site not in self.clb_at
        ]

    def copy(self) -> "Placement":
        clone = Placement(self.device, self.packed)
        clone.pos = dict(self.pos)
        clone.clb_at = dict(self.clb_at)
        clone.io_at = {slot: list(pads) for slot, pads in self.io_at.items()}
        return clone

    def check_complete(self) -> None:
        """Every block placed, every CLB on a legal exclusive site."""
        for block in self.packed.blocks:
            if block.index not in self.pos:
                raise PlacementError(f"block {block.name} is unplaced")
            site = self.pos[block.index]
            if block.kind is BlockKind.CLB:
                if not self.device.is_clb_site(*site):
                    raise PlacementError(f"CLB {block.name} on non-CLB site {site}")
                if self.clb_at.get(site) != block.index:
                    raise PlacementError(f"site map corrupt at {site}")
            else:
                if not self.device.is_io_slot(*site):
                    raise PlacementError(f"IOB {block.name} off ring: {site}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Placement({len(self.pos)}/{self.packed.n_blocks} blocks placed)"
