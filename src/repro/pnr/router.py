"""Negotiated-congestion maze router with locking and region confinement.

The routing fabric is the cell grid (CLB array plus IOB ring); every pair
of adjacent routable cells is a channel segment with
``device.channel_width`` tracks.  A net's route is a Steiner tree of grid
cells grown sink-by-sink with A*.

PathFinder-style negotiation: nets are routed with a congestion cost
``1 + pres_fac * overuse + hist``; after each iteration nets crossing
over-capacity edges are ripped up and re-routed with a larger
``pres_fac`` until the solution is feasible.

Performance substrate (PR 2): the grid is lowered once per device
geometry into a :class:`_Fabric` — flat cell ids, per-cell neighbor/edge
tables and cached region masks — and :class:`RoutingState` keeps dense
edge-indexed occupancy/history arrays plus an *incrementally maintained*
over-capacity set, so congestion lookups inside A* are two list reads
and convergence checks never scan the edge universe.

Tiling hooks:

* **locked routes** — existing routes (from untouched tiles) stay in the
  usage map and are never ripped up, exactly like locked layout;
* **region confinement** — expansion can be limited to a rectangle, so a
  tile-confined re-route physically cannot disturb its surroundings;
* every node expansion is charged to the :class:`EffortMeter`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.arch.device import Device
from repro.errors import RoutingError
from repro.geometry import Rect, manhattan
from repro.pnr.effort import EffortMeter, EffortPreset, EFFORT_PRESETS
from repro.pnr.placement import Placement
from repro.synth.pack import PackedDesign

Edge = tuple[tuple[int, int], tuple[int, int]]

_INF = float("inf")


def _edge(a: tuple[int, int], b: tuple[int, int]) -> Edge:
    return (a, b) if a <= b else (b, a)


class _Fabric:
    """Precomputed routing-graph tables for one device geometry.

    Cells (including the IOB ring) get flat ids
    ``(x + 1) * (ny + 2) + (y + 1)``; each undirected channel segment
    gets the id ``2 * cell_id(lower_endpoint) + axis`` (axis 0 = east,
    1 = north), so dense arrays can carry per-edge state.  Neighbor
    tables preserve the legacy expansion order (E, W, N, S) so routed
    trees are bit-identical with the pre-fabric router.
    """

    def __init__(self, device: Device) -> None:
        self.nx = device.nx
        self.ny = device.ny
        self.h = device.ny + 2
        self.w = device.nx + 2
        n = self.w * self.h
        self.n_cells = n
        self.n_edges = 2 * n
        h = self.h
        self.xs = [0] * n
        self.ys = [0] * n
        self.xy: list[tuple[int, int]] = [(0, 0)] * n
        nbr: list[tuple[tuple[int, int], ...]] = [()] * n
        for x in range(-1, device.nx + 1):
            for y in range(-1, device.ny + 1):
                cid = (x + 1) * h + (y + 1)
                self.xs[cid] = x
                self.ys[cid] = y
                self.xy[cid] = (x, y)
        for x in range(-1, device.nx + 1):
            for y in range(-1, device.ny + 1):
                if not device.is_routable(x, y):
                    continue
                cid = (x + 1) * h + (y + 1)
                flat: list[tuple[int, int]] = []
                # legacy neighbor order: E, W, N, S
                for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                    cx, cy = x + dx, y + dy
                    if not device.is_routable(cx, cy):
                        continue
                    ncid = (cx + 1) * h + (cy + 1)
                    if dx == 1:
                        eid = 2 * cid
                    elif dx == -1:
                        eid = 2 * ncid
                    elif dy == 1:
                        eid = 2 * cid + 1
                    else:
                        eid = 2 * ncid + 1
                    flat.append((ncid, eid))
                nbr[cid] = tuple(flat)
        self.nbr = nbr
        self._region_masks: dict[Rect, bytearray] = {}
        # generation-stamped A* scratch (avoids per-call dict hashing)
        self._best = [0.0] * n
        self._parent = [0] * n
        self._stamp = [0] * n
        self._generation = 0

    def cell_id(self, cell: tuple[int, int]) -> int:
        return (cell[0] + 1) * self.h + (cell[1] + 1)

    def edge_id(self, a: tuple[int, int], b: tuple[int, int]) -> int:
        if b < a:
            a, b = b, a
        cid = (a[0] + 1) * self.h + (a[1] + 1)
        return 2 * cid + (1 if b[1] != a[1] else 0)

    def edge_tuple(self, eid: int) -> Edge:
        x, y = self.xy[eid >> 1]
        if eid & 1:
            return ((x, y), (x, y + 1))
        return ((x, y), (x + 1, y))

    def region_mask(self, region: Rect) -> bytearray:
        """Cached 0/1 cell-inclusion mask for a confinement rectangle."""
        mask = self._region_masks.get(region)
        if mask is None:
            mask = bytearray(self.n_cells)
            h = self.h
            for x in range(region.x0, region.x1 + 1):
                base = (x + 1) * h + 1
                for y in range(region.y0, region.y1 + 1):
                    mask[base + y] = 1
            self._region_masks[region] = mask
        return mask


_FABRICS: dict[tuple[int, int], _Fabric] = {}


def fabric_of(device: Device) -> _Fabric:
    """The shared fabric tables for a device geometry (built once)."""
    fab = _FABRICS.get((device.nx, device.ny))
    if fab is None:
        fab = _Fabric(device)
        _FABRICS[(device.nx, device.ny)] = fab
    return fab


@dataclass
class RouteTree:
    """One net's route: tree cells, edges, and per-sink path lengths.

    ``eids`` optionally carries the fabric edge ids of ``edges`` in a
    matching (but unordered) multiset — replayed configurations
    precompute them so occupancy bookkeeping skips the id arithmetic.
    It must be dropped (set to None) whenever ``edges`` changes.
    """

    net_index: int
    cells: set[tuple[int, int]] = field(default_factory=set)
    edges: set[Edge] = field(default_factory=set)
    sink_hops: dict[int, int] = field(default_factory=dict)
    eids: tuple[int, ...] | None = None

    @property
    def wirelength(self) -> int:
        return len(self.edges)

    def copy(self) -> "RouteTree":
        # the copy's sets are mutable, so the eids shortcut is dropped —
        # a later in-place edit of copy.edges must not leave a stale
        # id multiset behind
        return RouteTree(
            self.net_index, set(self.cells), set(self.edges),
            dict(self.sink_hops),
        )


class RoutingState:
    """Shared channel-usage bookkeeping across all routed nets.

    Occupancy and history live in dense edge-indexed arrays; the set of
    over-capacity edges is maintained incrementally by :meth:`add` /
    :meth:`remove`, so feasibility checks are O(1) and
    :meth:`overused_edges` never scans the edge universe.  The mapping
    views :attr:`usage` / :attr:`history` are materialized on demand for
    inspection and tests — hot paths read the arrays directly.
    """

    def __init__(self, device: Device) -> None:
        self.device = device
        self.fabric = fabric_of(device)
        self.capacity = device.channel_width
        self._usage = [0] * self.fabric.n_edges
        self._history = [0.0] * self.fabric.n_edges
        self._used: set[int] = set()
        self._hist_ids: set[int] = set()
        self.overused_ids: set[int] = set()

    @property
    def usage(self) -> dict[Edge, int]:
        """Edge-tuple view of current occupancy (built on demand)."""
        tup = self.fabric.edge_tuple
        return {tup(eid): self._usage[eid] for eid in self._used}

    @property
    def history(self) -> dict[Edge, float]:
        """Edge-tuple view of accumulated history cost (on demand)."""
        tup = self.fabric.edge_tuple
        return {tup(eid): self._history[eid] for eid in self._hist_ids}

    def _edge_ids(self, route: RouteTree):
        eids = route.eids
        if eids is not None:
            return eids
        h = self.fabric.h
        return [
            2 * ((a[0] + 1) * h + a[1] + 1) + (1 if b[1] != a[1] else 0)
            if a <= b
            else 2 * ((b[0] + 1) * h + b[1] + 1) + (1 if a[1] != b[1] else 0)
            for a, b in route.edges
        ]

    def add(self, route: RouteTree) -> None:
        usage = self._usage
        cap = self.capacity
        used_add = self._used.add
        over_add = self.overused_ids.add
        for eid in self._edge_ids(route):
            u = usage[eid] + 1
            usage[eid] = u
            if u == 1:
                used_add(eid)
            if u == cap + 1:  # independent: both fire when cap == 0
                over_add(eid)

    def remove(self, route: RouteTree) -> None:
        usage = self._usage
        cap = self.capacity
        used_discard = self._used.discard
        over_discard = self.overused_ids.discard
        for eid in self._edge_ids(route):
            u = usage[eid] - 1
            if u < 0:
                u = 0
            usage[eid] = u
            if u == 0:
                used_discard(eid)
            if u == cap:  # independent: both fire when cap == 0
                over_discard(eid)

    def overused_edges(self) -> list[Edge]:
        tup = self.fabric.edge_tuple
        return [tup(eid) for eid in sorted(self.overused_ids)]

    def congestion_cost(self, edge: Edge, pres_fac: float) -> float:
        eid = self.fabric.edge_id(*edge)
        over = self._usage[eid] + 1 - self.capacity
        cost = 1.0 + self._history[eid]
        if over > 0:
            cost += pres_fac * over
        return cost

    def bump_history(self, hist_fac: float = 0.4) -> None:
        history = self._history
        for eid in self.overused_ids:
            history[eid] += hist_fac
            self._hist_ids.add(eid)

    def copy(self) -> "RoutingState":
        clone = RoutingState.__new__(RoutingState)
        clone.device = self.device
        clone.fabric = self.fabric
        clone.capacity = self.capacity
        clone._usage = list(self._usage)
        clone._history = list(self._history)
        clone._used = set(self._used)
        clone._hist_ids = set(self._hist_ids)
        clone.overused_ids = set(self.overused_ids)
        return clone


def route_nets(
    packed: PackedDesign,
    device: Device,
    placement: Placement,
    net_indices: list[int] | None = None,
    state: RoutingState | None = None,
    region: Rect | None = None,
    preset: EffortPreset | None = None,
    meter: EffortMeter | None = None,
    strict: bool = True,
) -> dict[int, RouteTree]:
    """Route the given nets (default: all); returns net index → tree.

    ``state`` carries usage from locked routes; routes created here are
    added to it.  With ``region`` every new route is confined to the
    rectangle (terminals must lie inside).  With ``strict`` a residual
    over-capacity edge involving one of *our* nets raises
    :class:`RoutingError`; pre-existing locked congestion is the
    caller's responsibility.
    """
    preset = preset or EFFORT_PRESETS["normal"]
    meter = meter if meter is not None else EffortMeter()
    state = state if state is not None else RoutingState(device)
    if net_indices is None:
        net_indices = [n.index for n in packed.nets.values()]

    routes: dict[int, RouteTree] = {}
    pres_fac = 0.5
    todo = list(net_indices)
    for iteration in range(preset.router_iterations):
        for net_idx in todo:
            old = routes.pop(net_idx, None)
            if old is not None:
                state.remove(old)
            tree = _route_one(
                packed, device, placement, net_idx, state, region, pres_fac, meter
            )
            routes[net_idx] = tree
            state.add(tree)

        if not state.overused_ids:
            break
        state.bump_history()
        pres_fac *= 2.0
        over = set(state.overused_edges())
        todo = [
            idx for idx, tree in routes.items() if tree.edges & over
        ]
        if not todo:
            break

    if strict and state.overused_ids:
        # Single residual check: fail only when one of *our* nets sits
        # on an over-capacity edge (locked congestion is pre-existing).
        over = set(state.overused_edges())
        involved = {
            e for tree in routes.values() for e in tree.edges & over
        }
        if involved:
            raise RoutingError(
                f"{len(involved)} channel segments over capacity after "
                f"{preset.router_iterations} iterations"
            )
    return routes


def grow_steiner_tree(
    device: Device,
    seed_cells: set[tuple[int, int]],
    targets: list[tuple[int, int]],
    state: RoutingState,
    region: Rect | None = None,
    pres_fac: float = 2.0,
    meter: EffortMeter | None = None,
) -> tuple[set[tuple[int, int]], set[Edge], dict[tuple[int, int], int]]:
    """Grow a tree from ``seed_cells`` reaching every target cell.

    This is the primitive behind interface-preserving tile reroutes: the
    seeds are the locked boundary-crossing cells (or the driver site) and
    the targets are the sinks inside the tile plus the remaining
    crossings.  Returns (cells, edges, hops per target).
    """
    meter = meter if meter is not None else EffortMeter()
    cells = set(seed_cells)
    edges: set[Edge] = set()
    hops: dict[tuple[int, int], int] = {}
    for target in sorted(
        targets, key=lambda t: min((manhattan(t, s) for s in cells), default=0)
    ):
        if target in cells:
            hops[target] = 0
            continue
        path = _astar(cells, target, state, region, pres_fac, meter)
        if path is None:
            raise RoutingError(
                f"no path to {target}"
                + (f" within region {region}" if region else "")
            )
        hops[target] = len(path) - 1
        prev = path[0]
        for cell in path[1:]:
            edges.add(_edge(prev, cell))
            cells.add(cell)
            prev = cell
    return cells, edges, hops


def _route_one(
    packed: PackedDesign,
    device: Device,
    placement: Placement,
    net_idx: int,
    state: RoutingState,
    region: Rect | None,
    pres_fac: float,
    meter: EffortMeter,
) -> RouteTree:
    net = packed.nets[net_idx]
    source = placement.site_of(net.driver)
    sinks = [(placement.site_of(s), s) for s in net.sinks]
    tree = RouteTree(net_idx)
    tree.cells.add(source)

    for target, sink_block in sorted(
        sinks, key=lambda item: (manhattan(source, item[0]), item[1])
    ):
        if target in tree.cells:
            tree.sink_hops[sink_block] = 0
            continue
        path = _astar(
            tree.cells, target, state, region, pres_fac, meter
        )
        if path is None:
            raise RoutingError(
                f"net {net.name}: no path from tree to {target}"
                + (f" within region {region}" if region else "")
            )
        tree.sink_hops[sink_block] = len(path) - 1
        prev = path[0]
        for cell in path[1:]:
            tree.edges.add(_edge(prev, cell))
            tree.cells.add(cell)
            prev = cell
    return tree


def _astar(
    sources: set[tuple[int, int]],
    target: tuple[int, int],
    state: RoutingState,
    region: Rect | None,
    pres_fac: float,
    meter: EffortMeter,
):
    """Multi-source A* over the fabric cell ids; returns a tuple path.

    The device geometry comes entirely from ``state.fabric`` — neighbor
    tables, region masks and the generation-stamped scratch arrays.
    """
    fab = state.fabric
    h = fab.h
    xs, ys, nbr_table = fab.xs, fab.ys, fab.nbr
    usage, history = state._usage, state._history
    cap = state.capacity
    tx, ty = target
    tid = (tx + 1) * h + (ty + 1)
    mask = fab.region_mask(region) if region is not None else None

    fab._generation += 1
    gen = fab._generation
    best = fab._best
    parent = fab._parent
    stamp = fab._stamp

    open_heap: list[tuple[float, int, int]] = []
    counter = 0
    for cx, cy in sources:
        cid = (cx + 1) * h + (cy + 1)
        open_heap.append((abs(cx - tx) + abs(cy - ty), counter, cid))
        counter += 1
        best[cid] = 0.0
        parent[cid] = -1
        stamp[cid] = gen
    heapq.heapify(open_heap)

    push = heapq.heappush
    pop = heapq.heappop
    expansions = 0
    while open_heap:
        f, _, cid = pop(open_heap)
        g = best[cid]
        if f - (abs(xs[cid] - tx) + abs(ys[cid] - ty)) > g + 1e-9:
            continue  # stale entry
        expansions += 1
        if cid == tid:
            meter.route_expansions += expansions
            xy = fab.xy
            path = [xy[cid]]
            nxt = parent[cid]
            while nxt != -1:
                cid = nxt
                path.append(xy[cid])
                nxt = parent[cid]
            path.reverse()
            return path
        for ncid, eid in nbr_table[cid]:
            if mask is not None and not mask[ncid] and ncid != tid:
                continue
            step = 1.0 + history[eid]
            over = usage[eid] + 1 - cap
            if over > 0:
                step += pres_fac * over
            cost = g + step
            if (
                stamp[ncid] != gen or cost < best[ncid] - 1e-12
            ):
                best[ncid] = cost
                parent[ncid] = cid
                stamp[ncid] = gen
                push(
                    open_heap,
                    (cost + abs(xs[ncid] - tx) + abs(ys[ncid] - ty), counter, ncid),
                )
                counter += 1
    meter.route_expansions += expansions
    return None
