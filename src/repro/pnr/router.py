"""Negotiated-congestion maze router with locking and region confinement.

The routing fabric is the cell grid (CLB array plus IOB ring); every pair
of adjacent routable cells is a channel segment with
``device.channel_width`` tracks.  A net's route is a Steiner tree of grid
cells grown sink-by-sink with A*.

PathFinder-style negotiation: nets are routed with a congestion cost
``1 + pres_fac * overuse + hist``; after each iteration nets crossing
over-capacity edges are ripped up and re-routed with a larger
``pres_fac`` until the solution is feasible.

Tiling hooks:

* **locked routes** — existing routes (from untouched tiles) stay in the
  usage map and are never ripped up, exactly like locked layout;
* **region confinement** — expansion can be limited to a rectangle, so a
  tile-confined re-route physically cannot disturb its surroundings;
* every node expansion is charged to the :class:`EffortMeter`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.arch.device import Device
from repro.errors import RoutingError
from repro.geometry import Rect, manhattan
from repro.pnr.effort import EffortMeter, EffortPreset, EFFORT_PRESETS
from repro.pnr.placement import Placement
from repro.synth.pack import PackedDesign

Edge = tuple[tuple[int, int], tuple[int, int]]


def _edge(a: tuple[int, int], b: tuple[int, int]) -> Edge:
    return (a, b) if a <= b else (b, a)


@dataclass
class RouteTree:
    """One net's route: tree cells, edges, and per-sink path lengths."""

    net_index: int
    cells: set[tuple[int, int]] = field(default_factory=set)
    edges: set[Edge] = field(default_factory=set)
    sink_hops: dict[int, int] = field(default_factory=dict)

    @property
    def wirelength(self) -> int:
        return len(self.edges)

    def copy(self) -> "RouteTree":
        return RouteTree(
            self.net_index, set(self.cells), set(self.edges), dict(self.sink_hops)
        )


class RoutingState:
    """Shared channel-usage bookkeeping across all routed nets."""

    def __init__(self, device: Device) -> None:
        self.device = device
        self.usage: dict[Edge, int] = {}
        self.history: dict[Edge, float] = {}

    def add(self, route: RouteTree) -> None:
        for edge in route.edges:
            self.usage[edge] = self.usage.get(edge, 0) + 1

    def remove(self, route: RouteTree) -> None:
        for edge in route.edges:
            left = self.usage.get(edge, 0) - 1
            if left > 0:
                self.usage[edge] = left
            else:
                self.usage.pop(edge, None)

    def overused_edges(self) -> list[Edge]:
        cap = self.device.channel_width
        return [e for e, u in self.usage.items() if u > cap]

    def congestion_cost(self, edge: Edge, pres_fac: float) -> float:
        cap = self.device.channel_width
        over = self.usage.get(edge, 0) + 1 - cap
        cost = 1.0 + self.history.get(edge, 0.0)
        if over > 0:
            cost += pres_fac * over
        return cost

    def bump_history(self, hist_fac: float = 0.4) -> None:
        cap = self.device.channel_width
        for edge, used in self.usage.items():
            if used > cap:
                self.history[edge] = self.history.get(edge, 0.0) + hist_fac


def route_nets(
    packed: PackedDesign,
    device: Device,
    placement: Placement,
    net_indices: list[int] | None = None,
    state: RoutingState | None = None,
    region: Rect | None = None,
    preset: EffortPreset | None = None,
    meter: EffortMeter | None = None,
    strict: bool = True,
) -> dict[int, RouteTree]:
    """Route the given nets (default: all); returns net index → tree.

    ``state`` carries usage from locked routes; routes created here are
    added to it.  With ``region`` every new route is confined to the
    rectangle (terminals must lie inside).  With ``strict`` a residual
    over-capacity edge raises :class:`RoutingError`.
    """
    preset = preset or EFFORT_PRESETS["normal"]
    meter = meter if meter is not None else EffortMeter()
    state = state if state is not None else RoutingState(device)
    if net_indices is None:
        net_indices = [n.index for n in packed.nets.values()]

    routes: dict[int, RouteTree] = {}
    pres_fac = 0.5
    todo = list(net_indices)
    for iteration in range(preset.router_iterations):
        for net_idx in todo:
            old = routes.pop(net_idx, None)
            if old is not None:
                state.remove(old)
            tree = _route_one(
                packed, device, placement, net_idx, state, region, pres_fac, meter
            )
            routes[net_idx] = tree
            state.add(tree)

        over = set(state.overused_edges())
        if not over:
            break
        state.bump_history()
        pres_fac *= 2.0
        todo = [
            idx for idx, tree in routes.items() if tree.edges & over
        ]
        if not todo:
            break
    else:
        over = set(state.overused_edges())
        if over and strict:
            raise RoutingError(
                f"{len(over)} channel segments over capacity after "
                f"{preset.router_iterations} iterations"
            )

    residual = state.overused_edges()
    if residual and strict:
        # Only fail when one of *our* nets is involved; pre-existing
        # locked congestion is the caller's responsibility.
        ours = {e for t in routes.values() for e in t.edges}
        if any(e in ours for e in residual):
            raise RoutingError(
                f"{len(residual)} channel segments over capacity"
            )
    return routes


def grow_steiner_tree(
    device: Device,
    seed_cells: set[tuple[int, int]],
    targets: list[tuple[int, int]],
    state: RoutingState,
    region: Rect | None = None,
    pres_fac: float = 2.0,
    meter: EffortMeter | None = None,
) -> tuple[set[tuple[int, int]], set[Edge], dict[tuple[int, int], int]]:
    """Grow a tree from ``seed_cells`` reaching every target cell.

    This is the primitive behind interface-preserving tile reroutes: the
    seeds are the locked boundary-crossing cells (or the driver site) and
    the targets are the sinks inside the tile plus the remaining
    crossings.  Returns (cells, edges, hops per target).
    """
    meter = meter if meter is not None else EffortMeter()
    cells = set(seed_cells)
    edges: set[Edge] = set()
    hops: dict[tuple[int, int], int] = {}
    for target in sorted(
        targets, key=lambda t: min((manhattan(t, s) for s in cells), default=0)
    ):
        if target in cells:
            hops[target] = 0
            continue
        path = _astar(device, cells, target, state, region, pres_fac, meter)
        if path is None:
            raise RoutingError(
                f"no path to {target}"
                + (f" within region {region}" if region else "")
            )
        hops[target] = len(path) - 1
        prev = path[0]
        for cell in path[1:]:
            edges.add(_edge(prev, cell))
            cells.add(cell)
            prev = cell
    return cells, edges, hops


def _route_one(
    packed: PackedDesign,
    device: Device,
    placement: Placement,
    net_idx: int,
    state: RoutingState,
    region: Rect | None,
    pres_fac: float,
    meter: EffortMeter,
) -> RouteTree:
    net = packed.nets[net_idx]
    source = placement.site_of(net.driver)
    sinks = [(placement.site_of(s), s) for s in net.sinks]
    tree = RouteTree(net_idx)
    tree.cells.add(source)

    for target, sink_block in sorted(
        sinks, key=lambda item: (manhattan(source, item[0]), item[1])
    ):
        if target in tree.cells:
            tree.sink_hops[sink_block] = 0
            continue
        path = _astar(
            device, tree.cells, target, state, region, pres_fac, meter
        )
        if path is None:
            raise RoutingError(
                f"net {net.name}: no path from tree to {target}"
                + (f" within region {region}" if region else "")
            )
        tree.sink_hops[sink_block] = len(path) - 1
        prev = path[0]
        for cell in path[1:]:
            tree.edges.add(_edge(prev, cell))
            tree.cells.add(cell)
            prev = cell
    return tree


def _astar(
    device: Device,
    sources: set[tuple[int, int]],
    target: tuple[int, int],
    state: RoutingState,
    region: Rect | None,
    pres_fac: float,
    meter: EffortMeter,
):
    """Multi-source A* over the cell grid; returns source→target path."""
    open_heap: list[tuple[float, int, tuple[int, int]]] = []
    best: dict[tuple[int, int], float] = {}
    parent: dict[tuple[int, int], tuple[int, int] | None] = {}
    counter = 0
    for cell in sources:
        h = manhattan(cell, target)
        heapq.heappush(open_heap, (h, counter, cell))
        counter += 1
        best[cell] = 0.0
        parent[cell] = None

    while open_heap:
        f, _, cell = heapq.heappop(open_heap)
        g = best[cell]
        if f - manhattan(cell, target) > g + 1e-9:
            continue  # stale entry
        meter.route_expansions += 1
        if cell == target:
            path = [cell]
            while parent[cell] is not None:
                cell = parent[cell]
                path.append(cell)
            path.reverse()
            return path
        for nxt in device.neighbors(*cell):
            if region is not None and not (
                region.contains(*nxt) or nxt == target
            ):
                continue
            cost = g + state.congestion_cost(_edge(cell, nxt), pres_fac)
            if cost < best.get(nxt, float("inf")) - 1e-12:
                best[nxt] = cost
                parent[nxt] = cell
                heapq.heappush(
                    open_heap,
                    (cost + manhattan(nxt, target), counter, nxt),
                )
                counter += 1
    return None
