"""Static timing analysis over a placed-and-routed design.

Instance-level STA with a simple but placement-sensitive delay model:

* every LUT evaluation costs :attr:`TimingModel.t_lut`;
* a net between two BLEs of the same CLB costs :attr:`TimingModel.t_intra`;
* an inter-block net costs a base plus a per-hop term, where hops come
  from the *actual routed path* when available (Manhattan distance as a
  fallback for unrouted estimates).

The clock period is the worst register-to-register / input-to-register /
register-to-output path, which is what Table 1's "timing overhead"
compares between tiled and untiled layouts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry import manhattan
from repro.netlist.cells import CellKind
from repro.pnr.placement import Placement
from repro.pnr.router import RouteTree
from repro.synth.pack import PackedDesign


@dataclass(frozen=True)
class TimingModel:
    """Delay constants, loosely XC4000-3 speed-grade shaped (ns)."""

    t_lut: float = 1.2
    t_clk_to_q: float = 0.8
    t_setup: float = 0.6
    t_intra: float = 0.15
    t_wire_base: float = 0.4
    t_wire_hop: float = 0.25

    def net_delay(self, hops: int | None, same_block: bool) -> float:
        if same_block:
            return self.t_intra
        h = hops if hops is not None else 0
        return self.t_wire_base + self.t_wire_hop * h


DEFAULT_TIMING = TimingModel()


def critical_path(
    packed: PackedDesign,
    placement: Placement,
    routes: dict[int, RouteTree] | None = None,
    model: TimingModel = DEFAULT_TIMING,
) -> float:
    """Worst path delay (ns) of the placed (and optionally routed) design."""
    netlist = packed.netlist
    block_of = packed.block_of_instance
    net_to_blocknet = {bn.name: bn for bn in packed.nets.values()}

    def wire_delay(net, sink_inst) -> float:
        driver = net.driver
        if driver is None:
            return 0.0
        src_block = block_of.get(driver.name)
        dst_block = block_of.get(sink_inst.name)
        if src_block is None or dst_block is None or src_block == dst_block:
            return model.t_intra
        hops: int | None = None
        blocknet = net_to_blocknet.get(net.name)
        if blocknet is not None and routes is not None:
            tree = routes.get(blocknet.index)
            if tree is not None:
                hops = tree.sink_hops.get(dst_block)
        if hops is None:
            hops = manhattan(
                placement.site_of(src_block), placement.site_of(dst_block)
            )
        return model.net_delay(hops, same_block=False)

    arrival: dict[str, float] = {}
    worst = 0.0
    for inst in netlist.topo_order():
        if inst.kind is CellKind.INPUT:
            arrival[inst.output.name] = 0.0
            continue
        if inst.kind is CellKind.DFF:
            arrival[inst.output.name] = model.t_clk_to_q
            continue
        in_times = [
            arrival.get(net.name, 0.0) + wire_delay(net, inst)
            for net in inst.inputs
        ]
        t_in = max(in_times, default=0.0)
        if inst.kind is CellKind.OUTPUT:
            worst = max(worst, t_in)
            continue
        t_out = t_in + (model.t_lut if inst.kind is CellKind.LUT else 0.0)
        arrival[inst.output.name] = t_out

    # register setup paths: D-pin arrivals
    for ff in netlist.flip_flops():
        d_net = ff.inputs[0]
        t = arrival.get(d_net.name, 0.0) + wire_delay(d_net, ff) + model.t_setup
        worst = max(worst, t)
    return worst
