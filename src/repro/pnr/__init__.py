"""Back-end place-and-route engine with effort accounting.

* :mod:`repro.pnr.effort` — effort presets and the work-unit meter that
  Figure 5's speedups are computed from.
* :mod:`repro.pnr.placement` — placement state (site maps, legality).
* :mod:`repro.pnr.placer` — VPR-style simulated-annealing placer with
  region constraints and locked blocks.
* :mod:`repro.pnr.router` — negotiated-congestion maze router with net
  locking and region confinement.
* :mod:`repro.pnr.timing` — static timing over placed-and-routed designs.
* :mod:`repro.pnr.flow` — full-design and region-confined P&R flows,
  plus the incremental-P&R baseline.
"""

from repro.pnr.effort import (
    EffortMeter,
    EffortPreset,
    EFFORT_PRESETS,
    INVOCATION_OVERHEAD_UNITS,
    ROUTE_EXPANSION_WEIGHT,
)
from repro.pnr.placement import PlaceConstraints, Placement
from repro.pnr.placer import place_design
from repro.pnr.router import RouteTree, RoutingState, route_nets
from repro.pnr.timing import TimingModel, critical_path
from repro.pnr.flow import (
    Layout,
    full_place_and_route,
    incremental_update,
    layout_legality_errors,
    replace_region,
)

__all__ = [
    "EffortMeter",
    "EffortPreset",
    "EFFORT_PRESETS",
    "INVOCATION_OVERHEAD_UNITS",
    "ROUTE_EXPANSION_WEIGHT",
    "PlaceConstraints",
    "Placement",
    "place_design",
    "RouteTree",
    "RoutingState",
    "route_nets",
    "TimingModel",
    "critical_path",
    "Layout",
    "full_place_and_route",
    "incremental_update",
    "layout_legality_errors",
    "replace_region",
]
