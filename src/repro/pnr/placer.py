"""Simulated-annealing placer (VPR-style) with tiling constraints.

The annealer is the workhorse behind every experiment: initial placement
of whole designs, slack-aware tiled placement, tile-confined re-placement
and the incremental baseline's window re-placement all call
:func:`place_design` with different constraint sets.

Key features:

* classic adaptive schedule — starting temperature from sampled move
  statistics, acceptance-driven cooling, shrinking range limiter;
* **region constraints** per block (tile rectangles) and **locked**
  blocks (the paper's "all resources are locked" default);
* wirelength cost = half-perimeter per net scaled by the usual
  fanout correction factor;
* every proposed move is charged to an :class:`EffortMeter`, which is
  how Figure 5's effort comparison is measured.
"""

from __future__ import annotations

import math

from repro.arch.device import Device
from repro.errors import PlacementError
from repro.pnr.effort import EffortMeter, EffortPreset, EFFORT_PRESETS
from repro.pnr.placement import PlaceConstraints, Placement
from repro.rng import make_rng
from repro.synth.pack import PackedDesign

#: VPR crossing-count correction for multi-terminal net HPWL.
_CROSSING = [
    1.0, 1.0, 1.0, 1.0, 1.0828, 1.1536, 1.2206, 1.2823, 1.3385, 1.3991,
    1.4493, 1.4974, 1.5455, 1.5937, 1.6418, 1.6899, 1.7304, 1.7709, 1.8114,
    1.8519, 1.8924,
]


def q_factor(n_terminals: int) -> float:
    if n_terminals < len(_CROSSING):
        return _CROSSING[n_terminals]
    return 1.8924 + 0.02616 * (n_terminals - len(_CROSSING) + 1)


def place_design(
    packed: PackedDesign,
    device: Device,
    seed: int = 1,
    preset: EffortPreset | None = None,
    meter: EffortMeter | None = None,
    initial: Placement | None = None,
    constraints: PlaceConstraints | None = None,
    movable: set[int] | None = None,
) -> Placement:
    """Place ``packed`` on ``device`` and return the placement.

    ``movable`` selects which CLB blocks the annealer may touch (default:
    every CLB not locked by ``constraints``); all other blocks must
    already be placed by ``initial``.  IOB blocks missing from
    ``initial`` are spread deterministically around the ring.
    """
    preset = preset or EFFORT_PRESETS["normal"]
    meter = meter if meter is not None else EffortMeter()
    constraints = constraints or PlaceConstraints()
    rng = make_rng(seed, "place", packed.netlist.name)

    placement = initial.copy() if initial is not None else Placement(device, packed)

    clb_indices = {b.index for b in packed.clb_blocks()}
    if movable is None:
        movable_set = clb_indices - constraints.locked
    else:
        movable_set = set(movable) & clb_indices - constraints.locked

    _place_iobs(packed, device, placement)
    _seed_movable(packed, device, placement, constraints, movable_set, rng)
    _check_unmovable_placed(packed, placement, movable_set)

    if movable_set:
        _anneal(
            packed, device, placement, constraints, movable_set, rng, preset, meter
        )
    placement.check_complete()
    return placement


# ----------------------------------------------------------------------
# initial placement
# ----------------------------------------------------------------------

def _place_iobs(packed: PackedDesign, device: Device, placement: Placement) -> None:
    unplaced = [
        b for b in packed.io_blocks() if not placement.is_placed(b.index)
    ]
    if not unplaced:
        return
    slots = device.io_slots()
    fill: dict[tuple[int, int], int] = {
        slot: len(pads) for slot, pads in placement.io_at.items()
    }
    n = len(unplaced)
    if n > device.spec.io_capacity:
        raise PlacementError(
            f"{n} IOBs exceed device capacity {device.spec.io_capacity}"
        )
    for i, block in enumerate(unplaced):
        start = (i * len(slots)) // max(1, n)
        for probe in range(len(slots)):
            slot = slots[(start + probe) % len(slots)]
            if fill.get(slot, 0) < device.io_per_slot:
                placement.place_io(block.index, slot)
                fill[slot] = fill.get(slot, 0) + 1
                break
        else:
            raise PlacementError("ran out of IOB slots")


def _seed_movable(
    packed: PackedDesign,
    device: Device,
    placement: Placement,
    constraints: PlaceConstraints,
    movable: set[int],
    rng,
) -> None:
    """Random initial site for movable blocks lacking one."""
    todo = sorted(b for b in movable if not placement.is_placed(b))
    if not todo:
        return
    by_region: dict[object, list[int]] = {}
    for b in todo:
        key = constraints.region_of(b, device)
        by_region.setdefault(key, []).append(b)
    for region, blocks in by_region.items():
        sites = [
            s
            for s in placement.free_clb_sites_in(region)
            if constraints.free_sites is None or s in constraints.free_sites
        ]
        if len(sites) < len(blocks):
            raise PlacementError(
                f"region {region} has {len(sites)} free sites for "
                f"{len(blocks)} blocks"
            )
        rng.shuffle(sites)
        for block, site in zip(blocks, sites):
            placement.place_clb(block, site)


def _check_unmovable_placed(
    packed: PackedDesign, placement: Placement, movable: set[int]
) -> None:
    for block in packed.clb_blocks():
        if block.index not in movable and not placement.is_placed(block.index):
            raise PlacementError(
                f"immovable block {block.name} has no initial site"
            )


# ----------------------------------------------------------------------
# annealing
# ----------------------------------------------------------------------

class _NetModel:
    """Net structures + incrementally maintained bounding-box costs.

    The classic VPR speedup: each active net caches its terminal
    bounding box as ``(xmin, n_xmin, xmax, n_xmax, ymin, n_ymin,
    ymax, n_ymax)`` — extremes plus the number of terminals sitting on
    each extreme — so a proposed move updates the box in O(1) and only
    falls back to a full terminal scan when a sole extreme terminal
    moves away.  Costs are byte-identical with the full recompute
    (integer span times the same crossing factor).
    """

    def __init__(self, packed: PackedDesign, movable: set[int]) -> None:
        self.nets_of_block: dict[int, list[int]] = {b: [] for b in movable}
        self.net_sets_of_block: dict[int, set[int]] = {b: set() for b in movable}
        self.active_nets: list[int] = []
        self.terminals: dict[int, list[int]] = {}
        self.q: dict[int, float] = {}
        for net in packed.nets.values():
            blocks = [net.driver, *net.sinks]
            if not any(b in movable for b in blocks):
                continue
            self.active_nets.append(net.index)
            self.terminals[net.index] = blocks
            self.q[net.index] = q_factor(len(blocks))
            for b in blocks:
                if b in movable:
                    self.nets_of_block[b].append(net.index)
                    self.net_sets_of_block[b].add(net.index)
        self.bbox: dict[int, tuple] = {}
        self.cost: dict[int, float] = {}

    def rebuild(self, pos: dict[int, tuple[int, int]]) -> None:
        for n in self.active_nets:
            entry = self.scan(n, pos)
            self.bbox[n] = entry
            self.cost[n] = self.cost_of(n, entry)

    def scan(self, net_idx: int, pos) -> tuple:
        xs = [pos[b][0] for b in self.terminals[net_idx]]
        ys = [pos[b][1] for b in self.terminals[net_idx]]
        xmin, xmax = min(xs), max(xs)
        ymin, ymax = min(ys), max(ys)
        return (
            xmin, xs.count(xmin), xmax, xs.count(xmax),
            ymin, ys.count(ymin), ymax, ys.count(ymax),
        )

    def cost_of(self, net_idx: int, entry: tuple) -> float:
        span = (entry[2] - entry[0]) + (entry[6] - entry[4])
        return span * self.q[net_idx]

    def total(self) -> float:
        return sum(self.cost.values())


def _bbox_shift(entry: tuple, old: tuple[int, int], new: tuple[int, int]):
    """Bounding box after moving one terminal ``old`` → ``new``.

    Returns None when a drained extreme forces a terminal rescan.
    """
    xmin, nxmin, xmax, nxmax, ymin, nymin, ymax, nymax = entry
    ox, oy = old
    nx, ny = new
    if ox != nx:
        if ox == xmin:
            nxmin -= 1
        if ox == xmax:
            nxmax -= 1
        if nxmin == 0 or nxmax == 0:
            return None
        if nx < xmin:
            xmin, nxmin = nx, 1
        elif nx == xmin:
            nxmin += 1
        if nx > xmax:
            xmax, nxmax = nx, 1
        elif nx == xmax:
            nxmax += 1
    if oy != ny:
        if oy == ymin:
            nymin -= 1
        if oy == ymax:
            nymax -= 1
        if nymin == 0 or nymax == 0:
            return None
        if ny < ymin:
            ymin, nymin = ny, 1
        elif ny == ymin:
            nymin += 1
        if ny > ymax:
            ymax, nymax = ny, 1
        elif ny == ymax:
            nymax += 1
    return (xmin, nxmin, xmax, nxmax, ymin, nymin, ymax, nymax)


def _anneal(
    packed: PackedDesign,
    device: Device,
    placement: Placement,
    constraints: PlaceConstraints,
    movable: set[int],
    rng,
    preset: EffortPreset,
    meter: EffortMeter,
) -> None:
    model = _NetModel(packed, movable)
    if not model.active_nets:
        return
    model.rebuild(placement.pos)

    movable_list = sorted(movable)
    temperature = _initial_temperature(
        placement, constraints, device, movable_list, movable, model, rng,
        meter,
    )
    total = model.total()

    rlim = float(max(device.nx, device.ny))
    moves_per_temp = max(4, int(preset.inner_num * len(movable_list) ** (4 / 3)))
    # small problems converge in few temperatures; cap the schedule so a
    # six-CLB tile job really is cheap (the effect Figure 5 measures)
    max_temps = min(400, 40 + 12 * int(len(movable_list) ** 0.5))

    for _ in range(max_temps):
        accepted = 0
        for _ in range(moves_per_temp):
            meter.place_moves += 1
            delta = _try_move(
                placement, device, constraints, movable, movable_list,
                model, rng, temperature, rlim,
            )
            if delta is not None:
                total += delta
                accepted += 1
        rate = accepted / moves_per_temp
        temperature *= _cooling_factor(rate)
        rlim = min(
            float(max(device.nx, device.ny)),
            max(1.0, rlim * (1.0 - 0.44 + rate)),
        )
        if temperature < preset.exit_ratio * max(total, 1.0) / len(
            model.active_nets
        ):
            break

    # zero-temperature quench: greedy pass accepting only improvements
    for _ in range(moves_per_temp):
        meter.place_moves += 1
        delta = _try_move(
            placement, device, constraints, movable, movable_list,
            model, rng, 0.0, max(1.0, rlim),
        )
        if delta is not None:
            total += delta


def _initial_temperature(
    placement, constraints, device, movable_list, movable, model, rng, meter,
) -> float:
    """VPR rule: T0 = 20 x stddev of cost over a random-move sample.

    Sampling runs real moves at infinite temperature, so every proposal
    is accepted and the placement drifts.  The pre-sample placement is
    restored afterwards and the cost caches rebuilt — annealing must
    start from the caller's placement, not a random walk off it.
    """
    saved = {b: placement.pos[b] for b in movable_list}
    deltas = []
    samples = min(60, 5 * len(movable_list))
    for _ in range(samples):
        meter.place_moves += 1
        delta = _try_move(
            placement, device, constraints, movable, movable_list,
            model, rng, temperature=float("inf"),
            rlim=float(max(device.nx, device.ny)),
        )
        if delta is not None:
            deltas.append(delta)

    # undo the sampling walk: put every movable block back
    for b in movable_list:
        placement.remove(b)
    for b, site in saved.items():
        placement.place_clb(b, site)
    model.rebuild(placement.pos)

    if len(deltas) < 2:
        return 1.0
    mean = sum(deltas) / len(deltas)
    var = sum((d - mean) ** 2 for d in deltas) / (len(deltas) - 1)
    return max(1e-6, 20.0 * math.sqrt(var))


def _cooling_factor(acceptance_rate: float) -> float:
    if acceptance_rate > 0.96:
        return 0.5
    if acceptance_rate > 0.8:
        return 0.9
    if acceptance_rate > 0.15:
        return 0.95
    return 0.8


def _try_move(
    placement: Placement,
    device: Device,
    constraints: PlaceConstraints,
    movable: set[int],
    movable_list: list[int],
    model: _NetModel,
    rng,
    temperature: float,
    rlim: float,
) -> float | None:
    """Propose one displace/swap; returns accepted delta or None."""
    block = movable_list[rng.randrange(len(movable_list))]
    old_site = placement.pos[block]
    bx, by = old_site
    region = constraints.region_of(block, device)
    span = max(1, int(rlim))
    xlo, xhi = max(region.x0, bx - span), min(region.x1, bx + span)
    ylo, yhi = max(region.y0, by - span), min(region.y1, by + span)
    site = (rng.randint(xlo, xhi), rng.randint(ylo, yhi))
    if site == old_site:
        return None
    if constraints.free_sites is not None and site not in constraints.free_sites:
        return None

    occupant = placement.clb_at.get(site)
    if occupant is not None:
        if occupant not in movable:
            return None
        if not constraints.allows_site(occupant, old_site, device):
            return None

    nets_of_block = model.nets_of_block
    affected = list(nets_of_block[block])
    if occupant is not None:
        block_nets = model.net_sets_of_block[block]
        affected.extend(
            n for n in nets_of_block[occupant] if n not in block_nets
        )

    if occupant is None:
        placement.move_clb(block, site)
        moved = ((block, old_site, site),)
    else:
        placement.swap_clbs(block, occupant)
        moved = ((block, old_site, site), (occupant, site, old_site))

    # incremental bounding-box update per affected net (scan fallback)
    pos = placement.pos
    bbox = model.bbox
    cost_cache = model.cost
    net_sets = model.net_sets_of_block
    delta = 0.0
    new_state: list[tuple[int, tuple, float]] = []
    for n in affected:
        entry = bbox[n]
        for b, frm, to in moved:
            if n not in net_sets[b]:
                continue
            entry = _bbox_shift(entry, frm, to)
            if entry is None:
                break
        if entry is None:
            entry = model.scan(n, pos)
        c = model.cost_of(n, entry)
        new_state.append((n, entry, c))
        delta += c - cost_cache[n]

    accept = delta <= 0 or (
        temperature > 0
        and rng.random() < math.exp(-delta / temperature)
    )
    if not accept:
        if occupant is None:
            placement.move_clb(block, old_site)
        else:
            placement.swap_clbs(block, occupant)
        return None

    for n, entry, c in new_state:
        bbox[n] = entry
        cost_cache[n] = c
    return delta
