"""CAD-effort accounting — the measurement behind Figure 5.

The paper reports "place-and-route speedup"; with the original Xilinx M1
tool chain that is wall-clock time.  Our substrate measures effort two
ways:

* **work units** — a deterministic, machine-independent count:
  ``place_moves + ROUTE_EXPANSION_WEIGHT * route_expansions +
  INVOCATION_OVERHEAD_UNITS * invocations``.  The invocation overhead
  models the fixed cost of every back-end run (tool start-up, design
  load, bitstream generation) that dominates small jobs on real tools —
  without it, re-routing a 6-CLB tile would look implausibly cheap.
* **wall seconds** — honest Python runtime, reported alongside.

Speedup(A over B) = effort(B) / effort(A) for the same debugging change.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

#: Weight of one router node expansion relative to one annealer move.
ROUTE_EXPANSION_WEIGHT = 0.4

#: Fixed work-unit cost charged per back-end invocation.  Calibrated so
#: that single-tile jobs on the paper's largest designs land in the
#: paper's single-to-low-double-digit speedup band (see EXPERIMENTS.md).
INVOCATION_OVERHEAD_UNITS = 800.0


@dataclass(frozen=True)
class EffortPreset:
    """Quality/effort knob shared by placer and router."""

    name: str
    #: multiplier on the VPR ``n^(4/3)`` moves-per-temperature count
    inner_num: float
    #: negotiated-congestion rip-up iterations
    router_iterations: int
    #: annealing schedule floor — larger means earlier stop
    exit_ratio: float = 0.005

    def scaled(self, factor: float) -> "EffortPreset":
        return EffortPreset(
            f"{self.name}x{factor:g}",
            self.inner_num * factor,
            self.router_iterations,
            self.exit_ratio,
        )


EFFORT_PRESETS: dict[str, EffortPreset] = {
    "fast": EffortPreset("fast", inner_num=0.02, router_iterations=3),
    "normal": EffortPreset("normal", inner_num=0.1, router_iterations=4),
    "thorough": EffortPreset("thorough", inner_num=0.5, router_iterations=5),
}


@dataclass
class EffortMeter:
    """Accumulates the cost of back-end operations."""

    place_moves: int = 0
    route_expansions: int = 0
    invocations: int = 0
    wall_seconds: float = 0.0
    _t0: float | None = field(default=None, repr=False)

    def begin_invocation(self) -> None:
        """Charge one fixed tool-invocation overhead and start the clock."""
        self.invocations += 1
        self._t0 = time.perf_counter()

    def end_invocation(self) -> None:
        if self._t0 is not None:
            self.wall_seconds += time.perf_counter() - self._t0
            self._t0 = None

    @property
    def work_units(self) -> float:
        return (
            self.place_moves
            + ROUTE_EXPANSION_WEIGHT * self.route_expansions
            + INVOCATION_OVERHEAD_UNITS * self.invocations
        )

    def merged_with(self, other: "EffortMeter") -> "EffortMeter":
        return EffortMeter(
            self.place_moves + other.place_moves,
            self.route_expansions + other.route_expansions,
            self.invocations + other.invocations,
            self.wall_seconds + other.wall_seconds,
        )

    def snapshot(self) -> dict[str, float]:
        return {
            "place_moves": float(self.place_moves),
            "route_expansions": float(self.route_expansions),
            "invocations": float(self.invocations),
            "work_units": self.work_units,
            "wall_seconds": self.wall_seconds,
        }


def speedup(baseline: EffortMeter, candidate: EffortMeter) -> float:
    """Work-unit speedup of ``candidate`` over ``baseline``."""
    if candidate.work_units <= 0:
        return float("inf")
    return baseline.work_units / candidate.work_units
