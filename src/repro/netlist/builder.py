"""Word-level construction helpers on top of the flat netlist.

The benchmark generators (:mod:`repro.generators`) build real datapaths —
adders, comparators, S-boxes, register files.  Writing those gate by gate
is noisy, so :class:`NetlistBuilder` provides a small word-level layer:

* a :data:`Word` is a list of nets, least-significant bit first;
* bitwise ops, ripple-carry arithmetic, muxes, decoders, popcount and
  registers are composed from the primitive gate kinds so the result is
  an ordinary gate netlist the technology mapper can consume.

Gates wider than four inputs are legal here (up to eight); the mapper
decomposes them.  Reduction trees chunk at four inputs to map cleanly
onto XC4000 function generators.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import NetlistError
from repro.netlist.cells import CellKind
from repro.netlist.core import Net, Netlist

#: A little-endian bus: ``word[0]`` is bit 0.
Word = list[Net]

_REDUCE_FANIN = 4


class NetlistBuilder:
    """Fluent word-level helper bound to one :class:`Netlist`."""

    def __init__(self, netlist: Netlist) -> None:
        self.netlist = netlist

    # ------------------------------------------------------------------
    # ports and constants
    # ------------------------------------------------------------------

    def input_word(self, name: str, width: int) -> Word:
        """Create ``width`` primary inputs ``name[0..width-1]``."""
        return [self.netlist.add_input(f"{name}[{i}]") for i in range(width)]

    def output_word(self, name: str, word: Word) -> None:
        for i, net in enumerate(word):
            self.netlist.add_output(f"{name}[{i}]", net)

    def const_bit(self, value: int) -> Net:
        kind = CellKind.CONST1 if value else CellKind.CONST0
        return self.netlist.add_gate(kind, [])

    def const_word(self, value: int, width: int) -> Word:
        return [self.const_bit((value >> i) & 1) for i in range(width)]

    # ------------------------------------------------------------------
    # bitwise operators
    # ------------------------------------------------------------------

    def not_(self, a: Net) -> Net:
        return self.netlist.add_gate(CellKind.NOT, [a])

    def not_word(self, a: Word) -> Word:
        return [self.not_(bit) for bit in a]

    def and_(self, *bits: Net) -> Net:
        return self._nary(CellKind.AND, bits)

    def or_(self, *bits: Net) -> Net:
        return self._nary(CellKind.OR, bits)

    def xor_(self, *bits: Net) -> Net:
        return self._nary(CellKind.XOR, bits)

    def nand_(self, *bits: Net) -> Net:
        return self.not_(self.and_(*bits))

    def nor_(self, *bits: Net) -> Net:
        return self.not_(self.or_(*bits))

    def and_word(self, a: Word, b: Word) -> Word:
        self._same_width(a, b)
        return [self.and_(x, y) for x, y in zip(a, b)]

    def or_word(self, a: Word, b: Word) -> Word:
        self._same_width(a, b)
        return [self.or_(x, y) for x, y in zip(a, b)]

    def xor_word(self, a: Word, b: Word) -> Word:
        self._same_width(a, b)
        return [self.xor_(x, y) for x, y in zip(a, b)]

    def _nary(self, kind: CellKind, bits: Sequence[Net]) -> Net:
        """Balanced reduction tree with fan-in :data:`_REDUCE_FANIN`."""
        if not bits:
            raise NetlistError(f"{kind} reduction needs at least one bit")
        layer = list(bits)
        while len(layer) > 1:
            nxt: list[Net] = []
            for i in range(0, len(layer), _REDUCE_FANIN):
                chunk = layer[i : i + _REDUCE_FANIN]
                if len(chunk) == 1:
                    nxt.append(chunk[0])
                else:
                    nxt.append(self.netlist.add_gate(kind, chunk))
            layer = nxt
        return layer[0]

    def reduce_and(self, word: Word) -> Net:
        return self.and_(*word)

    def reduce_or(self, word: Word) -> Net:
        return self.or_(*word)

    def reduce_xor(self, word: Word) -> Net:
        """Parity; XOR trees associate freely so chunking is safe."""
        return self.xor_(*word)

    # ------------------------------------------------------------------
    # selection
    # ------------------------------------------------------------------

    def mux(self, sel: Net, d0: Net, d1: Net) -> Net:
        """2:1 mux: ``d1`` when ``sel`` is high."""
        return self.netlist.add_gate(CellKind.MUX2, [sel, d0, d1])

    def mux_word(self, sel: Net, d0: Word, d1: Word) -> Word:
        self._same_width(d0, d1)
        return [self.mux(sel, a, b) for a, b in zip(d0, d1)]

    def mux_tree(self, select: Word, choices: Sequence[Word]) -> Word:
        """2^k-way word mux from ``k`` select bits (LSB first)."""
        expected = 1 << len(select)
        if len(choices) != expected:
            raise NetlistError(
                f"{len(select)} select bits need {expected} choices, "
                f"got {len(choices)}"
            )
        layer = [list(c) for c in choices]
        for sel_bit in select:
            layer = [
                self.mux_word(sel_bit, layer[i], layer[i + 1])
                for i in range(0, len(layer), 2)
            ]
        return layer[0]

    def decoder(self, select: Word, enable: Net | None = None) -> Word:
        """One-hot decode of ``select``; optionally gated by ``enable``."""
        outputs: Word = []
        inverted = [self.not_(bit) for bit in select]
        for code in range(1 << len(select)):
            literals = [
                select[j] if (code >> j) & 1 else inverted[j]
                for j in range(len(select))
            ]
            if enable is not None:
                literals.append(enable)
            outputs.append(self.and_(*literals) if len(literals) > 1 else literals[0])
        return outputs

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------

    def half_adder(self, a: Net, b: Net) -> tuple[Net, Net]:
        return self.xor_(a, b), self.and_(a, b)

    def full_adder(self, a: Net, b: Net, cin: Net) -> tuple[Net, Net]:
        s = self.xor_(a, b, cin)
        carry = self.or_(self.and_(a, b), self.and_(a, cin), self.and_(b, cin))
        return s, carry

    def adder(self, a: Word, b: Word, cin: Net | None = None) -> tuple[Word, Net]:
        """Ripple-carry add; returns (sum word, carry out)."""
        self._same_width(a, b)
        carry = cin if cin is not None else self.const_bit(0)
        out: Word = []
        for x, y in zip(a, b):
            s, carry = self.full_adder(x, y, carry)
            out.append(s)
        return out, carry

    def subtractor(self, a: Word, b: Word) -> tuple[Word, Net]:
        """a - b via two's complement; returns (difference, borrow-free flag)."""
        diff, carry = self.adder(a, self.not_word(b), cin=self.const_bit(1))
        return diff, carry

    def incrementer(self, a: Word, amount: int = 1) -> Word:
        total, _ = self.adder(a, self.const_word(amount, len(a)))
        return total

    def equals(self, a: Word, b: Word) -> Net:
        self._same_width(a, b)
        same = [self.not_(self.xor_(x, y)) for x, y in zip(a, b)]
        return self.reduce_and(same)

    def is_zero(self, a: Word) -> Net:
        return self.not_(self.reduce_or(a))

    def less_than_unsigned(self, a: Word, b: Word) -> Net:
        """a < b, unsigned: borrow of (a - b)."""
        _, no_borrow = self.subtractor(a, b)
        return self.not_(no_borrow)

    def popcount(self, word: Word) -> Word:
        """Count of set bits as a word of ceil(log2(n+1)) nets.

        Built as a balanced tree of ripple adders — the structure of the
        real 9sym-style symmetric-function circuits.
        """
        if not word:
            raise NetlistError("popcount of empty word")
        counts: list[Word] = [[bit] for bit in word]
        while len(counts) > 1:
            nxt: list[Word] = []
            for i in range(0, len(counts) - 1, 2):
                a, b = counts[i], counts[i + 1]
                width = max(len(a), len(b))
                a = self._zero_extend(a, width)
                b = self._zero_extend(b, width)
                total, carry = self.adder(a, b)
                nxt.append(total + [carry])
            if len(counts) % 2:
                nxt.append(counts[-1])
            counts = nxt
        return counts[0]

    def _zero_extend(self, word: Word, width: int) -> Word:
        if len(word) >= width:
            return word
        return word + [self.const_bit(0)] * (width - len(word))

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------

    def register(
        self, data: Word, enable: Net | None = None, name: str | None = None
    ) -> Word:
        """A word of DFFs; with ``enable`` the register holds when low.

        Returns the Q word.  The feedback mux for the enable is built
        explicitly so the mapper sees ordinary logic.
        """
        q_nets = [
            self.netlist.add_net(
                None if name is None else f"{name}_q[{i}]"
            )
            for i in range(len(data))
        ]
        for i, (d, q) in enumerate(zip(data, q_nets)):
            d_in = d if enable is None else self.mux(enable, q, d)
            self.netlist.add_dff(
                d_in,
                name=None if name is None else f"{name}_ff[{i}]",
                output=q,
            )
        return q_nets

    def counter(self, width: int, name: str | None = None) -> Word:
        """Free-running binary counter, the paper's example of "a large
        counter" inserted as test logic."""
        q_nets = [
            self.netlist.add_net(None if name is None else f"{name}_q[{i}]")
            for i in range(width)
        ]
        incremented, _ = self.adder(q_nets, self.const_word(1, width))
        for i, (d, q) in enumerate(zip(incremented, q_nets)):
            self.netlist.add_dff(
                d, name=None if name is None else f"{name}_ff[{i}]", output=q
            )
        return q_nets

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    @staticmethod
    def _same_width(a: Word, b: Word) -> None:
        if len(a) != len(b):
            raise NetlistError(f"width mismatch: {len(a)} vs {len(b)}")
