"""Core netlist data model: :class:`Netlist`, :class:`Instance`, :class:`Net`.

The model is a flat, single-clock, single-output-per-instance netlist —
exactly the shape MCNC benchmarks, technology mapping and the debugging
ECO edits need:

* a :class:`Net` has one driver pin and any number of sink pins;
* an :class:`Instance` has an ordered list of input nets and (except for
  ``OUTPUT`` markers) one output net;
* the netlist owns both tables and keeps them consistent through every
  mutation (the ECO operations used by error injection and correction).

Mutation API used by the debug flow:

* :meth:`Netlist.set_input` — rewire one input pin (wrong-wire errors),
* :meth:`Netlist.change_kind` — substitute a gate (wrong-gate errors),
* :meth:`Netlist.transfer_sinks` — move all loads from one net to another
  (inserting observation/control logic in series),
* :meth:`Netlist.remove_instance` / :meth:`Netlist.prune_dangling` —
  delete logic during tile clearing and correction.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

from repro.errors import NetlistError, ValidationError
from repro.netlist.cells import (
    CellKind,
    arity_of,
    is_combinational,
    is_sequential,
)


def port_name(marker: "Instance") -> str:
    """Strip the ``pi:``/``po:`` prefix from an IO marker name."""
    name = marker.name
    if ":" in name:
        return name.split(":", 1)[1]
    return name


class Net:
    """A signal: one driver pin, many sink pins.

    ``sinks`` holds ``(instance, input_index)`` pairs.  The driver is the
    instance whose output pin produces the signal, or ``None`` while the
    net is under construction (or after its driver was removed).
    """

    __slots__ = ("name", "driver", "sinks")

    def __init__(self, name: str) -> None:
        self.name = name
        self.driver: Instance | None = None
        self.sinks: list[tuple[Instance, int]] = []

    @property
    def fanout(self) -> int:
        return len(self.sinks)

    def sink_instances(self) -> list["Instance"]:
        return [inst for inst, _ in self.sinks]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        driver = self.driver.name if self.driver else "<none>"
        return f"Net({self.name!r}, driver={driver}, fanout={self.fanout})"


class Instance:
    """One cell instance.

    ``params`` carries kind-specific data: ``{"table": int}`` for LUTs,
    ``{"init": 0|1}`` for DFFs.  Input order is significant (MUX2 select,
    LUT variable order).
    """

    __slots__ = ("name", "kind", "inputs", "output", "params")

    def __init__(
        self,
        name: str,
        kind: CellKind,
        inputs: list[Net],
        output: Net | None,
        params: dict | None = None,
    ) -> None:
        self.name = name
        self.kind = kind
        self.inputs = inputs
        self.output = output
        self.params = params if params is not None else {}

    @property
    def is_gate(self) -> bool:
        return is_combinational(self.kind) and self.kind is not CellKind.LUT

    @property
    def is_lut(self) -> bool:
        return self.kind is CellKind.LUT

    @property
    def is_ff(self) -> bool:
        return is_sequential(self.kind)

    @property
    def is_io(self) -> bool:
        return self.kind in (CellKind.INPUT, CellKind.OUTPUT)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Instance({self.name!r}, {self.kind})"


@dataclass
class NetlistStats:
    """Size summary used by reports and calibration tests."""

    n_inputs: int = 0
    n_outputs: int = 0
    n_gates: int = 0
    n_luts: int = 0
    n_ffs: int = 0
    n_nets: int = 0
    depth: int = 0

    @property
    def n_logic(self) -> int:
        """Cells that occupy fabric resources (gates before mapping,
        LUTs and FFs after)."""
        return self.n_gates + self.n_luts + self.n_ffs


@dataclass(frozen=True)
class Adjacency:
    """Precomputed sparse connectivity over a fixed instance indexing.

    ``names[i]`` follows combinational topological order; ``fanin[i]``
    and ``fanout[i]`` hold instance indices (drivers of ``i``'s input
    pins, and sinks of ``i``'s output net).  The table is memoized on
    the owning :class:`Netlist` and invalidated by its revision counter,
    so engines that repeatedly walk the graph (compiled simulation,
    bitset cone computation) stop paying the dict-of-objects traversal
    cost on every construction.
    """

    names: tuple[str, ...]
    index: dict[str, int]
    fanin: tuple[tuple[int, ...], ...]
    fanout: tuple[tuple[int, ...], ...]


class Netlist:
    """A mutable flat netlist with consistent connectivity tables.

    Structural queries (:meth:`topo_order`, :meth:`levels`,
    :meth:`adjacency`) are memoized; every mutation bumps
    :attr:`revision` and drops the caches, so repeated simulator and
    emulator construction between ECO edits is O(1) instead of O(V+E).
    The returned cached objects must be treated as read-only.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._instances: dict[str, Instance] = {}
        self._nets: dict[str, Net] = {}
        self._uid = 0
        self._revision = 0
        self._topo_cache: list[Instance] | None = None
        self._levels_cache: dict[str, int] | None = None
        self._adj_cache: Adjacency | None = None

    @property
    def revision(self) -> int:
        """Monotone mutation counter; engines key their caches on it."""
        return self._revision

    def _mutated(self) -> None:
        self._revision += 1
        self._topo_cache = None
        self._levels_cache = None
        self._adj_cache = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def fresh_name(self, prefix: str) -> str:
        """Return a name not yet used by any instance or net."""
        while True:
            self._uid += 1
            candidate = f"{prefix}${self._uid}"
            if candidate not in self._instances and candidate not in self._nets:
                return candidate

    def add_net(self, name: str | None = None) -> Net:
        if name is None:
            name = self.fresh_name("n")
        if name in self._nets:
            raise NetlistError(f"net {name!r} already exists")
        net = Net(name)
        self._nets[name] = net
        self._mutated()
        return net

    def add_instance(
        self,
        kind: CellKind,
        inputs: Iterable[Net],
        name: str | None = None,
        output: Net | None = None,
        params: dict | None = None,
    ) -> Instance:
        """Create an instance, allocating an output net unless given.

        ``OUTPUT`` markers take no output net.  Every input net must
        already belong to this netlist.
        """
        input_list = list(inputs)
        arity_of(kind, len(input_list))
        if name is None:
            name = self.fresh_name(kind.value.lower())
        if name in self._instances:
            raise NetlistError(f"instance {name!r} already exists")
        for net in input_list:
            self._require_net(net)
        if kind is CellKind.OUTPUT:
            if output is not None:
                raise NetlistError("OUTPUT instances have no output net")
        elif output is None:
            output = self.add_net(self.fresh_name(f"{name}_o"))
        elif output.driver is not None:
            raise NetlistError(f"net {output.name!r} already has a driver")

        inst = Instance(name, kind, input_list, output, params)
        self._instances[name] = inst
        if output is not None:
            output.driver = inst
        for idx, net in enumerate(input_list):
            net.sinks.append((inst, idx))
        self._mutated()
        return inst

    def add_input(self, name: str) -> Net:
        """Create a primary input; the driven net shares the port name."""
        net = self.add_net(name)
        self.add_instance(CellKind.INPUT, [], name=f"pi:{name}", output=net)
        return net

    def add_output(self, name: str, net: Net) -> Instance:
        """Mark ``net`` as the primary output called ``name``."""
        return self.add_instance(CellKind.OUTPUT, [net], name=f"po:{name}")

    def add_gate(
        self, kind: CellKind, inputs: Iterable[Net], name: str | None = None
    ) -> Net:
        """Convenience: create a gate and return its output net."""
        return self.add_instance(kind, inputs, name=name).output

    def add_lut(
        self,
        inputs: Iterable[Net],
        table: int,
        name: str | None = None,
        output: Net | None = None,
    ) -> Instance:
        input_list = list(inputs)
        size = 1 << len(input_list)
        if table >> size:
            raise NetlistError(
                f"table {table:#x} too wide for {len(input_list)} inputs"
            )
        return self.add_instance(
            CellKind.LUT,
            input_list,
            name=name,
            output=output,
            params={"table": table},
        )

    def add_dff(
        self,
        data: Net,
        name: str | None = None,
        output: Net | None = None,
        init: int = 0,
    ) -> Instance:
        return self.add_instance(
            CellKind.DFF, [data], name=name, output=output, params={"init": init}
        )

    # ------------------------------------------------------------------
    # lookup / iteration
    # ------------------------------------------------------------------

    def instance(self, name: str) -> Instance:
        try:
            return self._instances[name]
        except KeyError:
            raise NetlistError(f"no instance named {name!r}") from None

    def net(self, name: str) -> Net:
        try:
            return self._nets[name]
        except KeyError:
            raise NetlistError(f"no net named {name!r}") from None

    def has_instance(self, name: str) -> bool:
        return name in self._instances

    def has_net(self, name: str) -> bool:
        return name in self._nets

    def instances(self) -> Iterator[Instance]:
        return iter(self._instances.values())

    def nets(self) -> Iterator[Net]:
        return iter(self._nets.values())

    def __len__(self) -> int:
        return len(self._instances)

    def primary_inputs(self) -> list[Instance]:
        return [i for i in self._instances.values() if i.kind is CellKind.INPUT]

    def primary_outputs(self) -> list[Instance]:
        return [i for i in self._instances.values() if i.kind is CellKind.OUTPUT]

    def logic_instances(self) -> list[Instance]:
        """Gates, LUTs and FFs — everything that consumes fabric area."""
        return [i for i in self._instances.values() if not i.is_io]

    def flip_flops(self) -> list[Instance]:
        return [i for i in self._instances.values() if i.is_ff]

    # ------------------------------------------------------------------
    # mutation (ECO operations)
    # ------------------------------------------------------------------

    def set_input(self, inst: Instance, index: int, net: Net) -> None:
        """Rewire input pin ``index`` of ``inst`` to ``net``."""
        self._require_instance(inst)
        self._require_net(net)
        if not 0 <= index < len(inst.inputs):
            raise NetlistError(
                f"{inst.name} has no input pin {index} "
                f"(arity {len(inst.inputs)})"
            )
        old = inst.inputs[index]
        if old is net:
            return
        old.sinks.remove((inst, index))
        inst.inputs[index] = net
        net.sinks.append((inst, index))
        self._mutated()

    def change_kind(
        self, inst: Instance, kind: CellKind, params: dict | None = None
    ) -> None:
        """Substitute the cell kind, keeping connectivity.

        The new kind must accept the instance's current input count —
        this models the paper's "small functional alteration" debugging
        change that swaps a gate without touching wiring.
        """
        self._require_instance(inst)
        arity_of(kind, len(inst.inputs))
        if kind is CellKind.OUTPUT or inst.kind is CellKind.OUTPUT:
            raise NetlistError("cannot change to/from OUTPUT markers")
        inst.kind = kind
        inst.params = params if params is not None else {}
        self._mutated()

    def set_params(self, inst: Instance, params: dict) -> None:
        """Replace an instance's params, bumping the revision counter.

        Use this (not ``inst.params = {...}``) for functional edits like
        LUT retabling so memoizing engines observe the change.
        """
        self._require_instance(inst)
        inst.params = dict(params)
        self._mutated()

    def transfer_sinks(
        self,
        source: Net,
        target: Net,
        keep: Callable[[Instance, int], bool] | None = None,
    ) -> int:
        """Move sink pins from ``source`` onto ``target``.

        ``keep(inst, idx)`` may retain selected pins on the source net —
        needed when splicing an instrumentation cell into a net (the
        spliced cell itself must keep reading the source).  Returns the
        number of pins moved.
        """
        self._require_net(source)
        self._require_net(target)
        if source is target:
            raise NetlistError("cannot transfer a net onto itself")
        moved = 0
        remaining: list[tuple[Instance, int]] = []
        for inst, idx in list(source.sinks):
            if keep is not None and keep(inst, idx):
                remaining.append((inst, idx))
                continue
            inst.inputs[idx] = target
            target.sinks.append((inst, idx))
            moved += 1
        source.sinks = remaining
        if moved:
            self._mutated()
        return moved

    def remove_instance(self, inst: Instance) -> None:
        """Delete an instance; its output net loses its driver."""
        self._require_instance(inst)
        for idx, net in enumerate(inst.inputs):
            net.sinks.remove((inst, idx))
        if inst.output is not None:
            inst.output.driver = None
        del self._instances[inst.name]
        self._mutated()

    def remove_net(self, net: Net) -> None:
        self._require_net(net)
        if net.driver is not None or net.sinks:
            raise NetlistError(f"net {net.name!r} is still connected")
        del self._nets[net.name]
        self._mutated()

    def prune_dangling(self) -> int:
        """Drop nets with neither driver nor sinks; return count removed."""
        dangling = [n for n in self._nets.values() if n.driver is None and not n.sinks]
        for net in dangling:
            del self._nets[net.name]
        if dangling:
            self._mutated()
        return len(dangling)

    def rename_instance(self, inst: Instance, new_name: str) -> None:
        self._require_instance(inst)
        if new_name in self._instances:
            raise NetlistError(f"instance {new_name!r} already exists")
        del self._instances[inst.name]
        inst.name = new_name
        self._instances[new_name] = inst
        self._mutated()

    # ------------------------------------------------------------------
    # analysis
    # ------------------------------------------------------------------

    def topo_order(self) -> list[Instance]:
        """Combinational topological order of every instance.

        Sources are primary inputs, constants and DFF outputs; a DFF's D
        pin is a cycle-breaking sink.  Raises :class:`ValidationError` on
        a combinational loop.

        The result is memoized until the next mutation; callers must not
        modify the returned list.
        """
        if self._topo_cache is None:
            self._topo_cache = self._compute_topo_order()
        return self._topo_cache

    def _compute_topo_order(self) -> list[Instance]:
        indegree: dict[str, int] = {}
        ready: deque[Instance] = deque()
        for inst in self._instances.values():
            if inst.kind in (CellKind.INPUT, CellKind.CONST0, CellKind.CONST1):
                deps = 0
            elif inst.is_ff:
                deps = 0  # Q is available at cycle start
            else:
                # Undriven pins cannot be waited on; the validator reports
                # them separately.
                deps = sum(1 for n in inst.inputs if n.driver is not None)
            indegree[inst.name] = deps
            if deps == 0:
                ready.append(inst)

        order: list[Instance] = []
        while ready:
            inst = ready.popleft()
            order.append(inst)
            if inst.output is None:
                continue
            for sink, _ in inst.output.sinks:
                if sink.is_ff:
                    continue  # D pin does not gate anything this cycle
                indegree[sink.name] -= 1
                if indegree[sink.name] == 0:
                    ready.append(sink)

        # DFF D-pin dependencies were never counted as blocking, but the
        # FFs themselves were emitted up front; combinational cells left
        # unvisited indicate a loop.
        if len(order) != len(self._instances):
            missing = sorted(set(self._instances) - {i.name for i in order})
            raise ValidationError(
                f"combinational loop involving: {', '.join(missing[:8])}"
                + ("..." if len(missing) > 8 else "")
            )
        return order

    def levels(self) -> dict[str, int]:
        """Logic level (unit-delay depth) of every instance.

        Memoized until the next mutation; treat the result as read-only.
        """
        if self._levels_cache is None:
            self._levels_cache = self._compute_levels()
        return self._levels_cache

    def _compute_levels(self) -> dict[str, int]:
        level: dict[str, int] = {}
        for inst in self.topo_order():
            if inst.kind in (CellKind.INPUT, CellKind.CONST0, CellKind.CONST1):
                level[inst.name] = 0
            elif inst.is_ff:
                level[inst.name] = 0
            elif inst.kind is CellKind.OUTPUT:
                level[inst.name] = level[inst.inputs[0].driver.name] if (
                    inst.inputs[0].driver
                ) else 0
            else:
                preds = [
                    level[n.driver.name] for n in inst.inputs if n.driver is not None
                ]
                level[inst.name] = 1 + (max(preds) if preds else 0)
        return level

    def depth(self) -> int:
        """Combinational depth in logic levels."""
        lv = self.levels()
        return max(lv.values(), default=0)

    def stats(self) -> NetlistStats:
        stats = NetlistStats(n_nets=len(self._nets))
        for inst in self._instances.values():
            if inst.kind is CellKind.INPUT:
                stats.n_inputs += 1
            elif inst.kind is CellKind.OUTPUT:
                stats.n_outputs += 1
            elif inst.is_lut:
                stats.n_luts += 1
            elif inst.is_ff:
                stats.n_ffs += 1
            else:
                stats.n_gates += 1
        stats.depth = self.depth()
        return stats

    def adjacency(self) -> Adjacency:
        """Sparse instance-index connectivity in topological order.

        Memoized until the next mutation; treat the result as read-only.
        """
        if self._adj_cache is None:
            self._adj_cache = self._compute_adjacency()
        return self._adj_cache

    def _compute_adjacency(self) -> Adjacency:
        order = self.topo_order()
        names = tuple(inst.name for inst in order)
        index = {name: i for i, name in enumerate(names)}
        fanin: list[tuple[int, ...]] = []
        fanout: list[list[int]] = [[] for _ in order]
        for i, inst in enumerate(order):
            drivers = []
            for net in inst.inputs:
                if net.driver is not None:
                    drivers.append(index[net.driver.name])
            fanin.append(tuple(drivers))
        for i in range(len(order)):
            for d in fanin[i]:
                fanout[d].append(i)
        return Adjacency(
            names=names,
            index=index,
            fanin=tuple(fanin),
            fanout=tuple(tuple(f) for f in fanout),
        )

    def fanin_cone(
        self, seeds: Iterable[Instance], stop_at_ffs: bool = True
    ) -> set[str]:
        """Names of instances in the transitive fanin of ``seeds``.

        Error localization narrows suspicion to fanin cones of failing
        outputs; with ``stop_at_ffs`` the walk does not cross flip-flop
        boundaries (single-cycle cone).
        """
        seen: set[str] = set()
        work = list(seeds)
        while work:
            inst = work.pop()
            if inst.name in seen:
                continue
            seen.add(inst.name)
            if stop_at_ffs and inst.is_ff:
                continue
            for net in inst.inputs:
                if net.driver is not None and net.driver.name not in seen:
                    work.append(net.driver)
        return seen

    def fanout_cone(
        self, seeds: Iterable[Instance], stop_at_ffs: bool = True
    ) -> set[str]:
        """Names of instances in the transitive fanout of ``seeds``."""
        seen: set[str] = set()
        work = list(seeds)
        # snapshot seed names up front: ``seeds`` may be a one-shot
        # iterator (already drained into ``work``), and membership tests
        # against it would then silently see an empty sequence
        seed_names = {inst.name for inst in work}
        while work:
            inst = work.pop()
            if inst.name in seen:
                continue
            seen.add(inst.name)
            if stop_at_ffs and inst.is_ff and inst.name not in seed_names:
                continue
            if inst.output is None:
                continue
            for sink, _ in inst.output.sinks:
                if sink.name not in seen:
                    work.append(sink)
        return seen

    # ------------------------------------------------------------------
    # copying
    # ------------------------------------------------------------------

    def copy(self, name: str | None = None) -> "Netlist":
        """Deep structural copy (instances, nets, params)."""
        clone = Netlist(name or self.name)
        clone._uid = self._uid
        for net in self._nets.values():
            clone.add_net(net.name)
        for inst in self._instances.values():
            clone.add_instance(
                inst.kind,
                [clone.net(n.name) for n in inst.inputs],
                name=inst.name,
                output=clone.net(inst.output.name) if inst.output else None,
                params=dict(inst.params),
            )
        return clone

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _require_net(self, net: Net) -> None:
        if self._nets.get(net.name) is not net:
            raise NetlistError(f"net {net.name!r} does not belong to {self.name!r}")

    def _require_instance(self, inst: Instance) -> None:
        if self._instances.get(inst.name) is not inst:
            raise NetlistError(
                f"instance {inst.name!r} does not belong to {self.name!r}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Netlist({self.name!r}, {len(self._instances)} instances, "
            f"{len(self._nets)} nets)"
        )
