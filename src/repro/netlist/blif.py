"""Berkeley BLIF reader and writer (the MCNC benchmark format).

The reader accepts the common MCNC subset: ``.model``, ``.inputs``,
``.outputs``, ``.names`` (SOP cover with ``-`` don't-cares, on-set and
off-set covers), ``.latch`` and ``.end``.  Covers with at most four
literals become LUT instances directly; wider covers are expanded into
AND/OR networks so the technology mapper can re-cover them.

The writer emits ``.names`` truth tables for every combinational cell
and ``.latch`` lines for flip-flops, producing files readable by other
academic tools (SIS, ABC, VPR flows).
"""

from __future__ import annotations

from repro.errors import NetlistError
from repro.netlist.cells import CellKind, LUT_MAX_INPUTS, lut_table_for_gate
from repro.netlist.core import Net, Netlist


def read_blif(text: str, name: str | None = None) -> Netlist:
    """Parse BLIF text into a :class:`Netlist`."""
    lines = _logical_lines(text)
    model = name or "blif"
    inputs: list[str] = []
    outputs: list[str] = []
    names_blocks: list[tuple[list[str], list[str]]] = []
    latches: list[tuple[str, str, int]] = []

    i = 0
    while i < len(lines):
        tokens = lines[i].split()
        directive = tokens[0]
        if directive == ".model":
            model = tokens[1] if len(tokens) > 1 else model
        elif directive == ".inputs":
            inputs.extend(tokens[1:])
        elif directive == ".outputs":
            outputs.extend(tokens[1:])
        elif directive == ".latch":
            if len(tokens) < 3:
                raise NetlistError(f"malformed .latch: {lines[i]!r}")
            init = 0
            if len(tokens) >= 4 and tokens[-1] in ("0", "1", "2", "3"):
                init = 1 if tokens[-1] == "1" else 0
            latches.append((tokens[1], tokens[2], init))
        elif directive == ".names":
            signals = tokens[1:]
            cover: list[str] = []
            while i + 1 < len(lines) and not lines[i + 1].startswith("."):
                i += 1
                cover.append(lines[i])
            names_blocks.append((signals, cover))
        elif directive == ".end":
            break
        elif directive in (".clock", ".wire_load_slope", ".default_input_arrival"):
            pass  # accepted and ignored
        else:
            raise NetlistError(f"unsupported BLIF directive {directive!r}")
        i += 1

    netlist = Netlist(model)
    nets: dict[str, Net] = {}

    def get_net(signal: str) -> Net:
        if signal not in nets:
            nets[signal] = netlist.add_net(signal)
        return nets[signal]

    for signal in inputs:
        net = get_net(signal)
        netlist.add_instance(CellKind.INPUT, [], name=f"pi:{signal}", output=net)
    for q, d_init in ((q, init) for d, q, init in latches):
        get_net(q)
    for d, q, init in latches:
        netlist.add_instance(
            CellKind.DFF,
            [get_net(d)],
            name=f"lat:{q}",
            output=get_net(q),
            params={"init": init},
        )
    for signals, cover in names_blocks:
        _build_names(netlist, get_net, signals, cover)
    for signal in outputs:
        netlist.add_output(signal, get_net(signal))
    return netlist


def _logical_lines(text: str) -> list[str]:
    """Strip comments, join continuation lines, drop blanks."""
    merged: list[str] = []
    pending = ""
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].rstrip()
        if not line.strip():
            continue
        if line.endswith("\\"):
            pending += line[:-1] + " "
            continue
        merged.append((pending + line).strip())
        pending = ""
    if pending.strip():
        merged.append(pending.strip())
    return merged


def _build_names(netlist, get_net, signals: list[str], cover: list[str]) -> None:
    if not signals:
        raise NetlistError(".names with no signals")
    *input_names, output_name = signals
    out_net = get_net(output_name)
    in_nets = [get_net(s) for s in input_names]

    if not cover:  # constant 0
        netlist.add_instance(
            CellKind.CONST0, [], name=f"nm:{output_name}", output=out_net
        )
        return
    if not input_names:
        value = cover[0].strip()
        kind = CellKind.CONST1 if value == "1" else CellKind.CONST0
        netlist.add_instance(kind, [], name=f"nm:{output_name}", output=out_net)
        return

    rows, polarity = _parse_cover(cover, len(input_names))
    if len(input_names) <= LUT_MAX_INPUTS:
        table = _cover_to_table(rows, polarity, len(input_names))
        netlist.add_lut(
            in_nets, table, name=f"nm:{output_name}", output=out_net
        )
        return

    # Wide cover: expand to a two-level AND/OR network (re-covered later
    # by technology mapping).
    product_nets = []
    for row in rows:
        literals = []
        for j, value in enumerate(row):
            if value == "1":
                literals.append(in_nets[j])
            elif value == "0":
                literals.append(netlist.add_gate(CellKind.NOT, [in_nets[j]]))
        if not literals:
            literals = [netlist.add_gate(CellKind.CONST1, [])]
        product_nets.append(_tree(netlist, CellKind.AND, literals))
    total = _tree(netlist, CellKind.OR, product_nets)
    final_kind = CellKind.BUF if polarity else CellKind.NOT
    netlist.add_instance(
        final_kind, [total], name=f"nm:{output_name}", output=out_net
    )


def _tree(netlist, kind: CellKind, nets: list[Net]) -> Net:
    layer = list(nets)
    while len(layer) > 1:
        nxt = []
        for i in range(0, len(layer), 4):
            chunk = layer[i : i + 4]
            nxt.append(chunk[0] if len(chunk) == 1 else netlist.add_gate(kind, chunk))
        layer = nxt
    return layer[0]


def _parse_cover(cover: list[str], n_inputs: int) -> tuple[list[str], int]:
    rows: list[str] = []
    polarity: int | None = None
    for line in cover:
        parts = line.split()
        if len(parts) != 2:
            raise NetlistError(f"malformed cover row {line!r}")
        pattern, value = parts
        if len(pattern) != n_inputs:
            raise NetlistError(
                f"cover row {pattern!r} does not match {n_inputs} inputs"
            )
        row_pol = 1 if value == "1" else 0
        if polarity is None:
            polarity = row_pol
        elif polarity != row_pol:
            raise NetlistError("mixed on-set/off-set covers are not supported")
        rows.append(pattern)
    assert polarity is not None
    return rows, polarity


def _cover_to_table(rows: list[str], polarity: int, k: int) -> int:
    covered = 0
    for minterm in range(1 << k):
        for row in rows:
            match = True
            for j in range(k):
                want = row[j]
                bit = (minterm >> j) & 1
                if want == "-":
                    continue
                if int(want) != bit:
                    match = False
                    break
            if match:
                covered |= 1 << minterm
                break
    if polarity:
        return covered
    return ~covered & ((1 << (1 << k)) - 1)


def write_blif(netlist: Netlist) -> str:
    """Serialize a netlist to BLIF text."""
    out: list[str] = [f".model {netlist.name}"]
    pis = [inst.output.name for inst in netlist.primary_inputs()]
    pos = [(inst.name.split(":", 1)[-1], inst.inputs[0].name)
           for inst in netlist.primary_outputs()]
    out.append(".inputs " + " ".join(pis) if pis else ".inputs")
    out.append(".outputs " + " ".join(name for name, _ in pos) if pos else ".outputs")

    alias_rows: list[str] = []
    for po_name, net_name in pos:
        if po_name != net_name:
            alias_rows.append(f".names {net_name} {po_name}\n1 1")

    for inst in netlist.instances():
        if inst.kind in (CellKind.INPUT, CellKind.OUTPUT):
            continue
        if inst.kind is CellKind.DFF:
            init = inst.params.get("init", 0)
            out.append(
                f".latch {inst.inputs[0].name} {inst.output.name} re clk {init}"
            )
            continue
        table = (
            inst.params["table"]
            if inst.kind is CellKind.LUT
            else lut_table_for_gate(inst.kind, len(inst.inputs))
        )
        signals = " ".join(n.name for n in inst.inputs)
        header = f".names {signals} {inst.output.name}".replace("  ", " ")
        body = _table_to_cover(table, len(inst.inputs))
        out.append(header + ("\n" + body if body else ""))
    out.extend(alias_rows)
    out.append(".end")
    return "\n".join(out) + "\n"


def _table_to_cover(table: int, k: int) -> str:
    if k == 0:
        return "1" if table & 1 else ""
    rows = []
    for minterm in range(1 << k):
        if (table >> minterm) & 1:
            pattern = "".join(str((minterm >> j) & 1) for j in range(k))
            rows.append(f"{pattern} 1")
    return "\n".join(rows)
