"""Bitset fanin-cone engine for error localization.

:meth:`Netlist.fanin_cone` answers one cone query with a BFS — fine in
isolation, but :class:`~repro.debug.localize.ConeLocalizer` needs the
cone of *every* candidate in *every* probe round, which makes probe
selection O(V·E) per round.  :class:`ConeIndex` instead computes every
instance's transitive fanin **once** as Python-int bitsets (bit ``i`` =
instance ``i`` in the cone), so each cone intersection, subtraction and
size query collapses to a single big-int operation.

The sequential fanin graph (``stop_at_ffs=False``) crosses flip-flop
boundaries and is therefore cyclic; cones are reachability sets, built
by condensing strongly connected components (iterative Tarjan) and
OR-propagating bitsets over the condensation in its reverse topological
emission order.  The acyclic single-cycle variant (``stop_at_ffs=True``)
falls out of the same pass because FF nodes simply keep no fanin edges.

The index snapshots the netlist at construction.  Inserting observation
logic only *adds* instances and sinks — it never rewires an existing
instance's fanin — so a localizer may keep using one index across probe
rounds; :attr:`revision` records the snapshot for staleness checks.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict

from repro.netlist.core import Netlist


class ConeIndex:
    """All-instances fanin cones as int bitsets over a fixed indexing."""

    def __init__(self, netlist: Netlist, stop_at_ffs: bool = False) -> None:
        self.netlist = netlist
        self.stop_at_ffs = stop_at_ffs
        self.revision = netlist.revision
        adj = netlist.adjacency()
        self._names = adj.names
        self._index = adj.index
        if stop_at_ffs:
            order = netlist.topo_order()
            pred = tuple(
                () if order[i].is_ff else adj.fanin[i]
                for i in range(len(adj.names))
            )
        else:
            pred = adj.fanin
        self._cones = _reachability_bitsets(pred)
        self._all_mask = (1 << len(self._names)) - 1
        self._logic_mask = 0
        for i, inst in enumerate(netlist.topo_order()):
            if not inst.is_io:
                self._logic_mask |= 1 << i
        #: indices in instance-name sort order, for deterministic
        #: iteration matching the set-based localizer
        self.sorted_indices = sorted(
            range(len(self._names)), key=lambda i: self._names[i]
        )

    # -- indexing ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._names)

    def has(self, name: str) -> bool:
        return name in self._index

    def bit(self, name: str) -> int:
        """Bit position of one instance."""
        return self._index[name]

    def name_of(self, index: int) -> str:
        return self._names[index]

    def mask_of(self, names) -> int:
        """Bitset of a collection of instance names."""
        mask = 0
        for name in names:
            mask |= 1 << self._index[name]
        return mask

    def names_of(self, mask: int) -> set[str]:
        """Instance names of a bitset."""
        names = self._names
        out: set[str] = set()
        i = 0
        while mask:
            low = mask & -mask
            i = low.bit_length() - 1
            out.add(names[i])
            mask ^= low
        return out

    @property
    def all_mask(self) -> int:
        return self._all_mask

    @property
    def logic_mask(self) -> int:
        """Bits of every non-IO instance (the legal candidate universe)."""
        return self._logic_mask

    # -- cones ---------------------------------------------------------

    def fanin(self, name: str) -> int:
        """Bitset of the transitive fanin of ``name`` (self included)."""
        return self._cones[self._index[name]]

    def fanin_by_index(self, index: int) -> int:
        return self._cones[index]

    # -- warm reuse ----------------------------------------------------

    def rebind(self, netlist: Netlist) -> "ConeIndex":
        """A copy of this index bound to ``netlist``.

        Only sound when ``netlist`` has the *identical connectivity* the
        index was built from — same instance names in the same
        topological order, same fanin edges, same FF/IO flags — which is
        exactly what an equal :func:`connectivity_digest` certifies.
        Every derived field (bitsets, masks, orderings) is then
        byte-identical by construction, so the rebind shares them.
        """
        clone = ConeIndex.__new__(ConeIndex)
        clone.__dict__.update(self.__dict__)
        clone.netlist = netlist
        clone.revision = netlist.revision
        return clone


def connectivity_digest(netlist: Netlist, stop_at_ffs: bool = False) -> str:
    """SHA-256 over everything a :class:`ConeIndex` is derived from.

    Covers the instance names in topological order, each instance's
    FF/IO classification, and its fanin edge list — the complete input
    of the bitset construction.  Logic *content* (LUT tables, FF init
    values) is deliberately excluded: cones are reachability sets, so
    two netlists that differ only in block logic (e.g. the same design
    under different ``table_bit`` error seeds) share their cone index.
    O(V+E) string hashing, much cheaper than the Tarjan + bitset
    propagation it lets a warm worker skip.
    """
    adj = netlist.adjacency()
    order = netlist.topo_order()
    h = hashlib.sha256()
    h.update(b"stop1" if stop_at_ffs else b"stop0")
    for i, name in enumerate(adj.names):
        inst = order[i]
        flag = b"f" if inst.is_ff else (b"o" if inst.is_io else b"l")
        h.update(name.encode())
        h.update(b"|")
        h.update(flag)
        h.update(",".join(map(str, adj.fanin[i])).encode())
        h.update(b"\n")
    return h.hexdigest()


class ConeMemo:
    """Bounded LRU of :class:`ConeIndex` objects keyed by connectivity.

    The warm-state registry of :mod:`repro.service` installs one per
    worker process so jobs against structurally identical netlists —
    the same design under different error seeds, or repeat submissions
    — transplant the precomputed bitsets instead of re-running Tarjan
    and the OR-propagation.  Hits are rebound to the requesting netlist
    (:meth:`ConeIndex.rebind`); invalidation is structural: any rewiring
    changes the digest and simply misses.
    """

    def __init__(self, max_entries: int = 32) -> None:
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self._entries: OrderedDict[str, ConeIndex] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def index_for(self, netlist: Netlist,
                  stop_at_ffs: bool = False) -> ConeIndex:
        digest = connectivity_digest(netlist, stop_at_ffs=stop_at_ffs)
        cached = self._entries.get(digest)
        if cached is not None:
            self._entries.move_to_end(digest)
            self.hits += 1
            return cached.rebind(netlist)
        self.misses += 1
        index = ConeIndex(netlist, stop_at_ffs=stop_at_ffs)
        self._entries[digest] = index
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
        return index

    def stats(self) -> dict:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
        }


#: process-wide memo consulted by :func:`cone_index_for`; ``None`` (the
#: default) keeps every caller on the historical build-fresh path
_ACTIVE_MEMO: ConeMemo | None = None


def set_active_cone_memo(memo: ConeMemo | None) -> ConeMemo | None:
    """Install (or clear) the process-wide cone memo; returns the old one.

    Only long-lived worker processes (:mod:`repro.service.worker`)
    install one — everything else keeps the exact historical code path.
    """
    global _ACTIVE_MEMO
    previous = _ACTIVE_MEMO
    _ACTIVE_MEMO = memo
    return previous


def cone_index_for(netlist: Netlist, stop_at_ffs: bool = False) -> ConeIndex:
    """A :class:`ConeIndex` for ``netlist`` — memoized when a memo is
    installed, freshly built (bit-identical either way) when not."""
    memo = _ACTIVE_MEMO
    if memo is None:
        return ConeIndex(netlist, stop_at_ffs=stop_at_ffs)
    return memo.index_for(netlist, stop_at_ffs=stop_at_ffs)


def _reachability_bitsets(pred: tuple) -> list[int]:
    """Per-node ancestor bitsets (self included) of a possibly cyclic
    graph given per-node predecessor lists.

    Iterative Tarjan SCC; the condensation is processed in SCC emission
    order (each SCC completes after everything it reaches), so one pass
    suffices: ``cone(C) = members(C) | union(cone(D) for C→D)``.
    """
    n = len(pred)
    UNVISITED = -1
    index_of = [UNVISITED] * n
    low = [0] * n
    on_stack = bytearray(n)
    scc_of = [-1] * n
    stack: list[int] = []
    scc_cones: list[int] = []
    counter = 0
    n_sccs = 0
    cones = [0] * n

    for root in range(n):
        if index_of[root] != UNVISITED:
            continue
        # explicit DFS stack: (node, iterator position)
        work = [(root, 0)]
        while work:
            node, pi = work.pop()
            if pi == 0:
                index_of[node] = low[node] = counter
                counter += 1
                stack.append(node)
                on_stack[node] = 1
            recurse = False
            edges = pred[node]
            while pi < len(edges):
                nxt = edges[pi]
                pi += 1
                if index_of[nxt] == UNVISITED:
                    work.append((node, pi))
                    work.append((nxt, 0))
                    recurse = True
                    break
                if on_stack[nxt]:
                    if index_of[nxt] < low[node]:
                        low[node] = index_of[nxt]
            if recurse:
                continue
            if low[node] == index_of[node]:
                # pop one complete SCC; its successors are all emitted
                members = []
                while True:
                    w = stack.pop()
                    on_stack[w] = 0
                    scc_of[w] = n_sccs
                    members.append(w)
                    if w == node:
                        break
                bits = 0
                for m in members:
                    bits |= 1 << m
                for m in members:
                    for p in pred[m]:
                        if scc_of[p] != n_sccs:
                            bits |= scc_cones[scc_of[p]]
                scc_cones.append(bits)
                n_sccs += 1
            if work:
                parent = work[-1][0]
                if low[node] < low[parent]:
                    low[parent] = low[node]

    for node in range(n):
        cones[node] = scc_cones[scc_of[node]]
    return cones
