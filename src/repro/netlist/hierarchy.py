"""Design-hierarchy tree for back-annotation (paper §5.1).

Partitioning through the design flow "creates a tree structure with
children being dependent on their parents"; the paper traces a debugging
change made at any level through the sub-trees of altered nodes down to
the affected tiles.  :class:`HierNode` is that tree:

* interior nodes are HDL / RTL blocks (e.g. ``mips/alu``, ``des/round7``);
* every *leaf-level assignment* maps netlist instance names to a node;
* physical back-annotation attaches tile ids to instances (done by
  :mod:`repro.tiling`), after which :meth:`HierNode.tiles_below` answers
  "which tiles does a change to this block touch?".

Quick_ECO (the DAC'97 baseline) stops the trace at *functional blocks* —
the root's direct children — which is exactly what
:meth:`HierNode.functional_block_of` returns.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import NetlistError
from repro.netlist.core import Netlist


class HierNode:
    """One node of the design-hierarchy tree."""

    def __init__(self, name: str, parent: "HierNode" | None = None) -> None:
        self.name = name
        self.parent = parent
        self.children: dict[str, HierNode] = {}
        #: netlist instance names assigned directly to this node
        self.instances: set[str] = set()

    # ------------------------------------------------------------------
    # tree construction
    # ------------------------------------------------------------------

    def add_child(self, name: str) -> "HierNode":
        if name in self.children:
            raise NetlistError(f"hierarchy node {self.path()} already has {name!r}")
        child = HierNode(name, parent=self)
        self.children[name] = child
        return child

    def ensure_path(self, path: str) -> "HierNode":
        """Return (creating as needed) the node at ``a/b/c`` below self."""
        node = self
        for part in path.split("/"):
            if not part:
                continue
            node = node.children.get(part) or node.add_child(part)
        return node

    def assign(self, instance_names: Iterable[str]) -> None:
        self.instances.update(instance_names)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def path(self) -> str:
        parts = []
        node: HierNode | None = self
        while node is not None and node.parent is not None:
            parts.append(node.name)
            node = node.parent
        return "/".join(reversed(parts)) or "<root>"

    def root(self) -> "HierNode":
        node = self
        while node.parent is not None:
            node = node.parent
        return node

    def find(self, path: str) -> "HierNode":
        node = self
        for part in path.split("/"):
            if not part:
                continue
            if part not in node.children:
                raise NetlistError(f"no hierarchy node {path!r} below {self.path()}")
            node = node.children[part]
        return node

    def walk(self) -> Iterator["HierNode"]:
        yield self
        for child in self.children.values():
            yield from child.walk()

    def all_instances(self) -> set[str]:
        """Instances assigned anywhere in this subtree."""
        names: set[str] = set()
        for node in self.walk():
            names |= node.instances
        return names

    def functional_blocks(self) -> list["HierNode"]:
        """The coarse CAD-partitioning granularity Quick_ECO works at."""
        return list(self.root().children.values())

    def functional_block_of(self, instance_name: str) -> "HierNode":
        """The root-level block containing ``instance_name``."""
        for block in self.functional_blocks():
            if instance_name in block.all_instances():
                return block
        root = self.root()
        if instance_name in root.instances:
            return root
        raise NetlistError(f"instance {instance_name!r} not in any block")

    def node_of(self, instance_name: str) -> "HierNode":
        """The deepest node that directly owns ``instance_name``."""
        for node in self.root().walk():
            if instance_name in node.instances:
                return node
        raise NetlistError(f"instance {instance_name!r} not in hierarchy")

    # ------------------------------------------------------------------
    # consistency
    # ------------------------------------------------------------------

    def check_covers(self, netlist: Netlist) -> list[str]:
        """Report logic instances missing from the hierarchy and stale
        hierarchy entries (instances no longer in the netlist)."""
        assigned = self.root().all_instances()
        logic = {inst.name for inst in netlist.logic_instances()}
        problems = []
        for name in sorted(logic - assigned):
            problems.append(f"instance {name} not assigned to any block")
        for name in sorted(assigned - logic - {i.name for i in netlist.instances()}):
            problems.append(f"hierarchy references unknown instance {name}")
        return problems

    def adopt_new_instances(self, netlist: Netlist, node_path: str = "") -> int:
        """Assign instances that appeared after an ECO to a node.

        Corrections and instrumentation add cells; the debug flow calls
        this to keep the tree covering the netlist.  Returns the number
        of newly adopted instances.
        """
        target = self.root().ensure_path(node_path) if node_path else self.root()
        assigned = self.root().all_instances()
        fresh = [
            inst.name
            for inst in netlist.logic_instances()
            if inst.name not in assigned
        ]
        target.assign(fresh)
        return len(fresh)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HierNode({self.path()!r}, {len(self.children)} children)"


def build_flat_hierarchy(netlist: Netlist, n_blocks: int = 1) -> HierNode:
    """Hierarchy with ``n_blocks`` equal slices — what a flattened design
    looks like to Quick_ECO when no structure survived synthesis."""
    root = HierNode(netlist.name)
    logic = [inst.name for inst in netlist.logic_instances()]
    if n_blocks < 1:
        raise NetlistError("need at least one block")
    per_block = max(1, (len(logic) + n_blocks - 1) // n_blocks)
    for b in range(n_blocks):
        chunk = logic[b * per_block : (b + 1) * per_block]
        if not chunk and b > 0:
            break
        root.add_child(f"block{b}").assign(chunk)
    return root
