"""Structural netlist validation.

:func:`check_netlist` returns a list of human-readable problems (empty
when the netlist is clean) and raises :class:`ValidationError` in strict
mode.  It is cheap enough to run after every ECO edit, which the debug
flow does to guarantee injected errors and corrections keep the netlist
well-formed.
"""

from __future__ import annotations

from repro.errors import ValidationError
from repro.netlist.cells import CellKind
from repro.netlist.core import Netlist


def check_netlist(netlist: Netlist, strict: bool = True) -> list[str]:
    """Run every structural check; optionally raise on problems.

    Checks performed:

    1. connectivity back-references are consistent both ways,
    2. every instance input is a driven net,
    3. LUT truth tables fit their input count,
    4. primary outputs are driven,
    5. no combinational loops,
    6. no two instances drive the same net (guaranteed by construction,
       re-verified here against direct attribute tampering).
    """
    problems: list[str] = []
    problems.extend(_check_backrefs(netlist))
    problems.extend(_check_driven_inputs(netlist))
    problems.extend(_check_lut_tables(netlist))
    problems.extend(_check_outputs(netlist))
    problems.extend(_check_loops(netlist))
    if strict and problems:
        raise ValidationError(
            f"{netlist.name}: {len(problems)} problem(s): " + "; ".join(problems[:10])
        )
    return problems


def _check_backrefs(netlist: Netlist) -> list[str]:
    problems = []
    drivers_seen: dict[str, str] = {}
    for inst in netlist.instances():
        for idx, net in enumerate(inst.inputs):
            if not netlist.has_net(net.name) or netlist.net(net.name) is not net:
                problems.append(
                    f"{inst.name} input {idx} reads ghost net {net.name}"
                )
            if (inst, idx) not in net.sinks:
                problems.append(
                    f"pin {inst.name}[{idx}] not registered on net {net.name}"
                )
        if inst.output is not None and (
            not netlist.has_net(inst.output.name)
            or netlist.net(inst.output.name) is not inst.output
        ):
            problems.append(
                f"{inst.name} drives ghost net {inst.output.name}"
            )
        if inst.output is not None:
            if inst.output.driver is not inst:
                problems.append(
                    f"net {inst.output.name} does not point back to driver "
                    f"{inst.name}"
                )
            if inst.output.name in drivers_seen:
                problems.append(
                    f"net {inst.output.name} driven by both "
                    f"{drivers_seen[inst.output.name]} and {inst.name}"
                )
            drivers_seen[inst.output.name] = inst.name
    for net in netlist.nets():
        for sink_inst, idx in net.sinks:
            if not netlist.has_instance(sink_inst.name):
                problems.append(
                    f"net {net.name} lists removed sink {sink_inst.name}"
                )
            elif sink_inst.inputs[idx] is not net:
                problems.append(
                    f"net {net.name} sink {sink_inst.name}[{idx}] disagrees"
                )
    return problems


def _check_driven_inputs(netlist: Netlist) -> list[str]:
    problems = []
    for inst in netlist.instances():
        for idx, net in enumerate(inst.inputs):
            if net.driver is None:
                problems.append(
                    f"{inst.name} input {idx} reads undriven net {net.name}"
                )
    return problems


def _check_lut_tables(netlist: Netlist) -> list[str]:
    problems = []
    for inst in netlist.instances():
        if inst.kind is not CellKind.LUT:
            continue
        table = inst.params.get("table")
        if table is None:
            problems.append(f"LUT {inst.name} has no truth table")
            continue
        size = 1 << len(inst.inputs)
        if table < 0 or table >> size:
            problems.append(
                f"LUT {inst.name} table {table:#x} out of range for "
                f"{len(inst.inputs)} inputs"
            )
    return problems


def _check_outputs(netlist: Netlist) -> list[str]:
    problems = []
    for out in netlist.primary_outputs():
        if out.inputs[0].driver is None:
            problems.append(f"primary output {out.name} is undriven")
    return problems


def _check_loops(netlist: Netlist) -> list[str]:
    try:
        netlist.topo_order()
    except ValidationError as exc:
        return [str(exc)]
    return []
