"""Logic-netlist representation and services.

The netlist is the common currency of the whole library:

* :mod:`repro.netlist.cells` — the cell library (gates, LUT, DFF, IO).
* :mod:`repro.netlist.core` — :class:`Netlist`, :class:`Instance`,
  :class:`Net` with full mutation support for ECO edits.
* :mod:`repro.netlist.builder` — word-level construction helpers used by
  the benchmark generators (adders, muxes, popcount, registers, ...).
* :mod:`repro.netlist.validate` — structural checks.
* :mod:`repro.netlist.simulate` — levelized bit-parallel simulation.
* :mod:`repro.netlist.blif` — Berkeley BLIF (MCNC format) reader/writer.
* :mod:`repro.netlist.hierarchy` — the design-hierarchy tree used for
  back-annotation from HDL-level changes down to physical tiles.
"""

from repro.netlist.cells import (
    CellKind,
    GATE_KINDS,
    arity_of,
    eval_gate,
    is_combinational,
    is_sequential,
)
from repro.netlist.core import Adjacency, Instance, Net, Netlist, port_name
from repro.netlist.builder import NetlistBuilder, Word
from repro.netlist.compiled import CompiledKernel, kernel_for
from repro.netlist.cones import ConeIndex
from repro.netlist.hierarchy import HierNode, build_flat_hierarchy
from repro.netlist.simulate import (
    CombinationalSimulator,
    SequentialSimulator,
    initial_state,
    make_engine,
    simulate_words,
)
from repro.netlist.validate import check_netlist

__all__ = [
    "CellKind",
    "GATE_KINDS",
    "arity_of",
    "eval_gate",
    "is_combinational",
    "is_sequential",
    "Adjacency",
    "Instance",
    "Net",
    "Netlist",
    "port_name",
    "NetlistBuilder",
    "Word",
    "CompiledKernel",
    "kernel_for",
    "ConeIndex",
    "HierNode",
    "build_flat_hierarchy",
    "CombinationalSimulator",
    "SequentialSimulator",
    "initial_state",
    "make_engine",
    "simulate_words",
    "check_netlist",
]
