"""Cell library: the primitive kinds an :class:`Instance` can have.

The library is deliberately small — the synthesizable subset needed to
express the paper's benchmark designs plus the post-mapping primitives:

========  =========  =====================================================
kind      inputs     meaning
========  =========  =====================================================
INPUT     0          primary input (drives one net)
OUTPUT    1          primary output marker (consumes one net)
CONST0    0          constant logic 0
CONST1    0          constant logic 1
BUF       1          buffer
NOT       1          inverter
AND       2..8       n-ary AND
OR        2..8       n-ary OR
NAND      2..8       n-ary NAND
NOR       2..8       n-ary NOR
XOR       2..8       n-ary XOR (parity)
XNOR      2..8       complement of parity
MUX2      3          2:1 mux, ports (sel, d0, d1): out = d1 if sel else d0
DFF       1          D flip-flop on the single implicit global clock
LUT       1..4       k-input lookup table, truth table in params["table"]
========  =========  =====================================================

Evaluation works on *bit-parallel words*: every value is a Python int
whose bit ``i`` is the value of the signal under test pattern ``i``.
``mask`` is ``(1 << n_patterns) - 1`` and bounds every bitwise NOT.
"""

from __future__ import annotations

from enum import Enum
from functools import reduce
from typing import Sequence

from repro.errors import NetlistError


class CellKind(str, Enum):
    """Primitive cell kinds understood by the whole tool flow."""

    INPUT = "INPUT"
    OUTPUT = "OUTPUT"
    CONST0 = "CONST0"
    CONST1 = "CONST1"
    BUF = "BUF"
    NOT = "NOT"
    AND = "AND"
    OR = "OR"
    NAND = "NAND"
    NOR = "NOR"
    XOR = "XOR"
    XNOR = "XNOR"
    MUX2 = "MUX2"
    DFF = "DFF"
    LUT = "LUT"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Combinational logic kinds that technology mapping must absorb into LUTs.
GATE_KINDS = frozenset(
    {
        CellKind.BUF,
        CellKind.NOT,
        CellKind.AND,
        CellKind.OR,
        CellKind.NAND,
        CellKind.NOR,
        CellKind.XOR,
        CellKind.XNOR,
        CellKind.MUX2,
        CellKind.CONST0,
        CellKind.CONST1,
    }
)

#: Kinds with a fixed input count; others (n-ary gates, LUT) are variable.
_FIXED_ARITY = {
    CellKind.INPUT: 0,
    CellKind.OUTPUT: 1,
    CellKind.CONST0: 0,
    CellKind.CONST1: 0,
    CellKind.BUF: 1,
    CellKind.NOT: 1,
    CellKind.MUX2: 3,
    CellKind.DFF: 1,
}

_VARIADIC_RANGE = {
    CellKind.AND: (2, 8),
    CellKind.OR: (2, 8),
    CellKind.NAND: (2, 8),
    CellKind.NOR: (2, 8),
    CellKind.XOR: (2, 8),
    CellKind.XNOR: (2, 8),
    CellKind.LUT: (0, 4),
}

#: Maximum LUT fan-in of the XC4000 function generators.
LUT_MAX_INPUTS = 4


def arity_of(kind: CellKind, n_inputs: int) -> int:
    """Validate and return the input count for an instance of ``kind``.

    Raises :class:`NetlistError` when ``n_inputs`` is illegal for the
    kind, so malformed instances are rejected at construction time.
    """
    if kind in _FIXED_ARITY:
        expected = _FIXED_ARITY[kind]
        if n_inputs != expected:
            raise NetlistError(
                f"{kind} requires exactly {expected} input(s), got {n_inputs}"
            )
        return n_inputs
    low, high = _VARIADIC_RANGE[kind]
    if not low <= n_inputs <= high:
        raise NetlistError(
            f"{kind} accepts {low}..{high} inputs, got {n_inputs}"
        )
    return n_inputs


def is_combinational(kind: CellKind) -> bool:
    """True for kinds evaluated inside a clock cycle (includes LUT)."""
    return kind in GATE_KINDS or kind is CellKind.LUT


def is_sequential(kind: CellKind) -> bool:
    return kind is CellKind.DFF


def lut_table_for_gate(kind: CellKind, n_inputs: int) -> int:
    """Truth table (as an int) of a basic gate, for LUT absorption.

    Bit ``i`` of the result is the gate output when input ``j`` carries
    bit ``j`` of the minterm index ``i``.
    """
    size = 1 << n_inputs
    table = 0
    for minterm in range(size):
        bits = [(minterm >> j) & 1 for j in range(n_inputs)]
        value = _eval_gate_scalar(kind, bits)
        if value:
            table |= 1 << minterm
    return table


def _eval_gate_scalar(kind: CellKind, bits: Sequence[int]) -> int:
    if kind is CellKind.CONST0:
        return 0
    if kind is CellKind.CONST1:
        return 1
    if kind is CellKind.BUF:
        return bits[0]
    if kind is CellKind.NOT:
        return 1 - bits[0]
    if kind is CellKind.AND:
        return int(all(bits))
    if kind is CellKind.OR:
        return int(any(bits))
    if kind is CellKind.NAND:
        return int(not all(bits))
    if kind is CellKind.NOR:
        return int(not any(bits))
    if kind is CellKind.XOR:
        return reduce(lambda a, b: a ^ b, bits, 0)
    if kind is CellKind.XNOR:
        return 1 - reduce(lambda a, b: a ^ b, bits, 0)
    if kind is CellKind.MUX2:
        sel, d0, d1 = bits
        return d1 if sel else d0
    raise NetlistError(f"{kind} is not a combinational gate")


def eval_gate(
    kind: CellKind,
    inputs: Sequence[int],
    mask: int,
    table: int | None = None,
) -> int:
    """Evaluate one cell on bit-parallel words.

    ``inputs`` are words (ints), ``mask`` bounds NOT operations, and
    ``table`` supplies the truth table for ``LUT`` instances.
    """
    if kind is CellKind.CONST0:
        return 0
    if kind is CellKind.CONST1:
        return mask
    if kind is CellKind.BUF:
        return inputs[0]
    if kind is CellKind.NOT:
        return ~inputs[0] & mask
    if kind is CellKind.AND:
        return reduce(lambda a, b: a & b, inputs)
    if kind is CellKind.OR:
        return reduce(lambda a, b: a | b, inputs)
    if kind is CellKind.NAND:
        return ~reduce(lambda a, b: a & b, inputs) & mask
    if kind is CellKind.NOR:
        return ~reduce(lambda a, b: a | b, inputs) & mask
    if kind is CellKind.XOR:
        return reduce(lambda a, b: a ^ b, inputs)
    if kind is CellKind.XNOR:
        return ~reduce(lambda a, b: a ^ b, inputs) & mask
    if kind is CellKind.MUX2:
        sel, d0, d1 = inputs
        return (d0 & ~sel) | (d1 & sel)
    if kind is CellKind.LUT:
        return eval_lut(table or 0, inputs, mask)
    raise NetlistError(f"cannot evaluate kind {kind}")


def eval_lut(table: int, inputs: Sequence[int], mask: int) -> int:
    """Evaluate a k-input LUT truth table on bit-parallel words."""
    k = len(inputs)
    if k == 0:
        return mask if table & 1 else 0
    result = 0
    for minterm in range(1 << k):
        if not (table >> minterm) & 1:
            continue
        term = mask
        for j in range(k):
            if (minterm >> j) & 1:
                term &= inputs[j]
            else:
                term &= ~inputs[j] & mask
            if not term:
                break
        result |= term
    return result
