"""Codegen simulation engine: exec-compiled straight-line kernels.

The compiled engine (:mod:`repro.netlist.compiled`) already lowers the
netlist to an instruction tape, but replay still pays one Python
function call per gate per cycle.  This module lowers the *same tape*
one step further: the whole combinational evaluation becomes a single
generated Python function — one local-variable assignment per gate,
bit-parallel pattern words, masked complements inlined — compiled once
per netlist revision with ``exec``.  Replay is then one call per cycle
with zero per-gate dispatch, which is what the detect→localize loop is
bounded by on the thousand-CLB designs.

Three mechanisms ride on top of the generated function:

* **Incremental region recompile** — :class:`CodegenKernel` subclasses
  :class:`~repro.netlist.compiled.CompiledKernel`, so
  ``apply_changeset`` re-lowers only the ChangeSet's combinational
  fanout region exactly as the tape engine does; only the final
  tape→function step is replaced.

* **Cone-sliced probe kernels** — :meth:`CodegenKernel.cone_runner`
  restricts replay to the sequential fanin slice of a set of observed
  output ports, so a localization probe round evaluates only the logic
  that can reach the probe instead of the whole design.  Runners are
  memoized per (revision, observed-set digest) and keyed into the same
  digest-addressed cache: a previously generated slice function is
  used outright, a cold slice replays its micro-kernel tape (a strict
  subset of full replay, so probe rounds are never slower than
  full-tape replay) and self-promotes to generated code only once
  enough cycles accumulate to amortize the ``compile()`` cost.  A
  slice covering most of the tape rides the full function instead of
  compiling a near-duplicate.

* **Digest-addressed kernel caching** — generated functions are keyed
  by a SHA-256 over the lowered tape (opcodes, operand slots, LUT
  tables, destination slots, write-back set: everything the source is
  a function of) in a process-wide :class:`KernelCache`.  Two
  structurally identical netlists — the same design resubmitted to the
  service, or campaign children of one parent — share one compiled
  function.  Sources persist content-addressed under a ``cache_dir``
  (``codegen_kernels/`` beside the tile-config store) so warm daemon
  workers and process-campaign children skip generation entirely.

Results are bit-identical to both existing engines: the generated
expressions are the same masked-word algebra the micro-kernels use,
over the same lowering.
"""

from __future__ import annotations

import hashlib
import os
from collections import OrderedDict
from weakref import WeakKeyDictionary

from repro.errors import NetlistError
from repro.netlist.compiled import (
    OP_AND,
    OP_BUF,
    OP_CONST0,
    OP_CONST1,
    OP_LUT,
    OP_MUX2,
    OP_NAND,
    OP_NOR,
    OP_NOT,
    OP_OR,
    OP_XNOR,
    OP_XOR,
    CompiledKernel,
    _fn_for,
)
from repro.netlist.core import Netlist, port_name
from repro.obs.metrics import METRICS
from repro.obs.trace import maybe_span

#: header line prefixing every persisted kernel source; carries the
#: SHA-256 of the body so a damaged store entry is detected on load
_STORE_HEADER = "# repro-codegen-kernel v1 sha256="

#: directory (beside ``tile_configs``) holding persisted kernel sources
CODEGEN_STORE_NAME = "codegen_kernels"


# ----------------------------------------------------------------------
# source generation
# ----------------------------------------------------------------------


def tape_digest(ops, srcs, tables, dests, writeback) -> str:
    """SHA-256 over everything the generated source is a function of.

    Covers the lowered instruction stream — opcode, operand slots, LUT
    table, destination slot, in tape order — plus the write-back slot
    set.  Two netlists with identical lowerings (same design under
    resubmission, or a campaign sibling) therefore share one digest
    and one compiled function, which is what makes the cache
    content-addressed rather than identity-keyed.
    """
    blob = repr((
        b"repro-codegen-v1",
        tuple(ops), tuple(srcs), tuple(tables), tuple(dests),
        tuple(writeback),
    ))
    return hashlib.sha256(blob.encode()).hexdigest()


def _lut_sop(k: int, table: int, xs: list[str], nxs: list[str]):
    """Inline SOP expression for a LUT over given operand expressions.

    Same ON-set / complemented-OFF-set selection as the micro-kernel
    generator, but with operand expressions substituted directly.
    Returns ``(expression, used_complements)`` — the caller emits one
    masked-complement temporary per used index ahead of the gate line.
    """
    size = 1 << k
    full = (1 << size) - 1
    table &= full
    if table == 0:
        return "0", set()
    if table == full:
        return "m", set()
    ones = [mt for mt in range(size) if (table >> mt) & 1]
    invert = len(ones) > size // 2
    if invert:
        ones = [mt for mt in range(size) if not (table >> mt) & 1]
    terms = []
    used: set[int] = set()
    for mt in ones:
        lits = []
        for j in range(k):
            if (mt >> j) & 1:
                lits.append(xs[j])
            else:
                lits.append(nxs[j])
                used.add(j)
        terms.append("(" + " & ".join(lits) + ")")
    expr = " | ".join(terms)
    if invert:
        expr = f"~({expr}) & m"
    return expr, used


def generate_source(ops, srcs, tables, dests, writeback) -> str:
    """One straight-line function over the lowered instruction stream.

    Each gate becomes one local assignment (``t<slot> = ...``); operand
    slots computed earlier in the tape are read as locals, leaf slots
    (primary inputs, FF Q values) as ``v[<slot>]`` loads.  The
    ``writeback`` slots are stored back into ``v`` at the end so the
    caller's output/state/probe reads see them.
    """
    lines = ["def _k(v, m):"]
    computed: set[int] = set()

    def ref(slot: int) -> str:
        return f"t{slot}" if slot in computed else f"v[{slot}]"

    for i, (op, s, table, d) in enumerate(
        zip(ops, srcs, tables, dests)
    ):
        xs = [ref(slot) for slot in s]
        if op == OP_CONST0:
            body = "0"
        elif op == OP_CONST1:
            body = "m"
        elif op == OP_BUF:
            body = xs[0]
        elif op == OP_NOT:
            body = f"~{xs[0]} & m"
        elif op == OP_AND:
            body = " & ".join(xs)
        elif op == OP_OR:
            body = " | ".join(xs)
        elif op == OP_NAND:
            body = "~({}) & m".format(" & ".join(xs))
        elif op == OP_NOR:
            body = "~({}) & m".format(" | ".join(xs))
        elif op == OP_XOR:
            body = " ^ ".join(xs)
        elif op == OP_XNOR:
            body = "~({}) & m".format(" ^ ".join(xs))
        elif op == OP_MUX2:
            # ports (sel, d0, d1); identical form to eval_gate
            body = f"({xs[1]} & ~{xs[0]}) | ({xs[2]} & {xs[0]})"
        elif op == OP_LUT:
            nxs = [f"n{i}_{j}" for j in range(len(s))]
            body, used = _lut_sop(len(s), table or 0, xs, nxs)
            for j in sorted(used):
                lines.append(f"    {nxs[j]} = ~{xs[j]} & m")
        else:  # pragma: no cover - lowering rejects unknown kinds
            raise NetlistError(f"cannot generate code for opcode {op}")
        lines.append(f"    t{d} = {body}")
        computed.add(d)
    for d in writeback:
        if d in computed:
            lines.append(f"    v[{d}] = t{d}")
    if len(lines) == 1:
        lines.append("    pass")
    return "\n".join(lines) + "\n"


def _exec_source(digest: str, source: str):
    namespace: dict = {}
    exec(compile(source, f"<codegen {digest[:12]}>", "exec"), namespace)
    return namespace["_k"]


# ----------------------------------------------------------------------
# digest-addressed process-wide cache
# ----------------------------------------------------------------------


class KernelCache:
    """Bounded LRU of generated kernels keyed by tape digest.

    Entries hold the generated source and, once exec'd, the compiled
    function.  Sources seeded from a persisted store (:func:`
    load_kernel_sources`) exec lazily on first use — a warm hit skips
    source generation entirely and, within one process, compilation
    too.  The service :class:`~repro.service.warm.WarmRegistry` owns
    one per worker and installs it via
    :func:`set_active_kernel_cache`.
    """

    def __init__(self, max_entries: int = 256) -> None:
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.seeded = 0
        #: digest -> [source, compiled fn or None]
        self._entries: OrderedDict[str, list] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, digest: str):
        """The compiled function for ``digest``, or ``None`` on miss."""
        entry = self._entries.get(digest)
        if entry is not None:
            self._entries.move_to_end(digest)
            if entry[1] is None:
                try:
                    entry[1] = _exec_source(digest, entry[0])
                except (SyntaxError, ValueError, KeyError):
                    # a damaged seeded source must never poison the
                    # run — drop it and regenerate from the netlist
                    del self._entries[digest]
                    self.misses += 1
                    METRICS.inc("repro_codegen_cache_misses_total")
                    return None
            self.hits += 1
            METRICS.inc("repro_codegen_cache_hits_total")
            return entry[1]
        self.misses += 1
        METRICS.inc("repro_codegen_cache_misses_total")
        return None

    def put(self, digest: str, source: str, fn) -> None:
        self._entries[digest] = [source, fn]
        self._entries.move_to_end(digest)
        self._trim()

    def seed(self, digest: str, source: str) -> None:
        """Insert a persisted source without compiling it yet."""
        if digest not in self._entries:
            self._entries[digest] = [source, None]
            self.seeded += 1
            self._trim()

    def _trim(self) -> None:
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def sources(self) -> dict[str, str]:
        return {d: e[0] for d, e in self._entries.items()}

    def stats(self) -> dict:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "seeded": self.seeded,
        }


#: the process-wide cache; always active (codegen is content-addressed
#: by construction, so sharing is safe by the digest's definition)
_ACTIVE_CACHE = KernelCache()


def set_active_kernel_cache(cache: KernelCache) -> KernelCache:
    """Install the process-wide kernel cache; returns the old one.

    Long-lived worker processes install the warm registry's cache so
    hit/miss accounting and persistence are registry-scoped.
    """
    global _ACTIVE_CACHE
    previous = _ACTIVE_CACHE
    _ACTIVE_CACHE = cache
    return previous


def active_kernel_cache() -> KernelCache:
    return _ACTIVE_CACHE


def _fn_for_tape(ops, srcs, tables, dests, writeback, kind: str,
                 digest: str | None = None):
    """(digest, compiled function) for one lowered instruction stream.

    Cache hits skip generation and compilation; misses generate under a
    ``kernel_compile`` tracer span so ``report --timings`` can expose
    codegen cost.  ``kind="cone"`` slice compilations are counted here
    (full/incremental lowerings are counted by the kernel itself).
    """
    cache = _ACTIVE_CACHE
    if digest is None:
        digest = tape_digest(ops, srcs, tables, dests, writeback)
    fn = cache.get(digest)
    if fn is not None:
        return digest, fn
    if kind == "cone":
        METRICS.inc("repro_kernel_compiles_total",
                    engine="codegen", kind="cone")
    with maybe_span("kernel_compile", category="engine",
                    engine="codegen", kind=kind,
                    instructions=len(ops)):
        source = generate_source(ops, srcs, tables, dests, writeback)
        fn = _exec_source(digest, source)
    cache.put(digest, source, fn)
    return digest, fn


# ----------------------------------------------------------------------
# cone-sliced probe runners
# ----------------------------------------------------------------------


def observed_digest(ports) -> str:
    """SHA-256 identity of an observed-port set (order-insensitive)."""
    h = hashlib.sha256()
    for port in sorted(ports):
        h.update(port.encode())
        h.update(b"\n")
    return h.hexdigest()


class ConeRunner:
    """Sequential replay restricted to one observed-port fanin slice.

    Bit-identical to stepping the full engine and reading the same
    ports: the sequential fanin cone is closed under fanin, so every
    value a slice gate or slice FF reads is itself computed by the
    slice (or filled from a leaf).  Holds its own FF state — callers
    ``reset`` then ``step`` it exactly like an emulator.

    Replay has two backends.  A cached generated function (a warm
    daemon worker, or a slice digest seen before) is used outright.
    Otherwise the slice replays its micro-kernel tape — a strict
    subset of the full tape replay, so a probe round is never slower
    than full replay — and *promotes* itself to generated code only
    after enough cumulative cycles for the ``compile()`` cost (about
    two orders of magnitude above one sliced replay cycle) to
    amortize.  A short probe verdict never compiles; a long-lived
    slice eventually does.
    """

    #: cumulative replay cycles after which a tape-backed slice is
    #: worth compiling to a generated function
    PROMOTE_AFTER_CYCLES = 256

    def __init__(self, fn, inputs, ffs, outs, n_slots: int,
                 tape=None, promote=None) -> None:
        self._fn = fn  # generated function, or None while tape-backed
        self._tape = tape  # [(micro_fn, srcs, dest)] when fn is None
        self._promote = promote  # () -> generated fn, once warranted
        self._inputs = inputs  # [(port, slot)]
        self._ffs = ffs  # [(name, slot_q, init, slot_d)]
        self._outs = outs  # [(port, slot)]
        self._n_slots = n_slots
        self.state: dict[str, int] = {}
        self.cycle = 0
        self.cycles_replayed = 0

    @property
    def n_ffs(self) -> int:
        return len(self._ffs)

    def reset(self, n_patterns: int = 1) -> None:
        mask = (1 << n_patterns) - 1
        self.state = {
            name: (mask if init else 0)
            for name, _, init, _ in self._ffs
        }
        self.cycle = 0

    def step(
        self, inputs: dict[str, int], n_patterns: int = 1
    ) -> dict[str, int]:
        if n_patterns < 1:
            raise NetlistError("need at least one pattern")
        mask = (1 << n_patterns) - 1
        v = [0] * self._n_slots
        for port, slot in self._inputs:
            v[slot] = inputs.get(port, 0) & mask
        state = self.state
        for name, slot_q, init, _ in self._ffs:
            word = state.get(name)
            if word is None:
                word = mask if init else 0
            else:
                word &= mask
            v[slot_q] = word
        fn = self._fn
        if (fn is None and self._promote is not None
                and self.cycles_replayed >= self.PROMOTE_AFTER_CYCLES):
            self._fn = fn = self._promote()
            self._promote = None
        if fn is not None:
            fn(v, mask)
        else:
            for micro, s, d in self._tape:
                v[d] = micro(v, s, mask)
        self.cycles_replayed += 1
        self.state = {
            name: v[slot_d] for name, _, _, slot_d in self._ffs
        }
        self.cycle += 1
        return {port: v[slot] for port, slot in self._outs}


# ----------------------------------------------------------------------
# the kernel
# ----------------------------------------------------------------------


class CodegenKernel(CompiledKernel):
    """Straight-line exec-compiled form of one netlist.

    Same lowering, same incremental-recompile machinery and same public
    API as :class:`CompiledKernel`; only the tape→evaluator step
    differs — one generated function instead of a per-gate call loop.
    """

    engine_name = "codegen"

    #: cone runners retained per (revision, observed-set digest)
    _CONE_RUNNER_LIMIT = 16

    def __init__(self, netlist: Netlist) -> None:
        self._cone_runners: OrderedDict[tuple, ConeRunner] = OrderedDict()
        self._compile_kind = "full"
        super().__init__(netlist)

    # -- compilation ---------------------------------------------------

    def _compile_full(self) -> None:
        self._compile_kind = "full"
        self._cone_runners.clear()
        super()._compile_full()

    def _apply_incremental(self, changes) -> None:
        self._compile_kind = "incremental"
        super()._apply_incremental(changes)
        self._cone_runners.clear()

    def _rebuild_tape(self) -> None:
        # Nothing happens eagerly.  Generating and exec'ing the
        # full-design source costs more than an entire probe round on
        # the large designs, probe verdicts run on cone slices, and
        # even the tape digest is O(tape) — so the digest, the full
        # function and the micro-kernel tape all materialize lazily,
        # the first time something actually needs them.
        self._digest = None
        self._fn = None
        self._micro_full = None

    @property
    def kernel_digest(self) -> str:
        if self._digest is None:
            self._digest = tape_digest(
                self._ops, self._srcs, self._tables, self._dests,
                tuple(self._dests),
            )
        return self._digest

    def _materialize(self):
        _, fn = _fn_for_tape(
            self._ops, self._srcs, self._tables, self._dests,
            tuple(self._dests), self._compile_kind,
            digest=self.kernel_digest,
        )
        self._fn = fn
        return fn

    def _replay(self, v: list[int], mask: int) -> None:
        fn = self._fn
        if fn is None:
            fn = self._materialize()
        fn(v, mask)

    # -- cone slicing --------------------------------------------------

    def cone_runner(self, ports) -> ConeRunner | None:
        """Sliced runner for the sequential fanin cone of ``ports``.

        ``None`` when a port is not a primary output of the netlist.
        Memoized per (revision, observed-set digest), so repeated probe
        rounds against an unchanged netlist reuse the slice.
        """
        self.ensure_current()
        ports = tuple(ports)
        key = (self._revision, observed_digest(ports))
        runner = self._cone_runners.get(key)
        if runner is not None:
            self._cone_runners.move_to_end(key)
            return runner
        runner = self._build_cone_runner(ports)
        if runner is None:
            return None
        self._cone_runners[key] = runner
        while len(self._cone_runners) > self._CONE_RUNNER_LIMIT:
            self._cone_runners.popitem(last=False)
        return runner

    def _build_cone_runner(self, ports: tuple) -> ConeRunner | None:
        nl = self.netlist
        by_port = {port_name(po): po for po in nl.primary_outputs()}
        seeds = []
        for port in ports:
            po = by_port.get(port)
            if po is None:
                return None
            seeds.append(po)
        cone = nl.fanin_cone(seeds, stop_at_ffs=False)
        outs = [
            (port, self._slot_of_net[by_port[port].inputs[0].name])
            for port in ports
        ]
        keep = [
            i for i, name in enumerate(self._instr_names)
            if name in cone
        ]
        if len(keep) * 2 >= len(self._ops):
            # The slice is a large fraction of the tape, so slicing
            # saves little replay — ride the full function instead.
            # Observation points add no tape instruction, so across
            # probe rounds the full digest is unchanged and the cache
            # hands the compiled function back for free; only when it
            # is genuinely absent does the runner fall back to the
            # micro tape and promote through the kernel's own lazy
            # materialization (sharing the compiled form).
            fn = self._fn
            if fn is None:
                fn = self._fn = _ACTIVE_CACHE.get(self.kernel_digest)
            tape = promote = None
            if fn is None:
                tape = self._micro_tape(range(len(self._ops)))
                promote = self._materialize
            return ConeRunner(
                fn, list(self._inputs), list(self._ffs),
                outs, self._n_slots, tape=tape, promote=promote,
            )
        ffs = [entry for entry in self._ffs if entry[0] in cone]
        inputs = [
            (port_name(pi), self._slot_of_net[pi.output.name])
            for pi in nl.primary_inputs()
            if pi.name in cone
        ]
        ops = [self._ops[i] for i in keep]
        srcs = [self._srcs[i] for i in keep]
        tables = [self._tables[i] for i in keep]
        dests = [self._dests[i] for i in keep]
        writeback = tuple(sorted(
            {slot_d for _, _, _, slot_d in ffs}
            | {slot for _, slot in outs}
        ))
        digest = tape_digest(ops, srcs, tables, dests, writeback)
        fn = _ACTIVE_CACHE.get(digest)  # warm hit: skip codegen outright
        tape = promote = None
        if fn is None:
            tape = self._micro_tape(keep)

            def promote():
                return _fn_for_tape(
                    ops, srcs, tables, dests, writeback, "cone",
                    digest=digest,
                )[1]

        return ConeRunner(
            fn, inputs, ffs, outs, self._n_slots,
            tape=tape, promote=promote,
        )

    def _micro_tape(self, indices):
        """Micro-kernel tape entries for a subset of instructions.

        The full tape is built once per revision; slices index into it
        so successive probe rounds pay O(slice), not O(tape).
        """
        if self._micro_full is None:
            self._micro_full = [
                (_fn_for(op, len(s), table), s, d)
                for op, s, table, d in zip(
                    self._ops, self._srcs, self._tables, self._dests
                )
            ]
        full = self._micro_full
        return [full[i] for i in indices]


# ----------------------------------------------------------------------
# shared kernels
# ----------------------------------------------------------------------

_KERNELS: "WeakKeyDictionary[Netlist, CodegenKernel]" = WeakKeyDictionary()


def codegen_kernel_for(netlist: Netlist) -> CodegenKernel:
    """One shared codegen kernel per netlist (revision-checked on use)."""
    kernel = _KERNELS.get(netlist)
    if kernel is None:
        kernel = CodegenKernel(netlist)
        _KERNELS[netlist] = kernel
    return kernel


# ----------------------------------------------------------------------
# content-addressed persistence (beside the tile-config store)
# ----------------------------------------------------------------------


def codegen_store_path(cache_dir: str) -> str:
    """``<cache_dir>/codegen_kernels`` — sibling of ``tile_configs``."""
    return os.path.join(cache_dir, CODEGEN_STORE_NAME)


def save_kernel_sources(
    cache_dir: str, cache: KernelCache | None = None
) -> int:
    """Persist generated sources content-addressed by tape digest.

    Atomic temp+replace writes, skip-if-present (content addressing
    makes every entry immutable).  Returns the number written.
    """
    cache = cache if cache is not None else _ACTIVE_CACHE
    sources = cache.sources()
    if not sources:
        return 0
    root = codegen_store_path(cache_dir)
    os.makedirs(root, exist_ok=True)
    written = 0
    for digest, source in sources.items():
        path = os.path.join(root, f"{digest}.py")
        if os.path.exists(path):
            continue
        body_sha = hashlib.sha256(source.encode()).hexdigest()
        tmp = f"{path}.tmp{os.getpid()}"
        try:
            with open(tmp, "w") as fh:
                fh.write(f"{_STORE_HEADER}{body_sha}\n")
                fh.write(source)
            os.replace(tmp, path)
        except OSError:
            continue
        written += 1
    return written


def load_kernel_sources(
    cache_dir: str, cache: KernelCache | None = None
) -> int:
    """Seed the cache from a persisted store; returns entries loaded.

    Entries whose body hash disagrees with the header (torn or damaged
    writes) are skipped — the kernel regenerates from the netlist, so
    a hostile or corrupt store can only cost time, never correctness.
    """
    cache = cache if cache is not None else _ACTIVE_CACHE
    root = codegen_store_path(cache_dir)
    try:
        names = sorted(os.listdir(root))
    except OSError:
        return 0
    loaded = 0
    for name in names:
        if not name.endswith(".py"):
            continue
        digest = name[:-3]
        try:
            with open(os.path.join(root, name)) as fh:
                header = fh.readline()
                source = fh.read()
        except OSError:
            continue
        if not header.startswith(_STORE_HEADER):
            continue
        body_sha = header[len(_STORE_HEADER):].strip()
        if hashlib.sha256(source.encode()).hexdigest() != body_sha:
            continue
        cache.seed(digest, source)
        loaded += 1
    return loaded
