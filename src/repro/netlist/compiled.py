"""Compiled levelized simulation kernel.

The interpreted engine (:class:`~repro.netlist.simulate.CombinationalSimulator`)
walks ``Instance`` objects and pays, per gate and per cycle, a net-name
dict lookup for every input pin plus the :func:`~repro.netlist.cells.eval_gate`
kind-dispatch chain (and, for LUTs, a 2^k-minterm interpretation loop).
This module lowers the netlist **once** into a flat *instruction tape*
and replays that tape, which is what makes the detect→localize loop
cheap enough to run per probe round on the thousand-CLB designs.

Instruction-tape layout
=======================

Lowering assigns every net a dense integer *slot* in a flat value array
``v`` (bit-parallel pattern words, exactly the representation of the
interpreted engine).  Each combinational instance becomes one tape entry
across four parallel arrays, indexed by tape position:

* ``ops[i]``    — integer opcode (one per :class:`CellKind`);
* ``srcs[i]``   — tuple of operand slot indices (input pin order);
* ``tables[i]`` — LUT truth table int, or ``None`` for fixed gates;
* ``dests[i]``  — output slot index.

Primary inputs and DFF Q values are *leaves*: their slots are filled
from the stimulus/state dicts before the tape runs, so the tape itself
is pure straight-line combinational evaluation in topological order.
OUTPUT markers and DFF D pins are metadata (slot references), not
instructions.

Each ``(opcode, arity, table)`` signature is code-generated once into a
tiny evaluator function (e.g. a 4-input XOR LUT becomes
``lambda-like f(v, s, m): x0^x1^x2^x3`` with masked complements for
SOP tables) and cached process-wide, so tape replay is one function
call per gate — no per-gate kind dispatch, no dict lookups, no minterm
loops.  Results are bit-exact against the interpreted engine.

Incremental recompile
=====================

ECO edits arrive as :class:`~repro.tiling.eco.ChangeSet` deltas.
:meth:`CompiledKernel.apply_changeset` re-lowers **only the combinational
fanout region** of the touched instances: because that region is
fanout-closed, its old tape entries can be dropped and the freshly
lowered region appended after the surviving prefix while preserving
topological validity.  Mutations made without a changeset are caught by
the :class:`~repro.netlist.core.Netlist` revision counter and trigger a
full recompile, so the kernel can never silently run stale.
"""

from __future__ import annotations

from weakref import WeakKeyDictionary

from repro.errors import NetlistError
from repro.netlist.cells import CellKind
from repro.netlist.core import Instance, Netlist, port_name
from repro.obs.metrics import METRICS

# ----------------------------------------------------------------------
# opcodes
# ----------------------------------------------------------------------

OP_CONST0 = 0
OP_CONST1 = 1
OP_BUF = 2
OP_NOT = 3
OP_AND = 4
OP_OR = 5
OP_NAND = 6
OP_NOR = 7
OP_XOR = 8
OP_XNOR = 9
OP_MUX2 = 10
OP_LUT = 11

_KIND_TO_OP = {
    CellKind.CONST0: OP_CONST0,
    CellKind.CONST1: OP_CONST1,
    CellKind.BUF: OP_BUF,
    CellKind.NOT: OP_NOT,
    CellKind.AND: OP_AND,
    CellKind.OR: OP_OR,
    CellKind.NAND: OP_NAND,
    CellKind.NOR: OP_NOR,
    CellKind.XOR: OP_XOR,
    CellKind.XNOR: OP_XNOR,
    CellKind.MUX2: OP_MUX2,
    CellKind.LUT: OP_LUT,
}

#: tape instructions exist only for these kinds; INPUT/DFF are leaves,
#: OUTPUT markers are metadata
_LEAF_KINDS = (CellKind.INPUT, CellKind.DFF, CellKind.OUTPUT)


# ----------------------------------------------------------------------
# micro-kernel code generation (cached per signature)
# ----------------------------------------------------------------------

_FN_CACHE: dict[tuple[int, int, int | None], object] = {}


def _lut_expr(k: int, table: int) -> str:
    """Masked sum-of-products expression for a k-input LUT table.

    Uses ``x{j}`` / ``nx{j}`` names bound in the generated preamble;
    picks the sparser of the ON-set and complemented OFF-set forms.
    """
    size = 1 << k
    full = (1 << size) - 1
    table &= full
    if table == 0:
        return "0"
    if table == full:
        return "m"
    ones = [mt for mt in range(size) if (table >> mt) & 1]
    invert = len(ones) > size // 2
    if invert:
        ones = [mt for mt in range(size) if not (table >> mt) & 1]
    terms = []
    for mt in ones:
        lits = [
            f"x{j}" if (mt >> j) & 1 else f"nx{j}" for j in range(k)
        ]
        terms.append("(" + " & ".join(lits) + ")")
    expr = " | ".join(terms)
    if invert:
        expr = f"~({expr}) & m"
    return expr


def _gen_source(op: int, k: int, table: int | None) -> str:
    xs = [f"x{i}" for i in range(k)]
    loads = [f"    x{i} = v[s[{i}]]" for i in range(k)]
    if op == OP_CONST0:
        body = "0"
    elif op == OP_CONST1:
        body = "m"
    elif op == OP_BUF:
        body = "x0"
    elif op == OP_NOT:
        body = "~x0 & m"
    elif op == OP_AND:
        body = " & ".join(xs)
    elif op == OP_OR:
        body = " | ".join(xs)
    elif op == OP_NAND:
        body = "~({}) & m".format(" & ".join(xs))
    elif op == OP_NOR:
        body = "~({}) & m".format(" | ".join(xs))
    elif op == OP_XOR:
        body = " ^ ".join(xs)
    elif op == OP_XNOR:
        body = "~({}) & m".format(" ^ ".join(xs))
    elif op == OP_MUX2:
        # ports (sel, d0, d1); identical form to eval_gate for exactness
        body = "(x1 & ~x0) | (x2 & x0)"
    elif op == OP_LUT:
        expr = _lut_expr(k, table or 0)
        if "nx" in expr:
            loads += [f"    nx{i} = ~x{i} & m" for i in range(k)]
        body = expr
    else:  # pragma: no cover - lowering rejects unknown kinds
        raise NetlistError(f"no micro-kernel for opcode {op}")
    lines = ["def _f(v, s, m):"] + loads + [f"    return {body}"]
    return "\n".join(lines)


def _fn_for(op: int, k: int, table: int | None):
    """Evaluator ``f(values, src_slots, mask)`` for one signature."""
    key = (op, k, table if op == OP_LUT else None)
    fn = _FN_CACHE.get(key)
    if fn is None:
        namespace: dict = {}
        source = _gen_source(op, k, table)
        exec(compile(source, f"<microkernel {key}>", "exec"), namespace)
        fn = namespace["_f"]
        _FN_CACHE[key] = fn
    return fn


# ----------------------------------------------------------------------
# the kernel
# ----------------------------------------------------------------------


class CompiledKernel:
    """Lowered, replayable form of one netlist.

    API-compatible with :class:`CombinationalSimulator` (``run``,
    ``next_state``, ``probe``) and bit-exact against it.  Use
    :func:`kernel_for` to share one kernel per netlist across the
    emulator, sequential simulator and localizer.
    """

    #: metric label distinguishing this kernel from subclasses
    engine_name = "compiled"

    def __init__(self, netlist: Netlist) -> None:
        self.netlist = netlist
        #: diagnostics: full lowerings / incremental re-lowerings done
        self.compile_count = 0
        self.incremental_count = 0
        self._compile_full()

    # -- lowering ------------------------------------------------------

    def _compile_full(self) -> None:
        nl = self.netlist
        self._slot_of_net: dict[str, int] = {}
        self._ops: list[int] = []
        self._srcs: list[tuple[int, ...]] = []
        self._tables: list[int | None] = []
        self._dests: list[int] = []
        self._instr_names: list[str] = []

        order = nl.topo_order()
        for net in nl.nets():
            self._slot_of_net[net.name] = len(self._slot_of_net)
        for inst in order:
            if inst.kind in _LEAF_KINDS:
                continue
            self._append_instr(inst)
        self._rebuild_metadata()
        self._rebuild_tape()
        self._revision = nl.revision
        self.compile_count += 1
        METRICS.inc("repro_kernel_compiles_total",
                    engine=self.engine_name, kind="full")

    def _slot(self, net_name: str) -> int:
        slot = self._slot_of_net.get(net_name)
        if slot is None:
            slot = len(self._slot_of_net)
            self._slot_of_net[net_name] = slot
        return slot

    def _lower(self, inst: Instance) -> tuple:
        op = _KIND_TO_OP.get(inst.kind)
        if op is None:
            raise NetlistError(
                f"cannot lower {inst.kind} instance {inst.name!r}"
            )
        srcs = tuple(self._slot(net.name) for net in inst.inputs)
        table = inst.params.get("table") if op == OP_LUT else None
        dest = self._slot(inst.output.name)
        return op, srcs, table, dest

    def _append_instr(self, inst: Instance) -> None:
        op, srcs, table, dest = self._lower(inst)
        self._ops.append(op)
        self._srcs.append(srcs)
        self._tables.append(table)
        self._dests.append(dest)
        self._instr_names.append(inst.name)

    def _rebuild_metadata(self) -> None:
        """Leaf/IO slot maps; O(inputs + FFs + outputs), always rebuilt."""
        nl = self.netlist
        self._inputs = [
            (port_name(pi), self._slot(pi.output.name))
            for pi in nl.primary_inputs()
        ]
        self._ffs = [
            (
                ff.name,
                self._slot(ff.output.name),
                ff.params.get("init", 0),
                self._slot(ff.inputs[0].name),
            )
            for ff in nl.flip_flops()
        ]
        self._outputs = [
            (port_name(po), self._slot(po.inputs[0].name))
            for po in nl.primary_outputs()
        ]
        # probe view mirrors the interpreted engine: the output net of
        # every non-OUTPUT instance
        self._probe_slots = [
            (inst.output.name, self._slot(inst.output.name))
            for inst in nl.instances()
            if inst.kind is not CellKind.OUTPUT
        ]
        self._n_slots = len(self._slot_of_net)

    def _rebuild_tape(self) -> None:
        self._tape = list(
            zip(
                (
                    _fn_for(op, len(srcs), table)
                    for op, srcs, table in zip(
                        self._ops, self._srcs, self._tables
                    )
                ),
                self._srcs,
                self._dests,
            )
        )

    # -- incremental recompile -----------------------------------------

    def ensure_current(self) -> None:
        """Full recompile if the netlist mutated behind our back."""
        if self.netlist.revision != self._revision:
            self._compile_full()

    def apply_changeset(self, changes) -> None:
        """Re-lower only the combinational fanout region of a ChangeSet.

        ``changes`` is a :class:`repro.tiling.eco.ChangeSet`.  The
        incremental path is taken only when ``changes.base_revision``
        matches the revision this kernel last synchronized to — i.e.
        the changeset provably covers every mutation since then.  A
        gap (untracked edits between syncs), an unknown provenance, or
        a delta that cannot be applied (e.g. a combinational loop
        introduced mid-edit) all fall back to a full recompile, so a
        partial changeset can never silently leave a stale tape.
        """
        nl = self.netlist
        if nl.revision == self._revision:
            return
        base = getattr(changes, "base_revision", None)
        if base is None or base != self._revision:
            self._compile_full()
            return
        try:
            self._apply_incremental(changes)
        except Exception:
            self._compile_full()

    def _apply_incremental(self, changes) -> None:
        nl = self.netlist
        touched = changes.changed_instances | changes.new_instances
        seeds = [nl.instance(n) for n in touched if nl.has_instance(n)]
        gone = set(changes.removed_instances) | {
            n for n in touched if not nl.has_instance(n)
        }
        # the comb fanout region; every tape entry reading a region
        # output is itself in the region, so the region can be re-lowered
        # and appended after the surviving (still topologically sorted)
        # prefix
        region = nl.fanout_cone(seeds, stop_at_ffs=True) if seeds else set()
        drop = region | gone
        keep = [
            i
            for i, name in enumerate(self._instr_names)
            if name not in drop
        ]
        self._ops = [self._ops[i] for i in keep]
        self._srcs = [self._srcs[i] for i in keep]
        self._tables = [self._tables[i] for i in keep]
        self._dests = [self._dests[i] for i in keep]
        self._instr_names = [self._instr_names[i] for i in keep]

        # slots for any nets created by the edit
        for net in nl.nets():
            if net.name not in self._slot_of_net:
                self._slot(net.name)

        for inst in self._region_topo(region):
            self._append_instr(inst)
        self._rebuild_metadata()
        self._rebuild_tape()
        self._revision = nl.revision
        self.incremental_count += 1
        METRICS.inc("repro_kernel_compiles_total",
                    engine=self.engine_name, kind="incremental")

    def _region_topo(self, region: set[str]) -> list[Instance]:
        """Topological order of the region's combinational instances."""
        nl = self.netlist
        members = [
            nl.instance(n)
            for n in region
            if nl.has_instance(n)
            and nl.instance(n).kind not in _LEAF_KINDS
        ]
        member_names = {inst.name for inst in members}
        indegree: dict[str, int] = {}
        for inst in members:
            deps = 0
            for net in inst.inputs:
                drv = net.driver
                if drv is not None and drv.name in member_names:
                    deps += 1
            indegree[inst.name] = deps
        ready = sorted(
            (inst for inst in members if indegree[inst.name] == 0),
            key=lambda i: i.name,
        )
        order: list[Instance] = []
        while ready:
            inst = ready.pop()
            order.append(inst)
            if inst.output is None:
                continue
            for sink, _ in inst.output.sinks:
                if sink.name in indegree and not sink.is_ff:
                    indegree[sink.name] -= 1
                    if indegree[sink.name] == 0:
                        ready.append(sink)
        if len(order) != len(members):
            raise NetlistError("combinational loop inside ECO region")
        return order

    # -- evaluation ----------------------------------------------------

    def _evaluate(
        self, inputs: dict[str, int], n_patterns: int, state: dict[str, int]
    ) -> list[int]:
        if n_patterns < 1:
            raise NetlistError("need at least one pattern")
        mask = (1 << n_patterns) - 1
        v = [0] * self._n_slots
        for port, slot in self._inputs:
            try:
                v[slot] = inputs[port] & mask
            except KeyError:
                raise NetlistError(
                    f"no stimulus for primary input {port!r}"
                ) from None
        for name, slot_q, init, _ in self._ffs:
            word = state.get(name)
            if word is None:
                word = mask if init else 0
            else:
                word &= mask
            v[slot_q] = word
        self._replay(v, mask)
        return v

    def _replay(self, v: list[int], mask: int) -> None:
        """Evaluate the lowered combinational logic in place.

        The codegen subclass overrides this with one straight-line
        generated function call; here it is the tape replay loop.
        """
        for fn, s, d in self._tape:
            v[d] = fn(v, s, mask)

    def run(
        self,
        inputs: dict[str, int],
        n_patterns: int,
        state: dict[str, int] | None = None,
    ) -> dict[str, int]:
        """Primary-output words for the given input words."""
        self.ensure_current()
        v = self._evaluate(inputs, n_patterns, state or {})
        return {name: v[slot] for name, slot in self._outputs}

    def next_state(
        self,
        inputs: dict[str, int],
        n_patterns: int,
        state: dict[str, int],
    ) -> tuple[dict[str, int], dict[str, int]]:
        """(outputs, next FF state) for one clock cycle."""
        self.ensure_current()
        v = self._evaluate(inputs, n_patterns, state)
        outputs = {name: v[slot] for name, slot in self._outputs}
        nxt = {name: v[slot_d] for name, _, _, slot_d in self._ffs}
        return outputs, nxt

    def probe(
        self,
        inputs: dict[str, int],
        n_patterns: int,
        state: dict[str, int] | None = None,
    ) -> dict[str, int]:
        """The word on every driven net — used by error localization."""
        self.ensure_current()
        v = self._evaluate(inputs, n_patterns, state or {})
        return {name: v[slot] for name, slot in self._probe_slots}

    @property
    def n_instructions(self) -> int:
        return len(self._ops)


# ----------------------------------------------------------------------
# shared kernels
# ----------------------------------------------------------------------

_KERNELS: "WeakKeyDictionary[Netlist, CompiledKernel]" = WeakKeyDictionary()


def kernel_for(netlist: Netlist) -> CompiledKernel:
    """One shared kernel per netlist (revision-checked on every use)."""
    kernel = _KERNELS.get(netlist)
    if kernel is None:
        kernel = CompiledKernel(netlist)
        _KERNELS[netlist] = kernel
    return kernel
