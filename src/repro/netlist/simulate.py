"""Levelized bit-parallel logic simulation.

Values are Python ints used as bit-vectors: bit ``i`` of a word is the
signal value under test pattern ``i``.  A single pass therefore evaluates
an arbitrary number of patterns at once, which keeps golden-model
emulation of the thousand-CLB designs fast enough for the debug loop.

Three combinational engines are provided behind one interface
(``run`` / ``next_state`` / ``probe``):

* :class:`CombinationalSimulator` — the retained interpreted engine,
  walking instances and dispatching through ``eval_gate``;
* :class:`repro.netlist.compiled.CompiledKernel` — the instruction-tape
  engine (bit-exact, much faster); selected with ``engine="compiled"``
  and shared per netlist via :func:`repro.netlist.compiled.kernel_for`;
* :class:`repro.netlist.codegen.CodegenKernel` — the tape lowered once
  more into one exec-compiled straight-line function per revision
  (bit-exact, fastest); selected with ``engine="codegen"`` and shared
  via :func:`repro.netlist.codegen.codegen_kernel_for`.

:class:`SequentialSimulator` layers flip-flop state on either engine and
is the reference model for :mod:`repro.emu`.
"""

from __future__ import annotations

from repro.errors import NetlistError
from repro.netlist.cells import CellKind, eval_gate
from repro.netlist.core import Instance, Netlist, port_name

_port_name = port_name  # retained alias


def initial_state(netlist: Netlist, n_patterns: int) -> dict[str, int]:
    """Every FF's init value replicated across ``n_patterns`` patterns.

    The single source of truth for reset state, shared by the
    sequential simulator, the emulator and the localizer's golden run.
    """
    mask = (1 << n_patterns) - 1
    return {
        ff.name: (mask if ff.params.get("init", 0) else 0)
        for ff in netlist.flip_flops()
    }


def make_engine(netlist: Netlist, engine: str = "compiled"):
    """Combinational engine factory: ``"codegen"``, ``"compiled"`` or
    ``"interpreted"``.

    The codegen and compiled engines are shared per netlist (one
    lowering reused by every consumer); the interpreted engine is
    constructed fresh.
    """
    if engine == "compiled":
        from repro.netlist.compiled import kernel_for

        return kernel_for(netlist)
    if engine == "codegen":
        from repro.netlist.codegen import codegen_kernel_for

        return codegen_kernel_for(netlist)
    if engine == "interpreted":
        return CombinationalSimulator(netlist)
    raise NetlistError(
        f"unknown engine {engine!r}; "
        "choose 'codegen', 'compiled' or 'interpreted'"
    )


class CombinationalSimulator:
    """Evaluate the combinational view of a netlist on pattern words.

    Flip-flops are treated as pseudo-inputs (their Q value may be
    supplied via ``state``) and pseudo-outputs (next-state D values are
    returned when ``with_state`` is set).
    """

    def __init__(self, netlist: Netlist) -> None:
        self.netlist = netlist
        self._order = [
            inst
            for inst in netlist.topo_order()
            if inst.kind is not CellKind.OUTPUT
        ]
        self._outputs = [
            (_port_name(po), po.inputs[0]) for po in netlist.primary_outputs()
        ]

    def run(
        self,
        inputs: dict[str, int],
        n_patterns: int,
        state: dict[str, int] | None = None,
    ) -> dict[str, int]:
        """Return primary-output words for the given input words.

        ``inputs`` maps primary-input port names to words; ``state`` maps
        DFF instance names to current Q words (missing FFs use their init
        value replicated across patterns).
        """
        values = self._evaluate(inputs, n_patterns, state or {})
        return {name: values[net.name] for name, net in self._outputs}

    def next_state(
        self,
        inputs: dict[str, int],
        n_patterns: int,
        state: dict[str, int],
    ) -> tuple[dict[str, int], dict[str, int]]:
        """Return (outputs, next FF state) for one clock cycle."""
        values = self._evaluate(inputs, n_patterns, state)
        outputs = {name: values[net.name] for name, net in self._outputs}
        next_state = {
            ff.name: values[ff.inputs[0].name] for ff in self.netlist.flip_flops()
        }
        return outputs, next_state

    def probe(
        self,
        inputs: dict[str, int],
        n_patterns: int,
        state: dict[str, int] | None = None,
    ) -> dict[str, int]:
        """Return the word on *every* net — used by error localization."""
        return self._evaluate(inputs, n_patterns, state or {})

    def _evaluate(
        self, inputs: dict[str, int], n_patterns: int, state: dict[str, int]
    ) -> dict[str, int]:
        if n_patterns < 1:
            raise NetlistError("need at least one pattern")
        mask = (1 << n_patterns) - 1
        values: dict[str, int] = {}
        for inst in self._order:
            if inst.kind is CellKind.INPUT:
                port = _port_name(inst)
                if port not in inputs:
                    raise NetlistError(f"no stimulus for primary input {port!r}")
                word = inputs[port] & mask
            elif inst.kind is CellKind.DFF:
                if inst.name in state:
                    word = state[inst.name] & mask
                else:
                    init = inst.params.get("init", 0)
                    word = mask if init else 0
            else:
                in_words = [values[net.name] for net in inst.inputs]
                word = eval_gate(
                    inst.kind, in_words, mask, table=inst.params.get("table")
                )
            values[inst.output.name] = word
        return values


class SequentialSimulator:
    """Cycle-accurate reference model with explicit FF state."""

    def __init__(self, netlist: Netlist, engine: str = "compiled") -> None:
        self._comb = make_engine(netlist, engine)
        self.netlist = netlist
        self.engine = engine
        self.state: dict[str, int] = {}
        self.cycle = 0
        self.reset(n_patterns=1)

    def reset(self, n_patterns: int = 1) -> None:
        """Load every FF with its init value replicated over patterns."""
        self.state = initial_state(self.netlist, n_patterns)
        self.cycle = 0

    def step(self, inputs: dict[str, int], n_patterns: int = 1) -> dict[str, int]:
        """Advance one clock: returns this cycle's primary outputs."""
        outputs, next_state = self._comb.next_state(inputs, n_patterns, self.state)
        self.state = next_state
        self.cycle += 1
        return outputs

    def run(
        self, stimulus: list[dict[str, int]], n_patterns: int = 1
    ) -> list[dict[str, int]]:
        """Apply a list of per-cycle input maps; returns per-cycle outputs."""
        return [self.step(cycle_inputs, n_patterns) for cycle_inputs in stimulus]


def simulate_words(
    netlist: Netlist, inputs: dict[str, int], n_patterns: int
) -> dict[str, int]:
    """One-shot combinational simulation convenience wrapper."""
    return CombinationalSimulator(netlist).run(inputs, n_patterns)


def replay_outputs(
    netlist: Netlist,
    stimulus: list[dict[str, int]],
    n_patterns: int = 1,
    engine: str = "compiled",
) -> list[dict[str, int]]:
    """Per-cycle outputs of a run from reset over ``stimulus``.

    Ports missing from a cycle's map read 0 — the emulator's contract
    for disabled control inputs, shared by detection, counterexample
    replay and the CEGIS check so all three judge the same interface.
    """
    sim = SequentialSimulator(netlist, engine=engine)
    sim.reset(n_patterns)
    ports = {port_name(pi) for pi in netlist.primary_inputs()}
    return [
        sim.step({p: cycle.get(p, 0) for p in ports}, n_patterns)
        for cycle in stimulus
    ]
