"""Experiment drivers and report formatting for the paper's evaluation.

* :mod:`repro.analysis.experiments` — one driver per table/figure:
  :func:`run_table1`, :func:`run_figure3`, :func:`run_figure4`,
  :func:`run_figure5`, plus the ablations listed in DESIGN.md;
* :mod:`repro.analysis.report` — ASCII rendering in the paper's shape.
"""

from repro.analysis.experiments import (
    ExperimentConfig,
    Figure3Series,
    Figure4Series,
    Figure5Row,
    Table1Row,
    run_figure3,
    run_figure4,
    run_figure5,
    run_table1,
)
from repro.analysis.report import (
    format_figure3,
    format_figure4,
    format_figure5,
    format_table1,
)

__all__ = [
    "ExperimentConfig",
    "Figure3Series",
    "Figure4Series",
    "Figure5Row",
    "Table1Row",
    "run_figure3",
    "run_figure4",
    "run_figure5",
    "run_table1",
    "format_figure3",
    "format_figure4",
    "format_figure5",
    "format_table1",
]
