"""ASCII rendering of experiment results in the paper's shape."""

from __future__ import annotations

from repro.analysis.experiments import (
    Figure3Series,
    Figure4Series,
    Figure5Row,
    Table1Row,
    fig5_aggregate,
)
from repro.generators.registry import DISPLAY_NAMES


def _display(name: str) -> str:
    return DISPLAY_NAMES.get(name, name)


def format_table1(rows: list[Table1Row]) -> str:
    """Table 1: tiled physical layout statistics."""
    header = (
        f"{'design':<12} {'#CLBs':>6} {'paper':>6} "
        f"{'area ovh':>9} {'timing ovh':>11} {'tiles':>6} {'cut nets':>9}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{_display(r.design):<12} {r.n_clbs:>6} {r.paper_clbs:>6} "
            f"{r.area_overhead:>9.3f} {r.timing_overhead:>+11.3f} "
            f"{r.n_tiles:>6} {r.inter_tile_nets:>9}"
        )
    return "\n".join(lines)


def format_figure3(series: list[Figure3Series]) -> str:
    """Figure 3: % affected tiles vs size of new logic (# CLBs)."""
    if not series:
        return "(no data)"
    sizes = series[0].logic_sizes
    header = f"{'size of new logic':<18}" + "".join(
        f"{s:>7}" for s in sizes
    )
    lines = [header, "-" * len(header)]
    for s in series:
        lines.append(
            f"{_display(s.design):<18}"
            + "".join(f"{p:>6.0f}%" for p in s.pct_affected)
        )
    return "\n".join(lines)


def format_figure4(series: list[Figure4Series]) -> str:
    """Figure 4: max test-logic size (# CLBs) vs # test points."""
    if not series:
        return "(no data)"
    points = series[0].test_points
    header = f"{'# test points':<18}" + "".join(f"{p:>7}" for p in points)
    lines = [header, "-" * len(header)]
    for s in series:
        lines.append(
            f"{_display(s.design):<18}"
            + "".join(f"{b:>7}" for b in s.max_logic)
        )
    return "\n".join(lines)


def format_figure5(rows: list[Figure5Row]) -> str:
    """Figure 5: P&R speedup (vs Quick_ECO) per tile size."""
    fractions = sorted({r.tile_fraction for r in rows})
    designs: list[str] = []
    for r in rows:
        if r.design not in designs:
            designs.append(r.design)
    header = f"{'tile size (% total)':<18}" + "".join(
        f"{f * 100:>8.1f}" for f in fractions
    )
    lines = [header, "-" * len(header)]
    by_key = {(r.design, r.tile_fraction): r for r in rows}
    for d in designs:
        cells = []
        for f in fractions:
            r = by_key.get((d, f))
            if r is None or not r.feasible:
                cells.append(f"{'n/a':>8}")
            else:
                cells.append(f"{r.speedup_vs_quick_eco:>8.1f}")
        lines.append(f"{_display(d):<18}" + "".join(cells))

    summary = fig5_aggregate(rows)
    lines.append("-" * len(header))
    mean_cells, median_cells = [], []
    for f in fractions:
        agg = summary.get(f)
        mean_cells.append(f"{agg['mean']:>8.1f}" if agg else f"{'n/a':>8}")
        median_cells.append(f"{agg['median']:>8.1f}" if agg else f"{'n/a':>8}")
    lines.append(f"{'average':<18}" + "".join(mean_cells))
    lines.append(f"{'median':<18}" + "".join(median_cells))
    return "\n".join(lines)
