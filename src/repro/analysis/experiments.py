"""Experiment drivers — one per table/figure of the paper.

All drivers share :class:`ExperimentConfig` (designs, seed, effort
preset) and an internal per-design context cache so a driver that needs
"the tiled layout of s9234 at 10 tiles" does not re-run place-and-route
for every data point.

Paper parameters reproduced:

* Table 1 — 20 % requested slack, design-size/10 tiles, area and timing
  overhead of the tiled layout vs the untiled one;
* Figures 3 & 4 — ten tiles per design, 20 % slack (the s9234 worked
  example in §6.1: "ten tiles that average 23.5 CLBs ... approximately
  4.7 CLBs to implement test logic");
* Figure 5 — tile sizes 2.5 / 5 / 15 / 25 % of the design; speedup of a
  single-tile change vs the Quick_ECO (whole functional block = whole
  design, §6) and incremental baselines.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field

from repro.api.design import device_for, load_bundle
from repro.api.spec import RunSpec
from repro.arch.device import Device
from repro.debug.errors import inject_error
from repro.debug.correct import apply_correction
from repro.errors import TilingError
from repro.generators.registry import paper_design_names
from repro.netlist.cells import CellKind
from repro.pnr.effort import EffortMeter, EFFORT_PRESETS, EffortPreset
from repro.pnr.flow import Layout, full_place_and_route, incremental_update
from repro.rng import derive_seed
from repro.tiling.eco import ChangeRecorder
from repro.tiling.manager import TiledLayout
from repro.tiling.partition import TilingOptions

FIG5_TILE_FRACTIONS = (0.025, 0.05, 0.15, 0.25)
LOGIC_SIZES = tuple(range(1, 101, 9))  # paper x-axis: 1, 10, 19, ... 100
TEST_POINTS = tuple(range(1, 101, 9))


@dataclass
class ExperimentConfig:
    """Shared knobs for every driver."""

    designs: list[str] = field(default_factory=paper_design_names)
    seed: int = 1
    preset: EffortPreset = field(
        default_factory=lambda: EFFORT_PRESETS["fast"]
    )
    area_overhead: float = 0.20
    n_tiles: int = 10


class _DesignContext:
    """Lazily built per-design artifacts, shared across drivers."""

    def __init__(self, name: str, config: ExperimentConfig) -> None:
        self.name = name
        self.config = config
        # design/device resolution is shared with the repro.api facade
        self.bundle = load_bundle(
            RunSpec(design=name, design_seed=config.seed)
        )
        self.device: Device = device_for(
            self.bundle.packed,
            area_overhead=config.area_overhead + 0.15,
            min_io_extra=8,
        )
        self._untiled: Layout | None = None
        self._untiled_effort: EffortMeter | None = None
        self._tiled: dict[int, TiledLayout] = {}

    def untiled(self) -> tuple[Layout, EffortMeter]:
        if self._untiled is None:
            meter = EffortMeter()
            self._untiled = full_place_and_route(
                self.bundle.packed, self.device,
                seed=self.config.seed, preset=self.config.preset,
                meter=meter, strict_routing=False,
            )
            self._untiled_effort = meter
        assert self._untiled_effort is not None
        return self._untiled, self._untiled_effort

    def tiled(self, n_tiles: int) -> TiledLayout:
        if n_tiles not in self._tiled:
            untiled, _ = self.untiled()
            options = TilingOptions(
                n_tiles=n_tiles, area_overhead=self.config.area_overhead
            )
            self._tiled[n_tiles] = TiledLayout.create(
                self.bundle.packed, self.device, options,
                seed=self.config.seed, preset=self.config.preset,
                initial_layout=untiled,
            )
        return self._tiled[n_tiles]


class ExperimentSuite:
    """Caches design contexts across drivers within one run."""

    def __init__(self, config: ExperimentConfig | None = None) -> None:
        self.config = config or ExperimentConfig()
        self._contexts: dict[str, _DesignContext] = {}

    def context(self, name: str) -> _DesignContext:
        if name not in self._contexts:
            self._contexts[name] = _DesignContext(name, self.config)
        return self._contexts[name]


# ----------------------------------------------------------------------
# Table 1
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Table1Row:
    design: str
    paper_clbs: int
    n_clbs: int
    area_overhead: float
    timing_overhead: float
    n_tiles: int
    inter_tile_nets: int


def run_table1(
    config: ExperimentConfig | None = None,
    suite: ExperimentSuite | None = None,
) -> list[Table1Row]:
    """Tiled physical layout statistics (paper Table 1)."""
    suite = suite or ExperimentSuite(config)
    rows = []
    for name in suite.config.designs:
        ctx = suite.context(name)
        untiled, _ = ctx.untiled()
        t_untiled = untiled.critical_path()
        tiled = ctx.tiled(suite.config.n_tiles)
        t_tiled = tiled.layout.critical_path()
        stats = tiled.stats()
        rows.append(
            Table1Row(
                design=name,
                paper_clbs=ctx.bundle.paper_clbs,
                n_clbs=ctx.bundle.n_clbs,
                area_overhead=stats.area_overhead,
                timing_overhead=(t_tiled - t_untiled) / t_untiled,
                n_tiles=stats.n_tiles,
                inter_tile_nets=stats.inter_tile_nets,
            )
        )
    return rows


# ----------------------------------------------------------------------
# Figure 3
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Figure3Series:
    design: str
    logic_sizes: tuple[int, ...]
    pct_affected: tuple[float, ...]  # averaged over start tiles


def run_figure3(
    config: ExperimentConfig | None = None,
    suite: ExperimentSuite | None = None,
    logic_sizes: tuple[int, ...] = LOGIC_SIZES,
) -> list[Figure3Series]:
    """% of tiles affected vs size of introduced logic (paper Fig. 3).

    For each logic size the affected-tile count is averaged over every
    possible start tile (the paper does not fix the insertion point).
    Sizes beyond the design's total slack saturate at 100 %.
    """
    suite = suite or ExperimentSuite(config)
    series = []
    for name in suite.config.designs:
        ctx = suite.context(name)
        tiled = ctx.tiled(suite.config.n_tiles)
        n_tiles = len(tiled.tiles)
        pct = []
        for size in logic_sizes:
            counts = []
            for start in range(n_tiles):
                try:
                    affected = tiled.affected_tiles_for_logic(size, start)
                    counts.append(len(affected))
                except TilingError:
                    counts.append(n_tiles)  # saturated: everything affected
            pct.append(100.0 * statistics.mean(counts) / n_tiles)
        series.append(Figure3Series(name, tuple(logic_sizes), tuple(pct)))
    return series


# ----------------------------------------------------------------------
# Figure 4
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Figure4Series:
    design: str
    test_points: tuple[int, ...]
    max_logic: tuple[int, ...]


def run_figure4(
    config: ExperimentConfig | None = None,
    suite: ExperimentSuite | None = None,
    test_points: tuple[int, ...] = TEST_POINTS,
) -> list[Figure4Series]:
    """Maximum per-point test logic vs number of test points (Fig. 4)."""
    suite = suite or ExperimentSuite(config)
    series = []
    for name in suite.config.designs:
        ctx = suite.context(name)
        tiled = ctx.tiled(suite.config.n_tiles)
        budget = [tiled.max_logic_for_test_points(p) for p in test_points]
        series.append(Figure4Series(name, tuple(test_points), tuple(budget)))
    return series


# ----------------------------------------------------------------------
# Figure 5
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Figure5Row:
    design: str
    tile_fraction: float
    feasible: bool
    tiled_work: float
    quick_eco_work: float
    incremental_work: float
    speedup_vs_quick_eco: float
    speedup_vs_incremental: float
    tiled_seconds: float
    quick_eco_seconds: float


def run_figure5(
    config: ExperimentConfig | None = None,
    suite: ExperimentSuite | None = None,
    tile_fractions: tuple[float, ...] = FIG5_TILE_FRACTIONS,
) -> list[Figure5Row]:
    """Place-and-route speedup vs tile size (paper Fig. 5).

    The measured change is a small functional alteration (an injected
    LUT error plus its correction) confined to one tile.  The same
    change is pushed through three back ends:

    * tiled (tile-confined re-P&R at the given tile fraction),
    * Quick_ECO (re-P&R of the whole functional block = whole design),
    * incremental (window rip-up around the change).

    Designs whose tiles would fall below the minimum side at a fraction
    are reported infeasible — in the paper only the three largest
    designs support 2.5 % tiles.
    """
    suite = suite or ExperimentSuite(config)
    config = suite.config
    rows: list[Figure5Row] = []
    for name in config.designs:
        ctx = suite.context(name)
        packed = ctx.bundle.packed
        device = ctx.device

        # baselines are independent of tile size: measure once
        qe_meter = EffortMeter()
        full_place_and_route(
            packed, device, seed=derive_seed(config.seed, name, "qe"),
            preset=config.preset, meter=qe_meter, strict_routing=False,
        )
        untiled, _ = ctx.untiled()
        inc_meter = EffortMeter()
        inc_layout = untiled.copy()
        target = _pick_change_instance(ctx)
        target_block = packed.block_of_instance[target]
        incremental_update(
            inc_layout, {target_block},
            seed=derive_seed(config.seed, name, "inc"),
            preset=config.preset, meter=inc_meter,
        )

        for fraction in tile_fractions:
            n_tiles = max(1, round(1.0 / fraction))
            try:
                tiled = ctx.tiled(n_tiles)
            except TilingError:
                rows.append(Figure5Row(
                    design=name, tile_fraction=fraction, feasible=False,
                    tiled_work=float("nan"), quick_eco_work=qe_meter.work_units,
                    incremental_work=inc_meter.work_units,
                    speedup_vs_quick_eco=float("nan"),
                    speedup_vs_incremental=float("nan"),
                    tiled_seconds=float("nan"),
                    quick_eco_seconds=qe_meter.wall_seconds,
                ))
                continue
            effort = _measure_single_tile_change(
                ctx, tiled, target, derive_seed(config.seed, name, fraction)
            )
            rows.append(Figure5Row(
                design=name, tile_fraction=fraction, feasible=True,
                tiled_work=effort.work_units,
                quick_eco_work=qe_meter.work_units,
                incremental_work=inc_meter.work_units,
                speedup_vs_quick_eco=qe_meter.work_units / effort.work_units,
                speedup_vs_incremental=inc_meter.work_units / effort.work_units,
                tiled_seconds=effort.wall_seconds,
                quick_eco_seconds=qe_meter.wall_seconds,
            ))
    return rows


def _pick_change_instance(ctx: _DesignContext) -> str:
    """A deterministic mid-netlist LUT to retable (the 'small change')."""
    luts = sorted(
        i.name for i in ctx.bundle.mapped.instances()
        if i.kind is CellKind.LUT and i.inputs
    )
    return luts[len(luts) // 2]


def _measure_single_tile_change(
    ctx: _DesignContext, tiled: TiledLayout, target: str, seed: int
) -> EffortMeter:
    """Retable one LUT and commit; the effort of that commit."""
    netlist = ctx.bundle.mapped
    inst = netlist.instance(target)
    with ChangeRecorder(netlist, "fig5 small change") as rec:
        size = 1 << len(inst.inputs)
        netlist.set_params(inst, {"table": inst.params["table"] ^ (size - 1)})
    assert rec.changes is not None
    report = tiled.apply_changeset(
        rec.changes, seed=seed, preset=ctx.config.preset,
        anchor_instance=target,
    )
    return report.effort


def fig5_aggregate(rows: list[Figure5Row]) -> dict[float, dict[str, float]]:
    """Mean/median speedups per tile fraction (the paper's summary)."""
    summary: dict[float, dict[str, float]] = {}
    for fraction in sorted({r.tile_fraction for r in rows}):
        values = [
            r.speedup_vs_quick_eco
            for r in rows
            if r.tile_fraction == fraction and r.feasible
        ]
        if not values:
            continue
        summary[fraction] = {
            "mean": statistics.mean(values),
            "median": statistics.median(values),
            "n_designs": float(len(values)),
        }
    return summary


# ----------------------------------------------------------------------
# ablations
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SlackAblationRow:
    design: str
    area_overhead: float
    logic_size: int
    pct_affected: float


def run_ablation_slack(
    design: str = "s9234",
    overheads: tuple[float, ...] = (0.10, 0.20, 0.30),
    logic_sizes: tuple[int, ...] = LOGIC_SIZES,
    seed: int = 1,
    preset: EffortPreset | None = None,
) -> list[SlackAblationRow]:
    """Figure-3 staircases under different slack budgets (ablation A)."""
    preset = preset or EFFORT_PRESETS["fast"]
    rows = []
    for overhead in overheads:
        config = ExperimentConfig(
            designs=[design], seed=seed, preset=preset,
            area_overhead=overhead,
        )
        suite = ExperimentSuite(config)
        series = run_figure3(suite=suite, logic_sizes=logic_sizes)[0]
        for size, pct in zip(series.logic_sizes, series.pct_affected):
            rows.append(SlackAblationRow(design, overhead, size, pct))
    return rows


# ----------------------------------------------------------------------
# debug-campaign strategy comparison (facade-driven)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class StrategyComparisonRow:
    design: str
    strategy: str
    detected: bool
    localized: bool
    fixed: bool
    n_probes: int
    n_commits: int
    debug_work_units: float
    speedup_vs_strategy: dict  # strategy name -> work-unit speedup


def run_strategy_comparison(
    designs: list[str],
    strategies: tuple[str, ...] = ("tiled", "quick_eco"),
    error_kind: str = "table_bit",
    seed: int = 1,
    preset: str = "fast",
    n_tiles: int = 10,
    workers: int = 1,
) -> list[StrategyComparisonRow]:
    """Debug-loop effort per back-end strategy (the Figure-5 question
    asked end-to-end), driven through :class:`repro.api.CampaignRunner`.

    Each (design, strategy) cell is one full detect→localize→correct→
    verify run; the per-row ``speedup_vs_strategy`` compares debugging
    work units within the same design.
    """
    from repro.api import CampaignRunner, expand_matrix

    if not designs:
        raise ValueError("designs must name at least one design")
    base = RunSpec(
        design=designs[0], error_kind=error_kind, seed=seed,
        error_seed=seed, preset=preset, tiling={"n_tiles": n_tiles},
    )
    specs = expand_matrix(base, designs=list(designs),
                          strategies=list(strategies))
    campaign = CampaignRunner(workers=workers).run(specs)
    by_cell = {
        (r.design, r.strategy): r for r in campaign.results
    }
    rows: list[StrategyComparisonRow] = []
    for result in campaign.results:
        work = result.effort["debug"]["work_units"]
        speedups = {}
        for other in strategies:
            peer = by_cell.get((result.design, other))
            if peer is None or other == result.strategy:
                continue
            peer_work = peer.effort["debug"]["work_units"]
            speedups[other] = peer_work / work if work else float("inf")
        rows.append(StrategyComparisonRow(
            design=result.design,
            strategy=result.strategy,
            detected=result.detected,
            localized=result.localized,
            fixed=result.fixed,
            n_probes=result.n_probes,
            n_commits=result.n_commits,
            debug_work_units=work,
            speedup_vs_strategy=speedups,
        ))
    return rows


@dataclass(frozen=True)
class BoundaryAblationRow:
    design: str
    refined: bool
    inter_tile_nets: int
    timing_ns: float


def run_ablation_boundaries(
    designs: list[str] | None = None,
    seed: int = 1,
    preset: EffortPreset | None = None,
    n_tiles: int = 10,
) -> list[BoundaryAblationRow]:
    """Uniform vs min-cut-refined boundaries (ablation B)."""
    preset = preset or EFFORT_PRESETS["fast"]
    designs = designs or ["styr", "s9234"]
    rows = []
    for name in designs:
        for refined in (False, True):
            config = ExperimentConfig(designs=[name], seed=seed, preset=preset)
            suite = ExperimentSuite(config)
            ctx = suite.context(name)
            untiled, _ = ctx.untiled()
            options = TilingOptions(
                n_tiles=n_tiles,
                area_overhead=config.area_overhead,
                refine_passes=2 if refined else 0,
            )
            tiled = TiledLayout.create(
                ctx.bundle.packed, ctx.device, options,
                seed=seed, preset=preset, initial_layout=untiled,
            )
            stats = tiled.stats()
            rows.append(
                BoundaryAblationRow(
                    name, refined, stats.inter_tile_nets,
                    tiled.layout.critical_path(),
                )
            )
    return rows
