"""Error localization by cone bisection over observation points.

The paper's loop: observation logic is inserted where the designer
suspects trouble, the design is re-emulated, and the flag tells whether
the error lies upstream.  The localizer mechanizes the designer:

1. seed the candidate set with the intersection of the sequential
   fanin cones of every failing output (the error must corrupt each);
2. repeatedly pick the probe net whose cone splits the candidates most
   evenly, insert an observation point (one tile-confined commit —
   *this* is the CAD cost the paper attacks), re-emulate, and keep
   either the probe's cone or its complement;
3. stop when the candidates fit the goal size or probes run out.

**Multiple interacting faults** break the intersection step: outputs
failing because of *different* errors share no common cone.  Seeding is
therefore greedy — failing outputs are folded in sorted order and an
output whose cone would *empty* the intersection is deferred to a later
diagnosis round (``LocalizationResult.group_outputs`` /
``deferred_outputs``).  With a single fault nothing is ever deferred,
so the historical trajectories are reproduced bit-for-bit.

The comparison is heuristic in the presence of reconvergent masking: a
probe matching the golden value removes its cone even though an
upstream error might be masked there.  Wide pattern words (default 64)
make that unlikely; the debug session re-runs localization if the fix
verdict disagrees.

Three engines drive the loop (bit-identical verdicts and candidates):

* ``engine="codegen"`` — the compiled path below, plus the probe
  re-emulation runs a **cone-sliced kernel**: only the sequential
  fanin slice of the observed probe output is compiled (straight-line
  exec'd source, :mod:`repro.netlist.codegen`) and replayed, instead
  of the whole tape, which is where the emulate phase's wall-clock
  goes on the large designs;
* ``engine="compiled"`` — one shared instruction-tape kernel
  (:mod:`repro.netlist.compiled`) is kept current across probe commits
  via incremental recompile, and a :class:`~repro.netlist.cones.ConeIndex`
  turns per-candidate cone queries into single big-int operations, so
  probe selection is O(V+E) per round instead of O(V·E);
* ``engine="interpreted"`` — the retained baseline: per-candidate BFS
  cone walks and the instance-walking simulator.

Per-phase wall-clock (seed / pick / emulate / commit) accumulates in
``LocalizationResult.timings`` for the performance benchmark.  The
commit phase runs on the commit-path substrate: fabric-table routing
and incremental-bbox annealing on a cold cache, and precomputed
tile-configuration replay (:mod:`repro.tiling.cache`) when an identical
reconfiguration was committed before.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.debug.detect import Mismatch
from repro.debug.instrument import add_observation_point
from repro.debug.strategies import BaseStrategy
from repro.emu.emulator import Emulator
from repro.errors import DebugFlowError
from repro.netlist.cones import ConeIndex, cone_index_for
from repro.netlist.core import Netlist, port_name
from repro.netlist.simulate import initial_state, make_engine
from repro.obs.metrics import METRICS
from repro.obs.trace import maybe_span
from repro.resilience.budget import check_deadline


@dataclass
class ProbeStep:
    """One localization probe and its verdict."""

    probe_instance: str
    mismatch: bool
    candidates_before: int
    candidates_after: int


@dataclass
class LocalizationResult:
    candidates: set[str]
    steps: list[ProbeStep] = field(default_factory=list)
    #: wall-clock seconds per phase: seed/pick/emulate/commit (plus
    #: "sat" when SAT-guided pruning ran)
    timings: dict[str, float] = field(default_factory=dict)
    #: candidates eliminated by the SAT pruner instead of by probes
    sat_eliminated: int = 0
    #: solver queries made / refuted by the SAT pruner
    sat_checks: int = 0
    sat_unsat: int = 0
    #: diagnosis round this localization served (1-based)
    round: int = 1
    #: failing outputs this round's candidate seeding explains
    group_outputs: list[str] = field(default_factory=list)
    #: failing outputs deferred to a later round (no common cone)
    deferred_outputs: list[str] = field(default_factory=list)
    #: observation-point names committed by this run (``loc<i>``) — the
    #: session retires them before the next round's probes go in
    probe_points: list[str] = field(default_factory=list)
    #: SAT-feasible candidate pairs as joint two-fault explanations,
    #: best first (multi-error diagnosis only)
    sat_pairs: list = field(default_factory=list)
    #: candidate k-subsets the solver refuted as joint explanations
    sat_subsets_refuted: int = 0
    #: probe verdicts eliminated every candidate — interacting faults
    #: poisoned the cone logic (multi-error sessions recover by falling
    #: back to oracle correction; single-fault runs raise instead)
    drained: bool = False

    @property
    def n_probes(self) -> int:
        return len(self.steps)

    @property
    def localization_seconds(self) -> float:
        """Localization compute time — everything but the P&R commits."""
        return sum(v for k, v in self.timings.items() if k != "commit")


class ConeLocalizer:
    """Drives observation-point bisection on top of a strategy.

    ``n_errors`` is the number of faults still believed live in the
    DUT; it sizes the SAT pruner's cardinality bound.
    ``golden_history`` lets multi-round sessions reuse the golden
    net-history computation (golden model and stimulus never change
    between rounds).
    """

    #: codegen probe verdicts replay the fanin slice of the observed
    #: port instead of the full design; the perf benchmark flips this
    #: off to price the slicing against full-tape replay
    use_cone_slicing = True

    def __init__(
        self,
        strategy: BaseStrategy,
        golden: Netlist,
        stimulus: list[dict[str, int]],
        n_patterns: int,
        goal_size: int = 4,
        engine: str = "compiled",
        n_errors: int = 1,
        golden_history: list[dict[str, int]] | None = None,
        tolerate_drain: bool | None = None,
        want_pairs: bool = False,
    ) -> None:
        self.strategy = strategy
        self.golden = golden
        self.stimulus = stimulus
        self.n_patterns = n_patterns
        self.goal_size = goal_size
        self.engine = engine
        self.n_errors = max(1, n_errors)
        #: surrender (instead of raise) when probe verdicts drain the
        #: candidate set; defaults to on whenever several faults are live
        self.tolerate_drain = (
            self.n_errors > 1 if tolerate_drain is None else tolerate_drain
        )
        #: run the k-subset pair-ranking queries after the probe loop —
        #: only worth the solver time when a consumer (joint CEGIS)
        #: will read ``LocalizationResult.sat_pairs``
        self.want_pairs = want_pairs
        self._input_names = {
            port_name(pi)
            for pi in strategy.packed.netlist.primary_inputs()
        }
        self._golden_nets = (
            golden_history if golden_history is not None
            else self._golden_net_history()
        )

    @property
    def golden_history(self) -> list[dict[str, int]]:
        """Golden value of every net, per cycle — reusable across rounds."""
        return self._golden_nets

    # ------------------------------------------------------------------

    def _golden_net_history(self) -> list[dict[str, int]]:
        """Golden value of every net, per cycle (for probe comparison)."""
        comb = make_engine(self.golden, self.engine)
        state = initial_state(self.golden, self.n_patterns)
        names = {port_name(pi) for pi in self.golden.primary_inputs()}
        flops = self.golden.flip_flops()
        history = []
        for cycle_in in self.stimulus:
            inputs = {name: cycle_in.get(name, 0) for name in names}
            values = comb.probe(inputs, self.n_patterns, state)
            history.append(values)
            # the probe view already carries every FF's D-net word, so
            # the next state comes for free (no second full evaluation)
            state = {ff.name: values[ff.inputs[0].name] for ff in flops}
        return history

    def seed_candidates(
        self, mismatches: list[Mismatch]
    ) -> tuple[set[str], list[str], list[str]]:
        """Greedy common-cone intersection of the failing outputs.

        Returns ``(candidates, group, deferred)``: the candidate
        instance names, the outputs whose cones were folded in, and the
        outputs deferred because their cone shares nothing with the
        running intersection (a *different* fault's symptom).  With one
        fault every failing output joins the group, reproducing the
        historical strict intersection bit-for-bit.
        """
        if not mismatches:
            raise DebugFlowError("cannot localize without a failing output")
        netlist = self.strategy.packed.netlist
        po_by_name = {
            port_name(po): po for po in netlist.primary_outputs()
        }
        candidates: set[str] | None = None
        group: list[str] = []
        deferred: list[str] = []
        for name in sorted({m.output for m in mismatches}):
            po = po_by_name.get(name)
            if po is None:
                continue
            cone = netlist.fanin_cone([po], stop_at_ffs=False)
            if candidates is None:
                candidates, group = cone, [name]
            elif candidates & cone:
                candidates &= cone
                group.append(name)
            else:
                deferred.append(name)
        if not candidates:
            raise DebugFlowError("failing outputs have no common cone")
        return (
            {
                n for n in candidates
                if netlist.has_instance(n) and not netlist.instance(n).is_io
            },
            group,
            deferred,
        )

    def _seed_bitset(
        self, cones: ConeIndex, mismatches: list[Mismatch]
    ) -> tuple[int, list[str], list[str]]:
        """Bitset twin of :meth:`seed_candidates` (identical result)."""
        if not mismatches:
            raise DebugFlowError("cannot localize without a failing output")
        netlist = self.strategy.packed.netlist
        po_by_name = {
            port_name(po): po for po in netlist.primary_outputs()
        }
        candidates: int | None = None
        group: list[str] = []
        deferred: list[str] = []
        for name in sorted({m.output for m in mismatches}):
            po = po_by_name.get(name)
            if po is None:
                continue
            cone = cones.fanin(po.name)
            if candidates is None:
                candidates, group = cone, [name]
            elif candidates & cone:
                candidates &= cone
                group.append(name)
            else:
                deferred.append(name)
        if not candidates:
            raise DebugFlowError("failing outputs have no common cone")
        return candidates & cones.logic_mask, group, deferred

    # ------------------------------------------------------------------

    def run(
        self,
        mismatches: list[Mismatch],
        max_probes: int = 8,
        on_probe=None,
    ) -> LocalizationResult:
        """One probe loop, two candidate representations.

        The loop body (commit, emulate, verdict, bookkeeping) is shared;
        only the candidate-set operations differ per engine, which is
        what keeps the two engines bit-identical by construction.
        ``on_probe``, when given, is called with each finished
        :class:`ProbeStep` — the pipeline's progress hook.
        """
        timings = {"seed": 0.0, "pick": 0.0, "emulate": 0.0, "commit": 0.0}
        netlist = self.strategy.packed.netlist
        t0 = time.perf_counter()
        ops: _CandidateOps
        if self.engine in ("compiled", "codegen"):
            ops = _BitsetCandidateOps(self, netlist)
        else:
            ops = _SetCandidateOps(self, netlist)
        ops.seed(mismatches)
        timings["seed"] = time.perf_counter() - t0
        result = LocalizationResult(candidates=set(), timings=timings)
        result.group_outputs = list(ops.group)
        result.deferred_outputs = list(ops.deferred)
        emulator: Emulator | None = None

        pruner = None
        group_mismatches = [
            m for m in mismatches if m.output in set(ops.group)
        ]
        matched_probes: list[str] = []
        if (
            getattr(self.strategy, "sat_localization", False)
            and group_mismatches
        ):
            from repro.sat.diagnose import SuspectPruner

            timings["sat"] = 0.0
            pruner = SuspectPruner(
                netlist, self.golden, self.stimulus, group_mismatches,
                self._golden_nets, seed=self.strategy.seed,
                n_errors=self.n_errors,
            )

        for probe_no in range(max_probes):
            check_deadline("localize.probe")
            if pruner is not None and ops.count() > self.goal_size:
                t0 = time.perf_counter()
                removed = pruner.prune(ops.names(), matched_probes)
                if removed:
                    ops.remove(removed)
                    result.sat_eliminated += len(removed)
                timings["sat"] += time.perf_counter() - t0
            before = ops.count()
            if before <= self.goal_size:
                break
            t0 = time.perf_counter()
            probe = ops.pick()
            timings["pick"] += time.perf_counter() - t0
            if probe is None:
                break
            probe_net = netlist.instance(probe).output.name

            with maybe_span("probe", category="localize",
                            probe=probe) as probe_span:
                t0 = time.perf_counter()
                changes, _ = add_observation_point(
                    netlist, [probe_net], f"loc{probe_no}", sticky=False
                )
                self.strategy.commit(changes, anchor_instance=probe)
                timings["commit"] += time.perf_counter() - t0
                result.probe_points.append(f"loc{probe_no}")

                t0 = time.perf_counter()
                if emulator is None:
                    emulator = Emulator(
                        self.strategy.layout, engine=self.engine
                    )
                    if self.engine in ("compiled", "codegen"):
                        # sync the shared kernel incrementally rather
                        # than letting first use pay a full recompile
                        emulator.refresh(changes=changes)
                else:
                    emulator.refresh(
                        layout=self.strategy.layout, changes=changes
                    )
                mismatch = self._probe_disagrees(
                    emulator, probe_net, f"loc{probe_no}"
                )
                timings["emulate"] += time.perf_counter() - t0

                if not mismatch:
                    matched_probes.append(probe_net)
                ops.apply_verdict(probe, mismatch)
                after = ops.count()
                step = ProbeStep(probe, mismatch, before, after)
                result.steps.append(step)
                METRICS.inc("repro_probes_total")
                if probe_span is not None:
                    probe_span.attrs.update(
                        mismatch=bool(mismatch),
                        candidates_before=before,
                        candidates_after=after,
                    )
                if on_probe is not None:
                    on_probe(step)
            if after == 0:
                if not self.tolerate_drain:
                    raise DebugFlowError(
                        "localization eliminated every candidate "
                        "(reconvergent masking); rerun with more patterns"
                    )
                # with several live faults a matched probe may sit
                # downstream of one fault yet masked by another, so the
                # cone arithmetic can legitimately drain; surrender the
                # round and let the session fall back to back-annotation
                result.drained = True
                break
        result.candidates = ops.names()
        if pruner is not None:
            if (
                self.want_pairs
                and self.n_errors > 1
                and len(result.candidates) > 1
            ):
                t0 = time.perf_counter()
                feasible, _refuted = pruner.rank_pairs(
                    result.candidates, matched_probes
                )
                result.sat_pairs = [list(pair) for pair in feasible]
                timings["sat"] += time.perf_counter() - t0
            result.sat_checks = pruner.n_checks
            result.sat_unsat = pruner.n_unsat
            result.sat_subsets_refuted = pruner.n_subset_refuted
        return result

    def _pick_probe_bitset(
        self, cones: ConeIndex, cand: int, n_cand: int
    ) -> int | None:
        """Bitset twin of :meth:`_pick_probe`: identical choice, one
        int-AND + popcount per candidate instead of a BFS."""
        target = n_cand / 2
        best_idx, best_score = None, None
        for i in cones.sorted_indices:
            if not (cand >> i) & 1:
                continue
            cone_size = (cones.fanin_by_index(i) & cand).bit_count()
            if cone_size == 0 or cone_size == n_cand:
                continue
            score = abs(cone_size - target)
            if best_score is None or score < best_score:
                best_idx, best_score = i, score
        if best_idx is None:
            ordered = [i for i in cones.sorted_indices if (cand >> i) & 1]
            return ordered[len(ordered) // 2] if ordered else None
        return best_idx

    def _pick_probe(
        self, netlist: Netlist, candidates: set[str]
    ) -> str | None:
        """Candidate whose cone splits the candidate set most evenly."""
        target = len(candidates) / 2
        best_name, best_score = None, None
        for name in sorted(candidates):
            inst = netlist.instance(name)
            if inst.output is None:
                continue
            cone_size = len(
                netlist.fanin_cone([inst], stop_at_ffs=False) & candidates
            )
            score = abs(cone_size - target)
            # degenerate splits teach nothing
            if cone_size in (0, len(candidates)):
                continue
            if best_score is None or score < best_score:
                best_name, best_score = name, score
        if best_name is None:
            # all cones degenerate: fall back to any candidate
            ordered = sorted(candidates)
            return ordered[len(ordered) // 2] if ordered else None
        return best_name

    def _probe_disagrees(
        self, emulator: Emulator, probe_net: str, obs_name: str
    ) -> bool:
        """Emulate and compare the probe output to the golden net value."""
        probe_port = f"obs_probe_{obs_name}"
        if self.engine == "codegen" and self.use_cone_slicing:
            # cone-sliced probe round: replay only the sequential fanin
            # slice of the observed output — bit-identical verdict (the
            # slice is fanin-closed), a fraction of the evaluation
            runner = emulator.cone_runner((probe_port,))
            if runner is not None:
                return self._sliced_probe_disagrees(
                    runner, probe_net, probe_port
                )
        emulator.reset(self.n_patterns)
        for cycle, cycle_in in enumerate(self.stimulus):
            inputs = {
                name: cycle_in.get(name, 0) for name in self._input_names
            }
            outputs = emulator.step(inputs, self.n_patterns)
            probe_value = outputs.get(probe_port)
            golden_value = self._golden_nets[cycle].get(probe_net)
            if probe_value is None or golden_value is None:
                continue
            if probe_value != golden_value:
                return True
        return False

    def _sliced_probe_disagrees(
        self, runner, probe_net: str, probe_port: str
    ) -> bool:
        """Cone-sliced twin of :meth:`_probe_disagrees` (same verdict)."""
        runner.reset(self.n_patterns)
        for cycle, cycle_in in enumerate(self.stimulus):
            inputs = {
                name: cycle_in.get(name, 0) for name in self._input_names
            }
            outputs = runner.step(inputs, self.n_patterns)
            probe_value = outputs.get(probe_port)
            golden_value = self._golden_nets[cycle].get(probe_net)
            if probe_value is None or golden_value is None:
                continue
            if probe_value != golden_value:
                return True
        return False


class _CandidateOps:
    """Candidate-set operations the shared probe loop is written over."""

    #: failing outputs folded into / deferred by the greedy seeding
    group: list[str] = []
    deferred: list[str] = []

    def seed(self, mismatches: list[Mismatch]) -> None:
        raise NotImplementedError

    def count(self) -> int:
        raise NotImplementedError

    def pick(self) -> str | None:
        raise NotImplementedError

    def apply_verdict(self, probe: str, mismatch: bool) -> None:
        raise NotImplementedError

    def remove(self, names: set[str]) -> None:
        raise NotImplementedError

    def names(self) -> set[str]:
        raise NotImplementedError


class _SetCandidateOps(_CandidateOps):
    """Retained baseline: name sets and per-query BFS cone walks."""

    def __init__(self, localizer: ConeLocalizer, netlist: Netlist) -> None:
        self.localizer = localizer
        self.netlist = netlist
        self.candidates: set[str] = set()
        self.group: list[str] = []
        self.deferred: list[str] = []

    def seed(self, mismatches: list[Mismatch]) -> None:
        self.candidates, self.group, self.deferred = (
            self.localizer.seed_candidates(mismatches)
        )

    def count(self) -> int:
        return len(self.candidates)

    def pick(self) -> str | None:
        return self.localizer._pick_probe(self.netlist, self.candidates)

    def apply_verdict(self, probe: str, mismatch: bool) -> None:
        cone = self.netlist.fanin_cone(
            [self.netlist.instance(probe)], stop_at_ffs=False
        )
        if mismatch:
            self.candidates &= cone
            self.candidates.add(probe)
        else:
            self.candidates -= (cone | {probe})

    def remove(self, names: set[str]) -> None:
        self.candidates -= names

    def names(self) -> set[str]:
        return self.candidates


class _BitsetCandidateOps(_CandidateOps):
    """Compiled-path twin: one int bitset, precomputed cone index."""

    def __init__(self, localizer: ConeLocalizer, netlist: Netlist) -> None:
        self.localizer = localizer
        self.cones = cone_index_for(netlist, stop_at_ffs=False)
        self.candidates = 0
        self.group: list[str] = []
        self.deferred: list[str] = []

    def seed(self, mismatches: list[Mismatch]) -> None:
        self.candidates, self.group, self.deferred = (
            self.localizer._seed_bitset(self.cones, mismatches)
        )

    def count(self) -> int:
        return self.candidates.bit_count()

    def pick(self) -> str | None:
        idx = self.localizer._pick_probe_bitset(
            self.cones, self.candidates, self.candidates.bit_count()
        )
        return None if idx is None else self.cones.name_of(idx)

    def apply_verdict(self, probe: str, mismatch: bool) -> None:
        idx = self.cones.bit(probe)
        cone = self.cones.fanin_by_index(idx)
        probe_bit = 1 << idx
        if mismatch:
            self.candidates = (self.candidates & cone) | probe_bit
        else:
            self.candidates &= ~(cone | probe_bit)

    def remove(self, names: set[str]) -> None:
        for name in names:
            if self.cones.has(name):
                self.candidates &= ~(1 << self.cones.bit(name))

    def names(self) -> set[str]:
        return self.cones.names_of(self.candidates)
