"""Error localization by cone bisection over observation points.

The paper's loop: observation logic is inserted where the designer
suspects trouble, the design is re-emulated, and the flag tells whether
the error lies upstream.  The localizer mechanizes the designer:

1. seed the candidate set with the intersection of the sequential
   fanin cones of every failing output (the error must corrupt each);
2. repeatedly pick the probe net whose cone splits the candidates most
   evenly, insert an observation point (one tile-confined commit —
   *this* is the CAD cost the paper attacks), re-emulate, and keep
   either the probe's cone or its complement;
3. stop when the candidates fit the goal size or probes run out.

The comparison is heuristic in the presence of reconvergent masking: a
probe matching the golden value removes its cone even though an
upstream error might be masked there.  Wide pattern words (default 64)
make that unlikely; the debug session re-runs localization if the fix
verdict disagrees.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.debug.detect import Mismatch, compare_runs
from repro.debug.instrument import add_observation_point
from repro.debug.strategies import BaseStrategy
from repro.emu.emulator import Emulator
from repro.errors import DebugFlowError
from repro.netlist.core import Netlist
from repro.netlist.simulate import CombinationalSimulator


@dataclass
class ProbeStep:
    """One localization probe and its verdict."""

    probe_instance: str
    mismatch: bool
    candidates_before: int
    candidates_after: int


@dataclass
class LocalizationResult:
    candidates: set[str]
    steps: list[ProbeStep] = field(default_factory=list)

    @property
    def n_probes(self) -> int:
        return len(self.steps)


class ConeLocalizer:
    """Drives observation-point bisection on top of a strategy."""

    def __init__(
        self,
        strategy: BaseStrategy,
        golden: Netlist,
        stimulus: list[dict[str, int]],
        n_patterns: int,
        goal_size: int = 4,
    ) -> None:
        self.strategy = strategy
        self.golden = golden
        self.stimulus = stimulus
        self.n_patterns = n_patterns
        self.goal_size = goal_size
        self._golden_nets = self._golden_net_history()

    # ------------------------------------------------------------------

    def _golden_net_history(self) -> list[dict[str, int]]:
        """Golden value of every net, per cycle (for probe comparison)."""
        comb = CombinationalSimulator(self.golden)
        state = {
            ff.name: 0 if not ff.params.get("init", 0)
            else (1 << self.n_patterns) - 1
            for ff in self.golden.flip_flops()
        }
        names = {
            pi.name.split(":", 1)[-1] for pi in self.golden.primary_inputs()
        }
        history = []
        for cycle_in in self.stimulus:
            inputs = {name: cycle_in.get(name, 0) for name in names}
            values = comb.probe(inputs, self.n_patterns, state)
            history.append(values)
            _, state = comb.next_state(inputs, self.n_patterns, state)
        return history

    def seed_candidates(self, mismatches: list[Mismatch]) -> set[str]:
        """Intersection of the failing outputs' sequential fanin cones."""
        if not mismatches:
            raise DebugFlowError("cannot localize without a failing output")
        netlist = self.strategy.packed.netlist
        po_by_name = {
            po.name.split(":", 1)[-1]: po for po in netlist.primary_outputs()
        }
        candidates: set[str] | None = None
        for name in sorted({m.output for m in mismatches}):
            po = po_by_name.get(name)
            if po is None:
                continue
            cone = netlist.fanin_cone([po], stop_at_ffs=False)
            candidates = cone if candidates is None else candidates & cone
        if not candidates:
            raise DebugFlowError("failing outputs have no common cone")
        return {
            n for n in candidates
            if netlist.has_instance(n) and not netlist.instance(n).is_io
        }

    # ------------------------------------------------------------------

    def run(
        self, mismatches: list[Mismatch], max_probes: int = 8
    ) -> LocalizationResult:
        candidates = self.seed_candidates(mismatches)
        result = LocalizationResult(candidates=candidates)
        netlist = self.strategy.packed.netlist

        for probe_no in range(max_probes):
            if len(candidates) <= self.goal_size:
                break
            probe = self._pick_probe(netlist, candidates)
            if probe is None:
                break
            probe_inst = netlist.instance(probe)
            probe_net = probe_inst.output.name

            changes, _ = add_observation_point(
                netlist, [probe_net], f"loc{probe_no}", sticky=False
            )
            self.strategy.commit(changes, anchor_instance=probe)

            mismatch = self._probe_disagrees(probe_net, f"loc{probe_no}")
            cone = netlist.fanin_cone([probe_inst], stop_at_ffs=False)
            before = len(candidates)
            if mismatch:
                candidates &= cone
                candidates.add(probe)
            else:
                candidates -= (cone | {probe})
            result.steps.append(
                ProbeStep(probe, mismatch, before, len(candidates))
            )
            if not candidates:
                raise DebugFlowError(
                    "localization eliminated every candidate "
                    "(reconvergent masking); rerun with more patterns"
                )
        result.candidates = candidates
        return result

    def _pick_probe(
        self, netlist: Netlist, candidates: set[str]
    ) -> str | None:
        """Candidate whose cone splits the candidate set most evenly."""
        target = len(candidates) / 2
        best_name, best_score = None, None
        for name in sorted(candidates):
            inst = netlist.instance(name)
            if inst.output is None:
                continue
            cone_size = len(
                netlist.fanin_cone([inst], stop_at_ffs=False) & candidates
            )
            score = abs(cone_size - target)
            # degenerate splits teach nothing
            if cone_size in (0, len(candidates)):
                continue
            if best_score is None or score < best_score:
                best_name, best_score = name, score
        if best_name is None:
            # all cones degenerate: fall back to any candidate
            ordered = sorted(candidates)
            return ordered[len(ordered) // 2] if ordered else None
        return best_name

    def _probe_disagrees(self, probe_net: str, obs_name: str) -> bool:
        """Emulate and compare the probe output to the golden net value."""
        emulator = Emulator(self.strategy.layout)
        emulator.reset(self.n_patterns)
        netlist = self.strategy.packed.netlist
        input_names = {
            pi.name.split(":", 1)[-1] for pi in netlist.primary_inputs()
        }
        for cycle, cycle_in in enumerate(self.stimulus):
            inputs = {name: cycle_in.get(name, 0) for name in input_names}
            outputs = emulator.step(inputs, self.n_patterns)
            probe_value = outputs.get(f"obs_probe_{obs_name}")
            golden_value = self._golden_nets[cycle].get(probe_net)
            if probe_value is None or golden_value is None:
                continue
            if probe_value != golden_value:
                return True
        return False
