"""Design-error injection.

Debugging needs bugs.  The injector plants realistic design errors into
a *mapped* netlist — the kinds of mistakes HDL-level slips turn into
after synthesis:

=================  ====================================================
kind               effect
=================  ====================================================
``table_bit``      one minterm of a LUT truth table flipped
``wrong_function`` a LUT's table replaced by a different common gate
``output_invert``  a LUT's table complemented (missing inverter)
``input_swap``     two input pins of a LUT exchanged
``wrong_source``   one LUT input rewired to a nearby signal
=================  ====================================================

Every injection returns an :class:`ErrorRecord` carrying the exact undo
information; :func:`repro.debug.correct.apply_correction` replays it,
modelling the designer's fix arriving through back-annotation.

:func:`inject_errors` plants a *set* of ``k`` errors — distinct
instances, injected in order into the already-mutated netlist, each one
cycle-safe with respect to everything planted before it.  Stacked
records undo cleanly in reverse order.  :func:`inject_error` is the
one-element shim and stays bit-identical to the historical single-fault
injector (same RNG stream, same candidate pools, same choice).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DebugFlowError
from repro.netlist.cells import CellKind, lut_table_for_gate
from repro.netlist.core import Netlist
from repro.rng import make_rng
from repro.tiling.eco import ChangeSet

ERROR_KINDS = (
    "table_bit",
    "wrong_function",
    "output_invert",
    "input_swap",
    "wrong_source",
)


@dataclass
class ErrorRecord:
    """One injected error and how to undo it."""

    kind: str
    instance: str
    detail: str
    undo: dict = field(default_factory=dict)

    def as_changeset(self, description: str | None = None) -> ChangeSet:
        return ChangeSet(
            description=description or f"{self.kind} @ {self.instance}",
            changed_instances={self.instance},
        )


def inject_error(
    netlist: Netlist, kind: str, seed: int = 0
) -> ErrorRecord:
    """Plant one error of ``kind``; netlist is modified in place."""
    return inject_errors(netlist, [kind], seed=seed)[0]


def inject_errors(
    netlist: Netlist,
    kinds,
    seed: int = 0,
    n_errors: int | None = None,
) -> list[ErrorRecord]:
    """Plant ``n_errors`` non-overlapping errors; returns their records.

    ``kinds`` is one kind name or a list of them; a single kind is
    repeated to fill ``n_errors`` (which defaults to ``len(kinds)``).
    Errors land on *distinct* instances — every already-faulted
    instance is excluded from later candidate pools — and each
    injection is cycle-safe against the netlist state the previous ones
    produced.  The first injection draws from the exact RNG stream the
    historical single-error injector used, so ``n_errors == 1``
    reproduces it bit-for-bit; later injections derive independent
    streams labelled by their index.
    """
    if isinstance(kinds, str):
        kinds = [kinds]
    kinds = list(kinds)
    if not kinds:
        raise DebugFlowError("need at least one error kind to inject")
    if n_errors is None:
        n_errors = len(kinds)
    if n_errors < 1:
        raise DebugFlowError(f"n_errors must be >= 1, got {n_errors}")
    if len(kinds) == 1 and n_errors > 1:
        kinds = kinds * n_errors
    if len(kinds) != n_errors:
        raise DebugFlowError(
            f"{len(kinds)} error kinds given for n_errors={n_errors}"
        )
    for kind in kinds:
        if kind not in ERROR_KINDS:
            raise DebugFlowError(
                f"unknown error kind {kind!r}; choose from {ERROR_KINDS}"
            )
    records: list[ErrorRecord] = []
    used: set[str] = set()
    for i, kind in enumerate(kinds):
        labels = ("inject", kind, netlist.name)
        if i:
            labels = labels + ("multi", i)
        rng = make_rng(seed, *labels)
        record = _inject_one(netlist, kind, rng, used)
        records.append(record)
        used.add(record.instance)
    return records


def _inject_one(
    netlist: Netlist, kind: str, rng, exclude: set[str]
) -> ErrorRecord:
    """One injection into the current netlist state, avoiding ``exclude``."""
    luts = sorted(
        (
            i for i in netlist.instances()
            if i.kind is CellKind.LUT and i.inputs
            and i.name not in exclude
        ),
        key=lambda i: i.name,
    )
    if not luts:
        raise DebugFlowError("netlist has no LUTs left to corrupt")

    if kind == "table_bit":
        inst = luts[rng.randrange(len(luts))]
        bit = rng.randrange(1 << len(inst.inputs))
        old = inst.params["table"]
        netlist.set_params(inst, {"table": old ^ (1 << bit)})
        return ErrorRecord(kind, inst.name, f"minterm {bit}",
                           {"table": old})

    if kind == "wrong_function":
        candidates = [i for i in luts if len(i.inputs) >= 2]
        if not candidates:
            raise DebugFlowError("no multi-input LUT left to corrupt")
        inst = candidates[rng.randrange(len(candidates))]
        old = inst.params["table"]
        choices = [CellKind.AND, CellKind.OR, CellKind.XOR, CellKind.NAND]
        for gate in rng.sample(choices, len(choices)):
            table = lut_table_for_gate(gate, len(inst.inputs))
            if table != old:
                netlist.set_params(inst, {"table": table})
                return ErrorRecord(kind, inst.name, f"became {gate}",
                                   {"table": old})
        raise DebugFlowError("could not find a differing gate function")

    if kind == "output_invert":
        inst = luts[rng.randrange(len(luts))]
        old = inst.params["table"]
        size = 1 << len(inst.inputs)
        netlist.set_params(inst, {"table": ~old & ((1 << size) - 1)})
        return ErrorRecord(kind, inst.name, "output inverted",
                           {"table": old})

    if kind == "input_swap":
        # only swaps that change the function are design errors: swapping
        # the pins of a symmetric LUT (XOR, AND) is a no-op
        candidates = []
        for inst in luts:
            if len(inst.inputs) < 2:
                continue
            for a in range(len(inst.inputs)):
                for b_pin in range(a + 1, len(inst.inputs)):
                    if inst.inputs[a] is inst.inputs[b_pin]:
                        continue
                    table = inst.params["table"]
                    if _swap_table(table, len(inst.inputs), a, b_pin) != table:
                        candidates.append((inst, a, b_pin))
        if not candidates:
            raise DebugFlowError("no asymmetric LUT pin pair to swap")
        inst, a, b = candidates[rng.randrange(len(candidates))]
        net_a, net_b = inst.inputs[a], inst.inputs[b]
        netlist.set_input(inst, a, net_b)
        netlist.set_input(inst, b, net_a)
        return ErrorRecord(
            kind, inst.name, f"pins {a}<->{b}",
            {"pins": (a, b)},
        )

    if kind == "wrong_source":
        return _inject_wrong_source(netlist, luts, rng)
    raise DebugFlowError(f"unhandled error kind {kind!r}")  # pragma: no cover


def _swap_table(table: int, k: int, a: int, b: int) -> int:
    """Truth table after exchanging input variables ``a`` and ``b``."""
    swapped = 0
    for minterm in range(1 << k):
        bit_a = (minterm >> a) & 1
        bit_b = (minterm >> b) & 1
        source = minterm & ~(1 << a) & ~(1 << b)
        source |= bit_b << a | bit_a << b
        if (table >> source) & 1:
            swapped |= 1 << minterm
    return swapped


def _inject_wrong_source(netlist: Netlist, luts, rng) -> ErrorRecord:
    # rewire one pin to another net of similar depth
    inst = luts[rng.randrange(len(luts))]
    pin = rng.randrange(len(inst.inputs))
    old_net = inst.inputs[pin]
    # identity-hash membership keeps this O(nets) instead of O(pins·nets),
    # and — because it tests the pin list as mutated by any *earlier*
    # injection — the pool is a pure function of the current netlist
    # state, so stacking a second error stays deterministic
    current_inputs = set(inst.inputs)
    pool = [
        n for n in netlist.nets()
        if n.driver is not None
        and n is not old_net
        and n not in current_inputs
        and not n.driver.is_io
    ]
    if not pool:
        raise DebugFlowError("no alternative source nets available")
    pool.sort(key=lambda n: n.name)
    # avoid creating a combinational cycle: reject nets in our fanout
    fanout = netlist.fanout_cone([inst])
    safe = [n for n in pool if n.driver.name not in fanout]
    if not safe:
        raise DebugFlowError("every candidate source would form a cycle")
    new_net = safe[rng.randrange(len(safe))]
    netlist.set_input(inst, pin, new_net)
    return ErrorRecord(
        "wrong_source", inst.name,
        f"pin {pin}: {old_net.name} -> {new_net.name}",
        {"pin": pin, "old_net": old_net.name},
    )
