"""Control and observation logic synthesis (paper steps 18-19).

Both instrument kinds are emitted directly as *mapped primitives*
(LUTs, DFFs, IO markers) so they drop straight into the incremental
packing and tile-confined re-place-and-route:

* an **observation point** watches a set of nets: a parity-compactor
  LUT tree feeds a sticky-flag DFF whose output is exported as a new
  primary output ``obs_flag_<name>``; a direct probe output
  ``obs_probe_<name>`` exposes the raw compacted value.  (The paper:
  "logic may be inserted which automatically detects an error upon its
  occurrence ... designed to raise a flag".)
* a **control point** hijacks a net: new primary inputs
  ``ctl_en_<name>`` / ``ctl_val_<name>`` and a splice LUT3 force the
  signal when enabled ("control logic is introduced into the circuit
  to induce certain states artificially").

Both return the :class:`ChangeSet` the tiling manager consumes, plus
the names of the fresh IO ports.
"""

from __future__ import annotations

from repro.errors import DebugFlowError
from repro.netlist.cells import CellKind
from repro.netlist.core import Net, Netlist
from repro.tiling.eco import ChangeRecorder, ChangeSet

#: LUT3 table for out = en ? val : orig with inputs (orig, val, en)
#: minterm = orig | val<<1 | en<<2
_MUX_TABLE = 0b11001010  # en=0 -> orig (bits 0-3: 0,1,0,1); en=1 -> val
#: LUT2 table for XOR
_XOR2 = 0b0110
#: LUT2 table for OR (sticky flag: flag | pulse)
_OR2 = 0b1110
#: LUT4 table for 4-input XOR (parity compactor)
_XOR4 = 0x6996


def add_observation_point(
    netlist: Netlist,
    watch_nets: list[str],
    name: str,
    sticky: bool = True,
    expected_parity: int = 0,
) -> tuple[ChangeSet, list[str]]:
    """Insert observation logic over ``watch_nets``.

    The compactor computes the parity of the watched nets; a mismatch
    against ``expected_parity`` raises the (optionally sticky) flag.
    Returns (changeset, new primary-output names).
    """
    if not watch_nets:
        raise DebugFlowError("observation point needs at least one net")
    # observation logic is purely additive (existing cells keep their
    # kind, wiring and tables), so the changeset is built directly from
    # the created names instead of diffing the whole netlist — probe
    # commits are the localization hot loop
    base_revision = getattr(netlist, "revision", None)
    created: set[str] = set()
    nets = [netlist.net(n) for n in watch_nets]
    parity = _parity_tree(netlist, nets, prefix=f"obs_{name}", created=created)
    if expected_parity:
        flip = netlist.add_lut(
            [parity], 0b01, name=f"obs_{name}_pol"
        )
        created.add(flip.name)
        parity = flip.output

    outputs = [f"obs_probe_{name}"]
    created.add(netlist.add_output(f"obs_probe_{name}", parity).name)
    if sticky:
        flag_q = netlist.add_net(f"obs_{name}_flag_q")
        hold = netlist.add_lut(
            [parity, flag_q], _OR2, name=f"obs_{name}_hold"
        )
        created.add(hold.name)
        ff = netlist.add_dff(
            hold.output, name=f"obs_{name}_ff", output=flag_q
        )
        created.add(ff.name)
        created.add(netlist.add_output(f"obs_flag_{name}", flag_q).name)
        outputs.append(f"obs_flag_{name}")
    changes = ChangeSet(
        description=f"observe {name}",
        new_instances=created,
        base_revision=base_revision,
    )
    return changes, outputs


def remove_observation_points(
    netlist: Netlist, names: list[str]
) -> ChangeSet:
    """Retire observation points by name — the inverse of
    :func:`add_observation_point`.

    Observation logic is purely additive and namespaced
    (``obs_<name>_*`` instances plus the ``obs_probe_<name>`` /
    ``obs_flag_<name>`` output markers), so removal deletes exactly
    those instances and prunes the nets they drove; the functional
    netlist is untouched.  Multi-round debug sessions call this between
    probe rounds so stale instrumentation does not accumulate — the
    tile-configuration cache replays the restore commit the same way it
    replays the insertion.

    Returns the removal :class:`ChangeSet` (empty when nothing matched).
    """
    base_revision = getattr(netlist, "revision", None)
    removed: set[str] = set()
    for name in names:
        prefix = f"obs_{name}_"
        markers = {f"po:obs_probe_{name}", f"po:obs_flag_{name}"}
        targets = [
            inst for inst in netlist.instances()
            if inst.name.startswith(prefix) or inst.name in markers
        ]
        # sinks (output markers, FF, hold) before drivers (parity tree)
        # keeps every intermediate state a valid netlist
        targets.sort(
            key=lambda i: (0 if i.kind is CellKind.OUTPUT else 1, i.name)
        )
        for inst in targets:
            netlist.remove_instance(inst)
            removed.add(inst.name)
    if removed:
        netlist.prune_dangling()
    return ChangeSet(
        description=f"retire {len(names)} observation point(s)",
        removed_instances=removed,
        base_revision=base_revision,
    )


def _parity_tree(
    netlist: Netlist, nets: list[Net], prefix: str,
    created: set[str] | None = None,
) -> Net:
    layer = list(nets)
    stage = 0
    while len(layer) > 1:
        nxt: list[Net] = []
        for i in range(0, len(layer), 4):
            chunk = layer[i : i + 4]
            if len(chunk) == 1:
                nxt.append(chunk[0])
                continue
            table = _XOR4 if len(chunk) == 4 else (
                _XOR2 if len(chunk) == 2 else 0b10010110  # XOR3
            )
            lut = netlist.add_lut(
                chunk, table, name=f"{prefix}_x{stage}_{i // 4}"
            )
            if created is not None:
                created.add(lut.name)
            nxt.append(lut.output)
        layer = nxt
        stage += 1
    return layer[0]


def add_control_point(
    netlist: Netlist, net_name: str, name: str
) -> tuple[ChangeSet, list[str]]:
    """Splice a force mux into ``net_name``.

    Returns (changeset, new primary-input names).  All original sinks
    now read the spliced value; the splice LUT reads the original net.
    """
    with ChangeRecorder(netlist, f"control {name}") as rec:
        original = netlist.net(net_name)
        if original.driver is None:
            raise DebugFlowError(f"net {net_name!r} has no driver to hijack")
        enable = netlist.add_input(f"ctl_en_{name}")
        value = netlist.add_input(f"ctl_val_{name}")
        splice = netlist.add_lut(
            [original, value, enable], _MUX_TABLE, name=f"ctl_{name}_mux"
        )
        moved = netlist.transfer_sinks(
            original,
            splice.output,
            keep=lambda inst, idx: inst is splice,
        )
        if moved == 0:
            raise DebugFlowError(f"net {net_name!r} had no sinks to control")
    assert rec.changes is not None
    return rec.changes, [f"ctl_en_{name}", f"ctl_val_{name}"]


def test_logic_block(
    netlist: Netlist, n_clbs: int, attach_net: str, name: str
) -> ChangeSet:
    """A parameterized block of test logic (the paper's "large counter").

    Builds a ripple counter chain sized to roughly ``n_clbs`` CLBs
    (2 BLEs each) whose LSB toggles only while ``attach_net`` is high,
    and exports the MSB.  Used by the Figure-3 style experiments to
    insert logic of a controlled size.
    """
    if n_clbs < 1:
        raise DebugFlowError("test logic needs at least one CLB")
    # bit i costs one merged LUT+FF BLE plus (below the MSB) one carry
    # LUT: 2n-1 BLEs for n bits = exactly n CLBs after pairing
    n_bits = n_clbs
    with ChangeRecorder(netlist, f"test logic {name} ({n_clbs} CLBs)") as rec:
        gate = netlist.net(attach_net)
        qs: list[Net] = [
            netlist.add_net(f"tl_{name}_q{i}") for i in range(n_bits)
        ]
        carry = gate
        for i in range(n_bits):
            # toggle bit while carry is high: d = q XOR carry
            lut = netlist.add_lut(
                [qs[i], carry], _XOR2, name=f"tl_{name}_x{i}"
            )
            netlist.add_dff(lut.output, name=f"tl_{name}_ff{i}", output=qs[i])
            if i + 1 < n_bits:
                and_lut = netlist.add_lut(
                    [qs[i], carry], 0b1000, name=f"tl_{name}_c{i}"
                )
                carry = and_lut.output
        netlist.add_output(f"tl_{name}_msb", qs[-1])
    assert rec.changes is not None
    return rec.changes
