"""Error detection: golden-model vs emulation comparison (step 21).

Detection compares the DUT's emulated outputs with the golden reference
cycle by cycle and pattern by pattern.  The result is a list of
:class:`Mismatch` records — which output, which cycle, which patterns —
the raw material localization works from.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.emu.emulator import Emulator
from repro.netlist.core import Netlist
from repro.netlist.simulate import SequentialSimulator


@dataclass(frozen=True)
class Mismatch:
    """One diverging primary output."""

    cycle: int
    output: str
    diff_mask: int  # bit i set = pattern i diverged

    @property
    def n_patterns_failing(self) -> int:
        return bin(self.diff_mask).count("1")


def compare_runs(
    dut_outputs: list[dict[str, int]],
    golden_outputs: list[dict[str, int]],
) -> list[Mismatch]:
    """Mismatches between two per-cycle output streams.

    Outputs present on only one side (e.g. DUT-side observation flags)
    are ignored — detection judges the *functional* interface.
    """
    mismatches: list[Mismatch] = []
    for cycle, (dut, gold) in enumerate(zip(dut_outputs, golden_outputs)):
        for name in sorted(dut.keys() & gold.keys()):
            diff = dut[name] ^ gold[name]
            if diff:
                mismatches.append(Mismatch(cycle, name, diff))
    return mismatches


def detect_on_layout(
    layout,
    golden: Netlist,
    stimulus: list[dict[str, int]],
    n_patterns: int,
    engine: str = "compiled",
) -> list[Mismatch]:
    """Emulate the layout against the golden netlist on ``stimulus``.

    The golden model may lack the DUT's instrumentation inputs; control
    inputs default to 0 (disabled) on the DUT side when missing from
    the stimulus, and observation outputs are excluded by
    :func:`compare_runs`.  ``engine`` selects the combinational
    evaluator for both sides (see :func:`repro.netlist.make_engine`).
    """
    emulator = Emulator(layout, engine=engine)
    golden_sim = SequentialSimulator(golden, engine=engine)
    golden_sim.reset(n_patterns)
    emulator.reset(n_patterns)

    dut_names = {
        pi.name.split(":", 1)[-1] for pi in layout.packed.netlist.primary_inputs()
    }
    golden_names = {
        pi.name.split(":", 1)[-1] for pi in golden.primary_inputs()
    }

    dut_out: list[dict[str, int]] = []
    gold_out: list[dict[str, int]] = []
    for cycle_in in stimulus:
        dut_in = {name: cycle_in.get(name, 0) for name in dut_names}
        gold_in = {name: cycle_in.get(name, 0) for name in golden_names}
        dut_out.append(emulator.step(dut_in, n_patterns))
        gold_out.append(golden_sim.step(gold_in, n_patterns))
    return compare_runs(dut_out, gold_out)
