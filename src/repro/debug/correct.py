"""Error correction (paper steps 11-13).

Two routes produce the fix :class:`ChangeSet` whose commit the paper's
Figure 5 measures:

* **back-annotation** (:func:`apply_correction`) — the designer fixes
  the bug at the HDL level and the inverse of the injected error is
  replayed onto the mapped netlist;
* **CEGIS synthesis** (:func:`synthesize_lut_fix`) — no oracle: the
  localization candidates are tried in order, and for each suspect LUT
  the CDCL solver searches for a replacement truth table consistent
  with every counterexample observed so far, iterating
  solve → simulate-check → add blocking constraint until a table
  verifies against the golden model on the full stimulus
  (:mod:`repro.sat.cegis`).  With ``max_luts >= 2`` the search widens
  to candidate *pairs* retabled jointly on one shared solver — the
  interacting-fault case where neither single table clears the
  evidence.  Errors that are not truth-table-shaped at any candidate
  (a rewired input pin, say) come back unfixable and the caller falls
  back to back-annotation.

Multi-error sessions stack corrections: each round's fix ChangeSet is
independent, and stacked :func:`apply_correction` calls undo a stack of
injections when replayed in reverse order.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.debug.detect import Mismatch
from repro.debug.errors import ErrorRecord
from repro.errors import DebugFlowError
from repro.netlist.cells import CellKind
from repro.netlist.core import Netlist
from repro.tiling.eco import ChangeRecorder, ChangeSet


def apply_correction(
    netlist: Netlist, record: ErrorRecord
) -> ChangeSet:
    """Undo the injected error; returns the netlist delta."""
    inst = netlist.instance(record.instance)
    with ChangeRecorder(netlist, f"fix {record.kind} @ {record.instance}") as rec:
        if record.kind in ("table_bit", "wrong_function", "output_invert"):
            netlist.set_params(inst, {"table": record.undo["table"]})
        elif record.kind == "input_swap":
            a, b = record.undo["pins"]
            net_a, net_b = inst.inputs[a], inst.inputs[b]
            netlist.set_input(inst, a, net_b)
            netlist.set_input(inst, b, net_a)
        elif record.kind == "wrong_source":
            pin = record.undo["pin"]
            netlist.set_input(inst, pin, netlist.net(record.undo["old_net"]))
        else:
            raise DebugFlowError(f"no corrector for error kind {record.kind!r}")
    changes = rec.changes
    assert changes is not None
    if record.kind in ("table_bit", "wrong_function", "output_invert"):
        # a pure params change is connectivity-invisible to the recorder
        # only if the table happened to match; make the touch explicit
        changes.changed_instances.add(record.instance)
    return changes


@dataclass
class FixSynthesis:
    """A verified CEGIS repair, ready to commit."""

    #: netlist delta applying the synthesized table(s)
    changes: ChangeSet
    #: the (first) LUT that was retabled
    instance: str
    #: the (first) replacement truth table
    table: int
    #: CEGIS round trips spent on the successful suspect set
    iterations: int
    #: suspects attempted, in order (the last entry succeeded)
    tried: list[str] = field(default_factory=list)
    #: counterexamples accumulated: (cycle, output, pattern)
    counterexamples: list = field(default_factory=list)
    #: every retabled LUT, in order (len > 1 for joint repairs)
    instances: list[str] = field(default_factory=list)
    #: replacement tables aligned with ``instances``
    tables: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.instances:
            self.instances = [self.instance]
        if not self.tables:
            self.tables = [self.table]

    def to_dict(self) -> dict:
        return {
            "instance": self.instance,
            "table": self.table,
            "instances": list(self.instances),
            "tables": list(self.tables),
            "iterations": self.iterations,
            "tried": list(self.tried),
            "counterexamples": [list(c) for c in self.counterexamples],
        }


def synthesize_lut_fix(
    netlist: Netlist,
    golden: Netlist,
    candidates,
    mismatches: list[Mismatch],
    stimulus: list[dict[str, int]],
    n_patterns: int,
    engine: str = "compiled",
    max_iterations: int = 12,
    seed: int = 0,
    max_luts: int = 1,
    pair_hints=None,
    ignore_outputs=None,
    max_pairs: int = 8,
) -> FixSynthesis | None:
    """Search the candidate LUTs for a truth-table repair.

    Single candidates are tried in sorted order; the first whose
    synthesized table clears *every* (non-exempted) mismatch on the
    full stimulus wins and is applied to ``netlist``.  With
    ``max_luts >= 2`` the search continues over candidate pairs —
    ``pair_hints`` (e.g. the SAT diagnoser's feasible pairs) are tried
    first, then sorted combinations, up to ``max_pairs`` joint
    attempts.  ``ignore_outputs`` exempts outputs owned by other
    not-yet-fixed errors from the specification.  Returns ``None`` when
    no candidate set admits a table fix (the error is structural, or
    lies outside the candidates) — the pipeline then falls back to
    back-annotation.
    """
    from repro.sat.cegis import synthesize_tables

    if not mismatches:
        raise DebugFlowError("cannot synthesize a fix without a mismatch")

    def is_lut(name: str) -> bool:
        if not netlist.has_instance(name):
            return False
        inst = netlist.instance(name)
        return inst.kind is CellKind.LUT and bool(inst.inputs)

    tried: list[str] = []
    attempts: list[tuple[str, ...]] = [
        (name,) for name in sorted(candidates) if is_lut(name)
    ]
    if max_luts >= 2:
        pairs: list[tuple[str, ...]] = []
        seen: set[tuple[str, ...]] = set()
        for a, b in list(pair_hints or []):
            key = tuple(sorted((a, b)))
            if key in seen or not (is_lut(a) and is_lut(b)):
                continue
            seen.add(key)
            pairs.append(key)
        for key in itertools.combinations(
            sorted(name for name in candidates if is_lut(name)), 2
        ):
            if key not in seen:
                seen.add(key)
                pairs.append(key)
        attempts.extend(pairs[:max_pairs])

    for group in attempts:
        tried.append("+".join(group))
        outcome = synthesize_tables(
            netlist, golden, list(group), mismatches, stimulus, n_patterns,
            engine=engine, max_iterations=max_iterations, seed=seed,
            ignore_outputs=ignore_outputs,
        )
        if not outcome.succeeded:
            continue
        label = "+".join(group)
        with ChangeRecorder(netlist, f"cegis retable @ {label}") as rec:
            for name, table in zip(group, outcome.tables):
                netlist.set_params(
                    netlist.instance(name), {"table": table}
                )
        changes = rec.changes
        assert changes is not None
        # params-only edits are connectivity-invisible to the recorder
        changes.changed_instances.update(group)
        return FixSynthesis(
            changes=changes,
            instance=group[0],
            table=outcome.tables[0],
            iterations=outcome.iterations,
            tried=tried,
            counterexamples=list(outcome.counterexamples),
            instances=list(group),
            tables=list(outcome.tables),
        )
    return None
