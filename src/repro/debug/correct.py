"""Error correction (paper steps 11-13).

The designer fixes the bug at the HDL level; back-annotation carries the
fix down to the mapped netlist as the inverse of the injected error.
:func:`apply_correction` replays that inverse and returns the
:class:`ChangeSet` whose commit (tile-confined re-place-and-route) is
what the paper's Figure 5 measures.
"""

from __future__ import annotations

from repro.debug.errors import ErrorRecord
from repro.errors import DebugFlowError
from repro.netlist.core import Netlist
from repro.tiling.eco import ChangeRecorder, ChangeSet


def apply_correction(
    netlist: Netlist, record: ErrorRecord
) -> ChangeSet:
    """Undo the injected error; returns the netlist delta."""
    inst = netlist.instance(record.instance)
    with ChangeRecorder(netlist, f"fix {record.kind} @ {record.instance}") as rec:
        if record.kind in ("table_bit", "wrong_function", "output_invert"):
            netlist.set_params(inst, {"table": record.undo["table"]})
        elif record.kind == "input_swap":
            a, b = record.undo["pins"]
            net_a, net_b = inst.inputs[a], inst.inputs[b]
            netlist.set_input(inst, a, net_b)
            netlist.set_input(inst, b, net_a)
        elif record.kind == "wrong_source":
            pin = record.undo["pin"]
            netlist.set_input(inst, pin, netlist.net(record.undo["old_net"]))
        else:
            raise DebugFlowError(f"no corrector for error kind {record.kind!r}")
    changes = rec.changes
    assert changes is not None
    if record.kind in ("table_bit", "wrong_function", "output_invert"):
        # a pure params change is connectivity-invisible to the recorder
        # only if the table happened to match; make the touch explicit
        changes.changed_instances.add(record.instance)
    return changes
