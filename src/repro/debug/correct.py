"""Error correction (paper steps 11-13).

Two routes produce the fix :class:`ChangeSet` whose commit the paper's
Figure 5 measures:

* **back-annotation** (:func:`apply_correction`) — the designer fixes
  the bug at the HDL level and the inverse of the injected error is
  replayed onto the mapped netlist;
* **CEGIS synthesis** (:func:`synthesize_lut_fix`) — no oracle: the
  localization candidates are tried in order, and for each suspect LUT
  the CDCL solver searches for a replacement truth table consistent
  with every counterexample observed so far, iterating
  solve → simulate-check → add blocking constraint until a table
  verifies against the golden model on the full stimulus
  (:mod:`repro.sat.cegis`).  Errors that are not truth-table-shaped at
  any candidate (a rewired input pin, say) come back unfixable and the
  caller falls back to back-annotation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.debug.detect import Mismatch
from repro.debug.errors import ErrorRecord
from repro.errors import DebugFlowError
from repro.netlist.cells import CellKind
from repro.netlist.core import Netlist
from repro.tiling.eco import ChangeRecorder, ChangeSet


def apply_correction(
    netlist: Netlist, record: ErrorRecord
) -> ChangeSet:
    """Undo the injected error; returns the netlist delta."""
    inst = netlist.instance(record.instance)
    with ChangeRecorder(netlist, f"fix {record.kind} @ {record.instance}") as rec:
        if record.kind in ("table_bit", "wrong_function", "output_invert"):
            netlist.set_params(inst, {"table": record.undo["table"]})
        elif record.kind == "input_swap":
            a, b = record.undo["pins"]
            net_a, net_b = inst.inputs[a], inst.inputs[b]
            netlist.set_input(inst, a, net_b)
            netlist.set_input(inst, b, net_a)
        elif record.kind == "wrong_source":
            pin = record.undo["pin"]
            netlist.set_input(inst, pin, netlist.net(record.undo["old_net"]))
        else:
            raise DebugFlowError(f"no corrector for error kind {record.kind!r}")
    changes = rec.changes
    assert changes is not None
    if record.kind in ("table_bit", "wrong_function", "output_invert"):
        # a pure params change is connectivity-invisible to the recorder
        # only if the table happened to match; make the touch explicit
        changes.changed_instances.add(record.instance)
    return changes


@dataclass
class FixSynthesis:
    """A verified CEGIS repair, ready to commit."""

    #: netlist delta applying the synthesized table
    changes: ChangeSet
    #: the LUT that was retabled
    instance: str
    #: the replacement truth table
    table: int
    #: CEGIS round trips spent on the successful suspect
    iterations: int
    #: suspects attempted, in order (the last one succeeded)
    tried: list[str] = field(default_factory=list)
    #: counterexamples accumulated: (cycle, output, pattern)
    counterexamples: list = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "instance": self.instance,
            "table": self.table,
            "iterations": self.iterations,
            "tried": list(self.tried),
            "counterexamples": [list(c) for c in self.counterexamples],
        }


def synthesize_lut_fix(
    netlist: Netlist,
    golden: Netlist,
    candidates,
    mismatches: list[Mismatch],
    stimulus: list[dict[str, int]],
    n_patterns: int,
    engine: str = "compiled",
    max_iterations: int = 12,
    seed: int = 0,
) -> FixSynthesis | None:
    """Search the candidate LUTs for a truth-table repair.

    Candidates are tried in sorted order; the first whose synthesized
    table clears *every* mismatch on the full stimulus wins and is
    applied to ``netlist``.  Returns ``None`` when no candidate admits
    a table fix (the error is structural, or lies outside the
    candidates) — the pipeline then falls back to back-annotation.
    """
    from repro.sat.cegis import synthesize_table

    if not mismatches:
        raise DebugFlowError("cannot synthesize a fix without a mismatch")
    tried: list[str] = []
    for name in sorted(candidates):
        if not netlist.has_instance(name):
            continue
        inst = netlist.instance(name)
        if inst.kind is not CellKind.LUT or not inst.inputs:
            continue
        tried.append(name)
        outcome = synthesize_table(
            netlist, golden, name, mismatches, stimulus, n_patterns,
            engine=engine, max_iterations=max_iterations, seed=seed,
        )
        if not outcome.succeeded:
            continue
        with ChangeRecorder(netlist, f"cegis retable @ {name}") as rec:
            netlist.set_params(inst, {"table": outcome.table})
        changes = rec.changes
        assert changes is not None
        # params-only edits are connectivity-invisible to the recorder
        changes.changed_instances.add(name)
        return FixSynthesis(
            changes=changes,
            instance=name,
            table=outcome.table,
            iterations=outcome.iterations,
            tried=tried,
            counterexamples=list(outcome.counterexamples),
        )
    return None
