"""Back-end strategies under comparison (the paper's Figure 5 contenders).

Every strategy answers one question — *what does it cost to push a
debugging change into the physical design?* — through a common
interface:

* :class:`TiledStrategy` — the paper's contribution: tile on first use,
  then commit each change with tile-confined re-place-and-route;
* :class:`QuickEcoStrategy` — Fang/Wu/Yen's DAC'97 system: trace the
  change to its *functional block* and re-place-and-route that block.
  Per paper §6 each experimental design is one functional block, so the
  whole design is re-implemented;
* :class:`IncrementalStrategy` — incremental P&R: rip up a window around
  the change, growing it to make room, with global rerouting;
* :class:`FullStrategy` — the historical worst case: full re-place-and-
  route of everything on every change.

Each commit returns an :class:`EffortMeter`; histories accumulate in
``commit_history`` for the experiment drivers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from typing import Callable

from repro.arch.device import Device
from repro.errors import DebugFlowError, UnknownStrategyError
from repro.pnr.effort import EffortMeter, EffortPreset, EFFORT_PRESETS
from repro.pnr.flow import Layout, full_place_and_route, incremental_update
from repro.rng import derive_seed
from repro.synth.pack import (
    PackedDesign,
    extend_packing,
    refresh_block_nets,
    retire_instances,
)
from repro.tiling.cache import (
    DEFAULT_TILE_CACHE,
    TileConfigCache,
    cached_full_place_and_route,
)
from repro.tiling.eco import ChangeSet
from repro.tiling.manager import TiledLayout
from repro.tiling.partition import TilingOptions

@dataclass
class CommitRecord:
    """One committed change and what it cost."""

    description: str
    effort: EffortMeter
    detail: str = ""


def _absorb_changes(
    packed: PackedDesign, layout: Layout | None, changes: ChangeSet
) -> tuple[set[int], set[int], list[int]]:
    """Update packing/netlist bookkeeping shared by all strategies.

    Returns (changed blocks, new blocks, net indices needing routes).
    """
    changed_blocks = packed.blocks_of_instances(changes.touched_existing())
    retire_instances(packed, changes.removed_instances)
    new_blocks = extend_packing(packed, changes.new_instances)
    new_ids, changed_ids, removed_ids = refresh_block_nets(packed)
    if layout is not None:
        for idx in removed_ids:
            old = layout.routes.pop(idx, None)
            if old is not None:
                layout.state.remove(old)
    return changed_blocks, new_blocks, sorted(new_ids | changed_ids)


class BaseStrategy:
    """Common state: the packed design, device, and commit history."""

    name = "base"
    #: strategies may opt the localizer into SAT-guided candidate
    #: pruning (see :class:`repro.sat.diagnose.SuspectPruner`)
    sat_localization = False

    def __init__(
        self,
        packed: PackedDesign,
        device: Device,
        seed: int = 1,
        preset: EffortPreset | None = None,
        tiling: TilingOptions | None = None,
        tile_cache: TileConfigCache | None = DEFAULT_TILE_CACHE,
    ) -> None:
        self.packed = packed
        self.device = device
        self.seed = seed
        self.preset = preset or EFFORT_PRESETS["normal"]
        self.tiling_options = tiling or TilingOptions(n_tiles=10)
        #: configuration cache for initial P&R and tile commits; pass
        #: None to force every implementation to be computed fresh
        #: (e.g. when comparing effort meters across repeated runs)
        self.tile_cache = tile_cache
        self.commit_history: list[CommitRecord] = []
        #: commits served from the tile-configuration cache (tiled only)
        self.cache_hits = 0
        #: observer called with each :class:`CommitRecord` as it lands —
        #: the pipeline's ``on_commit`` hook attaches here
        self.commit_listener: Callable[[CommitRecord], None] | None = None
        self._commit_count = 0
        self._layout: Layout | None = None

    # -- construction --------------------------------------------------

    def build_initial(self, meter: EffortMeter | None = None) -> Layout:
        """Step 2: the original place-and-route (not a debugging cost).

        Served from the whole-design configuration cache when the
        identical implementation was computed before (e.g. the same
        campaign re-run under another simulation engine).
        """
        meter = meter if meter is not None else EffortMeter()
        self._layout = cached_full_place_and_route(
            self.packed, self.device, seed=self.seed, preset=self.preset,
            meter=meter, strict_routing=False, context="initial",
            cache=self.tile_cache,
        )
        return self._layout

    @property
    def layout(self) -> Layout:
        if self._layout is None:
            raise DebugFlowError("call build_initial() first")
        return self._layout

    def prepare_for_debug(self) -> None:
        """Hook: run once after the first error is detected (steps 4-8)."""

    def _next_seed(self) -> int:
        self._commit_count += 1
        return derive_seed(self.seed, self.name, self._commit_count)

    def commit(self, changes: ChangeSet, anchor_instance: str | None = None
               ) -> EffortMeter:
        raise NotImplementedError

    def _record_commit(self, record: CommitRecord) -> None:
        self.commit_history.append(record)
        if self.commit_listener is not None:
            self.commit_listener(record)

    @property
    def total_effort(self) -> EffortMeter:
        total = EffortMeter()
        for rec in self.commit_history:
            total = total.merged_with(rec.effort)
        return total


class TiledStrategy(BaseStrategy):
    """The paper's approach."""

    name = "tiled"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.tiled: TiledLayout | None = None

    def prepare_for_debug(self) -> None:
        """Steps 4-8: re-place with slack, draw boundaries, lock.

        Tiling setup is a one-time cost, *not* charged to per-change
        commits (the paper reports it as Table 1 overhead instead).
        """
        if self.tiled is not None:
            return
        self.tiled = TiledLayout.create(
            self.packed, self.device, self.tiling_options,
            seed=self.seed, preset=self.preset,
            initial_layout=self._layout,
            tile_cache=self.tile_cache,
        )
        self._layout = self.tiled.layout

    def commit(self, changes: ChangeSet, anchor_instance: str | None = None
               ) -> EffortMeter:
        if self.tiled is None:
            self.prepare_for_debug()
        assert self.tiled is not None
        report = self.tiled.apply_changeset(
            changes, seed=self._next_seed(), preset=self.preset,
            anchor_instance=anchor_instance,
        )
        self._layout = self.tiled.layout
        detail = f"tiles {report.affected_tiles}"
        if report.cache_hit:
            self.cache_hits += 1
            detail += " (cached config)"
        self._record_commit(
            CommitRecord(changes.description, report.effort, detail=detail)
        )
        return report.effort


class SatTiledStrategy(TiledStrategy):
    """Tiled commits plus SAT-guided candidate elimination.

    The physical back end is identical to :class:`TiledStrategy`; the
    difference is in the localizer, which consults the CDCL solver
    before each probe (see :mod:`repro.sat.diagnose`): suspects whose
    relaxation provably cannot reproduce the round's observed
    discrepancies are dropped — together with the cone subsets they
    dominate — *before* an observation-point commit is spent on them.
    Elimination is sound (only candidates that cannot be the error are
    removed), so the strategy localizes whatever ``tiled`` localizes,
    in at most as many probes.
    """

    name = "sat"
    sat_localization = True


class QuickEcoStrategy(BaseStrategy):
    """Functional-block granularity: re-P&R the whole affected block.

    Per paper §6 every experimental design is a single functional
    block, so each commit re-places-and-routes the entire design.
    """

    name = "quick_eco"

    def commit(self, changes: ChangeSet, anchor_instance: str | None = None
               ) -> EffortMeter:
        meter = EffortMeter()
        _absorb_changes(self.packed, self._layout, changes)
        self._layout = full_place_and_route(
            self.packed, self.device, seed=self._next_seed(),
            preset=self.preset, meter=meter, strict_routing=False,
        )
        self._record_commit(
            CommitRecord(changes.description, meter, detail="whole block")
        )
        return meter


class FullStrategy(QuickEcoStrategy):
    """Everything re-implemented each time (pre-Quick_ECO practice)."""

    name = "full"


class IncrementalStrategy(BaseStrategy):
    """Window-based incremental place-and-route."""

    name = "incremental"

    def commit(self, changes: ChangeSet, anchor_instance: str | None = None
               ) -> EffortMeter:
        meter = EffortMeter()
        changed, fresh, net_ids = _absorb_changes(
            self.packed, self._layout, changes
        )
        anchor_blocks = set(changed)
        if not anchor_blocks and anchor_instance is not None:
            block = self.packed.block_of_instance.get(anchor_instance)
            if block is not None:
                anchor_blocks = {block}
        if not anchor_blocks:
            # no placed anchor: fall back to the device center block
            placed = sorted(self.layout.placement.clb_at.values())
            if not placed:
                raise DebugFlowError("empty layout cannot be updated")
            anchor_blocks = {placed[len(placed) // 2]}
        window = incremental_update(
            self.layout, anchor_blocks, new_blocks=fresh,
            seed=self._next_seed(), preset=self.preset, meter=meter,
            extra_nets=net_ids,
        )
        self._record_commit(
            CommitRecord(changes.description, meter, detail=f"window {window}")
        )
        return meter


#: Single source of truth for strategy resolution — the CLI and
#: :class:`repro.api.RunSpec` validation key off this mapping.
STRATEGY_REGISTRY: dict[str, type[BaseStrategy]] = {
    "tiled": TiledStrategy,
    "sat": SatTiledStrategy,
    "quick_eco": QuickEcoStrategy,
    "incremental": IncrementalStrategy,
    "full": FullStrategy,
}

STRATEGY_NAMES = tuple(STRATEGY_REGISTRY)


def make_strategy(
    name: str,
    packed: PackedDesign,
    device: Device,
    seed: int = 1,
    preset: EffortPreset | None = None,
    tiling: TilingOptions | None = None,
    tile_cache: TileConfigCache | None = DEFAULT_TILE_CACHE,
) -> BaseStrategy:
    """Factory keyed by strategy name (see :data:`STRATEGY_REGISTRY`)."""
    try:
        cls = STRATEGY_REGISTRY[name]
    except KeyError:
        raise UnknownStrategyError(
            f"unknown strategy {name!r}; valid strategies: "
            + ", ".join(sorted(STRATEGY_REGISTRY))
        ) from None
    return cls(packed, device, seed=seed, preset=preset, tiling=tiling,
               tile_cache=tile_cache)
