"""The emulation debug loop — the paper's pseudo-code, steps 1-22.

:class:`EmulationDebugSession` drives a complete campaign against one
injected design error:

====  ===========================================================
step  implementation
====  ===========================================================
1-2   generator + mapper + packer, then the initial P&R
3     emulate on random stimulus vs the golden model
4-8   (tiled strategy) re-place with slack, boundaries, lock
10    test-pattern generation
16-19 localization probes: observation points, committed one by one
11-15 the correction, traced to the netlist and committed
20    every commit re-places-and-routes only what its strategy needs
21    emulate again; the fix must clear all mismatches
====  ===========================================================

The session charges *every* physical-design change (instrumentation and
correction alike) to its strategy's effort meter, which is exactly the
comparison Figure 5 reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.device import Device, pick_device
from repro.debug.correct import apply_correction
from repro.debug.detect import Mismatch, detect_on_layout
from repro.debug.errors import ErrorRecord, inject_error
from repro.debug.localize import ConeLocalizer, LocalizationResult
from repro.debug.strategies import BaseStrategy, make_strategy
from repro.debug.testgen import random_stimulus
from repro.errors import DebugFlowError
from repro.netlist.core import Netlist
from repro.netlist.validate import check_netlist
from repro.pnr.effort import EffortMeter, EffortPreset, EFFORT_PRESETS
from repro.synth.pack import PackedDesign, refresh_block_nets
from repro.tiling.cache import DEFAULT_TILE_CACHE
from repro.tiling.partition import TilingOptions


@dataclass
class DebugReport:
    """Outcome of one debug campaign."""

    design: str
    strategy: str
    error: ErrorRecord
    detected: bool
    localization: LocalizationResult | None
    localized_correctly: bool
    fixed: bool
    n_commits: int
    total_effort: EffortMeter
    initial_effort: EffortMeter
    notes: list[str] = field(default_factory=list)
    #: commits replayed from precomputed tile configurations
    n_commit_cache_hits: int = 0


class EmulationDebugSession:
    """One design, one strategy, one error — run the loop end to end."""

    def __init__(
        self,
        packed: PackedDesign,
        device: Device | None = None,
        strategy: str = "tiled",
        tiling: TilingOptions | None = None,
        seed: int = 1,
        preset: EffortPreset | None = None,
        n_patterns: int = 64,
        n_cycles: int = 8,
        engine: str = "compiled",
        tile_cache=DEFAULT_TILE_CACHE,
    ) -> None:
        self.packed = packed
        self.preset = preset or EFFORT_PRESETS["normal"]
        self.seed = seed
        self.n_patterns = n_patterns
        self.n_cycles = n_cycles
        self.engine = engine
        if device is None:
            device = pick_device(
                packed.n_clbs,
                area_overhead=0.35,
                min_io=len(packed.io_blocks()) + 16,
            )
        self.device = device
        #: pristine copy captured before any injection — the golden model
        self.golden: Netlist = packed.netlist.copy(
            f"{packed.netlist.name}.golden"
        )
        self.strategy: BaseStrategy = make_strategy(
            strategy, packed, device, seed=seed, preset=self.preset,
            tiling=tiling, tile_cache=tile_cache,
        )

    # ------------------------------------------------------------------

    def run(
        self,
        error_kind: str = "table_bit",
        error_seed: int = 0,
        max_probes: int = 8,
        goal_size: int = 4,
    ) -> DebugReport:
        """Inject, detect, localize, correct, verify; return the report."""
        netlist = self.packed.netlist
        record = inject_error(netlist, error_kind, seed=error_seed)
        check_netlist(netlist)
        refresh_block_nets(self.packed)

        initial_meter = EffortMeter()
        self.strategy.build_initial(meter=initial_meter)

        stimulus = random_stimulus(
            self.golden, self.n_cycles, self.n_patterns, seed=self.seed
        )
        mismatches = self._detect(stimulus)
        notes: list[str] = []
        if not mismatches:
            # widen the net: longer run, more patterns
            notes.append("first stimulus missed the error; widened")
            stimulus = random_stimulus(
                self.golden, self.n_cycles * 4, self.n_patterns,
                seed=self.seed + 1,
            )
            mismatches = self._detect(stimulus)
        if not mismatches:
            return DebugReport(
                design=netlist.name,
                strategy=self.strategy.name,
                error=record,
                detected=False,
                localization=None,
                localized_correctly=False,
                fixed=False,
                n_commits=0,
                total_effort=self.strategy.total_effort,
                initial_effort=initial_meter,
                notes=notes + ["error never excited; not a functional bug"],
            )

        # steps 4-8: the tiled strategy locks its boundaries now
        self.strategy.prepare_for_debug()

        localizer = ConeLocalizer(
            self.strategy, self.golden, stimulus, self.n_patterns,
            goal_size=goal_size, engine=self.engine,
        )
        localization = localizer.run(mismatches, max_probes=max_probes)
        localized = record.instance in localization.candidates

        fix = apply_correction(netlist, record)
        check_netlist(netlist)
        self.strategy.commit(fix, anchor_instance=record.instance)

        remaining = self._detect(stimulus)
        fixed = not remaining
        if not fixed:
            notes.append(f"{len(remaining)} mismatches persist after fix")

        return DebugReport(
            design=netlist.name,
            strategy=self.strategy.name,
            error=record,
            detected=True,
            localization=localization,
            localized_correctly=localized,
            fixed=fixed,
            n_commits=len(self.strategy.commit_history),
            total_effort=self.strategy.total_effort,
            initial_effort=initial_meter,
            notes=notes,
            n_commit_cache_hits=self.strategy.cache_hits,
        )

    # ------------------------------------------------------------------

    def _detect(self, stimulus) -> list[Mismatch]:
        return detect_on_layout(
            self.strategy.layout, self.golden, stimulus, self.n_patterns,
            engine=self.engine,
        )


def run_campaign(
    packed_factory,
    strategies: list[str],
    error_kind: str = "table_bit",
    seed: int = 1,
    preset: EffortPreset | None = None,
    tiling: TilingOptions | None = None,
    n_cycles: int = 8,
    n_patterns: int = 64,
) -> dict[str, DebugReport]:
    """Run the identical debug campaign under several strategies.

    ``packed_factory`` must build a *fresh* packed design per call —
    each strategy mutates its own netlist copy.
    """
    reports: dict[str, DebugReport] = {}
    for name in strategies:
        packed = packed_factory()
        session = EmulationDebugSession(
            packed, strategy=name, seed=seed, preset=preset, tiling=tiling,
            n_cycles=n_cycles, n_patterns=n_patterns,
        )
        reports[name] = session.run(error_kind=error_kind, error_seed=seed)
    if not reports:
        raise DebugFlowError("no strategies requested")
    return reports
