"""The emulation debug loop — the paper's pseudo-code, steps 1-22.

.. deprecated:: PR 3
   :class:`EmulationDebugSession` and :func:`run_campaign` are retained
   shims over the staged pipeline in :mod:`repro.api` — prefer
   :class:`repro.api.RunSpec` + :func:`repro.api.run_spec` (one run) or
   :class:`repro.api.CampaignRunner` (many runs).  The shims execute
   the *same* stage objects, so their candidates, probe trajectories,
   and effort meters stay bit-identical to the facade.

:class:`EmulationDebugSession` drives a complete campaign against one
injected design error:

====  ===========================================================
step  implementation
====  ===========================================================
1-2   generator + mapper + packer, then the initial P&R
3     emulate on random stimulus vs the golden model
4-8   (tiled strategy) re-place with slack, boundaries, lock
10    test-pattern generation
16-19 localization probes: observation points, committed one by one
11-15 the correction, traced to the netlist and committed
20    every commit re-places-and-routes only what its strategy needs
21    emulate again; the fix must clear all mismatches
====  ===========================================================

The session charges *every* physical-design change (instrumentation and
correction alike) to its strategy's effort meter, which is exactly the
comparison Figure 5 reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.device import Device, pick_device
from repro.debug.errors import ErrorRecord
from repro.debug.localize import LocalizationResult
from repro.debug.strategies import BaseStrategy, make_strategy
from repro.errors import DebugFlowError
from repro.netlist.core import Netlist
from repro.pnr.effort import EffortMeter, EffortPreset, EFFORT_PRESETS
from repro.synth.pack import PackedDesign
from repro.tiling.cache import DEFAULT_TILE_CACHE
from repro.tiling.partition import TilingOptions


@dataclass
class DebugReport:
    """Outcome of one debug campaign."""

    design: str
    strategy: str
    #: the first injected error (legacy single-fault view)
    error: ErrorRecord
    detected: bool
    #: the last round's localization (``localizations`` has them all)
    localization: LocalizationResult | None
    localized_correctly: bool
    fixed: bool
    n_commits: int
    total_effort: EffortMeter
    initial_effort: EffortMeter
    notes: list[str] = field(default_factory=list)
    #: commits replayed from precomputed tile configurations
    n_commit_cache_hits: int = 0
    #: every injected error, in injection order
    errors: list = field(default_factory=list)
    #: per-round localizations (multi-error sessions)
    localizations: list = field(default_factory=list)
    #: per-round diagnose→fix→re-detect records
    rounds: list = field(default_factory=list)


class EmulationDebugSession:
    """One design, one strategy, one error — run the loop end to end.

    A thin shim over :class:`repro.api.DebugPipeline`: :meth:`run`
    materializes a :class:`repro.api.RunContext` from the session's
    state and executes the shared stage objects.
    """

    def __init__(
        self,
        packed: PackedDesign,
        device: Device | None = None,
        strategy: str = "tiled",
        tiling: TilingOptions | None = None,
        seed: int = 1,
        preset: EffortPreset | None = None,
        n_patterns: int = 64,
        n_cycles: int = 8,
        engine: str = "compiled",
        tile_cache=DEFAULT_TILE_CACHE,
    ) -> None:
        self.packed = packed
        self.preset = preset or EFFORT_PRESETS["normal"]
        self.seed = seed
        self.n_patterns = n_patterns
        self.n_cycles = n_cycles
        self.engine = engine
        if device is None:
            device = pick_device(
                packed.n_clbs,
                area_overhead=0.35,
                min_io=len(packed.io_blocks()) + 16,
            )
        self.device = device
        #: pristine copy captured before any injection — the golden model
        self.golden: Netlist = packed.netlist.copy(
            f"{packed.netlist.name}.golden"
        )
        self.strategy: BaseStrategy = make_strategy(
            strategy, packed, device, seed=seed, preset=self.preset,
            tiling=tiling, tile_cache=tile_cache,
        )

    # ------------------------------------------------------------------

    def run(
        self,
        error_kind: str = "table_bit",
        error_seed: int = 0,
        max_probes: int = 8,
        goal_size: int = 4,
        hooks=None,
        n_errors: int = 1,
        error_kinds: list | None = None,
        max_rounds: int | None = None,
    ) -> DebugReport:
        """Inject, detect, diagnose round-by-round, verify; return the
        report.

        ``n_errors`` injects a set of simultaneous faults (kinds from
        ``error_kinds`` or ``error_kind`` repeated); the pipeline then
        loops localize→correct→re-detect for up to ``max_rounds``
        rounds (default: one per error).  ``hooks`` is an optional
        :class:`repro.api.PipelineHooks` observer (stage, probe, and
        commit events).
        """
        from repro.api.pipeline import DebugPipeline, RunContext

        ctx = RunContext(
            packed=self.packed,
            device=self.device,
            golden=self.golden,
            strategy=self.strategy,
            engine=self.engine,
            seed=self.seed,
            n_patterns=self.n_patterns,
            n_cycles=self.n_cycles,
            error_kind=error_kind,
            error_seed=error_seed,
            n_errors=n_errors,
            error_kinds=error_kinds,
            max_rounds=max_rounds,
            max_probes=max_probes,
            goal_size=goal_size,
        )
        DebugPipeline(hooks=hooks).execute(ctx)
        return report_from_context(ctx)

    # ------------------------------------------------------------------

    def _detect(self, stimulus):
        """Retained for callers poking the detection step directly."""
        from repro.debug.detect import detect_on_layout

        return detect_on_layout(
            self.strategy.layout, self.golden, stimulus, self.n_patterns,
            engine=self.engine,
        )


def report_from_context(ctx) -> DebugReport:
    """The legacy :class:`DebugReport` view of a finished pipeline run."""
    assert ctx.error is not None
    return DebugReport(
        design=ctx.packed.netlist.name,
        strategy=ctx.strategy.name,
        error=ctx.error,
        detected=ctx.detected,
        localization=ctx.localization,
        localized_correctly=ctx.localized_correctly,
        fixed=ctx.fixed,
        n_commits=len(ctx.strategy.commit_history),
        total_effort=ctx.strategy.total_effort,
        initial_effort=ctx.initial_effort,
        notes=list(ctx.notes),
        n_commit_cache_hits=ctx.strategy.cache_hits,
        errors=list(ctx.errors),
        localizations=list(ctx.localizations),
        rounds=list(ctx.rounds),
    )


def run_campaign(
    packed_factory,
    strategies: list[str],
    error_kind: str = "table_bit",
    seed: int = 1,
    preset: EffortPreset | None = None,
    tiling: TilingOptions | None = None,
    n_cycles: int = 8,
    n_patterns: int = 64,
) -> dict[str, DebugReport]:
    """Run the identical debug campaign under several strategies.

    .. deprecated:: PR 3
       Prefer :class:`repro.api.CampaignRunner` over a strategy matrix
       from :func:`repro.api.expand_matrix`; this shim drives the same
       pipeline stages and stays bit-identical.

    ``packed_factory`` must build a *fresh* packed design per call —
    each strategy mutates its own netlist copy.
    """
    reports: dict[str, DebugReport] = {}
    for name in strategies:
        packed = packed_factory()
        session = EmulationDebugSession(
            packed, strategy=name, seed=seed, preset=preset, tiling=tiling,
            n_cycles=n_cycles, n_patterns=n_patterns,
        )
        reports[name] = session.run(error_kind=error_kind, error_seed=seed)
    if not reports:
        raise DebugFlowError("no strategies requested")
    return reports
