"""Test-pattern generation (step 10 of the paper's flow).

Patterns are bit-parallel words (bit ``i`` of each input word = pattern
``i``), matching the simulator and emulator engines.  Three generators:

* :func:`random_patterns` — uniform random vectors for combinational
  sweeps;
* :func:`exhaustive_patterns` — the full input space, capped to a
  sensible width (the paper's "exhaustive tests ... necessary for
  maximum design confidence" applied to small cones);
* :func:`random_stimulus` — multi-cycle sequences for sequential
  designs.
"""

from __future__ import annotations

from repro.errors import DebugFlowError
from repro.netlist.core import Netlist
from repro.rng import make_rng


def _input_names(netlist: Netlist) -> list[str]:
    names = []
    for pi in netlist.primary_inputs():
        name = pi.name.split(":", 1)[-1]
        names.append(name)
    return sorted(names)


def random_patterns(
    netlist: Netlist, n_patterns: int, seed: int = 0
) -> dict[str, int]:
    """One word per primary input, ``n_patterns`` random vectors."""
    if n_patterns < 1:
        raise DebugFlowError("need at least one pattern")
    rng = make_rng(seed, "patterns", netlist.name, n_patterns)
    return {
        name: rng.getrandbits(n_patterns)
        for name in _input_names(netlist)
    }


def exhaustive_patterns(
    netlist: Netlist, max_inputs: int = 16
) -> tuple[dict[str, int], int]:
    """Every input combination; returns (words, n_patterns).

    Refuses designs with more than ``max_inputs`` primary inputs — at
    that point the paper's controllability logic exists precisely to
    drive interior states instead.
    """
    names = _input_names(netlist)
    if len(names) > max_inputs:
        raise DebugFlowError(
            f"{len(names)} inputs is too many for exhaustive patterns "
            f"(cap {max_inputs})"
        )
    n_patterns = 1 << len(names)
    words: dict[str, int] = {}
    for bit, name in enumerate(names):
        word = 0
        for p in range(n_patterns):
            if (p >> bit) & 1:
                word |= 1 << p
        words[name] = word
    return words, n_patterns


def random_stimulus(
    netlist: Netlist, n_cycles: int, n_patterns: int, seed: int = 0
) -> list[dict[str, int]]:
    """Per-cycle random input words for sequential emulation."""
    if n_cycles < 1:
        raise DebugFlowError("need at least one cycle")
    rng = make_rng(seed, "stimulus", netlist.name, n_cycles, n_patterns)
    names = _input_names(netlist)
    return [
        {name: rng.getrandbits(n_patterns) for name in names}
        for _ in range(n_cycles)
    ]


def held_stimulus(
    inputs: dict[str, int], n_cycles: int
) -> list[dict[str, int]]:
    """The same input word held for ``n_cycles`` (pipelined designs)."""
    return [dict(inputs) for _ in range(n_cycles)]
