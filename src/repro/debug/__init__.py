"""Emulation-based debugging: detection, localization, correction.

The paper's four-step cycle around the tiled substrate:

* :mod:`repro.debug.errors` — design-error injection (the bugs we hunt);
* :mod:`repro.debug.testgen` — test-pattern generation (step 10);
* :mod:`repro.debug.instrument` — control & observation logic synthesis
  (steps 18-19), emitted directly as mapped primitives;
* :mod:`repro.debug.detect` — golden-vs-emulation comparison (step 21);
* :mod:`repro.debug.localize` — cone bisection driven by observation
  points, each costing one tile-confined re-place-and-route;
* :mod:`repro.debug.correct` — applying the fix (steps 11-13);
* :mod:`repro.debug.strategies` — back-end strategies under test:
  tiled (the contribution), Quick_ECO, incremental, full re-P&R;
* :mod:`repro.debug.session` — the end-to-end debug loop (steps 1-22).
"""

from repro.debug.errors import (
    ERROR_KINDS,
    ErrorRecord,
    inject_error,
    inject_errors,
)
from repro.debug.testgen import (
    exhaustive_patterns,
    random_patterns,
    random_stimulus,
)
from repro.debug.instrument import (
    add_control_point,
    add_observation_point,
    remove_observation_points,
)
from repro.debug.detect import Mismatch, compare_runs
from repro.debug.localize import ConeLocalizer
from repro.debug.correct import apply_correction
from repro.debug.strategies import (
    STRATEGY_NAMES,
    STRATEGY_REGISTRY,
    BaseStrategy,
    CommitRecord,
    FullStrategy,
    IncrementalStrategy,
    QuickEcoStrategy,
    TiledStrategy,
    make_strategy,
)
from repro.debug.session import (
    DebugReport,
    EmulationDebugSession,
    run_campaign,
)

__all__ = [
    "ERROR_KINDS",
    "ErrorRecord",
    "inject_error",
    "inject_errors",
    "exhaustive_patterns",
    "random_patterns",
    "random_stimulus",
    "add_control_point",
    "add_observation_point",
    "remove_observation_points",
    "Mismatch",
    "compare_runs",
    "ConeLocalizer",
    "apply_correction",
    "BaseStrategy",
    "CommitRecord",
    "FullStrategy",
    "IncrementalStrategy",
    "QuickEcoStrategy",
    "STRATEGY_NAMES",
    "STRATEGY_REGISTRY",
    "TiledStrategy",
    "make_strategy",
    "DebugReport",
    "EmulationDebugSession",
    "run_campaign",
]
