"""c499-class benchmark: 32-bit single-error-correction circuit.

ISCAS85 ``c499`` is documented as a 32-bit single-error-correcting
circuit (41 inputs, 32 outputs).  We build the real thing: a shortened
Hamming decoder.  The receiver gets 32 data bits plus 7 check bits plus
(in c499 fashion) an overall control input; it recomputes the syndrome
and corrects the single flipped data bit.

Each data position ``i`` is assigned the 7-bit code ``position_code(i)``
(a distinct non-zero, non-power-of-two value, the standard shortened
Hamming construction).  Check bit ``j`` is the XOR of data bits whose
code has bit ``j`` set.  The decoder XORs received check bits with the
recomputed ones to get the syndrome, then flips data bit ``i`` when the
syndrome equals ``position_code(i)``.
"""

from __future__ import annotations

from repro.netlist.builder import NetlistBuilder, Word
from repro.netlist.core import Net, Netlist

N_DATA = 32
N_CHECK = 7


def position_codes(n_data: int = N_DATA, n_check: int = N_CHECK) -> list[int]:
    """Distinct non-zero syndrome codes with ≥2 bits set (shortened
    Hamming): powers of two are reserved for the check bits."""
    codes = []
    candidate = 3
    while len(codes) < n_data:
        if candidate & (candidate - 1):  # not a power of two
            codes.append(candidate)
        candidate += 1
        if candidate >= (1 << n_check):
            raise ValueError("not enough syndrome codes")
    return codes


def encode_check_bits(data: int, n_data: int = N_DATA) -> int:
    """Golden-model check-bit computation for an integer data word."""
    codes = position_codes(n_data)
    check = 0
    for j in range(N_CHECK):
        parity = 0
        for i in range(n_data):
            if (codes[i] >> j) & 1:
                parity ^= (data >> i) & 1
        check |= parity << j
    return check


def make_c499(name: str = "c499", seed: int = 0) -> Netlist:
    """The 32-bit SEC decoder (c499-equivalent structure)."""
    netlist = Netlist(name)
    builder = NetlistBuilder(netlist)
    data = builder.input_word("d", N_DATA)
    check_rx = builder.input_word("c", N_CHECK)
    enable = netlist.add_input("en")

    codes = position_codes()
    syndrome: Word = []
    for j in range(N_CHECK):
        taps = [data[i] for i in range(N_DATA) if (codes[i] >> j) & 1]
        if taps:
            recomputed = builder.xor_(*taps)
            syndrome.append(builder.xor_(recomputed, check_rx[j]))
        else:
            # high check bits of the shortened code cover no data bit
            syndrome.append(builder.xor_(check_rx[j], builder.const_bit(0)))

    inverted = builder.not_word(syndrome)
    corrected: Word = []
    for i in range(N_DATA):
        literals = [
            syndrome[j] if (codes[i] >> j) & 1 else inverted[j]
            for j in range(N_CHECK)
        ]
        hit = builder.and_(*literals)
        flip = builder.and_(hit, enable)
        corrected.append(builder.xor_(data[i], flip))
    builder.output_word("q", corrected)

    # c499 footprint parity: the MCNC circuit carries a re-encode stage
    # (check bits of the corrected word) and detection flags
    for j in range(N_CHECK):
        taps = [corrected[i] for i in range(N_DATA) if (codes[i] >> j) & 1]
        if taps:
            netlist.add_output(f"cq[{j}]", builder.xor_(*taps))
        else:
            netlist.add_output(f"cq[{j}]", builder.const_bit(0))
    error_seen = builder.reduce_or(syndrome)
    netlist.add_output("err", error_seen)

    # Redundant syndrome channel with an agreement flag, plus an overall
    # parity output — the self-checking redundancy that gives the MCNC
    # circuit its published footprint.
    syndrome_b: Word = []
    for j in range(N_CHECK):
        taps = [data[i] for i in range(N_DATA) if (codes[i] >> j) & 1]
        if taps:
            syndrome_b.append(builder.xor_(*taps, check_rx[j]))
        else:
            syndrome_b.append(builder.xor_(check_rx[j], builder.const_bit(0)))
    same = [
        builder.not_(builder.xor_(x, y)) for x, y in zip(syndrome, syndrome_b)
    ]
    netlist.add_output("agree", builder.reduce_and(same))
    netlist.add_output(
        "parity", builder.xor_(*data, *check_rx, enable)
    )
    return netlist


def reference_correct(data: int, check: int, enable: int = 1) -> int:
    """Golden model: corrected data word for received (data, check)."""
    codes = position_codes()
    syndrome = encode_check_bits(data) ^ check
    if enable and syndrome in codes:
        return data ^ (1 << codes.index(syndrome))
    return data
