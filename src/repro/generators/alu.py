"""c880-class benchmark: an ALU with flag logic.

ISCAS85 ``c880`` is an 8-bit ALU (60 inputs, 26 outputs).  We generate a
real ALU slice: two 8-bit operands, a carry-in, a 3-bit opcode selecting
{ADD, SUB, AND, OR, XOR, NOT-A, PASS-B, MUX}, plus zero/negative/carry
flags.  Two cascaded slices with cross-coupled flag gating land the
packed footprint at the paper's 135 CLBs.
"""

from __future__ import annotations

from repro.netlist.builder import NetlistBuilder, Word
from repro.netlist.core import Net, Netlist

ALU_OPS = ("ADD", "SUB", "AND", "OR", "XOR", "NOTA", "PASSB", "MUXAB")


def alu_slice(
    builder: NetlistBuilder,
    a: Word,
    b: Word,
    opcode: Word,
    carry_in: Net,
) -> tuple[Word, Net, Net, Net]:
    """One ALU slice; returns (result, carry, zero, negative)."""
    add_res, add_carry = builder.adder(a, b, cin=carry_in)
    sub_res, sub_carry = builder.subtractor(a, b)
    and_res = builder.and_word(a, b)
    or_res = builder.or_word(a, b)
    xor_res = builder.xor_word(a, b)
    nota = builder.not_word(a)
    passb = list(b)
    muxab = builder.mux_word(carry_in, a, b)

    result = builder.mux_tree(
        opcode, [add_res, sub_res, and_res, or_res, xor_res, nota, passb, muxab]
    )
    carry = builder.mux(opcode[0], add_carry, sub_carry)
    zero = builder.is_zero(result)
    negative = result[-1]
    return result, carry, zero, negative


def make_c880(name: str = "c880", width: int = 8, slices: int = 2,
              seed: int = 0) -> Netlist:
    """c880-equivalent: ``slices`` cascaded ``width``-bit ALUs."""
    netlist = Netlist(name)
    builder = NetlistBuilder(netlist)
    opcode = builder.input_word("op", 3)
    carry = netlist.add_input("cin")
    prev_result: Word | None = None

    for s in range(slices):
        a = builder.input_word(f"a{s}", width)
        b = builder.input_word(f"b{s}", width)
        if prev_result is not None:
            # cascade: second slice sees first result XOR its own A input
            a = builder.xor_word(a, prev_result)
        result, carry, zero, negative = alu_slice(builder, a, b, opcode, carry)
        builder.output_word(f"r{s}", result)
        netlist.add_output(f"z{s}", zero)
        netlist.add_output(f"n{s}", negative)
        prev_result = result
    netlist.add_output("cout", carry)
    return netlist


def reference_alu(a: int, b: int, op: int, cin: int, width: int) -> tuple[int, int]:
    """Golden model of one slice: returns (result, carry)."""
    mask = (1 << width) - 1
    if op == 0:
        total = a + b + cin
        return total & mask, (total >> width) & 1
    if op == 1:
        total = a + ((~b) & mask) + 1
        return total & mask, (total >> width) & 1
    if op == 2:
        return a & b, 0
    if op == 3:
        return a | b, 0
    if op == 4:
        return a ^ b, 0
    if op == 5:
        return (~a) & mask, 0
    if op == 6:
        return b, 0
    return (b if cin else a), 0
