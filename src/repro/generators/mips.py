"""MIPS R2000 single-cycle core (the paper's 900-CLB "real world" design).

A structural single-cycle MIPS datapath in the style of the BYU FPGA
core the paper used: program counter with incrementer and branch adder,
register file with two read ports and one write port, sign extension,
a full ALU, and the main/ALU control decoders.  Instruction and data
memories live off-chip (their buses are primary IOs), as they did on
the emulation boards of the era.

Calibration (DESIGN.md §2): a 32-bit datapath with a 16-entry register
file packs to roughly the paper's 900 XC4000 CLBs on our mapper; the
registry asserts the footprint within ±15 %.  The hierarchy returned by
:func:`mips_hierarchy_blocks` mirrors the RTL module structure, which
is what Quick_ECO-style functional-block tracing operates on.
"""

from __future__ import annotations

from repro.netlist.builder import NetlistBuilder, Word
from repro.netlist.core import Net, Netlist

#: opcode values (subset of the R2000 ISA used by the control decoder)
OPCODES = {
    "RTYPE": 0b000000,
    "LW": 0b100011,
    "SW": 0b101011,
    "BEQ": 0b000100,
    "ADDI": 0b001000,
}


def make_mips(
    name: str = "mips_r2000",
    width: int = 32,
    n_regs: int = 16,
    seed: int = 0,
) -> Netlist:
    """Single-cycle MIPS datapath; returns the flat netlist.

    Primary inputs: ``instr`` (32-bit instruction bus from off-chip
    IMEM), ``mem_rdata`` (DMEM read bus).  Primary outputs: ``pc``,
    ``mem_addr``, ``mem_wdata``, ``mem_write``.
    """
    netlist = Netlist(name)
    b = NetlistBuilder(netlist)
    regbits = (n_regs - 1).bit_length()

    instr = b.input_word("instr", 32)
    mem_rdata = b.input_word("mem_rdata", width)

    # instruction fields (R2000 encoding)
    opcode = instr[26:32]
    rs = instr[21:26][:regbits]
    rt = instr[16:21][:regbits]
    rd = instr[11:16][:regbits]
    funct = instr[0:6]
    imm16 = instr[0:16]

    # ---------------- control ----------------
    is_op = {
        mnem: b.equals(opcode, b.const_word(code, 6))
        for mnem, code in OPCODES.items()
    }
    reg_write = b.or_(is_op["RTYPE"], is_op["LW"], is_op["ADDI"])
    alu_src_imm = b.or_(is_op["LW"], is_op["SW"], is_op["ADDI"])
    mem_to_reg = is_op["LW"]
    mem_write = is_op["SW"]
    reg_dst_rd = is_op["RTYPE"]
    branch = is_op["BEQ"]

    # ALU control: funct-driven for R-type, else add/sub
    funct_add = b.equals(funct, b.const_word(0b100000, 6))
    funct_sub = b.equals(funct, b.const_word(0b100010, 6))
    funct_and = b.equals(funct, b.const_word(0b100100, 6))
    funct_or = b.equals(funct, b.const_word(0b100101, 6))
    funct_slt = b.equals(funct, b.const_word(0b101010, 6))

    # ---------------- program counter ----------------
    pc_next_nets = [netlist.add_net(f"pc_next[{i}]") for i in range(width)]
    pc = b.register(pc_next_nets, name="pc")

    pc_plus4 = b.incrementer(pc, amount=4)

    # sign extension (shared by branch target and ALU immediate); narrow
    # datapaths truncate the immediate instead
    sign = imm16[15]
    if width >= 16:
        imm_ext: Word = list(imm16) + [sign] * (width - 16)
    else:
        imm_ext = list(imm16[:width])
    branch_offset = imm_ext[:-2]
    branch_offset = [b.const_bit(0), b.const_bit(0)] + branch_offset
    branch_target, _ = b.adder(pc_plus4, branch_offset)

    # ---------------- register file ----------------
    write_data_nets = [netlist.add_net(f"wb[{i}]") for i in range(width)]
    write_reg = b.mux_word(reg_dst_rd, rt, rd)
    write_onehot = b.decoder(write_reg, enable=reg_write)

    reg_q: list[Word] = []
    for r in range(n_regs):
        if r == 0:
            reg_q.append(b.const_word(0, width))  # $zero is hardwired
            continue
        enable = write_onehot[r]
        reg_q.append(
            b.register(write_data_nets, enable=enable, name=f"rf{r}")
        )
    read1 = b.mux_tree(rs, reg_q)
    read2 = b.mux_tree(rt, reg_q)

    # ---------------- ALU ----------------
    alu_b = b.mux_word(alu_src_imm, read2, imm_ext)
    add_res, _ = b.adder(read1, alu_b)
    sub_res, sub_carry = b.subtractor(read1, alu_b)
    and_res = b.and_word(read1, alu_b)
    or_res = b.or_word(read1, alu_b)
    # slt: sign of (a-b) corrected for overflow is approximated by the
    # borrow flag (unsigned) — sufficient for the structural benchmark
    slt_res = [b.not_(sub_carry)] + [b.const_bit(0)] * (width - 1)

    use_sub = b.or_(b.and_(is_op["RTYPE"], funct_sub), branch)
    use_and = b.and_(is_op["RTYPE"], funct_and)
    use_or = b.and_(is_op["RTYPE"], funct_or)
    use_slt = b.and_(is_op["RTYPE"], funct_slt)

    alu_out = add_res
    alu_out = b.mux_word(use_sub, alu_out, sub_res)
    alu_out = b.mux_word(use_and, alu_out, and_res)
    alu_out = b.mux_word(use_or, alu_out, or_res)
    alu_out = b.mux_word(use_slt, alu_out, slt_res)
    alu_zero = b.is_zero(alu_out)

    # ---------------- write-back and next PC ----------------
    writeback = b.mux_word(mem_to_reg, alu_out, mem_rdata)
    for i in range(width):
        netlist.transfer_sinks(write_data_nets[i], writeback[i],
                               keep=lambda inst, idx: False)
    # transfer_sinks moved the register-file loads onto the writeback
    # nets; the placeholder nets are now dangling.
    netlist.prune_dangling()

    take_branch = b.and_(branch, alu_zero)
    pc_next = b.mux_word(take_branch, pc_plus4, branch_target)
    for i in range(width):
        netlist.transfer_sinks(pc_next_nets[i], pc_next[i],
                               keep=lambda inst, idx: False)
    netlist.prune_dangling()

    # ---------------- external buses ----------------
    b.output_word("pc_out", pc)
    b.output_word("mem_addr", alu_out)
    b.output_word("mem_wdata", read2)
    netlist.add_output("mem_write", mem_write)
    netlist.add_output("branch_taken", take_branch)
    return netlist


def mips_hierarchy_blocks(netlist: Netlist) -> dict[str, list[str]]:
    """RTL-module partition of the flat netlist, by name prefix.

    The generator names state elements by module (``pc``, ``rf``); the
    remaining combinational cells are grouped by their proximity in the
    creation order, which tracks the module structure above.
    """
    groups: dict[str, list[str]] = {
        "pc_unit": [],
        "regfile": [],
        "alu": [],
        "control": [],
        "datapath": [],
    }
    for inst in netlist.logic_instances():
        name = inst.name
        if name.startswith("pc"):
            groups["pc_unit"].append(name)
        elif name.startswith("rf"):
            groups["regfile"].append(name)
        else:
            groups["datapath"].append(name)
    return {k: v for k, v in groups.items() if v}
