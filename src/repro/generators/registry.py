"""Design registry: the nine benchmarks of the paper's Table 1.

Each entry names a generator and the parameters calibrated so the packed
CLB count lands on the paper's published footprint (tests assert ±15 %):

=========  ======================  ============
design     kind                    paper # CLBs
=========  ======================  ============
9sym       MCNC combinational      56
styr       MCNC FSM                98
sand       MCNC FSM                100
c499       MCNC combinational      115
planet1    MCNC FSM                115
c880       MCNC combinational      135
s9234      MCNC sequential         235
MIPS R2000 processor core          900
DES        crypto datapath         1050
=========  ======================  ============

:func:`build_design` runs the full front end (generate → map → pack) and
attaches a design hierarchy.  Per paper §6, every design counts as a
single functional block for the Quick_ECO baseline; the two real-world
designs additionally expose their RTL module structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import ReproError
from repro.generators.alu import make_c880
from repro.generators.des import make_des
from repro.generators.fsm import make_fsm
from repro.generators.hamming import make_c499
from repro.generators.mips import make_mips, mips_hierarchy_blocks
from repro.generators.parity import make_9sym
from repro.generators.random_logic import random_sequential_netlist
from repro.netlist.core import Netlist
from repro.netlist.hierarchy import HierNode
from repro.synth.pack import PackedDesign, pack_netlist
from repro.synth.techmap import map_to_luts


@dataclass(frozen=True)
class PaperDesign:
    """Registry entry for one benchmark."""

    name: str
    kind: str  # "combinational" | "sequential" | "core"
    paper_clbs: int
    factory: Callable[[int], Netlist]
    hierarchy_fn: Callable[[Netlist], dict[str, list[str]]] | None = None


@dataclass
class DesignBundle:
    """Everything downstream stages need for one benchmark."""

    name: str
    netlist: Netlist
    mapped: Netlist
    packed: PackedDesign
    hierarchy: HierNode
    paper_clbs: int
    kind: str

    @property
    def n_clbs(self) -> int:
        return self.packed.n_clbs


# State counts are calibration knobs: our FSM synthesis spends more
# LUTs per state than the MCNC-era SIS mapping, so the published CLB
# footprint is reached with proportionally fewer states (DESIGN.md §2).

def _styr(seed: int) -> Netlist:
    return make_fsm("styr", n_states=19, n_inputs=9, n_outputs=10, seed=seed)


def _sand(seed: int) -> Netlist:
    return make_fsm("sand", n_states=20, n_inputs=11, n_outputs=9, seed=seed)


def _planet1(seed: int) -> Netlist:
    return make_fsm("planet1", n_states=20, n_inputs=7, n_outputs=19, seed=seed)


def _s9234(seed: int) -> Netlist:
    return random_sequential_netlist(
        "s9234", n_inputs=36, n_outputs=39, n_ffs=211, n_gates=270,
        seed=seed, depth=14,
    )


PAPER_DESIGNS: dict[str, PaperDesign] = {
    "9sym": PaperDesign(
        "9sym", "combinational", 56,
        lambda seed: make_9sym(replicas=2, seed=seed),
    ),
    "styr": PaperDesign("styr", "sequential", 98, _styr),
    "sand": PaperDesign("sand", "sequential", 100, _sand),
    "c499": PaperDesign(
        "c499", "combinational", 115, lambda seed: make_c499(seed=seed)
    ),
    "planet1": PaperDesign("planet1", "sequential", 115, _planet1),
    "c880": PaperDesign(
        "c880", "combinational", 135,
        lambda seed: make_c880(width=10, seed=seed),
    ),
    "s9234": PaperDesign("s9234", "sequential", 235, _s9234),
    "mips": PaperDesign(
        "mips", "core", 900, lambda seed: make_mips(seed=seed),
        hierarchy_fn=mips_hierarchy_blocks,
    ),
    "des": PaperDesign(
        "des", "core", 1050, lambda seed: make_des(n_rounds=7, seed=seed)
    ),
}

#: Display names used in reports (paper spelling).
DISPLAY_NAMES = {
    "mips": "MIPS R2000",
    "des": "DES",
}


def paper_design_names() -> list[str]:
    """The nine designs in Table 1 order (smallest to largest)."""
    return list(PAPER_DESIGNS)


def build_design(name: str, seed: int = 0) -> DesignBundle:
    """Generate, map and pack one benchmark; attach its hierarchy."""
    try:
        entry = PAPER_DESIGNS[name]
    except KeyError:
        known = ", ".join(PAPER_DESIGNS)
        raise ReproError(f"unknown design {name!r} (known: {known})") from None

    netlist = entry.factory(seed)
    mapped = map_to_luts(netlist)
    packed = pack_netlist(mapped)

    root = HierNode(name)
    if entry.hierarchy_fn is not None:
        for block_name, members in entry.hierarchy_fn(mapped).items():
            root.add_child(block_name).assign(members)
        root.adopt_new_instances(mapped, node_path="datapath")
    else:
        # per paper §6: one functional block per design
        root.add_child("top").assign(
            inst.name for inst in mapped.logic_instances()
        )
    return DesignBundle(
        name=name,
        netlist=netlist,
        mapped=mapped,
        packed=packed,
        hierarchy=root,
        paper_clbs=entry.paper_clbs,
        kind=entry.kind,
    )
