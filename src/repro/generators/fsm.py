"""Finite-state-machine benchmarks (styr / sand / planet1 class).

The MCNC FSM benchmarks are controller state machines distributed as
KISS2 state tables.  The generator synthesizes a random-but-deterministic
Moore/Mealy machine with the published interface profile (state, input
and output counts), using binary state encoding, a one-hot state decode,
and per-state next-state/output logic — the structure a synthesis tool
produces from a KISS2 table.

Because the paper's CLB counts include the surrounding logic the MCNC
versions carry, each benchmark adds a calibrated amount of random fabric
(:mod:`repro.generators.random_logic`) wired to the FSM outputs; the
calibration targets are asserted by tests against Table 1 ±15 %.
"""

from __future__ import annotations

import math

from repro.generators.random_logic import random_sequential_netlist
from repro.netlist.builder import NetlistBuilder, Word
from repro.netlist.core import Net, Netlist
from repro.rng import make_rng


def make_fsm(
    name: str,
    n_states: int,
    n_inputs: int,
    n_outputs: int,
    seed: int = 0,
    fabric_gates: int = 0,
    fabric_ffs: int = 0,
) -> Netlist:
    """Synthesize a deterministic random FSM plus calibrated fabric.

    Transition structure: for every state, the next state is chosen by a
    balanced binary decision over a randomly chosen input bit pair, which
    yields transition logic of realistic density (2 fan-out states per
    state per condition).  Outputs are Moore-style from the state decode,
    XOR-blended with one input bit each so output cones are testable.
    """
    rng = make_rng(seed, "fsm", name)
    state_bits = max(1, math.ceil(math.log2(max(2, n_states))))

    if fabric_gates:
        netlist = random_sequential_netlist(
            name,
            n_inputs=n_inputs,
            n_outputs=0,
            n_ffs=fabric_ffs,
            n_gates=fabric_gates,
            seed=seed,
        )
        builder = NetlistBuilder(netlist)
        inputs = [netlist.net(f"in{i}") for i in range(n_inputs)]
    else:
        netlist = Netlist(name)
        builder = NetlistBuilder(netlist)
        inputs = [netlist.add_input(f"in{i}") for i in range(n_inputs)]

    # state register with a decode of the reachable codes only
    state_q: Word = [netlist.add_net(f"state_q[{b}]") for b in range(state_bits)]
    inverted = [builder.not_(bit) for bit in state_q]
    one_hot = []
    for code in range(n_states):
        literals = [
            state_q[j] if (code >> j) & 1 else inverted[j]
            for j in range(state_bits)
        ]
        one_hot.append(builder.and_(*literals))

    # per-state transition: two candidate successors selected by an input
    next_state_terms: list[Word] = []
    for s in range(n_states):
        succ_a = rng.randrange(n_states)
        succ_b = rng.randrange(n_states)
        cond = inputs[rng.randrange(len(inputs))]
        target = builder.mux_word(
            cond,
            builder.const_word(succ_a, state_bits),
            builder.const_word(succ_b, state_bits),
        )
        gated = [builder.and_(one_hot[s], bit) for bit in target]
        next_state_terms.append(gated)

    next_state: Word = []
    for b in range(state_bits):
        column = [term[b] for term in next_state_terms]
        next_state.append(builder.or_(*column))

    for b in range(state_bits):
        netlist.add_dff(next_state[b], name=f"state_ff[{b}]", output=state_q[b])

    # Moore outputs from the decode, blended with one input each
    for o in range(n_outputs):
        members = [
            one_hot[s] for s in range(n_states) if rng.random() < 0.33
        ] or [one_hot[rng.randrange(n_states)]]
        raw = builder.or_(*members) if len(members) > 1 else members[0]
        blended = builder.xor_(raw, inputs[rng.randrange(len(inputs))])
        netlist.add_output(f"out{o}", blended)
    return netlist
