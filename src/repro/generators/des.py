"""DES datapath benchmark (the paper's 1050-CLB "real world" design [8]).

A genuine DES implementation: initial permutation, Feistel rounds with
the FIPS-46 expansion, S-boxes and P permutation, the PC-1/PC-2 key
schedule (pure wiring: rotations and permutations), and the final
permutation.  Pipeline registers separate rounds, matching the FPGA
pipelined-DES designs of the era.

Calibration (documented in DESIGN.md §2): the paper's DES occupies 1050
XC4000 CLBs.  On our mapper a full 16-round unroll exceeds that (our
Shannon-decomposed S-boxes are costlier than hand-mapped XC4000 F/G/H
tricks), so the registry instantiates :func:`make_des` with the number
of unrolled rounds that lands on the published footprint.  All tiling
experiments depend only on size and connectivity locality, which the
round datapath preserves exactly.

Bit conventions: FIPS tables are 1-indexed from the *most significant*
bit of the 64-bit block; helpers below convert to our LSB-first words.
"""

from __future__ import annotations

from repro.generators.wide import logic_from_table, table_from_rows
from repro.netlist.builder import NetlistBuilder, Word
from repro.netlist.core import Net, Netlist

# FIPS 46-3 tables (1-indexed, MSB-first as published) -----------------

IP = [
    58, 50, 42, 34, 26, 18, 10, 2, 60, 52, 44, 36, 28, 20, 12, 4,
    62, 54, 46, 38, 30, 22, 14, 6, 64, 56, 48, 40, 32, 24, 16, 8,
    57, 49, 41, 33, 25, 17, 9, 1, 59, 51, 43, 35, 27, 19, 11, 3,
    61, 53, 45, 37, 29, 21, 13, 5, 63, 55, 47, 39, 31, 23, 15, 7,
]

FP = [
    40, 8, 48, 16, 56, 24, 64, 32, 39, 7, 47, 15, 55, 23, 63, 31,
    38, 6, 46, 14, 54, 22, 62, 30, 37, 5, 45, 13, 53, 21, 61, 29,
    36, 4, 44, 12, 52, 20, 60, 28, 35, 3, 43, 11, 51, 19, 59, 27,
    34, 2, 42, 10, 50, 18, 58, 26, 33, 1, 41, 9, 49, 17, 57, 25,
]

E = [
    32, 1, 2, 3, 4, 5, 4, 5, 6, 7, 8, 9,
    8, 9, 10, 11, 12, 13, 12, 13, 14, 15, 16, 17,
    16, 17, 18, 19, 20, 21, 20, 21, 22, 23, 24, 25,
    24, 25, 26, 27, 28, 29, 28, 29, 30, 31, 32, 1,
]

P = [
    16, 7, 20, 21, 29, 12, 28, 17, 1, 15, 23, 26, 5, 18, 31, 10,
    2, 8, 24, 14, 32, 27, 3, 9, 19, 13, 30, 6, 22, 11, 4, 25,
]

PC1 = [
    57, 49, 41, 33, 25, 17, 9, 1, 58, 50, 42, 34, 26, 18,
    10, 2, 59, 51, 43, 35, 27, 19, 11, 3, 60, 52, 44, 36,
    63, 55, 47, 39, 31, 23, 15, 7, 62, 54, 46, 38, 30, 22,
    14, 6, 61, 53, 45, 37, 29, 21, 13, 5, 28, 20, 12, 4,
]

PC2 = [
    14, 17, 11, 24, 1, 5, 3, 28, 15, 6, 21, 10,
    23, 19, 12, 4, 26, 8, 16, 7, 27, 20, 13, 2,
    41, 52, 31, 37, 47, 55, 30, 40, 51, 45, 33, 48,
    44, 49, 39, 56, 34, 53, 46, 42, 50, 36, 29, 32,
]

SHIFTS = [1, 1, 2, 2, 2, 2, 2, 2, 1, 2, 2, 2, 2, 2, 2, 1]

S_BOXES = [
    [  # S1
        14, 4, 13, 1, 2, 15, 11, 8, 3, 10, 6, 12, 5, 9, 0, 7,
        0, 15, 7, 4, 14, 2, 13, 1, 10, 6, 12, 11, 9, 5, 3, 8,
        4, 1, 14, 8, 13, 6, 2, 11, 15, 12, 9, 7, 3, 10, 5, 0,
        15, 12, 8, 2, 4, 9, 1, 7, 5, 11, 3, 14, 10, 0, 6, 13,
    ],
    [  # S2
        15, 1, 8, 14, 6, 11, 3, 4, 9, 7, 2, 13, 12, 0, 5, 10,
        3, 13, 4, 7, 15, 2, 8, 14, 12, 0, 1, 10, 6, 9, 11, 5,
        0, 14, 7, 11, 10, 4, 13, 1, 5, 8, 12, 6, 9, 3, 2, 15,
        13, 8, 10, 1, 3, 15, 4, 2, 11, 6, 7, 12, 0, 5, 14, 9,
    ],
    [  # S3
        10, 0, 9, 14, 6, 3, 15, 5, 1, 13, 12, 7, 11, 4, 2, 8,
        13, 7, 0, 9, 3, 4, 6, 10, 2, 8, 5, 14, 12, 11, 15, 1,
        13, 6, 4, 9, 8, 15, 3, 0, 11, 1, 2, 12, 5, 10, 14, 7,
        1, 10, 13, 0, 6, 9, 8, 7, 4, 15, 14, 3, 11, 5, 2, 12,
    ],
    [  # S4
        7, 13, 14, 3, 0, 6, 9, 10, 1, 2, 8, 5, 11, 12, 4, 15,
        13, 8, 11, 5, 6, 15, 0, 3, 4, 7, 2, 12, 1, 10, 14, 9,
        10, 6, 9, 0, 12, 11, 7, 13, 15, 1, 3, 14, 5, 2, 8, 4,
        3, 15, 0, 6, 10, 1, 13, 8, 9, 4, 5, 11, 12, 7, 2, 14,
    ],
    [  # S5
        2, 12, 4, 1, 7, 10, 11, 6, 8, 5, 3, 15, 13, 0, 14, 9,
        14, 11, 2, 12, 4, 7, 13, 1, 5, 0, 15, 10, 3, 9, 8, 6,
        4, 2, 1, 11, 10, 13, 7, 8, 15, 9, 12, 5, 6, 3, 0, 14,
        11, 8, 12, 7, 1, 14, 2, 13, 6, 15, 0, 9, 10, 4, 5, 3,
    ],
    [  # S6
        12, 1, 10, 15, 9, 2, 6, 8, 0, 13, 3, 4, 14, 7, 5, 11,
        10, 15, 4, 2, 7, 12, 9, 5, 6, 1, 13, 14, 0, 11, 3, 8,
        9, 14, 15, 5, 2, 8, 12, 3, 7, 0, 4, 10, 1, 13, 11, 6,
        4, 3, 2, 12, 9, 5, 15, 10, 11, 14, 1, 7, 6, 0, 8, 13,
    ],
    [  # S7
        4, 11, 2, 14, 15, 0, 8, 13, 3, 12, 9, 7, 5, 10, 6, 1,
        13, 0, 11, 7, 4, 9, 1, 10, 14, 3, 5, 12, 2, 15, 8, 6,
        1, 4, 11, 13, 12, 3, 7, 14, 10, 15, 6, 8, 0, 5, 9, 2,
        6, 11, 13, 8, 1, 4, 10, 7, 9, 5, 0, 15, 14, 2, 3, 12,
    ],
    [  # S8
        13, 2, 8, 4, 6, 15, 11, 1, 10, 9, 3, 14, 5, 0, 12, 7,
        1, 15, 13, 8, 10, 3, 7, 4, 12, 5, 6, 11, 0, 14, 9, 2,
        7, 11, 4, 1, 9, 12, 14, 2, 0, 6, 10, 13, 15, 3, 5, 8,
        2, 1, 14, 7, 4, 10, 8, 13, 15, 12, 9, 0, 3, 5, 6, 11,
    ],
]


def sbox_lookup(box: int, six_bits: int) -> int:
    """FIPS S-box addressing: row from bits 5,0; column from bits 4..1.

    ``six_bits`` is MSB-first as the bits arrive from the expansion.
    """
    row = ((six_bits >> 5) & 1) << 1 | (six_bits & 1)
    col = (six_bits >> 1) & 0xF
    return S_BOXES[box][row * 16 + col]


def _sbox_rows(box: int) -> list[int]:
    """Row table indexed by our LSB-first minterm convention.

    The generator feeds the S-box inputs LSB-first (``chunk_lsb``), so
    input ``j`` carries bit ``j`` of the FIPS six-bit value and the
    minterm index *is* that value — no bit reversal.
    """
    return [sbox_lookup(box, minterm) for minterm in range(64)]


# ----------------------------------------------------------------------
# software golden model
# ----------------------------------------------------------------------

def _permute_int(value: int, width_in: int, table: list[int]) -> int:
    """Apply a FIPS permutation table to an MSB-first integer."""
    out = 0
    for i, src in enumerate(table):
        bit = (value >> (width_in - src)) & 1
        out = (out << 1) | bit
    return out


def des_round_keys(key56: int) -> list[int]:
    """48-bit round keys from a 56-bit key (already PC-1-shaped C||D)."""
    c = (key56 >> 28) & 0xFFFFFFF
    d = key56 & 0xFFFFFFF
    keys = []
    for shift in SHIFTS:
        c = ((c << shift) | (c >> (28 - shift))) & 0xFFFFFFF
        d = ((d << shift) | (d >> (28 - shift))) & 0xFFFFFFF
        keys.append(_permute_int((c << 28) | d, 56, PC2))
    return keys


def reference_des(plaintext: int, key56: int, n_rounds: int = 16) -> int:
    """Golden model matching :func:`make_des` (post-PC1 key input)."""
    block = _permute_int(plaintext, 64, IP)
    left = (block >> 32) & 0xFFFFFFFF
    right = block & 0xFFFFFFFF
    for rk in des_round_keys(key56)[:n_rounds]:
        expanded = _permute_int(right, 32, E)
        mixed = expanded ^ rk
        sboxed = 0
        for box in range(8):
            chunk = (mixed >> (42 - 6 * box)) & 0x3F
            sboxed = (sboxed << 4) | sbox_lookup(box, chunk)
        f_out = _permute_int(sboxed, 32, P)
        left, right = right, left ^ f_out
    pre_output = (right << 32) | left  # final swap
    return _permute_int(pre_output, 64, FP)


# ----------------------------------------------------------------------
# netlist generator
# ----------------------------------------------------------------------

def _pick(word_msb_first: Word, table: list[int]) -> Word:
    """Wire permutation: FIPS 1-indexed MSB-first positions."""
    return [word_msb_first[src - 1] for src in table]


def make_des(
    name: str = "des",
    n_rounds: int = 16,
    pipeline: bool = True,
    seed: int = 0,
) -> Netlist:
    """Unrolled DES datapath with ``n_rounds`` Feistel rounds.

    The primary inputs are the 64-bit plaintext and the 56-bit post-PC1
    key (C||D); outputs are the 64-bit block after the final swap and
    permutation.  With ``pipeline`` a register bank separates rounds.
    """
    netlist = Netlist(name)
    builder = NetlistBuilder(netlist)
    # MSB-first words keep the FIPS tables readable
    pt = [netlist.add_input(f"pt[{i}]") for i in range(64)]
    key = [netlist.add_input(f"key[{i}]") for i in range(56)]

    block = _pick(pt, IP)
    left, right = block[:32], block[32:]

    c, d = key[:28], key[28:]
    for rnd in range(n_rounds):
        shift = SHIFTS[rnd]
        c = c[shift:] + c[:shift]
        d = d[shift:] + d[:shift]
        round_key = _pick(c + d, PC2)

        expanded = _pick(right, E)
        mixed = [builder.xor_(e, k) for e, k in zip(expanded, round_key)]

        sbox_out: Word = []
        for box in range(8):
            chunk_msb = mixed[6 * box : 6 * box + 6]
            chunk_lsb = list(reversed(chunk_msb))  # our minterm convention
            rows = _sbox_rows(box)
            for bit in (3, 2, 1, 0):  # MSB-first output word
                table = table_from_rows(rows, 6, bit)
                sbox_out.append(logic_from_table(builder, chunk_lsb, table))

        f_out = _pick(sbox_out, P)
        new_right = [builder.xor_(l, f) for l, f in zip(left, f_out)]
        left, right = right, new_right

        if pipeline and rnd != n_rounds - 1:
            left = builder.register(left, name=f"r{rnd}_l")
            right = builder.register(right, name=f"r{rnd}_r")

    pre_output = right + left  # final swap
    ciphertext = _pick(pre_output, FP)
    for i, net in enumerate(ciphertext):
        netlist.add_output(f"ct[{i}]", net)
    return netlist
