"""Shannon decomposition of wide truth tables into 4-LUT + MUX2 trees.

The XC4000 function generators take four inputs; functions of more
variables (DES S-boxes are 6-input) are synthesized by recursive Shannon
cofactoring: ``f(x0..xk) = MUX2(xk, f|xk=0, f|xk=1)`` until the leaves
fit a single LUT.
"""

from __future__ import annotations

from repro.netlist.builder import NetlistBuilder, Word
from repro.netlist.cells import LUT_MAX_INPUTS
from repro.netlist.core import Net


def logic_from_table(builder: NetlistBuilder, inputs: Word, table: int) -> Net:
    """Net computing the ``table`` truth-table over ``inputs``.

    ``table`` bit ``i`` is the output for the minterm where input ``j``
    carries bit ``j`` of ``i`` (LSB-first, matching
    :func:`repro.netlist.cells.eval_lut`).
    """
    k = len(inputs)
    if k <= LUT_MAX_INPUTS:
        lut = builder.netlist.add_lut(inputs, table)
        return lut.output
    half = 1 << (k - 1)
    mask = (1 << half) - 1
    low = table & mask  # cofactor with top variable = 0
    high = (table >> half) & mask
    if low == high:
        return logic_from_table(builder, inputs[:-1], low)
    d0 = logic_from_table(builder, inputs[:-1], low)
    d1 = logic_from_table(builder, inputs[:-1], high)
    return builder.mux(inputs[-1], d0, d1)


def table_from_rows(rows: list[int], n_inputs: int, out_bit: int) -> int:
    """Truth table for one output bit of a multi-bit row lookup.

    ``rows[i]`` is the multi-bit output for minterm ``i``; the result is
    the single-bit table selecting ``out_bit`` of each row.
    """
    if len(rows) != (1 << n_inputs):
        raise ValueError(
            f"need {1 << n_inputs} rows for {n_inputs} inputs, got {len(rows)}"
        )
    table = 0
    for minterm, row in enumerate(rows):
        if (row >> out_bit) & 1:
            table |= 1 << minterm
    return table
