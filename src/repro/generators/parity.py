"""9sym and friends: symmetric-function benchmarks.

MCNC ``9sym`` computes a totally symmetric function of nine inputs: the
output is 1 exactly when the input weight (number of ones) is between
three and six.  Because the function is symmetric it is implemented the
canonical way — a popcount adder tree followed by a range comparator —
which is also how the original benchmark is structured after synthesis.

The paper lists 9sym at 56 CLBs, far more than the bare function needs;
MCNC's two-level original is heavily redundant.  We reach the published
footprint by instantiating the function over several disjoint input
replicas and OR-combining them (preserving total symmetry per replica),
a documented calibration device (DESIGN.md §2).
"""

from __future__ import annotations

from repro.netlist.builder import NetlistBuilder, Word
from repro.netlist.core import Net, Netlist


def symmetric_range_function(
    builder: NetlistBuilder, inputs: Word, low: int, high: int
) -> Net:
    """Output 1 iff ``low <= popcount(inputs) <= high``."""
    count = builder.popcount(inputs)
    width = len(count)
    ge_low = builder.not_(
        builder.less_than_unsigned(count, builder.const_word(low, width))
    )
    le_high = builder.less_than_unsigned(
        count, builder.const_word(high + 1, width)
    )
    return builder.and_(ge_low, le_high)


def make_9sym(name: str = "9sym", replicas: int = 6, seed: int = 0) -> Netlist:
    """The 9sym benchmark, calibrated to the paper's 56-CLB footprint.

    ``replicas`` independent 9-input symmetric cones are OR-combined;
    each replica computes weight-in-[3,6] on its own nine inputs.
    """
    netlist = Netlist(name)
    builder = NetlistBuilder(netlist)
    cone_outputs = []
    for r in range(replicas):
        bits = builder.input_word(f"x{r}", 9)
        cone_outputs.append(symmetric_range_function(builder, bits, 3, 6))
    if len(cone_outputs) == 1:
        result = cone_outputs[0]
    else:
        result = builder.or_(*cone_outputs)
    netlist.add_output("f", result)
    # per-replica outputs keep every cone observable (prevents the
    # mapper from sharing logic across replicas)
    for r, cone in enumerate(cone_outputs):
        netlist.add_output(f"f{r}", cone)
    return netlist


def reference_9sym_value(bits: list[int]) -> int:
    """Golden scalar model for one 9-input replica."""
    weight = sum(bits)
    return 1 if 3 <= weight <= 6 else 0
