"""Rent's-rule-flavoured random logic fabric.

Used two ways:

* standalone, as the s9234-class sequential benchmark (ISCAS89 s9234 is
  a flattened industrial sequential circuit: 36 inputs, 39 outputs,
  211 flip-flops and a few thousand gates);
* as calibrated *padding fabric* inside the FSM benchmarks, whose
  published CLB counts exceed what their state machines alone occupy.

The generator builds a feed-forward gate network in levels (guaranteeing
acyclicity), draws fan-ins with a locality bias so placements exhibit
realistic wirelength distributions, and closes sequential loops only
through flip-flops.
"""

from __future__ import annotations

from repro.netlist.cells import CellKind
from repro.netlist.core import Net, Netlist
from repro.rng import make_rng

_GATE_CHOICES = (
    CellKind.AND,
    CellKind.OR,
    CellKind.NAND,
    CellKind.NOR,
    CellKind.XOR,
    CellKind.MUX2,
)


def random_sequential_netlist(
    name: str,
    n_inputs: int,
    n_outputs: int,
    n_ffs: int,
    n_gates: int,
    seed: int = 0,
    depth: int = 12,
    locality: float = 0.7,
) -> Netlist:
    """Random sequential netlist with the given resource profile.

    ``locality`` in [0, 1] biases gate fan-ins toward recent levels,
    mimicking the short-wire bias of real designs (Rent exponent well
    below 1).  Every FF's D input is driven by the gate network, and FF
    outputs re-enter the network as level-0 signals.
    """
    rng = make_rng(seed, "random_logic", name)
    netlist = Netlist(name)

    primary = [netlist.add_input(f"in{i}") for i in range(n_inputs)]
    ff_q: list[Net] = []
    ffs = []
    for i in range(n_ffs):
        q = netlist.add_net(f"ffq{i}")
        ff_q.append(q)
    level_pools: list[list[Net]] = [primary + ff_q]

    gates_per_level = max(1, n_gates // depth)
    made = 0
    while made < n_gates:
        current_level: list[Net] = []
        budget = min(gates_per_level, n_gates - made)
        for _ in range(budget):
            kind = _GATE_CHOICES[rng.randrange(len(_GATE_CHOICES))]
            fanin = 3 if kind is CellKind.MUX2 else rng.randint(2, 4)
            inputs = [
                _pick_source(level_pools, rng, locality) for _ in range(fanin)
            ]
            if kind is CellKind.MUX2:
                inputs = inputs[:3]
            current_level.append(netlist.add_gate(kind, inputs))
            made += 1
        level_pools.append(current_level)

    all_signals = [net for pool in level_pools for net in pool]
    late_signals = [net for pool in level_pools[len(level_pools) // 2 :] for net in pool]
    pool = late_signals or all_signals

    for i, q in enumerate(ff_q):
        d = pool[rng.randrange(len(pool))]
        ffs.append(netlist.add_dff(d, name=f"ff{i}", output=q))
    for i in range(n_outputs):
        src = pool[rng.randrange(len(pool))]
        netlist.add_output(f"out{i}", src)
    return netlist


def _pick_source(level_pools: list[list[Net]], rng, locality: float) -> Net:
    """Pick a driver, biased toward the most recent non-empty levels."""
    if len(level_pools) == 1 or rng.random() > locality:
        pool = level_pools[rng.randrange(len(level_pools))]
    else:
        # geometric bias toward recent levels
        back = 1
        while back < len(level_pools) and rng.random() < 0.5:
            back += 1
        pool = level_pools[-back]
    if not pool:
        pool = level_pools[0]
    return pool[rng.randrange(len(pool))]


def random_combinational_netlist(
    name: str,
    n_inputs: int,
    n_outputs: int,
    n_gates: int,
    seed: int = 0,
    depth: int = 10,
    locality: float = 0.7,
) -> Netlist:
    """Pure combinational variant (no flip-flops)."""
    return random_sequential_netlist(
        name,
        n_inputs,
        n_outputs,
        n_ffs=0,
        n_gates=n_gates,
        seed=seed,
        depth=depth,
        locality=locality,
    )
