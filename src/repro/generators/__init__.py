"""Benchmark design generators — the paper's nine experimental designs.

The MCNC netlists and the two "real world" designs are not shipped with
the paper, so each is rebuilt structurally (see DESIGN.md §2):

* :mod:`repro.generators.parity` — 9sym as the true 9-input symmetric
  function;
* :mod:`repro.generators.hamming` — c499 as a real 32-bit single-error
  corrector;
* :mod:`repro.generators.alu` — c880-class ALU;
* :mod:`repro.generators.fsm` — styr / sand / planet1-class finite state
  machines with calibrated random fabric;
* :mod:`repro.generators.random_logic` — Rent-style sequential fabric
  (s9234 class);
* :mod:`repro.generators.mips` — the MIPS R2000 single-cycle core;
* :mod:`repro.generators.des` — the 16-round DES datapath;
* :mod:`repro.generators.registry` — name → design table calibrated to
  the paper's Table 1 CLB counts.
"""

from repro.generators.registry import (
    DesignBundle,
    PAPER_DESIGNS,
    build_design,
    paper_design_names,
)

__all__ = [
    "DesignBundle",
    "PAPER_DESIGNS",
    "build_design",
    "paper_design_names",
]
