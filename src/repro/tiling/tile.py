"""Tile objects: a rectangle of CLB sites with occupancy accounting.

A tile is "an independent block with a fixed interface" (paper §1.2).
Physically it is a rectangle of the CLB grid; logically it owns the CLB
blocks placed inside it.  ``capacity - used`` is the tile's *slack*, the
unused resources reserved for test-logic introduction and debugging
changes (paper step 5: "re-place-and-route with resource slack").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry import Rect


@dataclass
class Tile:
    """One tile of the partitioned physical design."""

    index: int
    rect: Rect
    blocks: set[int]
    locked: bool = True

    @property
    def capacity(self) -> int:
        return self.rect.area

    @property
    def used(self) -> int:
        return len(self.blocks)

    @property
    def slack(self) -> int:
        return self.capacity - self.used

    def neighbors(self, tiles: list["Tile"]) -> list[int]:
        """Indices of tiles sharing an edge or corner with this one."""
        return [
            t.index
            for t in tiles
            if t.index != self.index and self.rect.touches(t.rect)
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Tile({self.index}, {self.rect.x0},{self.rect.y0}.."
            f"{self.rect.x1},{self.rect.y1}, used={self.used}/{self.capacity})"
        )


@dataclass(frozen=True)
class TileStats:
    """Aggregate statistics of a tiled layout (feeds Table 1)."""

    n_tiles: int
    total_capacity: int
    total_used: int
    total_slack: int
    inter_tile_nets: int
    area_overhead: float

    @staticmethod
    def measure(tiles: list[Tile], inter_tile_nets: int) -> "TileStats":
        capacity = sum(t.capacity for t in tiles)
        used = sum(t.used for t in tiles)
        overhead = (capacity - used) / used if used else 0.0
        return TileStats(
            n_tiles=len(tiles),
            total_capacity=capacity,
            total_used=used,
            total_slack=capacity - used,
            inter_tile_nets=inter_tile_nets,
            area_overhead=overhead,
        )
