"""Tile-boundary determination (paper §3.2).

Boundaries are chosen by three cooperating passes:

1. :func:`plan_tile_grid` — geometric planning: a near-square region of
   the device big enough for the design plus the requested area
   overhead, split into a rows x columns grid of tile rectangles whose
   sizes differ by at most one site per dimension;
2. :func:`assign_blocks_to_tiles` — blocks adopt the tile under their
   current (untiled) placement, which inherits the placer's locality;
   overfull tiles shed their least-connected blocks to neighbors;
3. :func:`refine_boundaries` — a KL-style pass that moves blocks between
   adjacent tiles when that reduces inter-tile net cut without
   violating slack targets ("inter-tile interconnect is minimized").
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arch.device import Device
from repro.errors import TilingError
from repro.geometry import Rect
from repro.pnr.placement import Placement
from repro.synth.pack import PackedDesign
from repro.tiling.tile import Tile


@dataclass(frozen=True)
class TilingOptions:
    """User parameters of paper §3.2.

    Exactly one of ``n_tiles`` / ``tile_clbs`` / ``tile_fraction`` picks
    the granularity.  ``area_overhead`` is the slack target (the paper
    uses 20 %; below 10 % "would not allow enough room").
    """

    n_tiles: int | None = None
    tile_clbs: float | None = None
    tile_fraction: float | None = None
    area_overhead: float = 0.20
    min_tile_side: int = 2
    refine_passes: int = 2

    def resolve_n_tiles(self, n_clbs: int) -> int:
        chosen = [
            v for v in (self.n_tiles, self.tile_clbs, self.tile_fraction)
            if v is not None
        ]
        if len(chosen) != 1:
            raise TilingError(
                "specify exactly one of n_tiles / tile_clbs / tile_fraction"
            )
        if self.n_tiles is not None:
            n = self.n_tiles
        elif self.tile_clbs is not None:
            n = max(1, round(n_clbs / self.tile_clbs))
        else:
            n = max(1, round(1.0 / self.tile_fraction))
        if n < 1:
            raise TilingError(f"invalid tile count {n}")
        return n


def plan_tile_grid(
    n_clbs: int, device: Device, options: TilingOptions
) -> list[Rect]:
    """Tile rectangles covering a region with the requested slack.

    The region is anchored at the device origin; its area is the design
    size scaled by ``1 + area_overhead`` (rounded up to a feasible
    rows x columns split).  Raises :class:`TilingError` when the tiles
    would fall below ``min_tile_side`` or the device is too small.
    """
    n_tiles = options.resolve_n_tiles(n_clbs)
    needed = math.ceil(n_clbs * (1.0 + options.area_overhead))
    if needed > device.nx * device.ny:
        raise TilingError(
            f"device {device.name} lacks {needed} sites for "
            f"{n_clbs} CLBs + overhead"
        )

    tiles_per_row = _tile_grid_rows(n_tiles)
    rows = len(tiles_per_row)
    max_cols = max(tiles_per_row)
    min_side = options.min_tile_side
    # region dimensions: near-square, at least the grid's minimum spans
    width = max(
        max_cols * min_side, min(device.nx, math.ceil(math.sqrt(needed)))
    )
    height = max(rows * min_side, math.ceil(needed / width))
    while width * height < needed or height > device.ny:
        if height > device.ny:
            height = device.ny
            width = math.ceil(needed / height)
        else:
            width += 1
            height = max(rows * min_side, math.ceil(needed / width))
        if width > device.nx:
            raise TilingError("design + overhead does not fit device")
    if width > device.nx or height > device.ny:
        raise TilingError(
            f"a {width}x{height} tiled region exceeds device "
            f"{device.name} ({device.nx}x{device.ny})"
        )
    if width // max_cols < min_side or height // rows < min_side:
        raise TilingError(
            f"{n_tiles} tiles of a {width}x{height} region fall below the "
            f"minimum tile side {min_side}"
        )

    y_cuts = _split_span(height, rows)
    rects = []
    y = 0
    for row_height, row_cols in zip(y_cuts, tiles_per_row):
        x = 0
        for col_width in _split_span(width, row_cols):
            rects.append(Rect(x, y, x + col_width - 1, y + row_height - 1))
            x += col_width
        y += row_height

    # trim individual tiles toward the requested overhead ("tile sizes
    # need not be uniform across a design", paper footnote 4)
    excess = width * height - needed
    for i in range(len(rects) - 1, -1, -1):
        rect = rects[i]
        while excess >= rect.width and rect.height - 1 >= min_side:
            rect = Rect(rect.x0, rect.y0, rect.x1, rect.y1 - 1)
            excess -= rect.width
        rects[i] = rect
    return rects


def _tile_grid_rows(n_tiles: int) -> list[int]:
    """Tiles per row, near-square, works for any count (7 → [3, 2, 2])."""
    rows = max(1, round(math.sqrt(n_tiles)))
    return _split_span(n_tiles, rows)


def _split_span(total: int, parts: int) -> list[int]:
    base = total // parts
    extra = total % parts
    return [base + (1 if i < extra else 0) for i in range(parts)]


def assign_blocks_to_tiles(
    packed: PackedDesign,
    placement: Placement,
    rects: list[Rect],
    max_fill: float = 1.0,
) -> list[Tile]:
    """Adopt blocks into tiles by current location, then fix overflow.

    ``max_fill`` caps each tile's occupancy as a fraction of capacity
    during rebalancing (1.0 = hard capacity only).  Spill blocks move to
    the adjacent tile with the most room.
    """
    tiles = [Tile(i, rect, set()) for i, rect in enumerate(rects)]
    homeless: list[int] = []
    for block in packed.clb_blocks():
        site = placement.site_of(block.index)
        for tile in tiles:
            if tile.rect.contains(*site):
                tile.blocks.add(block.index)
                break
        else:
            homeless.append(block.index)

    limit = {t.index: max(1, int(t.capacity * max_fill)) for t in tiles}

    for block in homeless:
        target = max(tiles, key=lambda t: limit[t.index] - t.used)
        target.blocks.add(block)

    # shed overflow to the roomiest neighbor (BFS by repetition)
    for _ in range(len(tiles) * 4):
        over = [t for t in tiles if t.used > limit[t.index]]
        if not over:
            break
        for tile in over:
            neighbors = [tiles[i] for i in tile.neighbors(tiles)]
            roomy = [n for n in neighbors if n.used < limit[n.index]]
            pool = roomy or [
                t for t in tiles if t.used < limit[t.index] and t is not tile
            ]
            if not pool:
                raise TilingError("design does not fit the tile capacities")
            while tile.used > limit[tile.index] and pool:
                dest = max(pool, key=lambda t: limit[t.index] - t.used)
                if dest.used >= limit[dest.index]:
                    pool.remove(dest)
                    continue
                block = _least_connected_block(packed, tile)
                tile.blocks.remove(block)
                dest.blocks.add(block)
    total = sum(t.used for t in tiles)
    if total != len(packed.clb_blocks()):
        raise TilingError("block-to-tile assignment lost blocks")
    return tiles


def _least_connected_block(packed: PackedDesign, tile: Tile) -> int:
    """The member with the fewest nets to other members (cheapest spill)."""
    members = tile.blocks
    scores: dict[int, int] = {b: 0 for b in members}
    for net in packed.nets.values():
        ends = [net.driver, *net.sinks]
        inside = [b for b in ends if b in members]
        if len(inside) >= 2:
            for b in inside:
                scores[b] += 1
    return min(sorted(scores), key=lambda b: scores[b])


def count_inter_tile_nets(
    packed: PackedDesign, tile_of_block: dict[int, int]
) -> int:
    """Nets whose terminals span more than one tile (or leave the array)."""
    cut = 0
    for net in packed.nets.values():
        tiles_seen = set()
        external = False
        for b in (net.driver, *net.sinks):
            t = tile_of_block.get(b)
            if t is None:
                external = True
            else:
                tiles_seen.add(t)
        if len(tiles_seen) > 1 or (external and tiles_seen):
            cut += 1
    return cut


def refine_boundaries(
    packed: PackedDesign,
    tiles: list[Tile],
    passes: int = 2,
    max_fill: float = 0.95,
) -> int:
    """KL-style cut reduction: greedily move blocks across tile edges.

    Only moves between *adjacent* tiles are considered (tiles stay
    contiguous rectangles; membership, not geometry, is refined).
    Returns the number of moves applied.
    """
    tile_of: dict[int, int] = {}
    for tile in tiles:
        for b in tile.blocks:
            tile_of[b] = tile.index
    adjacency = {t.index: set(t.neighbors(tiles)) for t in tiles}
    limit = {t.index: max(1, int(t.capacity * max_fill)) for t in tiles}

    nets_of_block: dict[int, list] = {}
    for net in packed.nets.values():
        for b in (net.driver, *net.sinks):
            nets_of_block.setdefault(b, []).append(net)

    moves = 0
    for _ in range(passes):
        improved = False
        for tile in tiles:
            for block in sorted(tile.blocks):
                best_gain, best_dest = 0, None
                for dest_idx in adjacency[tile.index]:
                    dest = tiles[dest_idx]
                    if dest.used >= limit[dest_idx]:
                        continue
                    gain = _move_gain(
                        nets_of_block.get(block, ()), block, tile.index,
                        dest_idx, tile_of,
                    )
                    if gain > best_gain:
                        best_gain, best_dest = gain, dest_idx
                if best_dest is not None and tile.used > 1:
                    tile.blocks.remove(block)
                    tiles[best_dest].blocks.add(block)
                    tile_of[block] = best_dest
                    moves += 1
                    improved = True
        if not improved:
            break
    return moves


def _move_gain(
    nets, block: int, src: int, dst: int, tile_of: dict[int, int]
) -> int:
    """Cut-count change (positive = better) if ``block`` moves src→dst."""
    gain = 0
    for net in nets:
        others = [
            tile_of.get(b)
            for b in (net.driver, *net.sinks)
            if b != block and tile_of.get(b) is not None
        ]
        if not others:
            continue
        before = len(set(others + [src])) > 1
        after = len(set(others + [dst])) > 1
        gain += int(before) - int(after)
    return gain
