""":class:`TiledLayout` — the tiled physical design and its operations.

This is the paper's global flow (§3.1) made executable:

* :meth:`TiledLayout.create` — steps 4-8: re-place with resource slack,
  draw tile boundaries, lock tile interfaces;
* :meth:`TiledLayout.apply_changeset` — steps 17-20: identify and clear
  affected tiles (with neighbor expansion when the new logic needs more
  than the tile's slack), re-place-and-route only those tiles with the
  interfaces of every other tile locked, then re-lock;
* :meth:`TiledLayout.affected_tiles_for_logic` /
  :meth:`TiledLayout.max_logic_for_test_points` — the analytical models
  behind Figures 3 and 4.

The lock invariant — configuration frames of unaffected tiles are
byte-identical across a change — is checked by
:mod:`repro.emu.bitstream` and asserted in the property-based tests.
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass

from repro.arch.device import Device
from repro.emu.bitstream import block_logic_config
from repro.errors import TilingError
from repro.geometry import Rect
from repro.pnr.effort import EffortMeter, EffortPreset, EFFORT_PRESETS
from repro.pnr.flow import (
    Layout,
    apply_region_config,
    capture_region_config,
    replace_region,
)
from repro.pnr.placement import PlaceConstraints
from repro.synth.pack import (
    PackedDesign,
    extend_packing,
    refresh_block_nets,
    retire_instances,
)
from repro.tiling.cache import (
    DEFAULT_TILE_CACHE,
    TileConfig,
    TileConfigCache,
    cached_full_place_and_route,
    pnr_key_header,
)
from repro.tiling.eco import ChangeSet
from repro.tiling.partition import (
    TilingOptions,
    assign_blocks_to_tiles,
    count_inter_tile_nets,
    plan_tile_grid,
    refine_boundaries,
)
from repro.tiling.tile import Tile, TileStats


@dataclass
class CommitReport:
    """Result of one tile-confined debugging change."""

    description: str
    affected_tiles: list[int]
    new_blocks: set[int]
    effort: EffortMeter
    expanded: bool  # neighbor tiles were pulled in for extra slack
    cache_hit: bool = False  # served by a precomputed tile configuration

    @property
    def n_affected(self) -> int:
        return len(self.affected_tiles)


class TiledLayout:
    """A placed-and-routed design partitioned into locked tiles."""

    def __init__(
        self,
        layout: Layout,
        tiles: list[Tile],
        options: TilingOptions,
        tile_cache: TileConfigCache | None = DEFAULT_TILE_CACHE,
    ) -> None:
        self.layout = layout
        self.tiles = tiles
        self.options = options
        self.tile_cache = tile_cache
        self.tile_of_block: dict[int, int] = {}
        for tile in tiles:
            for b in tile.blocks:
                self.tile_of_block[b] = tile.index
        self._neighbor_cache: dict[int, list[int]] | None = None
        #: netlist revision at the end of the last commit — lets the
        #: ChangeSet.base_revision guard spot untracked mutations
        self._synced_revision: int | None = getattr(
            layout.packed.netlist, "revision", None
        )
        #: per-block logic signatures, invalidated by each changeset
        self._block_sig: dict[int, bytes] = {}

    # ------------------------------------------------------------------
    # construction (paper steps 4-8)
    # ------------------------------------------------------------------

    @classmethod
    def create(
        cls,
        packed: PackedDesign,
        device: Device,
        options: TilingOptions,
        seed: int = 1,
        preset: EffortPreset | None = None,
        meter: EffortMeter | None = None,
        initial_layout: Layout | None = None,
        tile_cache: TileConfigCache | None = DEFAULT_TILE_CACHE,
    ) -> "TiledLayout":
        """Tile a design: plan boundaries, re-place with slack, lock.

        ``initial_layout`` (the pre-error untiled implementation) seeds
        the block-to-tile assignment with its locality; without one, a
        fast untiled placement is run first, mirroring the paper's flow
        where tiling happens after the original place-and-route.
        """
        preset = preset or EFFORT_PRESETS["normal"]
        meter = meter if meter is not None else EffortMeter()

        if initial_layout is None:
            initial_layout = cached_full_place_and_route(
                packed, device, seed=seed, preset=preset, meter=meter,
                strict_routing=False, cache=tile_cache, context="initial",
            )

        rects = plan_tile_grid(packed.n_clbs, device, options)
        tiles = assign_blocks_to_tiles(
            packed, initial_layout.placement, rects
        )
        if options.refine_passes:
            refine_boundaries(packed, tiles, passes=options.refine_passes)

        # step 5: re-place-and-route with resource slack (tile regions);
        # the constraint set pins every block to its tile, so the
        # whole-design configuration cache key captures the tiling and a
        # repeat of the same precomputation replays it
        regions = {}
        for tile in tiles:
            for b in tile.blocks:
                regions[b] = tile.rect
        constraints = PlaceConstraints(regions=regions)
        layout = cached_full_place_and_route(
            packed, device, seed=seed, preset=preset, meter=meter,
            constraints=constraints, strict_routing=False,
            cache=tile_cache, context="tiling",
        )
        return cls(layout, tiles, options, tile_cache=tile_cache)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    @property
    def packed(self) -> PackedDesign:
        return self.layout.packed

    @property
    def device(self) -> Device:
        return self.layout.device

    def tile_of_instance(self, instance_name: str) -> int:
        block = self.packed.block_of_instance.get(instance_name)
        if block is None or block not in self.tile_of_block:
            raise TilingError(
                f"instance {instance_name!r} is not in any tile"
            )
        return self.tile_of_block[block]

    def neighbors_of(self, tile_index: int) -> list[int]:
        if self._neighbor_cache is None:
            self._neighbor_cache = {
                t.index: t.neighbors(self.tiles) for t in self.tiles
            }
        return self._neighbor_cache[tile_index]

    def stats(self) -> TileStats:
        return TileStats.measure(
            self.tiles,
            count_inter_tile_nets(self.packed, self.tile_of_block),
        )

    def total_slack(self) -> int:
        return sum(t.slack for t in self.tiles)

    # ------------------------------------------------------------------
    # Figure 3 model: affected tiles for a logic insertion
    # ------------------------------------------------------------------

    def affected_tiles_for_logic(
        self, n_new_clbs: int, start_tile: int
    ) -> list[int]:
        """Tiles cleared when ``n_new_clbs`` CLBs land in ``start_tile``.

        Breadth-first neighbor expansion until the pooled slack covers
        the new logic (paper §4.2: "if the affected tile does not have
        enough free resources, neighboring tiles can also be labeled
        affected").  Raises :class:`TilingError` if the whole array
        cannot absorb the logic.
        """
        if n_new_clbs < 0:
            raise TilingError("logic size cannot be negative")
        chosen: list[int] = []
        seen: set[int] = set()
        queue: deque[int] = deque([start_tile])
        slack = 0
        while queue:
            idx = queue.popleft()
            if idx in seen:
                continue
            seen.add(idx)
            chosen.append(idx)
            slack += self.tiles[idx].slack
            if slack >= n_new_clbs:
                return chosen
            for nb in sorted(self.neighbors_of(idx)):
                if nb not in seen:
                    queue.append(nb)
        if slack >= n_new_clbs:
            return chosen
        raise TilingError(
            f"{n_new_clbs} CLBs exceed the design's total slack {slack}"
        )

    # ------------------------------------------------------------------
    # Figure 4 model: test-point budget
    # ------------------------------------------------------------------

    def max_logic_for_test_points(self, n_points: int) -> int:
        """Largest per-point test logic supportable for ``n_points``.

        Test points are spread round-robin over tiles (the paper's
        clustered/random discussion brackets this); points sharing a
        tile split its slack.  The answer is the worst per-point budget,
        i.e. what every point is guaranteed to fit.
        """
        if n_points < 1:
            raise TilingError("need at least one test point")
        order = sorted(self.tiles, key=lambda t: -t.slack)
        n_tiles = len(order)
        budgets: list[int] = []
        per_tile_points = [0] * n_tiles
        for p in range(n_points):
            per_tile_points[p % n_tiles] += 1
        for tile, points in zip(order, per_tile_points):
            if points:
                budgets.append(tile.slack // points)
        return min(budgets) if budgets else 0

    # ------------------------------------------------------------------
    # the debugging-change commit (paper steps 17-20)
    # ------------------------------------------------------------------

    def apply_changeset(
        self,
        changes: ChangeSet,
        seed: int = 1,
        preset: EffortPreset | None = None,
        anchor_instance: str | None = None,
    ) -> CommitReport:
        """Clear and re-place-and-route only the affected tiles.

        1. back-annotate: changed/removed instances → blocks → tiles;
        2. pack any new instances into new blocks;
        3. expand to neighbor tiles while slack is insufficient;
        4. unlock, clear and re-place the affected tiles' blocks (new
           blocks included) inside the tile rectangles, with every other
           tile's placement and routing locked;
        5. reroute confined nets inside the tiles and reconnect
           interface nets at their locked boundary crossings;
        6. re-establish tile membership and re-lock.

        Before running step 4-5 from scratch, the commit is looked up in
        the tile-configuration cache: when an identical reconfiguration
        (same tile logic content, same locked interface signature, same
        seed/preset) was committed before, its precomputed configuration
        is verified and replayed — the paper's spare-configuration
        mechanism — and the P&R is skipped entirely.
        """
        preset = preset or EFFORT_PRESETS["normal"]
        meter = EffortMeter()
        packed = self.packed

        changed_blocks = packed.blocks_of_instances(changes.touched_existing())
        retire_instances(packed, changes.removed_instances)
        new_blocks = extend_packing(packed, changes.new_instances)
        new_clbs = {
            b for b in new_blocks if packed.blocks[b].is_clb
        }
        new_ids, changed_ids, removed_ids = refresh_block_nets(packed)

        # retired nets lose their routes
        for idx in removed_ids:
            old = self.layout.routes.pop(idx, None)
            if old is not None:
                self.layout.state.remove(old)

        # seed tiles from the change location
        seed_tiles = {
            self.tile_of_block[b]
            for b in changed_blocks
            if b in self.tile_of_block
        }
        if not seed_tiles:
            if anchor_instance is not None:
                seed_tiles = {self.tile_of_instance(anchor_instance)}
            elif self.tiles:
                seed_tiles = {
                    max(self.tiles, key=lambda t: t.slack).index
                }
        if not seed_tiles:
            raise TilingError("cannot anchor the change to any tile")

        affected = self._expand_for_slack(seed_tiles, len(new_clbs))
        expanded = len(affected) > len(seed_tiles)

        movable = set(new_clbs)
        for t in affected:
            movable |= {
                b for b in self.tiles[t].blocks if packed.blocks[b].is_clb
            }
        regions = [self.tiles[t].rect for t in affected]

        extra = sorted(
            (new_ids | changed_ids)
            - {n for n in removed_ids}
        )

        # --- precomputed-configuration fast path -------------------------
        new_iobs = {b for b in new_blocks if not packed.blocks[b].is_clb}
        affected_ids = sorted(
            {net.index for net in packed.nets_touching_blocks(movable)}
            | set(extra)
        )
        cache = self.tile_cache
        use_cache = cache is not None and not changes.stale_for(
            self._synced_revision
        )
        if use_cache:
            for b in changed_blocks | new_blocks:
                self._block_sig.pop(b, None)
        else:
            self._block_sig.clear()
        key = None
        cache_hit = False
        if use_cache:
            key = self._commit_key(
                movable, regions, affected_ids, seed, preset
            )
            config = cache.lookup(key)
            if config is not None:
                meter.begin_invocation()
                cache_hit = apply_region_config(
                    self.layout, movable, new_iobs, affected_ids, regions,
                    config.sites, config.io_slots, config.routes,
                    config.over_allow,
                )
                meter.end_invocation()
                if not cache_hit:
                    cache.note_rejected()

        if not cache_hit:
            replace_region(
                self.layout,
                movable,
                regions,
                seed=seed,
                preset=preset,
                meter=meter,
                confine_routing=True,
                extra_nets=extra,
            )
            if use_cache and key is not None:
                sites, io_slots, routes, over_allow = capture_region_config(
                    self.layout, movable, new_iobs, affected_ids
                )
                cache.store(
                    key, TileConfig(sites, io_slots, routes, over_allow)
                )

        self._synced_revision = getattr(packed.netlist, "revision", None)

        self._rebuild_membership(affected, movable)
        return CommitReport(
            description=changes.description,
            affected_tiles=sorted(affected),
            new_blocks=new_blocks,
            effort=meter,
            expanded=expanded,
            cache_hit=cache_hit,
        )

    def _commit_key(
        self,
        movable: set[int],
        regions: list[Rect],
        affected_ids: list[int],
        seed: int,
        preset: EffortPreset,
    ) -> str:
        """Digest of everything the commit's *result* is keyed on.

        Covers design/device/effort/seed, the tile rectangles, the
        byte-identical logic content of every movable block, and the
        locked interface of every net that will be rerouted (terminal
        sites and outside route fragments).  Deliberately *not* covered:
        transient congestion context — channel usage and negotiation
        history of unaffected nets.  A hit therefore replays a
        previously computed *legal* configuration for this content and
        interface (the paper's precomputed spare configuration), not
        necessarily the byte-identical result a fresh P&R would produce
        under the current congestion; apply-time verification enforces
        terminal and capacity legality before anything is touched.
        """
        packed = self.packed
        device = self.device
        placement = self.layout.placement
        h = hashlib.sha256()
        h.update(
            f"commit|{pnr_key_header(packed, device, preset, seed)}\n".encode()
        )
        rects = sorted((r.x0, r.y0, r.x1, r.y1) for r in regions)
        h.update(repr(rects).encode())
        block_sig = self._block_sig
        for b in sorted(movable):
            sig = block_sig.get(b)
            if sig is None:
                sig = block_logic_config(packed, b)
                block_sig[b] = sig
            h.update(packed.blocks[b].name.encode())
            h.update(b"=")
            h.update(sig)
            h.update(b"\n")

        pos = placement.pos

        def terminal_sig(b: int) -> str:
            if b in movable:
                return f"M:{packed.blocks[b].name}"
            site = pos.get(b)
            if site is None:
                return f"N:{packed.blocks[b].name}"
            return f"L:{site}"

        # region-inclusion mask over fabric cell ids (cheap edge tests)
        fab = self.layout.state.fabric
        hs = fab.h
        combined = bytearray(fab.n_cells)
        for r in regions:
            for i, v in enumerate(fab.region_mask(r)):
                if v:
                    combined[i] = 1

        routes = self.layout.routes
        for idx in affected_ids:
            net = packed.nets[idx]
            h.update(
                f"{net.name}|{terminal_sig(net.driver)}|".encode()
            )
            h.update(
                ";".join(terminal_sig(s) for s in net.sinks).encode()
            )
            tree = routes.get(idx)
            if tree is not None:
                outside = [
                    (a, b)
                    for a, b in tree.edges
                    if not (
                        combined[(a[0] + 1) * hs + a[1] + 1]
                        and combined[(b[0] + 1) * hs + b[1] + 1]
                    )
                ]
                outside.sort()
                h.update(repr(outside).encode())
            h.update(b"\n")
        return h.hexdigest()

    def _expand_for_slack(
        self, seed_tiles: set[int], n_new_clbs: int
    ) -> list[int]:
        """Neighbor expansion until the affected set can host the logic."""
        chosen: list[int] = []
        seen: set[int] = set()
        queue: deque[int] = deque(sorted(seed_tiles))
        slack = 0
        while queue:
            idx = queue.popleft()
            if idx in seen:
                continue
            seen.add(idx)
            chosen.append(idx)
            slack += self.tiles[idx].slack
        if slack >= n_new_clbs:
            return chosen
        frontier: deque[int] = deque(chosen)
        while frontier and slack < n_new_clbs:
            idx = frontier.popleft()
            for nb in sorted(self.neighbors_of(idx)):
                if nb in seen:
                    continue
                seen.add(nb)
                chosen.append(nb)
                frontier.append(nb)
                slack += self.tiles[nb].slack
                if slack >= n_new_clbs:
                    break
        if slack < n_new_clbs:
            raise TilingError(
                f"new logic ({n_new_clbs} CLBs) exceeds reachable slack"
            )
        return chosen

    def _rebuild_membership(
        self, affected: list[int], movable: set[int]
    ) -> None:
        """Re-adopt moved blocks into tiles by their final site."""
        affected_set = set(affected)
        for t in affected_set:
            self.tiles[t].blocks -= movable
        for b in movable:
            site = self.layout.placement.site_of(b)
            for t in affected_set:
                if self.tiles[t].rect.contains(*site):
                    self.tiles[t].blocks.add(b)
                    self.tile_of_block[b] = t
                    break
            else:
                raise TilingError(
                    f"block {b} landed outside the affected tiles"
                )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TiledLayout({self.packed.netlist.name!r}, "
            f"{len(self.tiles)} tiles, slack={self.total_slack()})"
        )
