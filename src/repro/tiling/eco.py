"""Change descriptors: linking debugging changes to physical tiles.

A :class:`ChangeSet` records what a debugging step did to the *mapped*
netlist — functions altered, wiring moved, logic added or removed.  The
tiling manager turns it into the set of affected tiles via the packing's
instance→block map and the tile membership table; that is the mechanized
form of the paper's §5.1 back-annotation trace ("trace the debugging
changes made at any level ... down to the affected tiles").
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ChangeSet:
    """The netlist delta of one debugging step.

    * ``changed_instances`` — existing cells whose truth table, kind or
      input wiring changed (including cells whose fanin net moved);
    * ``new_instances`` — freshly created cells (mapped primitives and
      IO markers), not yet known to the packing;
    * ``removed_instances`` — names of cells deleted from the netlist;
    * ``description`` — human-readable provenance, kept for reports;
    * ``base_revision`` — the netlist revision the delta starts from
      (``None`` when unknown); lets incremental consumers like the
      compiled simulation kernel verify the changeset covers every
      mutation since they last synchronized.
    """

    description: str = ""
    changed_instances: set[str] = field(default_factory=set)
    new_instances: set[str] = field(default_factory=set)
    removed_instances: set[str] = field(default_factory=set)
    base_revision: int | None = None

    def merge(self, other: "ChangeSet") -> "ChangeSet":
        """Union of two deltas (e.g. a fix plus fresh test logic)."""
        merged = ChangeSet(
            description=f"{self.description}; {other.description}".strip("; "),
            changed_instances=set(self.changed_instances),
            new_instances=set(self.new_instances),
            removed_instances=set(self.removed_instances),
            base_revision=(
                None
                if self.base_revision is None or other.base_revision is None
                else min(self.base_revision, other.base_revision)
            ),
        )
        merged.changed_instances |= other.changed_instances
        merged.new_instances |= other.new_instances
        merged.removed_instances |= other.removed_instances
        # an instance both added and removed in one step cancels out
        ghosts = merged.new_instances & merged.removed_instances
        merged.new_instances -= ghosts
        merged.removed_instances -= ghosts
        merged.changed_instances -= merged.removed_instances
        return merged

    @property
    def is_empty(self) -> bool:
        return not (
            self.changed_instances or self.new_instances or self.removed_instances
        )

    def stale_for(self, revision: int | None) -> bool:
        """True when this delta demonstrably does not start at ``revision``.

        Consumers that replay precomputed results (the compiled kernel,
        the tile-configuration cache) use this to detect netlist
        mutations that happened outside any recorded changeset: if the
        delta's ``base_revision`` does not line up with the revision
        they last synchronized to, they must fall back to their
        from-scratch path.  Unknown revisions (``None`` on either side)
        cannot prove staleness and return False.
        """
        return (
            self.base_revision is not None
            and revision is not None
            and self.base_revision != revision
        )

    def touched_existing(self) -> set[str]:
        """Existing instances whose tiles are affected."""
        return self.changed_instances | self.removed_instances


class ChangeRecorder:
    """Context helper that diffs a netlist across a mutation block.

    Example::

        with ChangeRecorder(mapped, "invert AND gate") as rec:
            mapped.change_kind(inst, CellKind.LUT, {"table": new_table})
        changeset = rec.changes
    """

    def __init__(self, netlist, description: str = "") -> None:
        self.netlist = netlist
        self.description = description
        self.changes: ChangeSet | None = None
        self._before: dict[str, tuple] | None = None

    def __enter__(self) -> "ChangeRecorder":
        self._before = self._snapshot()
        self._base_revision = getattr(self.netlist, "revision", None)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            return
        after = self._snapshot()
        before = self._before or {}
        changed = {
            name
            for name in before.keys() & after.keys()
            if before[name] != after[name]
        }
        self.changes = ChangeSet(
            description=self.description,
            changed_instances=changed,
            new_instances=set(after) - set(before),
            removed_instances=set(before) - set(after),
            base_revision=getattr(self, "_base_revision", None),
        )

    def _snapshot(self) -> dict[str, tuple]:
        snap = {}
        for inst in self.netlist.instances():
            params = inst.params
            snap[inst.name] = (
                inst.kind,
                tuple([n.name for n in inst.inputs]),
                tuple(sorted(params.items())) if params else (),
            )
        return snap
