"""Precomputed tile configurations — the paper's spare-config trick.

The source paper's central performance claim is that debugging changes
should *reconfigure* precomputed tile configurations instead of
re-running place-and-route.  :class:`TileConfigCache` is the mechanized
form: every tile-confined commit is keyed by a digest of everything that
determines its physical outcome, and the resulting configuration
(movable-block sites plus the full routes of every rerouted net) is kept
so an identical reconfiguration — the probe insert/remove cycles of a
localization campaign, or a repeat of the same campaign — replays the
stored configuration instead of annealing and maze-routing again.

Key contents (a stale entry can never match, let alone apply):

* design name, device geometry and channel width;
* effort preset and commit seed (the fresh path is deterministic in
  them, so a hit reproduces exactly what the fresh path would build);
* the affected tile rectangles;
* the logic content of every movable block
  (:func:`repro.emu.bitstream.block_logic_config` — the same bytes the
  bitstream frames hash);
* per rerouted net: its name, the sites of its locked terminals, the
  names of its still-unplaced terminals, and the locked route fragments
  outside the affected region (the paper's tile *interface*).

Invalidation is structural, not temporal: entries are immortal until
evicted (bounded LRU) because a lookup can only hit when the current
netlist, placement and locked routes present byte-identical context.
On top of that, :func:`repro.pnr.flow.apply_region_config` re-verifies
site legality, terminal membership and channel capacity before touching
the layout, and the tiling manager skips the cache outright when a
:class:`~repro.tiling.eco.ChangeSet` reports a ``base_revision`` that
does not line up with the last committed netlist revision (untracked
mutations).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import threading
from collections import OrderedDict
from dataclasses import dataclass, field

#: Bumped whenever the on-disk payload layout changes; files written by
#: another version are silently ignored on load.
CACHE_FORMAT_VERSION = 1

_CACHE_FORMAT_NAME = "repro-tile-config-cache"

#: File name used inside a ``--cache-dir`` directory.
CACHE_FILE_NAME = "tile_configs.pkl"


@dataclass
class TileConfig:
    """One reusable tile configuration (the cached value).

    Everything is stored by *name* (block names, net names) so a hit
    from an identically-built sibling design — e.g. the same campaign
    re-run under another simulation engine — resolves cleanly even
    though its block/net index spaces are distinct objects.
    """

    #: movable CLB block name → grid site
    sites: dict[str, tuple[int, int]]
    #: freshly placed IOB block name → ring slot
    io_slots: dict[str, tuple[int, int]]
    #: net name → (cells, edges, ((sink block name, hops), ...),
    #: precomputed fabric edge ids)
    routes: dict[str, tuple[frozenset, frozenset, tuple, tuple]]
    #: capture-time occupancy of over-capacity edges (replay may match
    #: the fresh path's non-strict overuse, but never exceed it)
    over_allow: dict = field(default_factory=dict)


@dataclass
class TileConfigCache:
    """Bounded LRU of :class:`TileConfig` entries with hit accounting."""

    max_entries: int = 512
    hits: int = 0
    misses: int = 0
    stores: int = 0
    rejected: int = 0
    _entries: OrderedDict = field(default_factory=OrderedDict, repr=False)
    #: guards entry + counter updates so campaign workers can share one
    #: cache (lock per cache, never serialized)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def lookup(self, key: str) -> TileConfig | None:
        with self._lock:
            config = self._entries.get(key)
            if config is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return config

    def store(self, key: str, config: TileConfig) -> None:
        with self._lock:
            self._entries[key] = config
            self._entries.move_to_end(key)
            self.stores += 1
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def note_rejected(self) -> None:
        """A hit failed apply-time verification (counts as a miss)."""
        with self._lock:
            self.rejected += 1
            self.hits -= 1
            self.misses += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = self.misses = self.stores = self.rejected = 0

    # -- persistence ---------------------------------------------------

    def save(self, path: str) -> int:
        """Write every entry to ``path``; returns the entry count.

        The file is a pickled wrapper carrying a format name, a format
        version, and a SHA-256 digest of the pickled entry payload, so
        :meth:`load` can reject truncated, corrupted, or incompatible
        files without crashing.  The write is atomic (temp + rename).
        """
        with self._lock:
            entries = list(self._entries.items())
        payload = pickle.dumps(
            entries, protocol=pickle.HIGHEST_PROTOCOL
        )
        wrapper = {
            "format": _CACHE_FORMAT_NAME,
            "version": CACHE_FORMAT_VERSION,
            "sha256": hashlib.sha256(payload).hexdigest(),
            "payload": payload,
        }
        # pid + thread id: concurrent saves (campaign workers) must not
        # share a temp file, or interleaved writes corrupt it and the
        # losing os.replace raises
        tmp = f"{path}.tmp.{os.getpid()}.{threading.get_ident()}"
        with open(tmp, "wb") as fh:
            pickle.dump(wrapper, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
        return len(entries)

    def load(self, path: str) -> int:
        """Merge entries previously :meth:`save`-d at ``path``.

        Returns the number of entries merged.  A missing, corrupt,
        digest-mismatched, or version-mismatched file is ignored (0),
        never fatal — a cold start is always a safe fallback.
        """
        try:
            with open(path, "rb") as fh:
                wrapper = pickle.load(fh)
            if not isinstance(wrapper, dict):
                return 0
            if wrapper.get("format") != _CACHE_FORMAT_NAME:
                return 0
            if wrapper.get("version") != CACHE_FORMAT_VERSION:
                return 0
            payload = wrapper.get("payload")
            if (
                not isinstance(payload, bytes)
                or hashlib.sha256(payload).hexdigest()
                != wrapper.get("sha256")
            ):
                return 0
            entries = pickle.loads(payload)
            if not isinstance(entries, list):
                return 0
        except Exception:
            # a cold start is always safe; corrupt pickle streams can
            # raise nearly anything (TypeError, KeyError, custom
            # constructor errors), and the contract is "never fatal"
            return 0
        loaded = 0
        with self._lock:
            for key, config in entries:
                if not isinstance(key, str) or not isinstance(
                    config, TileConfig
                ):
                    continue
                self._entries[key] = config
                self._entries.move_to_end(key)
                loaded += 1
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
        return loaded

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict[str, float]:
        return {
            "entries": float(len(self._entries)),
            "hits": float(self.hits),
            "misses": float(self.misses),
            "stores": float(self.stores),
            "rejected": float(self.rejected),
            "hit_rate": self.hit_rate,
        }


#: Process-wide default used by :class:`~repro.tiling.manager.TiledLayout`
#: unless a caller supplies its own (or ``tile_cache=None`` to disable).
DEFAULT_TILE_CACHE = TileConfigCache()


def stats_delta(before: dict, after: dict) -> dict:
    """Counter delta between two :meth:`TileConfigCache.stats` snapshots
    (plus the recomputed hit rate and the closing entry count)."""
    delta = {
        k: after[k] - before[k]
        for k in ("hits", "misses", "stores", "rejected")
    }
    looked = delta["hits"] + delta["misses"]
    delta["hit_rate"] = delta["hits"] / looked if looked else 0.0
    delta["entries"] = after["entries"]
    return delta


def cache_file_path(cache_dir: str) -> str:
    """The persistence file used inside a ``--cache-dir`` directory."""
    return os.path.join(cache_dir, CACHE_FILE_NAME)


def load_tile_cache(cache_dir: str, cache: TileConfigCache | None = None
                    ) -> TileConfigCache:
    """Warm ``cache`` (default: a fresh one) from ``cache_dir``."""
    cache = cache if cache is not None else TileConfigCache()
    cache.load(cache_file_path(cache_dir))
    return cache


def save_tile_cache(cache: TileConfigCache, cache_dir: str) -> int:
    """Persist ``cache`` under ``cache_dir`` (created if missing)."""
    os.makedirs(cache_dir, exist_ok=True)
    return cache.save(cache_file_path(cache_dir))


def verify_cache_file(path: str) -> int:
    """How many entries ``path`` yields to a fresh load (0 = unusable).

    Loads into a throwaway cache with the same hostile-file tolerance as
    :meth:`TileConfigCache.load`, so callers (CI smoke checks, chaos
    tests) can assert a write-back survived without touching any shared
    cache state.
    """
    return TileConfigCache().load(path)


# ----------------------------------------------------------------------
# whole-design precomputed configurations
# ----------------------------------------------------------------------

def pnr_key_header(packed, device, preset, seed) -> str:
    """Shared digest header: everything a deterministic P&R run of this
    design on this device under this effort/seed is parameterized by."""
    return (
        f"{packed.netlist.name}|{device.name}|{device.nx}x{device.ny}"
        f"|cw{device.channel_width}|io{device.io_per_slot}"
        f"|{preset.name}|i{preset.inner_num}|r{preset.router_iterations}"
        f"|e{preset.exit_ratio}|s{seed}"
    )


def full_pnr_key(packed, device, seed, preset, constraints=None,
                 context: str = "", strict_routing: bool = False) -> str:
    """Digest of everything a from-scratch place-and-route depends on.

    Covers the full design: every block's logic configuration, every
    block net's terminals, the device, the effort preset, the placement
    seed, and any region/lock constraints.  Identical digests mean the
    deterministic P&R would recompute the identical layout.
    """
    from repro.emu.bitstream import block_logic_config

    h = hashlib.sha256()
    h.update(
        f"full-pnr|{context}|{pnr_key_header(packed, device, preset, seed)}"
        f"|strict{int(strict_routing)}\n".encode()
    )
    for block in packed.blocks:
        h.update(block.name.encode())
        h.update(b"=")
        h.update(block_logic_config(packed, block.index))
        h.update(b"\n")
    for idx in sorted(packed.nets):
        net = packed.nets[idx]
        h.update(
            f"{net.name}|{packed.blocks[net.driver].name}|".encode()
        )
        h.update(
            ";".join(packed.blocks[s].name for s in net.sinks).encode()
        )
        h.update(b"\n")
    if constraints is not None:
        regions = sorted(
            (packed.blocks[b].name, (r.x0, r.y0, r.x1, r.y1))
            for b, r in constraints.regions.items()
        )
        h.update(repr(regions).encode())
        locked = sorted(packed.blocks[b].name for b in constraints.locked)
        h.update(repr(locked).encode())
        if constraints.free_sites is not None:
            h.update(repr(sorted(constraints.free_sites)).encode())
    return h.hexdigest()


def cached_full_place_and_route(
    packed,
    device,
    seed: int = 1,
    preset=None,
    meter=None,
    constraints=None,
    strict_routing: bool = True,
    cache: TileConfigCache | None = DEFAULT_TILE_CACHE,
    context: str = "",
):
    """:func:`repro.pnr.flow.full_place_and_route` behind the config cache.

    The initial implementation and the slack-aware tiled re-implementation
    are deterministic in their inputs, so a repeat of the same
    precomputation (e.g. the same campaign re-run under another
    simulation engine) replays the stored whole-design configuration —
    placement and routes — instead of annealing and maze-routing again.
    A replay is verified exactly like a tile reconfiguration
    (:func:`repro.pnr.flow.apply_region_config` onto an empty layout)
    and falls back to the fresh path on any mismatch.
    """
    from repro.pnr.effort import EFFORT_PRESETS, EffortMeter
    from repro.pnr.flow import (
        Layout,
        apply_region_config,
        capture_region_config,
        full_place_and_route,
    )
    from repro.pnr.placement import Placement
    from repro.pnr.router import RoutingState

    preset = preset or EFFORT_PRESETS["normal"]
    meter = meter if meter is not None else EffortMeter()

    key = None
    if cache is not None:
        key = full_pnr_key(
            packed, device, seed, preset, constraints=constraints,
            context=context, strict_routing=strict_routing,
        )
        config = cache.lookup(key)
        if config is not None:
            clbs = {b.index for b in packed.clb_blocks()}
            iobs = {b.index for b in packed.io_blocks()}
            ids = sorted(packed.nets)
            layout = Layout(
                packed, device, Placement(device, packed), {},
                RoutingState(device),
            )
            meter.begin_invocation()
            ok = apply_region_config(
                layout, clbs, iobs, ids, [device.clb_region],
                config.sites, config.io_slots, config.routes,
                config.over_allow,
            )
            if ok:
                try:
                    layout.placement.check_complete()
                except Exception:
                    ok = False
            meter.end_invocation()
            if ok:
                return layout
            cache.note_rejected()

    layout = full_place_and_route(
        packed, device, seed=seed, preset=preset, meter=meter,
        constraints=constraints, strict_routing=strict_routing,
    )
    if cache is not None and key is not None:
        clbs = {b.index for b in packed.clb_blocks()}
        iobs = {b.index for b in packed.io_blocks()}
        sites, io_slots, routes, over_allow = capture_region_config(
            layout, clbs, iobs, sorted(packed.nets)
        )
        cache.store(key, TileConfig(sites, io_slots, routes, over_allow))
    return layout
