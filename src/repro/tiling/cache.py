"""Precomputed tile configurations — the paper's spare-config trick.

The source paper's central performance claim is that debugging changes
should *reconfigure* precomputed tile configurations instead of
re-running place-and-route.  :class:`TileConfigCache` is the mechanized
form: every tile-confined commit is keyed by a digest of everything that
determines its physical outcome, and the resulting configuration
(movable-block sites plus the full routes of every rerouted net) is kept
so an identical reconfiguration — the probe insert/remove cycles of a
localization campaign, or a repeat of the same campaign — replays the
stored configuration instead of annealing and maze-routing again.

Key contents (a stale entry can never match, let alone apply):

* design name, device geometry and channel width;
* effort preset and commit seed (the fresh path is deterministic in
  them, so a hit reproduces exactly what the fresh path would build);
* the affected tile rectangles;
* the logic content of every movable block
  (:func:`repro.emu.bitstream.block_logic_config` — the same bytes the
  bitstream frames hash);
* per rerouted net: its name, the sites of its locked terminals, the
  names of its still-unplaced terminals, and the locked route fragments
  outside the affected region (the paper's tile *interface*).

Invalidation is structural, not temporal: entries are immortal until
evicted (bounded LRU) because a lookup can only hit when the current
netlist, placement and locked routes present byte-identical context.
On top of that, :func:`repro.pnr.flow.apply_region_config` re-verifies
site legality, terminal membership and channel capacity before touching
the layout, and the tiling manager skips the cache outright when a
:class:`~repro.tiling.eco.ChangeSet` reports a ``base_revision`` that
does not line up with the last committed netlist revision (untracked
mutations).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import re
import threading
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.obs.metrics import METRICS

try:  # advisory locking is POSIX-only; the store degrades gracefully
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

#: Bumped whenever the on-disk payload layout changes; files written by
#: another version are silently ignored on load.
CACHE_FORMAT_VERSION = 1

_CACHE_FORMAT_NAME = "repro-tile-config-cache"
_ENTRY_FORMAT_NAME = "repro-tile-config-entry"

#: Legacy whole-cache pickle name inside a ``--cache-dir`` directory
#: (still read for migration; new write-backs go to the entry store).
CACHE_FILE_NAME = "tile_configs.pkl"

#: Directory name of the content-addressed entry store inside a
#: ``--cache-dir`` directory.
CACHE_STORE_NAME = "tile_configs"

_HEX_KEY = re.compile(r"^[0-9a-f]{64}$")


@dataclass
class TileConfig:
    """One reusable tile configuration (the cached value).

    Everything is stored by *name* (block names, net names) so a hit
    from an identically-built sibling design — e.g. the same campaign
    re-run under another simulation engine — resolves cleanly even
    though its block/net index spaces are distinct objects.
    """

    #: movable CLB block name → grid site
    sites: dict[str, tuple[int, int]]
    #: freshly placed IOB block name → ring slot
    io_slots: dict[str, tuple[int, int]]
    #: net name → (cells, edges, ((sink block name, hops), ...),
    #: precomputed fabric edge ids)
    routes: dict[str, tuple[frozenset, frozenset, tuple, tuple]]
    #: capture-time occupancy of over-capacity edges (replay may match
    #: the fresh path's non-strict overuse, but never exceed it)
    over_allow: dict = field(default_factory=dict)


@dataclass
class TileConfigCache:
    """Bounded LRU of :class:`TileConfig` entries with hit accounting."""

    max_entries: int = 512
    hits: int = 0
    misses: int = 0
    stores: int = 0
    rejected: int = 0
    _entries: OrderedDict = field(default_factory=OrderedDict, repr=False)
    #: guards entry + counter updates so campaign workers can share one
    #: cache (lock per cache, never serialized)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def lookup(self, key: str) -> TileConfig | None:
        with self._lock:
            config = self._entries.get(key)
            if config is None:
                self.misses += 1
            else:
                self._entries.move_to_end(key)
                self.hits += 1
        if config is None:
            METRICS.inc("repro_commit_cache_misses_total")
            return None
        METRICS.inc("repro_commit_cache_hits_total")
        return config

    def store(self, key: str, config: TileConfig) -> None:
        with self._lock:
            self._entries[key] = config
            self._entries.move_to_end(key)
            self.stores += 1
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def store_quietly(self, key: str, config: TileConfig) -> None:
        """Merge one entry without touching the ``stores`` counter.

        The load/merge paths use this so warming from disk never skews
        the per-run accounting the campaign deltas are computed from.
        """
        with self._lock:
            self._entries[key] = config
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def note_rejected(self) -> None:
        """A hit failed apply-time verification (counts as a miss)."""
        with self._lock:
            self.rejected += 1
            self.hits -= 1
            self.misses += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = self.misses = self.stores = self.rejected = 0

    # -- persistence ---------------------------------------------------

    def save(self, path: str) -> int:
        """Write every entry to ``path``; returns the entry count.

        The file is a pickled wrapper carrying a format name, a format
        version, and a SHA-256 digest of the pickled entry payload, so
        :meth:`load` can reject truncated, corrupted, or incompatible
        files without crashing.  The write is atomic (temp + rename).
        """
        with self._lock:
            entries = list(self._entries.items())
        payload = pickle.dumps(
            entries, protocol=pickle.HIGHEST_PROTOCOL
        )
        wrapper = {
            "format": _CACHE_FORMAT_NAME,
            "version": CACHE_FORMAT_VERSION,
            "sha256": hashlib.sha256(payload).hexdigest(),
            "payload": payload,
        }
        # pid + thread id: concurrent saves (campaign workers) must not
        # share a temp file, or interleaved writes corrupt it and the
        # losing os.replace raises
        tmp = f"{path}.tmp.{os.getpid()}.{threading.get_ident()}"
        with open(tmp, "wb") as fh:
            pickle.dump(wrapper, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
        return len(entries)

    def load(self, path: str) -> int:
        """Merge entries previously :meth:`save`-d at ``path``.

        Returns the number of entries merged.  A missing, corrupt,
        digest-mismatched, or version-mismatched file is ignored (0),
        never fatal — a cold start is always a safe fallback.
        """
        try:
            with open(path, "rb") as fh:
                wrapper = pickle.load(fh)
            if not isinstance(wrapper, dict):
                return 0
            if wrapper.get("format") != _CACHE_FORMAT_NAME:
                return 0
            if wrapper.get("version") != CACHE_FORMAT_VERSION:
                return 0
            payload = wrapper.get("payload")
            if (
                not isinstance(payload, bytes)
                or hashlib.sha256(payload).hexdigest()
                != wrapper.get("sha256")
            ):
                return 0
            entries = pickle.loads(payload)
            if not isinstance(entries, list):
                return 0
        except Exception:
            # a cold start is always safe; corrupt pickle streams can
            # raise nearly anything (TypeError, KeyError, custom
            # constructor errors), and the contract is "never fatal"
            return 0
        loaded = 0
        with self._lock:
            for key, config in entries:
                if not isinstance(key, str) or not isinstance(
                    config, TileConfig
                ):
                    continue
                self._entries[key] = config
                self._entries.move_to_end(key)
                loaded += 1
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
        return loaded

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict[str, float]:
        return {
            "entries": float(len(self._entries)),
            "hits": float(self.hits),
            "misses": float(self.misses),
            "stores": float(self.stores),
            "rejected": float(self.rejected),
            "hit_rate": self.hit_rate,
        }


#: Process-wide default used by :class:`~repro.tiling.manager.TiledLayout`
#: unless a caller supplies its own (or ``tile_cache=None`` to disable).
DEFAULT_TILE_CACHE = TileConfigCache()


def stats_delta(before: dict, after: dict) -> dict:
    """Counter delta between two :meth:`TileConfigCache.stats` snapshots
    (plus the recomputed hit rate and the closing entry count)."""
    delta = {
        k: after[k] - before[k]
        for k in ("hits", "misses", "stores", "rejected")
    }
    looked = delta["hits"] + delta["misses"]
    delta["hit_rate"] = delta["hits"] / looked if looked else 0.0
    delta["entries"] = after["entries"]
    return delta


# ----------------------------------------------------------------------
# content-addressed on-disk store (crash- and multiprocess-safe)
# ----------------------------------------------------------------------

@contextmanager
def _file_lock(path: str):
    """``fcntl`` advisory lock held for the enclosed block.

    Per-entry writes are already atomic (temp + ``os.replace``); the
    lock only serializes the *compound* operations — directory scans
    interleaved with quarantine moves — across worker processes.  On
    platforms without ``fcntl`` the lock degrades to a no-op, which
    costs nothing but a chance of double-quarantining a damaged entry.
    """
    if fcntl is None:  # pragma: no cover - non-POSIX platforms
        yield
        return
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "a+b") as fh:
        fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(fh.fileno(), fcntl.LOCK_UN)


class TileConfigStore:
    """Content-addressed per-digest store of :class:`TileConfig` entries.

    The crash-safe replacement for the historical whole-cache pickle:
    every entry lives in its own file named by the SHA-256 of its cache
    key (``<root>/<aa>/<digest>.pkl``), written atomically via a
    temp-file + ``os.replace``.  That makes cross-process sharing a
    non-event — two workers storing the same digest write byte-identical
    files, a worker killed mid-write leaves only a temp file behind
    (swept opportunistically), and merge-on-writeback is simply "write
    the digests the disk does not have yet".  Entries that fail
    verification on read (bad wrapper, payload digest mismatch, version
    skew) are *quarantined* — moved aside into ``<root>.quarantine/`` so
    they are inspected, never re-read, and never crash a load.
    """

    def __init__(self, root: str) -> None:
        self.root = root
        self.quarantine_dir = root + ".quarantine"
        self._lock_path = os.path.join(root, ".lock")
        #: addresses this handle has already seen on disk — a long-lived
        #: holder (service worker) write-backs incrementally without
        #: re-stat()ing every entry each time; membership only ever
        #: means "was present once", which is safe because entries are
        #: content-addressed and never rewritten
        self._known: set[str] = set()

    # -- naming --------------------------------------------------------

    @staticmethod
    def address(key: str) -> str:
        """The content address (file stem) of a cache key."""
        if _HEX_KEY.match(key):
            return key
        return hashlib.sha256(key.encode("utf-8")).hexdigest()

    def entry_path(self, key: str) -> str:
        digest = self.address(key)
        return os.path.join(self.root, digest[:2], digest + ".pkl")

    def entry_files(self) -> list[str]:
        """Every entry file currently in the store, sorted."""
        files = []
        if not os.path.isdir(self.root):
            return files
        for shard in sorted(os.listdir(self.root)):
            shard_dir = os.path.join(self.root, shard)
            if len(shard) != 2 or not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".pkl"):
                    files.append(os.path.join(shard_dir, name))
        return files

    def __len__(self) -> int:
        return len(self.entry_files())

    # -- single-entry I/O ----------------------------------------------

    def write_entry(self, key: str, config: TileConfig) -> bool:
        """Atomically persist one entry; False if already present.

        Same-digest files are byte-equivalent by construction, so an
        existing file never needs rewriting — which is exactly what
        makes concurrent write-backs from many workers safe.
        """
        digest = self.address(key)
        if digest in self._known:
            return False
        path = self.entry_path(key)
        if os.path.exists(path):
            self._known.add(digest)
            return False
        payload = pickle.dumps(config, protocol=pickle.HIGHEST_PROTOCOL)
        wrapper = {
            "format": _ENTRY_FORMAT_NAME,
            "version": CACHE_FORMAT_VERSION,
            "key": key,
            "sha256": hashlib.sha256(payload).hexdigest(),
            "payload": payload,
        }
        os.makedirs(os.path.dirname(path), exist_ok=True)
        # pid + thread id: concurrent writers never share a temp file
        tmp = f"{path}.tmp.{os.getpid()}.{threading.get_ident()}"
        try:
            with open(tmp, "wb") as fh:
                pickle.dump(wrapper, fh, protocol=pickle.HIGHEST_PROTOCOL)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
            self._known.add(digest)
        finally:
            if os.path.exists(tmp):  # a failed replace must not litter
                try:
                    os.remove(tmp)
                except OSError:  # pragma: no cover - racing sweeper
                    pass
        return True

    @staticmethod
    def read_entry(path: str):
        """``(key, TileConfig)`` from one entry file, or ``None``.

        Verification mirrors :meth:`TileConfigCache.load`: format name,
        format version, and the payload digest must all check out, and
        the unpickled objects must have the expected types.  Any damage
        yields ``None`` — the caller decides whether to quarantine.
        """
        try:
            with open(path, "rb") as fh:
                wrapper = pickle.load(fh)
            if not isinstance(wrapper, dict):
                return None
            if wrapper.get("format") != _ENTRY_FORMAT_NAME:
                return None
            if wrapper.get("version") != CACHE_FORMAT_VERSION:
                return None
            key = wrapper.get("key")
            payload = wrapper.get("payload")
            if not isinstance(key, str) or not isinstance(payload, bytes):
                return None
            if hashlib.sha256(payload).hexdigest() != wrapper.get("sha256"):
                return None
            config = pickle.loads(payload)
            if not isinstance(config, TileConfig):
                return None
            return key, config
        except Exception:
            # corrupt pickle streams can raise nearly anything; the
            # contract is "damage is data, never an exception"
            return None

    def quarantine(self, path: str, reason: str = "corrupt") -> str | None:
        """Move a damaged entry aside; returns its new path (or None)."""
        os.makedirs(self.quarantine_dir, exist_ok=True)
        dest = os.path.join(
            self.quarantine_dir, f"{os.path.basename(path)}.{reason}"
        )
        try:
            os.replace(path, dest)
        except OSError:
            # a concurrent loader already moved it; nothing left to do
            return None
        return dest

    def quarantined_files(self) -> list[str]:
        if not os.path.isdir(self.quarantine_dir):
            return []
        return sorted(
            os.path.join(self.quarantine_dir, name)
            for name in os.listdir(self.quarantine_dir)
        )

    def _sweep_temp_files(self) -> None:
        """Remove temp droppings a killed writer left behind."""
        if not os.path.isdir(self.root):
            return
        for shard in os.listdir(self.root):
            shard_dir = os.path.join(self.root, shard)
            if len(shard) != 2 or not os.path.isdir(shard_dir):
                continue
            for name in os.listdir(shard_dir):
                if ".pkl.tmp." in name:
                    try:
                        os.remove(os.path.join(shard_dir, name))
                    except OSError:  # pragma: no cover - racing sweeper
                        pass

    # -- bulk operations -----------------------------------------------

    def merge_into(self, cache: TileConfigCache) -> int:
        """Load every valid entry into ``cache``; quarantine the rest.

        Returns the number of entries merged.  Damaged entries are
        moved to the quarantine directory (under the store lock, so two
        concurrent loaders do not race the move) and the load carries
        on — a partially damaged store degrades to a partial warm
        start, never a crash.
        """
        if not os.path.isdir(self.root):
            return 0
        merged = 0
        with _file_lock(self._lock_path):
            self._sweep_temp_files()
            for path in self.entry_files():
                entry = self.read_entry(path)
                if entry is None:
                    self.quarantine(path)
                    continue
                key, config = entry
                self._known.add(self.address(key))
                cache.store_quietly(key, config)
                merged += 1
        return merged

    def write_back(self, cache: TileConfigCache) -> int:
        """Persist ``cache``'s entries the store does not have yet.

        The merge-on-writeback discipline: digests already on disk are
        skipped (same digest = same bytes), new digests land atomically,
        and nothing is ever rewritten — so any number of workers can
        write back concurrently without losing each other's entries.
        Returns the number of entries *newly* written.
        """
        os.makedirs(self.root, exist_ok=True)
        with cache._lock:
            entries = list(cache._entries.items())
        written = 0
        for key, config in entries:
            if self.write_entry(key, config):
                written += 1
        return written

    def verify(self) -> dict:
        """Read-only damage report over the store.

        ``{"valid": n, "corrupt": [paths], "quarantined": [paths]}`` —
        ``corrupt`` lists entry files that currently fail verification
        (they will be quarantined by the next load), ``quarantined``
        lists entries a previous load already moved aside.
        """
        valid = 0
        corrupt: list[str] = []
        for path in self.entry_files():
            if self.read_entry(path) is None:
                corrupt.append(path)
            else:
                valid += 1
        return {
            "valid": valid,
            "corrupt": corrupt,
            "quarantined": self.quarantined_files(),
        }


def cache_file_path(cache_dir: str) -> str:
    """The persistence target inside a ``--cache-dir`` directory.

    Since the content-addressed store replaced the whole-cache pickle
    this is the store *directory*; :func:`verify_cache_file` and the
    chaos harness accept it directly.
    """
    return os.path.join(cache_dir, CACHE_STORE_NAME)


def legacy_cache_file_path(cache_dir: str) -> str:
    """The pre-store whole-cache pickle (read for migration only)."""
    return os.path.join(cache_dir, CACHE_FILE_NAME)


def load_tile_cache(cache_dir: str, cache: TileConfigCache | None = None
                    ) -> TileConfigCache:
    """Warm ``cache`` (default: a fresh one) from ``cache_dir``.

    Merges the content-addressed entry store, then any legacy
    whole-cache pickle left by an older version (its entries migrate
    into the store on the next write-back).
    """
    cache = cache if cache is not None else TileConfigCache()
    TileConfigStore(cache_file_path(cache_dir)).merge_into(cache)
    legacy = legacy_cache_file_path(cache_dir)
    if os.path.exists(legacy):
        cache.load(legacy)
    return cache


def save_tile_cache(cache: TileConfigCache, cache_dir: str) -> int:
    """Write back ``cache`` under ``cache_dir`` (created if missing).

    Only digests missing from the store are written (each atomically),
    so concurrent campaign workers — threads or processes — can all
    write back without clobbering one another, and a crash mid-
    write-back loses at most the single entry being written.
    """
    os.makedirs(cache_dir, exist_ok=True)
    return TileConfigStore(cache_file_path(cache_dir)).write_back(cache)


def verify_cache_file(path: str) -> int:
    """How many entries ``path`` yields to a fresh load (0 = unusable).

    ``path`` may be a store directory (per-digest layout), a single
    entry file, or a legacy whole-cache pickle; damage is tolerated
    with the same hostile-file discipline as the load paths, so callers
    (CI smoke checks, chaos tests) can assert a write-back survived
    without touching any shared cache state.
    """
    if os.path.isdir(path):
        return TileConfigStore(path).verify()["valid"]
    if TileConfigStore.read_entry(path) is not None:
        return 1
    return TileConfigCache().load(path)


def verify_cache_store(cache_dir: str) -> dict:
    """Full damage report for a ``--cache-dir`` directory.

    ``{"valid", "corrupt", "quarantined", "legacy_entries"}`` — the
    store's :meth:`TileConfigStore.verify` report plus the entry count
    of any legacy whole-cache pickle still present.  Read-only: nothing
    is moved or deleted (the next load quarantines ``corrupt`` files).
    """
    report = TileConfigStore(cache_file_path(cache_dir)).verify()
    legacy = legacy_cache_file_path(cache_dir)
    report["legacy_entries"] = (
        TileConfigCache().load(legacy) if os.path.exists(legacy) else 0
    )
    return report


# ----------------------------------------------------------------------
# whole-design precomputed configurations
# ----------------------------------------------------------------------

def pnr_key_header(packed, device, preset, seed) -> str:
    """Shared digest header: everything a deterministic P&R run of this
    design on this device under this effort/seed is parameterized by."""
    return (
        f"{packed.netlist.name}|{device.name}|{device.nx}x{device.ny}"
        f"|cw{device.channel_width}|io{device.io_per_slot}"
        f"|{preset.name}|i{preset.inner_num}|r{preset.router_iterations}"
        f"|e{preset.exit_ratio}|s{seed}"
    )


def full_pnr_key(packed, device, seed, preset, constraints=None,
                 context: str = "", strict_routing: bool = False) -> str:
    """Digest of everything a from-scratch place-and-route depends on.

    Covers the full design: every block's logic configuration, every
    block net's terminals, the device, the effort preset, the placement
    seed, and any region/lock constraints.  Identical digests mean the
    deterministic P&R would recompute the identical layout.
    """
    from repro.emu.bitstream import block_logic_config

    h = hashlib.sha256()
    h.update(
        f"full-pnr|{context}|{pnr_key_header(packed, device, preset, seed)}"
        f"|strict{int(strict_routing)}\n".encode()
    )
    for block in packed.blocks:
        h.update(block.name.encode())
        h.update(b"=")
        h.update(block_logic_config(packed, block.index))
        h.update(b"\n")
    for idx in sorted(packed.nets):
        net = packed.nets[idx]
        h.update(
            f"{net.name}|{packed.blocks[net.driver].name}|".encode()
        )
        h.update(
            ";".join(packed.blocks[s].name for s in net.sinks).encode()
        )
        h.update(b"\n")
    if constraints is not None:
        regions = sorted(
            (packed.blocks[b].name, (r.x0, r.y0, r.x1, r.y1))
            for b, r in constraints.regions.items()
        )
        h.update(repr(regions).encode())
        locked = sorted(packed.blocks[b].name for b in constraints.locked)
        h.update(repr(locked).encode())
        if constraints.free_sites is not None:
            h.update(repr(sorted(constraints.free_sites)).encode())
    return h.hexdigest()


def cached_full_place_and_route(
    packed,
    device,
    seed: int = 1,
    preset=None,
    meter=None,
    constraints=None,
    strict_routing: bool = True,
    cache: TileConfigCache | None = DEFAULT_TILE_CACHE,
    context: str = "",
):
    """:func:`repro.pnr.flow.full_place_and_route` behind the config cache.

    The initial implementation and the slack-aware tiled re-implementation
    are deterministic in their inputs, so a repeat of the same
    precomputation (e.g. the same campaign re-run under another
    simulation engine) replays the stored whole-design configuration —
    placement and routes — instead of annealing and maze-routing again.
    A replay is verified exactly like a tile reconfiguration
    (:func:`repro.pnr.flow.apply_region_config` onto an empty layout)
    and falls back to the fresh path on any mismatch.
    """
    from repro.pnr.effort import EFFORT_PRESETS, EffortMeter
    from repro.pnr.flow import (
        Layout,
        apply_region_config,
        capture_region_config,
        full_place_and_route,
    )
    from repro.pnr.placement import Placement
    from repro.pnr.router import RoutingState

    preset = preset or EFFORT_PRESETS["normal"]
    meter = meter if meter is not None else EffortMeter()

    key = None
    if cache is not None:
        key = full_pnr_key(
            packed, device, seed, preset, constraints=constraints,
            context=context, strict_routing=strict_routing,
        )
        config = cache.lookup(key)
        if config is not None:
            clbs = {b.index for b in packed.clb_blocks()}
            iobs = {b.index for b in packed.io_blocks()}
            ids = sorted(packed.nets)
            layout = Layout(
                packed, device, Placement(device, packed), {},
                RoutingState(device),
            )
            meter.begin_invocation()
            ok = apply_region_config(
                layout, clbs, iobs, ids, [device.clb_region],
                config.sites, config.io_slots, config.routes,
                config.over_allow,
            )
            if ok:
                try:
                    layout.placement.check_complete()
                except Exception:
                    ok = False
            meter.end_invocation()
            if ok:
                return layout
            cache.note_rejected()

    layout = full_place_and_route(
        packed, device, seed=seed, preset=preset, meter=meter,
        constraints=constraints, strict_routing=strict_routing,
    )
    if cache is not None and key is not None:
        clbs = {b.index for b in packed.clb_blocks()}
        iobs = {b.index for b in packed.io_blocks()}
        sites, io_slots, routes, over_allow = capture_region_config(
            layout, clbs, iobs, sorted(packed.nets)
        )
        cache.store(key, TileConfig(sites, io_slots, routes, over_allow))
    return layout
