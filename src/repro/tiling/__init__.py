"""Tiling — the paper's core contribution.

Physical-design partitioning into independent blocks (tiles) with locked
interfaces and deliberate resource slack:

* :mod:`repro.tiling.tile` — tile geometry and occupancy accounting;
* :mod:`repro.tiling.partition` — tile-boundary determination (grid
  planning, block assignment, min-cut boundary refinement);
* :mod:`repro.tiling.manager` — :class:`TiledLayout`: slack-aware tiled
  placement, affected-tile identification with neighbor expansion,
  tile-confined re-place-and-route, interface re-locking;
* :mod:`repro.tiling.eco` — change descriptors linking netlist-level
  debugging changes to physical tiles (back-annotation, paper §5.1);
* :mod:`repro.tiling.cache` — precomputed tile configurations keyed by
  logic content and locked interface signature, so repeated
  reconfigurations skip place-and-route entirely (the paper's
  spare-configuration mechanism).
"""

from repro.tiling.tile import Tile, TileStats
from repro.tiling.partition import (
    TilingOptions,
    assign_blocks_to_tiles,
    plan_tile_grid,
    refine_boundaries,
)
from repro.tiling.cache import DEFAULT_TILE_CACHE, TileConfig, TileConfigCache
from repro.tiling.manager import TiledLayout
from repro.tiling.eco import ChangeSet

__all__ = [
    "Tile",
    "TileStats",
    "TilingOptions",
    "assign_blocks_to_tiles",
    "plan_tile_grid",
    "refine_boundaries",
    "DEFAULT_TILE_CACHE",
    "TileConfig",
    "TileConfigCache",
    "TiledLayout",
    "ChangeSet",
]
