"""Design and device resolution shared by the facade and the drivers.

One place turns a :class:`~repro.api.spec.RunSpec` (or plain arguments)
into the front-end artifacts every downstream layer consumes: a
:class:`~repro.generators.registry.DesignBundle` and a
:class:`~repro.arch.device.Device`.  The experiment drivers in
:mod:`repro.analysis.experiments` resolve through the same functions,
so "which designs exist and how they are built" has a single source of
truth.
"""

from __future__ import annotations

from repro.arch.device import Device, DeviceSpec, XC4000_FAMILY, pick_device
from repro.errors import SpecError
from repro.generators.des import make_des
from repro.generators.fsm import make_fsm
from repro.generators.mips import make_mips
from repro.generators.random_logic import random_sequential_netlist
from repro.generators.registry import DesignBundle, build_design
from repro.netlist.hierarchy import HierNode
from repro.synth.pack import pack_netlist
from repro.synth.techmap import map_to_luts

#: Generators that accept keyword parameters (``RunSpec.design_params``)
#: for non-registry variants — e.g. a reduced 2-round DES demo.
GENERATOR_BUILDERS = {
    "des": make_des,
    "mips": make_mips,
    "fsm": make_fsm,
    "random": random_sequential_netlist,
}


def _bundle_from_netlist(name: str, netlist, kind: str = "custom",
                         paper_clbs: int = 0) -> DesignBundle:
    """Front end (map → pack) plus a flat one-block hierarchy."""
    mapped = map_to_luts(netlist)
    packed = pack_netlist(mapped)
    root = HierNode(name)
    root.add_child("top").assign(
        inst.name for inst in mapped.logic_instances()
    )
    return DesignBundle(
        name=name, netlist=netlist, mapped=mapped, packed=packed,
        hierarchy=root, paper_clbs=paper_clbs, kind=kind,
    )


def load_bundle(spec) -> DesignBundle:
    """Resolve ``spec``'s design source into a :class:`DesignBundle`.

    Three sources, checked in order: a BLIF file (``blif_path``), a
    parameterized generator (``design`` + ``design_params``), or a
    registry benchmark (``design`` alone).
    """
    if spec.blif_path is not None:
        from repro.netlist.blif import read_blif

        try:
            with open(spec.blif_path) as fh:
                text = fh.read()
        except OSError as exc:
            raise SpecError(
                f"cannot read BLIF file {spec.blif_path!r}: {exc}"
            ) from exc
        netlist = read_blif(text, name=spec.design_label)
        return _bundle_from_netlist(spec.design_label, netlist, kind="blif")
    if spec.design_params is not None:
        builder = GENERATOR_BUILDERS[spec.design]
        params = dict(spec.design_params)
        # every parameterizable generator takes a seed; the spec's
        # design_seed applies unless the params pin one explicitly
        params.setdefault("seed", spec.design_seed)
        netlist = builder(**params)
        return _bundle_from_netlist(netlist.name, netlist, kind="custom")
    return build_design(spec.design, seed=spec.design_seed)


def device_by_name(name: str, channel_width: int | None = None) -> Device:
    """A family member by name, optionally with a channel override."""
    for family_spec in XC4000_FAMILY:
        if family_spec.name == name:
            if channel_width is not None:
                family_spec = DeviceSpec(
                    family_spec.name, family_spec.nx, family_spec.ny,
                    channel_width, family_spec.io_per_slot,
                )
            return Device(family_spec)
    raise SpecError(
        f"unknown device {name!r}; family members: "
        + ", ".join(s.name for s in XC4000_FAMILY)
    )


def device_for(packed, device: str | None = None,
               channel_width: int | None = None,
               area_overhead: float = 0.35,
               min_io_extra: int = 16) -> Device:
    """The device a spec implies: named member, or historical auto-pick."""
    if device is not None:
        return device_by_name(device, channel_width)
    return pick_device(
        packed.n_clbs,
        area_overhead=area_overhead,
        min_io=len(packed.io_blocks()) + min_io_extra,
        channel_width=channel_width,
    )
