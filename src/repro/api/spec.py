"""`RunSpec` — the serializable definition of one debug run.

A spec captures *everything* that determines a campaign's outcome:
which design (registry benchmark, parameterized generator, or BLIF
file), which device and effort preset, the injected error model, the
simulation engine, the back-end strategy, probe budget, seeds, and the
tile-configuration cache policy.  Two processes handed equal specs
compute bit-identical candidates and probe trajectories.

Specs are frozen, JSON-round-trippable (`to_dict` / `from_dict` /
`to_json` / `from_json`), and validated eagerly: a bad field raises
:class:`repro.errors.SpecError` (a :class:`ValueError`) naming the
field and the legal values, so the CLI and campaign files fail fast
instead of mid-run.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields

from repro.arch.device import XC4000_FAMILY
from repro.debug.errors import ERROR_KINDS
from repro.debug.strategies import STRATEGY_REGISTRY
from repro.errors import SpecError
from repro.pnr.effort import EFFORT_PRESETS

ENGINE_NAMES = ("codegen", "compiled", "interpreted")
CACHE_POLICIES = ("shared", "private", "off")
#: pipeline stages a per-stage budget (``stage_timeouts``) may target
STAGE_NAMES = ("detect", "localize", "correct", "verify", "diagnose")
#: how VerifyStage judges the fix: stimulus replay, bounded SAT proof
#: (miter per output cone, counterexample on failure), or both
VERIFY_MODES = ("simulate", "prove", "both")
#: how CorrectStage produces the fix: replay the designer's
#: back-annotated inverse, or CEGIS a truth table from counterexamples
CORRECTION_MODES = ("oracle", "cegis")

_DEVICE_NAMES = tuple(spec.name for spec in XC4000_FAMILY)

#: fields excluded from :meth:`RunSpec.digest`.  The digest identifies
#: the *work*, not the harness around it: ``chaos`` injects failures
#: without changing what a healthy run computes, and ``cache_dir`` only
#: moves where warm tile configs live.  Excluding them lets a
#: ``campaign --resume`` rerun (typically without the chaos flags that
#: killed the first attempt) match the journal entries of the runs that
#: already finished.
RESUME_EXCLUDED_FIELDS = ("chaos", "cache_dir")


def resolve_error_kinds(error_kind: str, error_kinds, n_errors: int) -> list:
    """The per-error kind list the injector consumes.

    One definition shared by :class:`RunSpec` and the pipeline's
    ``RunContext`` so the error-model resolution rules cannot diverge.
    """
    if error_kinds:
        return list(error_kinds)
    return [error_kind] * n_errors


def resolve_max_rounds(max_rounds, n_errors: int) -> int:
    """Round budget: explicit, or one round per injected error."""
    if max_rounds is not None:
        return max_rounds
    return max(n_errors, 1)

#: keys accepted in the ``tiling`` sub-dict (TilingOptions fields)
_TILING_KEYS = (
    "n_tiles", "tile_clbs", "tile_fraction", "area_overhead",
    "min_tile_side", "refine_passes",
)


@dataclass(frozen=True)
class RunSpec:
    """Everything that defines one detect→localize→correct→verify run.

    Defaults mirror the historical `EmulationDebugSession` defaults so
    a default-constructed spec reproduces the legacy entry points
    bit-for-bit.
    """

    #: registry benchmark name (see :func:`repro.generators.build_design`)
    #: or, with ``design_params``, a parameterized generator name
    design: str = "s9234"
    #: seed handed to the design generator
    design_seed: int = 0
    #: optional generator kwargs (enables non-registry variants, e.g. a
    #: reduced 2-round DES); ``None`` means "registry design as published"
    design_params: dict | None = None
    #: path to a BLIF netlist; overrides ``design``/``design_params``
    blif_path: str | None = None
    #: XC4000 family member name; ``None`` auto-picks the smallest fit
    device: str | None = None
    #: routing channel width override (``None`` = family default)
    channel_width: int | None = None
    #: device slack used by the auto-pick (the session's historical 0.35)
    device_overhead: float = 0.35
    #: back-end strategy (see ``repro.debug.STRATEGY_REGISTRY``)
    strategy: str = "tiled"
    #: effort preset name (see ``repro.pnr.effort.EFFORT_PRESETS``)
    preset: str = "normal"
    #: combinational engine: "codegen", "compiled" or "interpreted"
    engine: str = "compiled"
    #: campaign seed (stimulus, P&R move sequences)
    seed: int = 1
    n_patterns: int = 64
    n_cycles: int = 8
    #: injected error model (see ``repro.debug.ERROR_KINDS``)
    error_kind: str = "table_bit"
    error_seed: int = 0
    #: number of simultaneous design errors to inject (distinct
    #: instances, each cycle-safe against the previous injections)
    n_errors: int = 1
    #: per-error kind list (length ``n_errors``); ``None`` repeats
    #: ``error_kind`` for every injected error
    error_kinds: list | None = None
    #: diagnose→fix→re-detect round budget; ``None`` allots one round
    #: per injected error (so single-fault runs keep the historical
    #: single-pass behavior)
    max_rounds: int | None = None
    max_probes: int = 8
    goal_size: int = 4
    #: fix verification mode: "simulate" (legacy stimulus replay),
    #: "prove" (bounded equivalence per output cone), or "both"
    verify: str = "simulate"
    #: unrolling depth for the proof; ``None`` uses ``n_cycles``
    prove_frames: int | None = None
    #: fix synthesis mode: "oracle" (back-annotation) or "cegis"
    #: (SAT truth-table synthesis with oracle fallback)
    correction: str = "oracle"
    #: TilingOptions overrides as a plain dict, e.g. ``{"n_tiles": 10}``
    tiling: dict | None = None
    #: tile-configuration cache policy: "shared" (process-wide default
    #: cache), "private" (a cache isolated from the rest of the
    #: process: fresh per `run_spec` call, one campaign-local cache
    #: inside a `CampaignRunner` — use "off" for fully cold runs), or
    #: "off" (no cache)
    cache: str = "shared"
    #: directory for cross-process cache persistence (``--cache-dir``)
    cache_dir: str | None = None
    #: per-run wall-clock budget in seconds (``None`` = unbounded);
    #: enforced cooperatively at stage boundaries and inside the
    #: localizer/SAT/CEGIS loops — a trip yields ``status="timeout"``
    #: with partial results, never a raise
    timeout_s: float | None = None
    #: per-stage wall-clock budgets, e.g. ``{"localize": 30.0}``
    #: (keys from :data:`STAGE_NAMES`)
    stage_timeouts: dict | None = None
    #: failed-attempt retries before the run reports ``status="failed"``
    #: (each retry steps down the degradation ladder when a rung applies)
    retries: int = 0
    #: base of the seed-stable exponential retry backoff (0 = no sleep)
    retry_backoff_s: float = 0.0
    #: chaos-harness fault injection (see
    #: :class:`repro.resilience.chaos.ChaosConfig`); ``None`` = off
    chaos: dict | None = None

    def __post_init__(self) -> None:
        self.validate()

    # -- validation ----------------------------------------------------

    def validate(self) -> None:
        from repro.api.design import GENERATOR_BUILDERS
        from repro.generators.registry import PAPER_DESIGNS

        if self.blif_path is None:
            if self.design_params is None:
                if self.design not in PAPER_DESIGNS:
                    raise SpecError(
                        f"unknown design {self.design!r}; known designs: "
                        + ", ".join(PAPER_DESIGNS)
                    )
            else:
                if not isinstance(self.design_params, dict):
                    raise SpecError("design_params must be a dict or null")
                if self.design not in GENERATOR_BUILDERS:
                    raise SpecError(
                        f"design {self.design!r} does not accept "
                        "design_params; parameterizable generators: "
                        + ", ".join(sorted(GENERATOR_BUILDERS))
                    )
                import inspect

                accepted = inspect.signature(
                    GENERATOR_BUILDERS[self.design]
                ).parameters
                unknown = sorted(set(self.design_params) - set(accepted))
                if unknown:
                    raise SpecError(
                        f"design_params {unknown} not accepted by "
                        f"generator {self.design!r}; accepted: "
                        + ", ".join(accepted)
                    )
        if self.device is not None and self.device not in _DEVICE_NAMES:
            raise SpecError(
                f"unknown device {self.device!r}; family members: "
                + ", ".join(_DEVICE_NAMES)
            )
        if self.strategy not in STRATEGY_REGISTRY:
            raise SpecError(
                f"unknown strategy {self.strategy!r}; valid strategies: "
                + ", ".join(sorted(STRATEGY_REGISTRY))
            )
        if self.preset not in EFFORT_PRESETS:
            raise SpecError(
                f"unknown preset {self.preset!r}; valid presets: "
                + ", ".join(EFFORT_PRESETS)
            )
        if self.engine not in ENGINE_NAMES:
            raise SpecError(
                f"unknown engine {self.engine!r}; valid engines: "
                + ", ".join(ENGINE_NAMES)
            )
        if self.error_kind not in ERROR_KINDS:
            raise SpecError(
                f"unknown error kind {self.error_kind!r}; valid kinds: "
                + ", ".join(ERROR_KINDS)
            )
        if not isinstance(self.n_errors, int) or self.n_errors < 1:
            raise SpecError("n_errors must be an int >= 1")
        if self.error_kinds is not None:
            if not isinstance(self.error_kinds, list) or not self.error_kinds:
                raise SpecError("error_kinds must be a non-empty list or null")
            for kind in self.error_kinds:
                if kind not in ERROR_KINDS:
                    raise SpecError(
                        f"unknown error kind {kind!r} in error_kinds; "
                        "valid kinds: " + ", ".join(ERROR_KINDS)
                    )
            if len(self.error_kinds) != self.n_errors:
                raise SpecError(
                    f"error_kinds lists {len(self.error_kinds)} kinds "
                    f"but n_errors is {self.n_errors}"
                )
        if self.max_rounds is not None and (
            not isinstance(self.max_rounds, int) or self.max_rounds < 1
        ):
            raise SpecError("max_rounds must be an int >= 1 or null")
        if self.cache not in CACHE_POLICIES:
            raise SpecError(
                f"unknown cache policy {self.cache!r}; valid policies: "
                + ", ".join(CACHE_POLICIES)
            )
        if self.verify not in VERIFY_MODES:
            raise SpecError(
                f"unknown verify mode {self.verify!r}; valid modes: "
                + ", ".join(VERIFY_MODES)
            )
        if self.correction not in CORRECTION_MODES:
            raise SpecError(
                f"unknown correction mode {self.correction!r}; valid "
                "modes: " + ", ".join(CORRECTION_MODES)
            )
        if self.prove_frames is not None and (
            not isinstance(self.prove_frames, int) or self.prove_frames < 1
        ):
            raise SpecError("prove_frames must be an int >= 1 or null")
        if self.tiling is not None:
            if not isinstance(self.tiling, dict):
                raise SpecError("tiling must be a dict or null")
            unknown = sorted(set(self.tiling) - set(_TILING_KEYS))
            if unknown:
                raise SpecError(
                    f"unknown tiling keys {unknown}; valid keys: "
                    + ", ".join(_TILING_KEYS)
                )
        for name, value, floor in (
            ("n_patterns", self.n_patterns, 1),
            ("n_cycles", self.n_cycles, 1),
            ("max_probes", self.max_probes, 0),
            ("goal_size", self.goal_size, 1),
        ):
            if not isinstance(value, int) or value < floor:
                raise SpecError(f"{name} must be an int >= {floor}")
        if self.timeout_s is not None and (
            not isinstance(self.timeout_s, (int, float)) or self.timeout_s <= 0
        ):
            raise SpecError("timeout_s must be a positive number or null")
        if self.stage_timeouts is not None:
            if not isinstance(self.stage_timeouts, dict):
                raise SpecError("stage_timeouts must be a dict or null")
            unknown = sorted(set(self.stage_timeouts) - set(STAGE_NAMES))
            if unknown:
                raise SpecError(
                    f"unknown stage_timeouts stages {unknown}; valid "
                    "stages: " + ", ".join(STAGE_NAMES)
                )
            for stage, seconds in self.stage_timeouts.items():
                if not isinstance(seconds, (int, float)) or seconds <= 0:
                    raise SpecError(
                        f"stage_timeouts[{stage!r}] must be a positive number"
                    )
        if not isinstance(self.retries, int) or self.retries < 0:
            raise SpecError("retries must be an int >= 0")
        if (
            not isinstance(self.retry_backoff_s, (int, float))
            or self.retry_backoff_s < 0
        ):
            raise SpecError("retry_backoff_s must be a number >= 0")
        if self.chaos is not None:
            from repro.resilience.chaos import ChaosConfig

            ChaosConfig.coerce(self.chaos)  # raises SpecError when bad

    # -- serialization -------------------------------------------------

    def to_dict(self) -> dict:
        """A plain-JSON dict; ``from_dict`` inverts it field-for-field."""
        out: dict = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, dict):
                value = dict(value)
            elif isinstance(value, list):
                value = list(value)
            out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "RunSpec":
        if not isinstance(data, dict):
            raise SpecError(f"spec must be a JSON object, got {type(data)}")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise SpecError(
                f"unknown spec fields {unknown}; valid fields: "
                + ", ".join(sorted(known))
            )
        return cls(**data)

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunSpec":
        return cls.from_dict(json.loads(text))

    def digest(self) -> str:
        """Stable identity of the work this spec describes.

        SHA-256 over the sorted-key JSON form with
        :data:`RESUME_EXCLUDED_FIELDS` removed — the campaign journal
        keys completed runs by this digest so ``--resume`` can skip
        them even when harness-only fields (chaos injection, cache
        location) differ between the interrupted and resumed
        invocations.
        """
        data = {
            k: v for k, v in self.to_dict().items()
            if k not in RESUME_EXCLUDED_FIELDS
        }
        text = json.dumps(data, sort_keys=True)
        return hashlib.sha256(text.encode("utf-8")).hexdigest()

    # -- derived views -------------------------------------------------

    def replaced(self, **overrides) -> "RunSpec":
        """A copy with the given fields replaced (re-validated)."""
        data = self.to_dict()
        data.update(overrides)
        return RunSpec.from_dict(data)

    def tiling_options(self):
        """The :class:`~repro.tiling.partition.TilingOptions` or None."""
        from repro.tiling.partition import TilingOptions

        if self.tiling is None:
            return None
        return TilingOptions(**self.tiling)

    def effort_preset(self):
        return EFFORT_PRESETS[self.preset]

    def resolved_error_kinds(self) -> list:
        """The per-error kind list the injector consumes."""
        return resolve_error_kinds(
            self.error_kind, self.error_kinds, self.n_errors
        )

    def effective_max_rounds(self) -> int:
        """Round budget: explicit, or one round per injected error."""
        return resolve_max_rounds(self.max_rounds, self.n_errors)

    @property
    def design_label(self) -> str:
        if self.blif_path is not None:
            import os

            return os.path.splitext(os.path.basename(self.blif_path))[0]
        return self.design
