"""Public debug-pipeline facade — the one stable entry point.

The paper's contribution is an end-to-end flow; this package is its
API surface:

* :class:`RunSpec` — frozen, JSON-round-trippable definition of a run
  (design, device, error model, engine, strategy, budgets, seeds,
  cache policy);
* the staged pipeline — :class:`DetectStage` → :class:`LocalizeStage`
  → :class:`CorrectStage` → :class:`VerifyStage` over a shared
  :class:`RunContext`, observable through :class:`PipelineHooks`;
* :func:`run_spec` — one spec in, one :class:`RunResult` out;
* :class:`CampaignRunner` / :func:`expand_matrix` — fan spec grids
  through the pipeline with worker threads or supervised worker
  processes, journaled for ``--resume``;
* the ``python -m repro`` CLI (``run`` / ``campaign`` / ``bench`` /
  ``report`` / ``cache verify``) built on all of the above.

Legacy entry points (`EmulationDebugSession`, `run_campaign`) are thin
shims over these stages and stay bit-identical.
"""

from repro.api.campaign import (
    EXECUTORS,
    CampaignResult,
    CampaignRunner,
    expand_matrix,
)
from repro.api.design import GENERATOR_BUILDERS, device_for, load_bundle
from repro.api.journal import CampaignJournal
from repro.api.pipeline import (
    CorrectStage,
    DebugPipeline,
    DetectStage,
    DiagnoseLoop,
    LocalizeStage,
    PipelineHooks,
    RoundRecord,
    RunContext,
    Stage,
    VerifyStage,
    default_stages,
    run_spec,
)
from repro.api.result import RunResult
from repro.api.spec import (
    CACHE_POLICIES,
    CORRECTION_MODES,
    ENGINE_NAMES,
    RunSpec,
    VERIFY_MODES,
)

__all__ = [
    "CACHE_POLICIES",
    "CORRECTION_MODES",
    "EXECUTORS",
    "VERIFY_MODES",
    "CampaignJournal",
    "CampaignResult",
    "CampaignRunner",
    "CorrectStage",
    "DebugPipeline",
    "DetectStage",
    "DiagnoseLoop",
    "ENGINE_NAMES",
    "RoundRecord",
    "GENERATOR_BUILDERS",
    "LocalizeStage",
    "PipelineHooks",
    "RunContext",
    "RunResult",
    "RunSpec",
    "Stage",
    "VerifyStage",
    "default_stages",
    "device_for",
    "expand_matrix",
    "load_bundle",
    "run_spec",
]
