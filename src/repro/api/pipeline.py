"""The staged debug pipeline behind every entry point.

The paper's flow is four stages over one shared :class:`RunContext`:

* :class:`DetectStage` — inject the error set, build the initial
  implementation, emulate against the golden model (steps 1-3, 21);
* :class:`LocalizeStage` — tile (steps 4-8), then cone bisection with
  observation-point commits (steps 16-19);
* :class:`CorrectStage` — produce and commit one round's fix
  (steps 11-15, 20);
* :class:`VerifyStage` — re-emulate; the fix must clear every mismatch.

Between detection and verification sits the **diagnose→fix→re-detect
loop** (:class:`DiagnoseLoop`): localize against the current round's
mismatches, correct the best candidate, re-run detection, and iterate
until the design is clean or the round budget is exhausted.  A
single-fault run takes exactly one round and reproduces the historical
single-pass pipeline bit-for-bit; ``n_errors > 1`` runs peel one fault
per round (or several at once, when CEGIS lands a joint repair),
retiring the previous round's stale observation points before new
probes go in.

`EmulationDebugSession.run`, the `python -m repro` CLI, and the
campaign runner all execute these same stage objects, which is what
keeps the legacy entry points bit-identical to the facade: there is
only one implementation of the loop.

Observers subclass :class:`PipelineHooks` and receive
``on_stage_start`` / ``on_stage_end`` / ``on_probe`` / ``on_commit``
events (localize/correct fire once per round), so progress reporting,
benchmarks, and tests no longer reach into strategy or localizer
internals.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.arch.device import Device
from repro.debug.correct import apply_correction
from repro.debug.detect import Mismatch, detect_on_layout
from repro.debug.errors import ErrorRecord, inject_errors
from repro.debug.instrument import remove_observation_points
from repro.debug.localize import ConeLocalizer, LocalizationResult
from repro.debug.strategies import BaseStrategy, make_strategy
from repro.debug.testgen import random_stimulus
from repro.netlist.core import Netlist
from repro.netlist.validate import check_netlist
from repro.errors import DeadlineExceeded
from repro.obs.metrics import METRICS
from repro.obs.profile import ProfilingHooks, StageProfiler
from repro.obs.trace import TracingHooks, maybe_span, tracer_scope
from repro.pnr.effort import EffortMeter
from repro.resilience.budget import Deadline, check_deadline, deadline_scope
from repro.resilience.chaos import chaos_stage_event
from repro.synth.pack import PackedDesign, refresh_block_nets
from repro.tiling.cache import DEFAULT_TILE_CACHE, TileConfigCache
from repro.tiling.eco import ChangeSet

#: sentinel for "resolve the tile cache from the spec's policy"
_UNSET = object()


class PipelineHooks:
    """Observer base class — subclass and override what you need."""

    def on_stage_start(self, stage: "Stage", ctx: "RunContext") -> None:
        """A stage is about to run."""

    def on_stage_end(self, stage: "Stage", ctx: "RunContext",
                     seconds: float) -> None:
        """A stage finished (``seconds`` of wall clock)."""

    def on_probe(self, ctx: "RunContext", step) -> None:
        """One localization probe got its verdict (a ``ProbeStep``)."""

    def on_commit(self, ctx: "RunContext", record) -> None:
        """A physical-design commit landed (a ``CommitRecord``)."""


@dataclass
class RoundRecord:
    """One diagnose→fix→re-detect round of the outer loop."""

    round: int
    #: mismatches the round started from
    n_mismatches: int
    #: failing outputs the round's localization explained / deferred
    group_outputs: list = field(default_factory=list)
    deferred_outputs: list = field(default_factory=list)
    n_probes: int = 0
    #: final candidate instances of the round, sorted
    candidates: list = field(default_factory=list)
    #: instances corrected this round (error sites or CEGIS retables)
    corrected: list = field(default_factory=list)
    #: candidates removed by SAT pruning this round
    sat_eliminated: int = 0
    #: stale observation points retired before this round's probes
    probes_retired: int = 0
    #: mismatches remaining after the round's fix was committed
    residual_mismatches: int = 0
    #: localization drained its candidate set (interacting-fault masking)
    drained: bool = False

    def to_dict(self) -> dict:
        return {
            "round": self.round,
            "n_mismatches": self.n_mismatches,
            "group_outputs": list(self.group_outputs),
            "deferred_outputs": list(self.deferred_outputs),
            "n_probes": self.n_probes,
            "candidates": list(self.candidates),
            "corrected": list(self.corrected),
            "sat_eliminated": self.sat_eliminated,
            "probes_retired": self.probes_retired,
            "residual_mismatches": self.residual_mismatches,
            "drained": self.drained,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RoundRecord":
        return cls(**data)


@dataclass
class RunContext:
    """Shared state the stages read and grow.

    Construction fields mirror the historical session/run signatures;
    result fields are filled in stage order.
    """

    packed: PackedDesign
    device: Device
    golden: Netlist
    strategy: BaseStrategy
    engine: str = "compiled"
    seed: int = 1
    n_patterns: int = 64
    n_cycles: int = 8
    error_kind: str = "table_bit"
    error_seed: int = 0
    #: number of simultaneous design errors to inject
    n_errors: int = 1
    #: per-error kinds (``None`` = ``error_kind`` repeated)
    error_kinds: list | None = None
    #: diagnose→fix→re-detect round budget (``None`` = ``n_errors``)
    max_rounds: int | None = None
    max_probes: int = 8
    goal_size: int = 4
    #: fix verification mode: "simulate" | "prove" | "both"
    verify: str = "simulate"
    #: proof unrolling depth; ``None`` falls back to ``n_cycles``
    prove_frames: int | None = None
    #: fix synthesis mode: "oracle" | "cegis"
    correction: str = "oracle"
    #: per-stage wall-clock budgets (stage name → seconds)
    stage_timeouts: dict | None = None
    spec: object | None = None
    #: 1-based attempt number under the resilient executor
    attempt: int = 1
    #: stage currently executing ("setup" before the stage walk) — the
    #: failure taxonomy reads this when an exception surfaces
    current_stage: str = "setup"

    # -- produced by the stages ---------------------------------------
    #: every injected error, in injection order
    errors: list = field(default_factory=list)
    #: the first injected error (legacy single-fault view)
    error: ErrorRecord | None = None
    initial_effort: EffortMeter = field(default_factory=EffortMeter)
    stimulus: list | None = None
    mismatches: list[Mismatch] = field(default_factory=list)
    detected: bool = False
    #: mismatches driving the *current* diagnosis round
    round_mismatches: list = field(default_factory=list)
    #: per-round localizations; ``localization`` is the latest
    localizations: list = field(default_factory=list)
    localization: LocalizationResult | None = None
    #: completed :class:`RoundRecord` entries
    rounds: list = field(default_factory=list)
    #: injected instances whose round candidates contained them
    errors_found: set = field(default_factory=set)
    #: injected instances already corrected (oracle or CEGIS)
    corrected: list = field(default_factory=list)
    #: observation points still in the fabric (retired next round)
    live_probes: list = field(default_factory=list)
    #: golden net history shared by every round's localizer
    golden_history: list | None = None
    #: instances corrected by the round in flight (reset per round)
    round_corrected: list = field(default_factory=list)
    #: stale probes retired at the start of the round in flight
    probes_retired_this_round: int = 0
    #: netlist revision an in-loop successful proof was computed at
    #: (lets VerifyStage skip recomputing it)
    proof_revision: int | None = None
    localized_correctly: bool = False
    fix: ChangeSet | None = None
    #: how the committed fix was produced (FixSynthesis.to_dict form
    #: for CEGIS repairs; None for oracle back-annotation)
    correction_info: dict | None = None
    #: per-round CEGIS repair descriptions
    corrections: list = field(default_factory=list)
    remaining: list[Mismatch] = field(default_factory=list)
    fixed: bool = False
    #: bounded-equivalence verdict (None when the proof never ran)
    proved: bool | None = None
    #: ProofResult.to_dict() of the verify-stage proof
    proof: dict | None = None
    #: per-cycle input words exciting the residual bug, if one was found
    counterexample: list | None = None
    #: the compiled kernel reproduced the counterexample's mismatch
    counterexample_confirmed: bool | None = None
    notes: list[str] = field(default_factory=list)
    #: per-stage wall-clock seconds, keyed by stage name (localize and
    #: correct accumulate across rounds)
    stage_seconds: dict = field(default_factory=dict)

    @classmethod
    def from_spec(cls, spec, tile_cache=_UNSET, bundle=None, device=None,
                  golden=None) -> "RunContext":
        """Materialize a context: build the design, device, strategy.

        ``bundle``/``device``/``golden`` let a warm-state registry
        (:mod:`repro.service.warm`) inject pre-built artifacts instead
        of rebuilding them per run; they must be exactly what this
        method would construct from ``spec`` (warm state is a cache,
        never a semantic input — the service's bit-identity tests hold
        the registry to that).
        """
        from repro.api.design import device_for, load_bundle

        if tile_cache is _UNSET:
            tile_cache = resolve_tile_cache(spec)
        if bundle is None:
            bundle = load_bundle(spec)
        packed = bundle.packed
        if device is None:
            device = device_for(
                packed, device=spec.device,
                channel_width=spec.channel_width,
                area_overhead=spec.device_overhead,
            )
        if golden is None:
            golden = packed.netlist.copy(f"{packed.netlist.name}.golden")
        strategy = make_strategy(
            spec.strategy, packed, device, seed=spec.seed,
            preset=spec.effort_preset(), tiling=spec.tiling_options(),
            tile_cache=tile_cache,
        )
        return cls(
            packed=packed, device=device, golden=golden, strategy=strategy,
            engine=spec.engine, seed=spec.seed,
            n_patterns=spec.n_patterns, n_cycles=spec.n_cycles,
            error_kind=spec.error_kind, error_seed=spec.error_seed,
            n_errors=spec.n_errors, error_kinds=spec.error_kinds,
            max_rounds=spec.max_rounds,
            max_probes=spec.max_probes, goal_size=spec.goal_size,
            verify=spec.verify, prove_frames=spec.prove_frames,
            correction=spec.correction,
            stage_timeouts=spec.stage_timeouts,
            spec=spec,
        )

    def resolved_error_kinds(self) -> list[str]:
        """The per-error kind list the injector consumes."""
        from repro.api.spec import resolve_error_kinds

        return resolve_error_kinds(
            self.error_kind, self.error_kinds, self.n_errors
        )

    def effective_max_rounds(self) -> int:
        """The round budget: explicit, or one round per injected error."""
        from repro.api.spec import resolve_max_rounds

        return resolve_max_rounds(self.max_rounds, self.n_errors)

    def remaining_errors(self) -> list[ErrorRecord]:
        """Injected errors not yet corrected, in injection order."""
        done = set(self.corrected)
        return [e for e in self.errors if e.instance not in done]

    def detect(self) -> list[Mismatch]:
        """Golden-vs-layout comparison on the current stimulus."""
        return detect_on_layout(
            self.strategy.layout, self.golden, self.stimulus,
            self.n_patterns, engine=self.engine,
        )


def resolve_tile_cache(spec) -> TileConfigCache | None:
    """Map a spec's cache policy onto a cache object (or None)."""
    if spec.cache == "off":
        return None
    if spec.cache == "private":
        return TileConfigCache()
    return DEFAULT_TILE_CACHE


class Stage:
    """One pipeline stage: a name and a ``run(ctx, hooks)``.

    ``composite`` stages orchestrate inner stages themselves (timing
    and hook events included); the pipeline runs them untimed.
    """

    name = "stage"
    composite = False

    def run(self, ctx: RunContext, hooks: PipelineHooks) -> None:
        raise NotImplementedError


def run_timed_stage(stage: Stage, ctx: RunContext,
                    hooks: PipelineHooks) -> None:
    """Run one stage with hook events and accumulated wall-clock.

    Shared by the pipeline's top-level walk and the diagnose loop's
    per-round inner walk, so stage accounting has one definition.

    Stage boundaries are also the resilience substrate's yield points:
    the cooperative run deadline is checked, armed chaos faults fire,
    and a per-stage budget (``RunSpec.stage_timeouts``) is scoped over
    the stage body.  Timing and the ``on_stage_end`` event land in a
    ``finally`` so a stage that dies mid-flight still accounts for the
    wall-clock it consumed — partial results stay truthful.
    """
    hooks.on_stage_start(stage, ctx)
    ctx.current_stage = stage.name
    check_deadline(stage.name)
    stage_budget = (ctx.stage_timeouts or {}).get(stage.name)
    stage_deadline = (
        Deadline(stage_budget, label=f"stage:{stage.name}")
        if stage_budget else None
    )
    t0 = time.perf_counter()
    try:
        with deadline_scope(stage_deadline):
            # chaos faults model the stage itself misbehaving, so they
            # fire inside its budget — an injected hang must trip the
            # per-stage deadline, not stall before it is armed
            chaos_stage_event(stage.name)
            stage.run(ctx, hooks)
    finally:
        seconds = time.perf_counter() - t0
        ctx.stage_seconds[stage.name] = (
            ctx.stage_seconds.get(stage.name, 0.0) + seconds
        )
        hooks.on_stage_end(stage, ctx, seconds)


class DetectStage(Stage):
    """Inject, implement, emulate: does the design misbehave at all?"""

    name = "detect"

    def run(self, ctx: RunContext, hooks: PipelineHooks) -> None:
        netlist = ctx.packed.netlist
        ctx.errors = inject_errors(
            netlist, ctx.resolved_error_kinds(), seed=ctx.error_seed,
            n_errors=ctx.n_errors,
        )
        ctx.error = ctx.errors[0]
        check_netlist(netlist)
        refresh_block_nets(ctx.packed)

        ctx.strategy.build_initial(meter=ctx.initial_effort)

        ctx.stimulus = random_stimulus(
            ctx.golden, ctx.n_cycles, ctx.n_patterns, seed=ctx.seed
        )
        mismatches = ctx.detect()
        if not mismatches:
            # widen the net: longer run, more patterns
            ctx.notes.append("first stimulus missed the error; widened")
            ctx.stimulus = random_stimulus(
                ctx.golden, ctx.n_cycles * 4, ctx.n_patterns,
                seed=ctx.seed + 1,
            )
            mismatches = ctx.detect()
        ctx.mismatches = mismatches
        ctx.round_mismatches = list(mismatches)
        ctx.detected = bool(mismatches)
        if not ctx.detected:
            ctx.notes.append("error never excited; not a functional bug")


class LocalizeStage(Stage):
    """Cone bisection over observation-point commits (steps 16-19).

    Runs once per diagnosis round: stale observation points from the
    previous round are retired first (one removal commit, replayed from
    the tile-configuration cache on repeats), then the round's mismatch
    group is localized.
    """

    name = "localize"

    def run(self, ctx: RunContext, hooks: PipelineHooks) -> None:
        if not ctx.detected:
            return
        # steps 4-8: the tiled strategy locks its boundaries now
        ctx.strategy.prepare_for_debug()
        self._retire_stale_probes(ctx)
        remaining = max(1, ctx.n_errors - len(ctx.corrected))
        localizer = ConeLocalizer(
            ctx.strategy, ctx.golden, ctx.stimulus, ctx.n_patterns,
            goal_size=ctx.goal_size, engine=ctx.engine,
            n_errors=remaining, golden_history=ctx.golden_history,
            tolerate_drain=ctx.n_errors > 1,
            want_pairs=ctx.correction == "cegis",
        )
        ctx.golden_history = localizer.golden_history
        result = localizer.run(
            ctx.round_mismatches, max_probes=ctx.max_probes,
            on_probe=lambda step: hooks.on_probe(ctx, step),
        )
        result.round = len(ctx.rounds) + 1
        ctx.localization = result
        ctx.localizations.append(result)
        ctx.live_probes = list(result.probe_points)
        for err in ctx.errors:
            if err.instance in result.candidates:
                ctx.errors_found.add(err.instance)
        ctx.localized_correctly = all(
            e.instance in ctx.errors_found for e in ctx.errors
        )

    @staticmethod
    def _retire_stale_probes(ctx: RunContext) -> None:
        """Remove the previous round's observation points (one commit)."""
        if not ctx.live_probes:
            return
        netlist = ctx.packed.netlist
        changes = remove_observation_points(netlist, ctx.live_probes)
        retired = len(ctx.live_probes)
        ctx.live_probes = []
        if changes.is_empty:
            return
        ctx.strategy.commit(changes)
        ctx.notes.append(f"retired {retired} stale observation point(s)")
        ctx.probes_retired_this_round = retired


class CorrectStage(Stage):
    """Produce and commit one round's fix (steps 11-15).

    ``correction="oracle"`` replays the designer's back-annotated
    inverse of the *best candidate* among the still-uncorrected
    injected errors — the one the round's localization pinned down
    (falling back, with a note, to the next uncorrected error when the
    candidates missed every remaining fault, so the loop always makes
    progress).  ``correction="cegis"`` instead synthesizes replacement
    truth tables from counterexamples (:mod:`repro.sat.cegis`) — single
    candidates first, then SAT-ranked candidate pairs jointly — scoped
    to the round's output group, with per-round fallback to
    back-annotation when no candidate set admits a table repair.
    """

    name = "correct"

    def run(self, ctx: RunContext, hooks: PipelineHooks) -> None:
        if not ctx.detected:
            return
        assert ctx.errors
        netlist = ctx.packed.netlist
        ctx.round_corrected = []
        fix: ChangeSet | None = None
        anchor: str | None = None
        if ctx.correction == "cegis":
            synthesized = self._synthesize(ctx)
            if synthesized is not None:
                fix = synthesized.changes
                anchor = synthesized.instance
                info = synthesized.to_dict()
                ctx.corrections.append(info)
                if ctx.correction_info is None:
                    ctx.correction_info = info
                for name in synthesized.instances:
                    ctx.round_corrected.append(name)
                    if any(e.instance == name for e in ctx.errors):
                        if name not in ctx.corrected:
                            ctx.corrected.append(name)
            else:
                ctx.notes.append(
                    "cegis found no truth-table repair; "
                    "fell back to back-annotation"
                )
        if fix is None:
            target = self._oracle_target(ctx)
            if target is None:
                # no uncorrected error left (everything compensated by
                # CEGIS retables), or restoring any of them would only
                # regress repairs synthesized against the faulty wiring;
                # replaying a correction would *toggle* kinds like
                # input_swap rather than restore them, so commit
                # nothing and let the round budget end the loop
                ctx.notes.append(
                    "no back-annotation would improve this round; "
                    "skipping the fix"
                )
                return
            fix = apply_correction(netlist, target)
            anchor = target.instance
            if target.instance not in ctx.corrected:
                ctx.corrected.append(target.instance)
            ctx.round_corrected.append(target.instance)
        check_netlist(netlist)
        ctx.fix = fix
        ctx.strategy.commit(fix, anchor_instance=anchor)

    @classmethod
    def _oracle_target(cls, ctx: RunContext) -> ErrorRecord | None:
        """The uncorrected error the round's candidates point at, or
        ``None`` when no back-annotation is available (or, after a
        CEGIS repair landed elsewhere, when none would help)."""
        remaining = ctx.remaining_errors()
        if not remaining:
            return None
        candidates = (
            ctx.localization.candidates
            if ctx.localization is not None else set()
        )
        located = sorted(
            e.instance for e in remaining if e.instance in candidates
        )
        by_instance = {e.instance: e for e in remaining}
        ordered = [by_instance[name] for name in located] + [
            e for e in remaining if e.instance not in set(located)
        ]
        if ctx.corrections:
            # a CEGIS retable at a non-error site may have *compensated*
            # an injected error; restoring that error now would break the
            # synthesized repair.  Keep only fallbacks that demonstrably
            # reduce the mismatch count on a scratch copy.
            ordered = [
                e for e in ordered
                if cls._mismatches_after_restoring(ctx, e)
                < len(ctx.round_mismatches)
            ]
            if not ordered:
                return None
        target = ordered[0]
        if ctx.n_errors > 1 and target.instance not in candidates:
            ctx.notes.append(
                "round candidates missed every remaining error; "
                f"back-annotating {target.instance}"
            )
        return target

    @staticmethod
    def _mismatches_after_restoring(ctx: RunContext, error) -> int:
        """Mismatch count if ``error`` were back-annotated (scratch)."""
        from repro.debug.detect import compare_runs
        from repro.netlist.simulate import replay_outputs

        scratch = ctx.packed.netlist.copy(
            f"{ctx.packed.netlist.name}.fallback"
        )
        apply_correction(scratch, error)
        return len(compare_runs(
            replay_outputs(scratch, ctx.stimulus, ctx.n_patterns,
                           engine=ctx.engine),
            replay_outputs(ctx.golden, ctx.stimulus, ctx.n_patterns,
                           engine=ctx.engine),
        ))

    @staticmethod
    def _synthesize(ctx: RunContext):
        from repro.debug.correct import synthesize_lut_fix

        loc = ctx.localization
        candidates = sorted(loc.candidates) if loc is not None else []
        if not candidates or not ctx.round_mismatches:
            return None
        max_luts = 1
        pair_hints = None
        ignore_outputs = None
        if ctx.n_errors > 1:
            remaining = max(1, ctx.n_errors - len(ctx.corrected))
            max_luts = min(2, remaining)
            pair_hints = [tuple(p) for p in (loc.sat_pairs or [])]
            # outputs deferred to later rounds belong to other faults —
            # a repair must not be rejected for leaving them broken
            ignore_outputs = set(loc.deferred_outputs)
        return synthesize_lut_fix(
            ctx.packed.netlist, ctx.golden, candidates,
            ctx.round_mismatches, ctx.stimulus, ctx.n_patterns,
            engine=ctx.engine, seed=ctx.seed,
            max_luts=max_luts, pair_hints=pair_hints,
            ignore_outputs=ignore_outputs,
        )


class DiagnoseLoop(Stage):
    """The outer diagnose→fix→re-detect loop (multi-error round driver).

    Runs :class:`LocalizeStage` then :class:`CorrectStage`, re-detects,
    and iterates until the stimulus comes back clean or the round
    budget (``max_rounds``, default one round per injected error) is
    exhausted.  Inner stages are individually timed and announced
    through the hooks exactly like top-level stages, so a single-fault
    run observes the historical ``detect, localize, correct, verify``
    sequence unchanged.

    With ``verify="prove"|"both"`` a clean stimulus does not end the
    loop early: while rounds remain, the bounded-equivalence proof runs
    in-loop, and a *confirmed* counterexample is folded into the
    stimulus as one more pattern word — re-arming detection against
    faults the random patterns never excited.  A proof that succeeds
    in-loop is cached (keyed on the netlist revision) so the verify
    stage does not recompute it.
    """

    name = "diagnose"
    composite = True

    def __init__(self, localize: Stage | None = None,
                 correct: Stage | None = None) -> None:
        self.localize = localize if localize is not None else LocalizeStage()
        self.correct = correct if correct is not None else CorrectStage()

    def run(self, ctx: RunContext, hooks: PipelineHooks) -> None:
        budget = ctx.effective_max_rounds()
        while True:
            check_deadline("diagnose.round")
            round_no = len(ctx.rounds) + 1
            ctx.probes_retired_this_round = 0
            with maybe_span("round", category="diagnose", round=round_no):
                for stage in (self.localize, self.correct):
                    run_timed_stage(stage, ctx, hooks)
                if not ctx.detected:
                    return
                residual = ctx.detect()
                ctx.remaining = residual
                loc = ctx.localization
                ctx.rounds.append(RoundRecord(
                    round=round_no,
                    n_mismatches=len(ctx.round_mismatches),
                    group_outputs=list(loc.group_outputs) if loc else [],
                    deferred_outputs=list(loc.deferred_outputs)
                    if loc else [],
                    n_probes=loc.n_probes if loc else 0,
                    candidates=sorted(loc.candidates) if loc else [],
                    corrected=list(ctx.round_corrected),
                    sat_eliminated=loc.sat_eliminated if loc else 0,
                    probes_retired=ctx.probes_retired_this_round,
                    residual_mismatches=len(residual),
                    drained=bool(loc.drained) if loc else False,
                ))
                if not residual:
                    if (
                        ctx.verify in ("prove", "both")
                        and len(ctx.rounds) < budget
                    ):
                        residual = self._proof_redetect(ctx)
                    if not residual:
                        return
                if len(ctx.rounds) >= budget:
                    if budget > 1:
                        ctx.notes.append(
                            f"{len(residual)} mismatches persist after "
                            f"{len(ctx.rounds)} diagnosis rounds "
                            "(round budget exhausted)"
                        )
                    return
                ctx.round_mismatches = residual

    @staticmethod
    def _proof_redetect(ctx: RunContext):
        """Turn a failed in-loop proof into next-round mismatches.

        Returns the new round's mismatches after folding a confirmed
        counterexample into the stimulus as one extra pattern word, or
        a false value when the design proved equivalent (the proof is
        cached for the verify stage) or the counterexample could not be
        reproduced by the simulation kernel.
        """
        from repro.sat.equiv import (
            counterexample_mismatches,
            prove_equivalence,
        )

        frames = ctx.prove_frames or ctx.n_cycles
        proof = prove_equivalence(
            ctx.packed.netlist, ctx.golden, frames=frames, seed=ctx.seed,
        )
        if proof.proved:
            ctx.proved = True
            ctx.proof = proof.to_dict()
            ctx.proof_revision = getattr(
                ctx.packed.netlist, "revision", None
            )
            return None
        cex = proof.counterexample
        confirmed = counterexample_mismatches(
            ctx.packed.netlist, ctx.golden, cex, engine=ctx.engine,
        )
        if not confirmed:
            ctx.notes.append(
                "in-loop proof counterexample not reproduced by the "
                "simulation kernel; leaving the verdict to the verify stage"
            )
            return None
        # one more pattern word carrying the counterexample, alongside
        # the random patterns every later verdict still leans on
        pattern_bit = 1 << ctx.n_patterns
        merged = []
        for t in range(max(len(ctx.stimulus), len(cex))):
            cycle = dict(ctx.stimulus[t]) if t < len(ctx.stimulus) else {}
            if t < len(cex):
                for port, bit in cex[t].items():
                    if bit:
                        cycle[port] = cycle.get(port, 0) | pattern_bit
            merged.append(cycle)
        ctx.stimulus = merged
        ctx.n_patterns += 1
        ctx.golden_history = None  # widths changed; recompute next round
        residual = ctx.detect()
        if residual:
            ctx.notes.append(
                "proof counterexample re-armed detection for round "
                f"{len(ctx.rounds) + 1}"
            )
        return residual


class VerifyStage(Stage):
    """Judge the fix (step 21): stimulus replay, SAT proof, or both.

    ``verify="simulate"`` judges the diagnose loop's final re-detection
    (re-running it when no loop ran — custom stage lists).
    ``verify="prove"`` builds a corrected-vs-golden miter per output
    cone (:func:`repro.sat.equiv.prove_equivalence`) and either proves
    bounded equivalence from reset or extracts a counterexample, which
    is replayed through the compiled kernel as a regression stimulus
    and recorded in ``remaining``.  ``"both"`` requires the stimulus
    *and* the proof to pass.
    """

    name = "verify"

    def run(self, ctx: RunContext, hooks: PipelineHooks) -> None:
        if not ctx.detected:
            return
        sim_ok = True
        if ctx.verify in ("simulate", "both"):
            if not ctx.rounds:
                ctx.remaining = ctx.detect()
            sim_ok = not ctx.remaining
            if not sim_ok:
                ctx.notes.append(
                    f"{len(ctx.remaining)} mismatches persist after fix"
                )
        if ctx.verify in ("prove", "both"):
            self._prove(ctx)
            ctx.fixed = sim_ok and bool(ctx.proved)
        else:
            ctx.fixed = sim_ok

    @staticmethod
    def _prove(ctx: RunContext) -> None:
        from repro.sat.equiv import (
            counterexample_mismatches,
            prove_equivalence,
        )

        revision = getattr(ctx.packed.netlist, "revision", None)
        if (
            ctx.proved
            and ctx.proof is not None
            and ctx.proof_revision == revision
        ):
            return  # the diagnose loop already proved this netlist
        frames = ctx.prove_frames or ctx.n_cycles
        proof = prove_equivalence(
            ctx.packed.netlist, ctx.golden, frames=frames, seed=ctx.seed,
        )
        ctx.proved = proof.proved
        ctx.proof = proof.to_dict()
        if proof.proved:
            return
        ctx.counterexample = proof.counterexample
        mismatches = counterexample_mismatches(
            ctx.packed.netlist, ctx.golden, proof.counterexample,
            engine=ctx.engine,
        )
        ctx.counterexample_confirmed = bool(mismatches)
        if ctx.verify == "prove":
            # the replayed counterexample is the regression stimulus
            ctx.remaining = mismatches
        ctx.notes.append(
            f"proof found a counterexample at output {proof.cex_output} "
            f"({'confirmed' if mismatches else 'NOT reproduced'} "
            "by the compiled kernel)"
        )


def default_stages() -> tuple[Stage, ...]:
    return (DetectStage(), DiagnoseLoop(), VerifyStage())


class DebugPipeline:
    """Runs stages over a context, timing each and firing hooks.

    Composite stages (the diagnose loop) time and announce their inner
    stages themselves, so per-stage accounting stays keyed by
    ``detect`` / ``localize`` / ``correct`` / ``verify``.
    """

    def __init__(self, stages: tuple[Stage, ...] | None = None,
                 hooks: PipelineHooks | None = None) -> None:
        self.stages = tuple(stages) if stages is not None else default_stages()
        self.hooks = hooks or PipelineHooks()

    def execute(self, ctx: RunContext) -> RunContext:
        hooks = self.hooks
        previous_listener = ctx.strategy.commit_listener
        ctx.strategy.commit_listener = (
            lambda record: hooks.on_commit(ctx, record)
        )
        try:
            for stage in self.stages:
                if stage.composite:
                    # composite stages time and announce their inner
                    # stages themselves, but deadline/chaos boundary
                    # checks still apply to the composite as a whole
                    ctx.current_stage = stage.name
                    check_deadline(stage.name)
                    budget = (ctx.stage_timeouts or {}).get(stage.name)
                    scope = (
                        Deadline(budget, label=f"stage:{stage.name}")
                        if budget else None
                    )
                    with deadline_scope(scope), \
                            maybe_span(stage.name, category="stage"):
                        chaos_stage_event(stage.name)
                        stage.run(ctx, hooks)
                    continue
                run_timed_stage(stage, ctx, hooks)
        finally:
            ctx.strategy.commit_listener = previous_listener
        return ctx


def run_spec(spec, hooks: PipelineHooks | None = None,
             tile_cache=_UNSET, return_context: bool = False,
             chaos=None, warm=None, tracer=None, profile: bool = False):
    """The facade: one spec in, one JSON-ready result out — always.

    Builds the design, runs the staged pipeline (with the diagnose
    round loop between detection and verification), and packages a
    :class:`~repro.api.result.RunResult`.  With ``return_context`` the
    materialized :class:`RunContext` is returned alongside for callers
    that need live objects (layout legality checks, benchmarks).

    The executor is *resilient*: pipeline exceptions become structured
    ``status="failed"`` results (``RunResult.failures`` carries the
    per-attempt :class:`~repro.resilience.failure.RunFailure` records),
    a tripped ``timeout_s``/``stage_timeouts`` budget becomes
    ``status="timeout"`` with whatever partial results the completed
    stages produced, and ``retries > 0`` re-attempts a failed run —
    stepping down the degradation ladder
    (:func:`repro.resilience.degrade.next_degraded`) when a rung
    applies, each step recorded in ``RunResult.degradations``.  A spec
    with no budgets, no retries, and no chaos takes a single attempt
    down the exact historical code path, bit-identical to the pre-
    resilience pipeline.

    ``chaos`` overrides ``spec.chaos`` (the campaign runner passes its
    own config through here); fault selection is deterministic per
    spec, so re-running a chaos campaign reproduces the same failures.

    ``warm`` is an optional warm-state registry
    (:class:`repro.service.warm.WarmRegistry`): each attempt asks it
    for pre-built design artifacts (bundle fork, device, shared golden)
    keyed by the spec's design digest.  Warm state is a pure cache —
    the result is bit-identical with or without it.

    ``tracer`` (a :class:`repro.obs.Tracer`) arms structured tracing
    for the run: a root ``run`` span per attempt, stage/round/probe
    spans beneath it, closed with status ``timeout``/``error`` when an
    attempt dies mid-flight.  ``profile`` scopes a per-stage cProfile
    over the pipeline and lands the top-N aggregation in
    ``RunResult.profile``.  Both are strictly additive — observation
    never changes the computed result.
    """
    from repro.api.result import RunResult
    from repro.resilience.budget import backoff_seconds, clamp_backoff
    from repro.resilience.chaos import (
        CACHE_FILE_KINDS,
        PIPELINE_KINDS,
        WORKER_KINDS,
        ChaosConfig,
        ChaosInjector,
        ReplayRejectingCache,
        chaos_scope,
        corrupt_cache_file,
    )
    from repro.netlist.codegen import (
        load_kernel_sources,
        save_kernel_sources,
    )
    from repro.resilience.degrade import next_degraded
    from repro.resilience.failure import RunFailure
    from repro.tiling.cache import (
        cache_file_path,
        load_tile_cache,
        save_tile_cache,
        stats_delta,
    )

    chaos_cfg = ChaosConfig.coerce(chaos if chaos is not None else spec.chaos)
    fired = chaos_cfg.select(spec) if chaos_cfg is not None else []
    degradations: list = []

    # cache-dir persistence and the per-run stats delta only make sense
    # when this run owns its cache; a caller-supplied cache (e.g. the
    # campaign runner's, shared across concurrent workers) is loaded,
    # saved, and accounted at the caller's level instead
    owns_cache = tile_cache is _UNSET
    if owns_cache:
        tile_cache = resolve_tile_cache(spec)
        if spec.cache_dir is not None and tile_cache is not None:
            for fault in fired:
                # damage the persisted file *before* warming: the load
                # must cold-start cleanly, never crash the run
                if fault.kind in CACHE_FILE_KINDS and corrupt_cache_file(
                    cache_file_path(spec.cache_dir), fault.kind,
                    seed=chaos_cfg.seed,
                ):
                    degradations.append({
                        "field": "cache_file", "from": "warm",
                        "to": "cold", "stage": "setup",
                        "chaos": fault.kind,
                    })
            load_tile_cache(spec.cache_dir, tile_cache)
        if spec.cache_dir is not None and spec.engine == "codegen":
            # warm codegen: seed the process-wide kernel cache from the
            # content-addressed store so campaign children skip codegen
            load_kernel_sources(spec.cache_dir)

    cache_before = (
        tile_cache.stats()
        if owns_cache and tile_cache is not None else None
    )

    # worker kinds ride along: ChaosInjector only fires them inside a
    # supervised worker process (inert under the thread executor)
    pipeline_faults = [
        f for f in fired if f.kind in PIPELINE_KINDS + WORKER_KINDS
    ]
    injector = ChaosInjector(pipeline_faults) if pipeline_faults else None
    reject_replay = any(f.kind == "replay_reject" for f in fired)

    profiler = StageProfiler() if profile else None
    run_hooks = hooks
    if profiler is not None:
        run_hooks = ProfilingHooks(profiler, inner=run_hooks)
    if tracer is not None:
        run_hooks = TracingHooks(tracer, inner=run_hooks)

    attempts_allowed = spec.retries + 1
    failures: list[RunFailure] = []
    current = spec
    run_cache = tile_cache
    rejecting: ReplayRejectingCache | None = None
    ctx: RunContext | None = None
    status = "failed"
    attempt = 1
    t_run = time.perf_counter()
    for attempt in range(1, attempts_allowed + 1):
        attempt_cache = run_cache
        if reject_replay and attempt_cache is not None:
            rejecting = ReplayRejectingCache(attempt_cache)
            attempt_cache = rejecting
        ctx = None
        t0 = time.perf_counter()
        try:
            warm_parts = (
                warm.context_parts(current) if warm is not None else {}
            )
            ctx = RunContext.from_spec(current, tile_cache=attempt_cache,
                                       **warm_parts)
            ctx.attempt = attempt
            run_deadline = (
                Deadline(current.timeout_s, label="run")
                if current.timeout_s else None
            )
            with tracer_scope(tracer):
                run_span = None
                if tracer is not None:
                    run_span = tracer.begin(
                        "run", category="run",
                        design=current.design_label,
                        digest=current.digest(),
                        strategy=current.strategy,
                        error_seed=current.error_seed,
                        n_errors=current.n_errors,
                        attempt=attempt,
                    )
                with deadline_scope(run_deadline), chaos_scope(injector):
                    DebugPipeline(hooks=run_hooks).execute(ctx)
                if tracer is not None:
                    tracer.end(
                        run_span, status="ok", fixed=ctx.fixed,
                        rounds=len(ctx.rounds),
                    )
            status = "ok"
            break
        except DeadlineExceeded as exc:
            if tracer is not None:
                tracer.unwind("timeout")
            failures.append(RunFailure.from_exception(
                exc, stage=ctx.current_stage if ctx is not None else "setup",
                elapsed_s=time.perf_counter() - t0, attempt=attempt,
            ))
            # a budget is a budget: a timed-out run is not retried (the
            # retry would burn the same wall-clock again); the partial
            # results the completed stages produced are kept
            status = "timeout"
            break
        except Exception as exc:
            if tracer is not None:
                tracer.unwind("error")
            stage = ctx.current_stage if ctx is not None else "setup"
            failures.append(RunFailure.from_exception(
                exc, stage=stage,
                elapsed_s=time.perf_counter() - t0, attempt=attempt,
            ))
            if attempt >= attempts_allowed:
                status = "failed"
                break
            step = next_degraded(current, stage)
            if step is not None:
                current, note = step
                degradations.append(dict(note, attempt=attempt))
                if note["field"] == "cache":
                    run_cache = None
            delay = clamp_backoff(
                backoff_seconds(
                    attempt, seed=current.seed,
                    base=current.retry_backoff_s,
                ),
                budget_s=current.timeout_s,
            )
            if delay:
                time.sleep(delay)
    wall = time.perf_counter() - t_run

    if rejecting is not None and rejecting.denied:
        degradations.append({
            "field": "cache_replay", "from": "replay", "to": "fresh-pnr",
            "stage": "commit", "denied": rejecting.denied, "chaos": True,
        })
    if status == "ok" and degradations:
        status = "degraded"

    cache_delta = None
    if cache_before is not None:
        cache_delta = stats_delta(cache_before, tile_cache.stats())
        if spec.cache_dir is not None:
            save_tile_cache(tile_cache, spec.cache_dir)
    if owns_cache and spec.cache_dir is not None and spec.engine == "codegen":
        save_kernel_sources(spec.cache_dir)

    METRICS.inc("repro_runs_total", status=status)
    if ctx is not None:
        for stage_name, seconds in ctx.stage_seconds.items():
            METRICS.observe("repro_stage_seconds", seconds,
                            stage=stage_name)
        if ctx.rounds:
            METRICS.inc("repro_rounds_total", value=len(ctx.rounds))

    profile_data = profiler.result() if profiler is not None else None
    if tracer is not None and profile_data is not None:
        tracer.extras["profile"] = profile_data

    failure_dicts = [f.to_dict() for f in failures]
    if ctx is not None:
        result = RunResult.from_context(
            ctx, wall_seconds=wall, cache=cache_delta, status=status,
            failures=failure_dicts, degradations=degradations,
            attempts=attempt, profile=profile_data,
        )
    else:
        # the run never materialized a context (design build / strategy
        # construction failed): a minimal, spec-complete record
        result = RunResult(
            spec=spec.to_dict(), status=status, failures=failure_dicts,
            degradations=degradations, attempts=attempt,
            design=spec.design_label, strategy=spec.strategy,
            engine=spec.engine, error_kind=spec.error_kind,
            wall_seconds=round(wall, 6), cache=cache_delta,
            profile=profile_data,
        )
    if return_context:
        return result, ctx
    return result
