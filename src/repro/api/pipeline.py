"""The staged debug pipeline behind every entry point.

The paper's flow is four stages over one shared :class:`RunContext`:

* :class:`DetectStage` — inject the error, build the initial
  implementation, emulate against the golden model (steps 1-3, 21);
* :class:`LocalizeStage` — tile (steps 4-8), then cone bisection with
  observation-point commits (steps 16-19);
* :class:`CorrectStage` — back-annotate the fix and commit it
  (steps 11-15, 20);
* :class:`VerifyStage` — re-emulate; the fix must clear every mismatch.

`EmulationDebugSession.run`, the `python -m repro` CLI, and the
campaign runner all execute these same stage objects, which is what
keeps the legacy entry points bit-identical to the facade: there is
only one implementation of the loop.

Observers subclass :class:`PipelineHooks` and receive
``on_stage_start`` / ``on_stage_end`` / ``on_probe`` / ``on_commit``
events, so progress reporting, benchmarks, and tests no longer reach
into strategy or localizer internals.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.arch.device import Device
from repro.debug.correct import apply_correction
from repro.debug.detect import Mismatch, detect_on_layout
from repro.debug.errors import ErrorRecord, inject_error
from repro.debug.localize import ConeLocalizer, LocalizationResult
from repro.debug.strategies import BaseStrategy, make_strategy
from repro.debug.testgen import random_stimulus
from repro.netlist.core import Netlist
from repro.netlist.validate import check_netlist
from repro.pnr.effort import EffortMeter
from repro.synth.pack import PackedDesign, refresh_block_nets
from repro.tiling.cache import DEFAULT_TILE_CACHE, TileConfigCache
from repro.tiling.eco import ChangeSet

#: sentinel for "resolve the tile cache from the spec's policy"
_UNSET = object()


class PipelineHooks:
    """Observer base class — subclass and override what you need."""

    def on_stage_start(self, stage: "Stage", ctx: "RunContext") -> None:
        """A stage is about to run."""

    def on_stage_end(self, stage: "Stage", ctx: "RunContext",
                     seconds: float) -> None:
        """A stage finished (``seconds`` of wall clock)."""

    def on_probe(self, ctx: "RunContext", step) -> None:
        """One localization probe got its verdict (a ``ProbeStep``)."""

    def on_commit(self, ctx: "RunContext", record) -> None:
        """A physical-design commit landed (a ``CommitRecord``)."""


@dataclass
class RunContext:
    """Shared state the stages read and grow.

    Construction fields mirror the historical session/run signatures;
    result fields are filled in stage order.
    """

    packed: PackedDesign
    device: Device
    golden: Netlist
    strategy: BaseStrategy
    engine: str = "compiled"
    seed: int = 1
    n_patterns: int = 64
    n_cycles: int = 8
    error_kind: str = "table_bit"
    error_seed: int = 0
    max_probes: int = 8
    goal_size: int = 4
    #: fix verification mode: "simulate" | "prove" | "both"
    verify: str = "simulate"
    #: proof unrolling depth; ``None`` falls back to ``n_cycles``
    prove_frames: int | None = None
    #: fix synthesis mode: "oracle" | "cegis"
    correction: str = "oracle"
    spec: object | None = None

    # -- produced by the stages ---------------------------------------
    error: ErrorRecord | None = None
    initial_effort: EffortMeter = field(default_factory=EffortMeter)
    stimulus: list | None = None
    mismatches: list[Mismatch] = field(default_factory=list)
    detected: bool = False
    localization: LocalizationResult | None = None
    localized_correctly: bool = False
    fix: ChangeSet | None = None
    #: how the committed fix was produced (FixSynthesis.to_dict form
    #: for CEGIS repairs; None for oracle back-annotation)
    correction_info: dict | None = None
    remaining: list[Mismatch] = field(default_factory=list)
    fixed: bool = False
    #: bounded-equivalence verdict (None when the proof never ran)
    proved: bool | None = None
    #: ProofResult.to_dict() of the verify-stage proof
    proof: dict | None = None
    #: per-cycle input words exciting the residual bug, if one was found
    counterexample: list | None = None
    #: the compiled kernel reproduced the counterexample's mismatch
    counterexample_confirmed: bool | None = None
    notes: list[str] = field(default_factory=list)
    #: per-stage wall-clock seconds, keyed by stage name
    stage_seconds: dict = field(default_factory=dict)

    @classmethod
    def from_spec(cls, spec, tile_cache=_UNSET) -> "RunContext":
        """Materialize a context: build the design, device, strategy."""
        from repro.api.design import device_for, load_bundle

        if tile_cache is _UNSET:
            tile_cache = resolve_tile_cache(spec)
        bundle = load_bundle(spec)
        packed = bundle.packed
        device = device_for(
            packed, device=spec.device, channel_width=spec.channel_width,
            area_overhead=spec.device_overhead,
        )
        golden = packed.netlist.copy(f"{packed.netlist.name}.golden")
        strategy = make_strategy(
            spec.strategy, packed, device, seed=spec.seed,
            preset=spec.effort_preset(), tiling=spec.tiling_options(),
            tile_cache=tile_cache,
        )
        return cls(
            packed=packed, device=device, golden=golden, strategy=strategy,
            engine=spec.engine, seed=spec.seed,
            n_patterns=spec.n_patterns, n_cycles=spec.n_cycles,
            error_kind=spec.error_kind, error_seed=spec.error_seed,
            max_probes=spec.max_probes, goal_size=spec.goal_size,
            verify=spec.verify, prove_frames=spec.prove_frames,
            correction=spec.correction,
            spec=spec,
        )

    def detect(self) -> list[Mismatch]:
        """Golden-vs-layout comparison on the current stimulus."""
        return detect_on_layout(
            self.strategy.layout, self.golden, self.stimulus,
            self.n_patterns, engine=self.engine,
        )


def resolve_tile_cache(spec) -> TileConfigCache | None:
    """Map a spec's cache policy onto a cache object (or None)."""
    if spec.cache == "off":
        return None
    if spec.cache == "private":
        return TileConfigCache()
    return DEFAULT_TILE_CACHE


class Stage:
    """One pipeline stage: a name and a ``run(ctx, hooks)``."""

    name = "stage"

    def run(self, ctx: RunContext, hooks: PipelineHooks) -> None:
        raise NotImplementedError


class DetectStage(Stage):
    """Inject, implement, emulate: does the design misbehave at all?"""

    name = "detect"

    def run(self, ctx: RunContext, hooks: PipelineHooks) -> None:
        netlist = ctx.packed.netlist
        ctx.error = inject_error(netlist, ctx.error_kind,
                                 seed=ctx.error_seed)
        check_netlist(netlist)
        refresh_block_nets(ctx.packed)

        ctx.strategy.build_initial(meter=ctx.initial_effort)

        ctx.stimulus = random_stimulus(
            ctx.golden, ctx.n_cycles, ctx.n_patterns, seed=ctx.seed
        )
        mismatches = ctx.detect()
        if not mismatches:
            # widen the net: longer run, more patterns
            ctx.notes.append("first stimulus missed the error; widened")
            ctx.stimulus = random_stimulus(
                ctx.golden, ctx.n_cycles * 4, ctx.n_patterns,
                seed=ctx.seed + 1,
            )
            mismatches = ctx.detect()
        ctx.mismatches = mismatches
        ctx.detected = bool(mismatches)
        if not ctx.detected:
            ctx.notes.append("error never excited; not a functional bug")


class LocalizeStage(Stage):
    """Cone bisection over observation-point commits (steps 16-19)."""

    name = "localize"

    def run(self, ctx: RunContext, hooks: PipelineHooks) -> None:
        if not ctx.detected:
            return
        # steps 4-8: the tiled strategy locks its boundaries now
        ctx.strategy.prepare_for_debug()
        localizer = ConeLocalizer(
            ctx.strategy, ctx.golden, ctx.stimulus, ctx.n_patterns,
            goal_size=ctx.goal_size, engine=ctx.engine,
        )
        ctx.localization = localizer.run(
            ctx.mismatches, max_probes=ctx.max_probes,
            on_probe=lambda step: hooks.on_probe(ctx, step),
        )
        assert ctx.error is not None
        ctx.localized_correctly = (
            ctx.error.instance in ctx.localization.candidates
        )


class CorrectStage(Stage):
    """Produce and commit the fix (steps 11-15).

    ``correction="oracle"`` replays the designer's back-annotated
    inverse of the injected error.  ``correction="cegis"`` instead
    synthesizes a replacement truth table for one of the localization
    candidates from counterexamples (:mod:`repro.sat.cegis`), falling
    back to back-annotation — with a note — when no candidate admits a
    table repair (structural errors, empty candidate sets).
    """

    name = "correct"

    def run(self, ctx: RunContext, hooks: PipelineHooks) -> None:
        if not ctx.detected:
            return
        assert ctx.error is not None
        netlist = ctx.packed.netlist
        anchor = ctx.error.instance
        if ctx.correction == "cegis":
            synthesized = self._synthesize(ctx)
            if synthesized is not None:
                ctx.fix = synthesized.changes
                ctx.correction_info = synthesized.to_dict()
                anchor = synthesized.instance
            else:
                ctx.notes.append(
                    "cegis found no truth-table repair; "
                    "fell back to back-annotation"
                )
        if ctx.fix is None:
            ctx.fix = apply_correction(netlist, ctx.error)
        check_netlist(netlist)
        ctx.strategy.commit(ctx.fix, anchor_instance=anchor)

    @staticmethod
    def _synthesize(ctx: RunContext):
        from repro.debug.correct import synthesize_lut_fix

        candidates = (
            sorted(ctx.localization.candidates)
            if ctx.localization is not None else []
        )
        if not candidates or not ctx.mismatches:
            return None
        return synthesize_lut_fix(
            ctx.packed.netlist, ctx.golden, candidates, ctx.mismatches,
            ctx.stimulus, ctx.n_patterns, engine=ctx.engine, seed=ctx.seed,
        )


class VerifyStage(Stage):
    """Judge the fix (step 21): stimulus replay, SAT proof, or both.

    ``verify="simulate"`` re-emulates the original stimulus (legacy
    behavior).  ``verify="prove"`` builds a corrected-vs-golden miter
    per output cone (:func:`repro.sat.equiv.prove_equivalence`) and
    either proves bounded equivalence from reset or extracts a
    counterexample, which is replayed through the compiled kernel as a
    regression stimulus and recorded in ``remaining``.  ``"both"``
    requires the stimulus *and* the proof to pass.
    """

    name = "verify"

    def run(self, ctx: RunContext, hooks: PipelineHooks) -> None:
        if not ctx.detected:
            return
        sim_ok = True
        if ctx.verify in ("simulate", "both"):
            ctx.remaining = ctx.detect()
            sim_ok = not ctx.remaining
            if not sim_ok:
                ctx.notes.append(
                    f"{len(ctx.remaining)} mismatches persist after fix"
                )
        if ctx.verify in ("prove", "both"):
            self._prove(ctx)
            ctx.fixed = sim_ok and bool(ctx.proved)
        else:
            ctx.fixed = sim_ok

    @staticmethod
    def _prove(ctx: RunContext) -> None:
        from repro.sat.equiv import (
            counterexample_mismatches,
            prove_equivalence,
        )

        frames = ctx.prove_frames or ctx.n_cycles
        proof = prove_equivalence(
            ctx.packed.netlist, ctx.golden, frames=frames, seed=ctx.seed,
        )
        ctx.proved = proof.proved
        ctx.proof = proof.to_dict()
        if proof.proved:
            return
        ctx.counterexample = proof.counterexample
        mismatches = counterexample_mismatches(
            ctx.packed.netlist, ctx.golden, proof.counterexample,
            engine=ctx.engine,
        )
        ctx.counterexample_confirmed = bool(mismatches)
        if ctx.verify == "prove":
            # the replayed counterexample is the regression stimulus
            ctx.remaining = mismatches
        ctx.notes.append(
            f"proof found a counterexample at output {proof.cex_output} "
            f"({'confirmed' if mismatches else 'NOT reproduced'} "
            "by the compiled kernel)"
        )


def default_stages() -> tuple[Stage, ...]:
    return (DetectStage(), LocalizeStage(), CorrectStage(), VerifyStage())


class DebugPipeline:
    """Runs stages over a context, timing each and firing hooks."""

    def __init__(self, stages: tuple[Stage, ...] | None = None,
                 hooks: PipelineHooks | None = None) -> None:
        self.stages = tuple(stages) if stages is not None else default_stages()
        self.hooks = hooks or PipelineHooks()

    def execute(self, ctx: RunContext) -> RunContext:
        hooks = self.hooks
        previous_listener = ctx.strategy.commit_listener
        ctx.strategy.commit_listener = (
            lambda record: hooks.on_commit(ctx, record)
        )
        try:
            for stage in self.stages:
                hooks.on_stage_start(stage, ctx)
                t0 = time.perf_counter()
                stage.run(ctx, hooks)
                seconds = time.perf_counter() - t0
                ctx.stage_seconds[stage.name] = seconds
                hooks.on_stage_end(stage, ctx, seconds)
        finally:
            ctx.strategy.commit_listener = previous_listener
        return ctx


def run_spec(spec, hooks: PipelineHooks | None = None,
             tile_cache=_UNSET, return_context: bool = False):
    """The facade: one spec in, one JSON-ready result out.

    Builds the design, runs the four stages, and packages a
    :class:`~repro.api.result.RunResult`.  With ``return_context`` the
    materialized :class:`RunContext` is returned alongside for callers
    that need live objects (layout legality checks, benchmarks).
    """
    from repro.api.result import RunResult
    from repro.tiling.cache import (
        load_tile_cache,
        save_tile_cache,
        stats_delta,
    )

    # cache-dir persistence and the per-run stats delta only make sense
    # when this run owns its cache; a caller-supplied cache (e.g. the
    # campaign runner's, shared across concurrent workers) is loaded,
    # saved, and accounted at the caller's level instead
    owns_cache = tile_cache is _UNSET
    if owns_cache:
        tile_cache = resolve_tile_cache(spec)
        if spec.cache_dir is not None and tile_cache is not None:
            load_tile_cache(spec.cache_dir, tile_cache)

    cache_before = (
        tile_cache.stats()
        if owns_cache and tile_cache is not None else None
    )
    t0 = time.perf_counter()
    ctx = RunContext.from_spec(spec, tile_cache=tile_cache)
    DebugPipeline(hooks=hooks).execute(ctx)
    wall = time.perf_counter() - t0

    cache_delta = None
    if cache_before is not None:
        cache_delta = stats_delta(cache_before, tile_cache.stats())
        if spec.cache_dir is not None:
            save_tile_cache(tile_cache, spec.cache_dir)

    result = RunResult.from_context(ctx, wall_seconds=wall,
                                    cache=cache_delta)
    if return_context:
        return result, ctx
    return result
